/**
 * @file
 * Ablations of PUBS design choices beyond the paper's own sweeps
 * (DESIGN.md section 5):
 *
 *  1. resetting vs up/down-saturating confidence counters — the paper
 *     asserts JRS resetting counters; we measure the difference by
 *     comparing counter widths' unconfident rates under both shapes
 *     (the up/down shape is approximated by a narrow resetting counter).
 *  2. tag-hash width q for the brslice_tab/conf_tab vs full tags —
 *     Section IV claims q=8/4 "hardly degrade the performance".
 *  3. set-associative vs tagless tables — the paper's "preliminary
 *     evaluation" preferred set-associative.
 *  4. legacy IQ organisations (shifting / circular) vs the random queue
 *     — quantifies the Section III-B1 taxonomy.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"
#include "workloads/kernels.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    // A representative D-BP pair keeps this ablation bench fast.
    std::vector<wl::Workload> picks;
    picks.push_back(wl::makeWorkload("sjeng_like"));
    picks.push_back(wl::makeWorkload("gobmk_like"));

    std::fprintf(stderr, "ablation: base machine\n");
    SuiteRun base = runSuite(picks, sim::makeConfig(sim::Machine::Base));

    auto geomeanSpeedup = [&](const pubs::cpu::CoreParams &params) {
        std::vector<double> ratios;
        for (size_t i = 0; i < picks.size(); ++i) {
            pubs::sim::RunResult r = runWorkload(picks[i], params);
            ratios.push_back(r.speedupOver(base.results[i]));
        }
        return geoMeanRatio(ratios);
    };

    // --- 2/3: tag handling ---
    TextTable tags({"tables", "speedup"});
    {
        pubs::cpu::CoreParams hashed = sim::makeConfig(sim::Machine::Pubs);
        std::fprintf(stderr, "ablation: hashed tags\n");
        tags.addRow({"hashed q=8/4 (default)",
                     pct(geomeanSpeedup(hashed))});

        pubs::cpu::CoreParams full = hashed;
        full.pubs.fullTags = true;
        std::fprintf(stderr, "ablation: full tags\n");
        tags.addRow({"full tags", pct(geomeanSpeedup(full))});

        pubs::cpu::CoreParams narrow = hashed;
        narrow.pubs.brsliceHashBits = 4;
        narrow.pubs.confHashBits = 2;
        std::fprintf(stderr, "ablation: narrow hashes\n");
        tags.addRow({"hashed q=4/2", pct(geomeanSpeedup(narrow))});

        pubs::cpu::CoreParams tagless = hashed;
        tagless.pubs.tagless = true;
        std::fprintf(stderr, "ablation: tagless\n");
        tags.addRow({"tagless direct-mapped",
                     pct(geomeanSpeedup(tagless))});
    }
    std::printf("ABLATION: table tagging (Section IV claims hashing is "
                "nearly free)\n\n%s\n", tags.str().c_str());
    maybeWriteCsv("ablation_tags", tags);

    // --- 4: IQ organisations (no PUBS) ---
    TextTable iqKinds({"iq_organisation", "ipc_vs_random"});
    {
        for (auto kind : {pubs::iq::IqKind::Shifting,
                          pubs::iq::IqKind::Circular}) {
            pubs::cpu::CoreParams params =
                sim::makeConfig(sim::Machine::Base);
            params.iqKind = kind;
            std::fprintf(stderr, "ablation: %s queue\n",
                         pubs::iq::iqKindName(kind));
            iqKinds.addRow({pubs::iq::iqKindName(kind),
                            pct(geomeanSpeedup(params))});
        }
        pubs::cpu::CoreParams age = sim::makeConfig(sim::Machine::Age);
        std::fprintf(stderr, "ablation: random + age matrix\n");
        iqKinds.addRow({"random + age matrix", pct(geomeanSpeedup(age))});
    }
    std::printf("ABLATION: IQ organisation IPC vs the random queue "
                "(Section III-B1 taxonomy)\n\n%s\n",
                iqKinds.str().c_str());
    maybeWriteCsv("ablation_iq_kind", iqKinds);

    // --- mode-switch thresholds ---
    TextTable thresholds({"llc_mpki_threshold", "speedup(sjeng)",
                          "speedup(mcf)"});
    {
        wl::Workload mcf = wl::makeWorkload("mcf_like");
        std::fprintf(stderr, "ablation: mcf base\n");
        pubs::sim::RunResult mcfBase =
            runWorkload(mcf, sim::makeConfig(sim::Machine::Base));
        for (double threshold : {0.5, 1.0, 4.0, 1e9}) {
            pubs::cpu::CoreParams params =
                sim::makeConfig(sim::Machine::Pubs);
            params.pubs.modeMpkiThreshold = threshold;
            std::fprintf(stderr, "ablation: threshold %.1f\n", threshold);
            pubs::sim::RunResult sj = runWorkload(picks[0], params);
            pubs::sim::RunResult mc = runWorkload(mcf, params);
            thresholds.addRow(
                {threshold > 1e6 ? "inf (never disable)"
                                 : num(threshold, 1),
                 pct(sj.speedupOver(base.results[0])),
                 pct(mc.speedupOver(mcfBase))});
        }
    }
    std::printf("ABLATION: mode-switch LLC MPKI threshold\n\n%s\n",
                thresholds.str().c_str());
    maybeWriteCsv("ablation_mode_threshold", thresholds);

    // --- tag handling under a large static code footprint ---
    // The suite's kernels are tiny loops, so the PC-indexed tables see
    // almost no capacity or aliasing pressure. A 192x-unrolled kernel
    // (~6K static instructions, ~200 static hard branches) stresses the
    // brslice_tab/conf_tab the way big-code programs do.
    TextTable bigCode({"tables (large footprint)", "speedup"});
    {
        wl::BranchyParams bp;
        bp.seed = 7;
        bp.elems = 1 << 12;
        bp.hardBranches = 1;
        bp.sliceDepth = 2;
        bp.takenBias = 0.65;
        bp.intFiller = 9;
        bp.fpFiller = 10;
        bp.unroll = 192;
        wl::Workload big;
        big.name = "bigcode";
        big.program = wl::branchyProgram("bigcode", bp);

        std::fprintf(stderr, "ablation: bigcode base\n");
        pubs::sim::RunResult bigBase =
            runWorkload(big, sim::makeConfig(sim::Machine::Base));
        auto bigSpeedup = [&](const pubs::cpu::CoreParams &params) {
            return runWorkload(big, params).speedupOver(bigBase);
        };

        pubs::cpu::CoreParams hashed = sim::makeConfig(sim::Machine::Pubs);
        std::fprintf(stderr, "ablation: bigcode hashed\n");
        bigCode.addRow({"hashed q=8/4 (default)",
                        pct(bigSpeedup(hashed))});
        pubs::cpu::CoreParams full = hashed;
        full.pubs.fullTags = true;
        std::fprintf(stderr, "ablation: bigcode full tags\n");
        bigCode.addRow({"full tags", pct(bigSpeedup(full))});
        pubs::cpu::CoreParams tagless = hashed;
        tagless.pubs.tagless = true;
        std::fprintf(stderr, "ablation: bigcode tagless\n");
        bigCode.addRow({"tagless direct-mapped",
                        pct(bigSpeedup(tagless))});
        pubs::cpu::CoreParams smallTabs = hashed;
        smallTabs.pubs.brsliceSets = 64;
        smallTabs.pubs.confSets = 64;
        std::fprintf(stderr, "ablation: bigcode small tables\n");
        bigCode.addRow({"hashed, quarter-size tables",
                        pct(bigSpeedup(smallTabs))});
    }
    std::printf("ABLATION: table tagging under a ~6K-instruction "
                "footprint\n\n%s\n", bigCode.str().c_str());
    maybeWriteCsv("ablation_tags_bigcode", bigCode);

    // --- blind vs conf_tab under mixed branch confidence ---
    // The suite's hard branches are data-random, so nearly every slice
    // is unconfident and the blind model loses nothing. This kernel
    // adds a perfectly-predicted (confident) loop branch whose slice —
    // the whole index chain — floods the priority entries when every
    // branch is blindly treated as unconfident, recreating the
    // Fig. 11 blind-vs-PUBS gap in isolation.
    TextTable blind({"confidence source (mixed kernel)", "speedup",
                     "priority_stalls"});
    {
        wl::BranchyParams bp;
        bp.seed = 11;
        bp.elems = 1 << 12;
        bp.hardBranches = 1;
        bp.sliceDepth = 2;
        bp.takenBias = 0.65;
        bp.intFiller = 9;
        bp.fpFiller = 10;
        bp.condLoopBranch = true;
        wl::Workload mixed;
        mixed.name = "mixed_confidence";
        mixed.program = wl::branchyProgram("mixed_confidence", bp);

        std::fprintf(stderr, "ablation: mixed base\n");
        pubs::sim::RunResult mixedBase =
            runWorkload(mixed, sim::makeConfig(sim::Machine::Base));

        pubs::cpu::CoreParams withConf =
            sim::makeConfig(sim::Machine::Pubs);
        std::fprintf(stderr, "ablation: mixed conf_tab\n");
        pubs::sim::RunResult conf = runWorkload(mixed, withConf);
        blind.addRow({"conf_tab (6-bit resetting)",
                      pct(conf.speedupOver(mixedBase)),
                      std::to_string(conf.priorityStallCycles)});

        pubs::cpu::CoreParams blindCfg = withConf;
        blindCfg.pubs.useConfTab = false;
        std::fprintf(stderr, "ablation: mixed blind\n");
        pubs::sim::RunResult blindRun = runWorkload(mixed, blindCfg);
        blind.addRow({"blind (all branches unconfident)",
                      pct(blindRun.speedupOver(mixedBase)),
                      std::to_string(blindRun.priorityStallCycles)});
    }
    std::printf("ABLATION: blind vs conf_tab on a mixed-confidence "
                "kernel (Fig. 11's blind gap)\n\n%s\n",
                blind.str().c_str());
    maybeWriteCsv("ablation_blind", blind);

    // --- 1: confidence counter shape ---
    TextTable shapes({"counter_shape", "speedup", "unconfident_rate"});
    {
        for (auto shape : {pubs::pubs::CounterShape::Resetting,
                           pubs::pubs::CounterShape::UpDown}) {
            pubs::cpu::CoreParams params =
                sim::makeConfig(sim::Machine::Pubs);
            params.pubs.counterShape = shape;
            bool resetting =
                shape == pubs::pubs::CounterShape::Resetting;
            std::fprintf(stderr, "ablation: %s counters\n",
                         resetting ? "resetting" : "up/down");
            std::vector<double> ratios, rates;
            for (size_t i = 0; i < picks.size(); ++i) {
                pubs::sim::RunResult r = runWorkload(picks[i], params);
                ratios.push_back(r.speedupOver(base.results[i]));
                rates.push_back(r.unconfidentBranchRate);
            }
            shapes.addRow({resetting ? "resetting (JRS, paper)"
                                     : "up/down saturating",
                           pct(geoMeanRatio(ratios)),
                           num(pubs::arithmeticMean(rates), 2)});
        }
    }
    std::printf("ABLATION: confidence counter shape\n"
                "(the paper adopts resetting counters; up/down forgives "
                "isolated mispredictions)\n\n%s\n",
                shapes.str().c_str());
    maybeWriteCsv("ablation_counter_shape", shapes);

    // --- Section III-C variants ---
    TextTable variants({"variant", "speedup_vs_unified_base"});
    {
        std::fprintf(stderr, "ablation: PUBS (unified, partitioned)\n");
        variants.addRow({"PUBS (partitioned unified IQ)",
                         pct(geomeanSpeedup(
                             sim::makeConfig(sim::Machine::Pubs)))});

        pubs::cpu::CoreParams ideal = sim::makeConfig(sim::Machine::Pubs);
        ideal.pubs.priorityEntries = 0;
        ideal.idealPrioritySelect = true;
        std::fprintf(stderr, "ablation: ideal flexible select\n");
        variants.addRow({"ideal flexible-priority select (III-C1)",
                         pct(geomeanSpeedup(ideal))});

        pubs::cpu::CoreParams distBase =
            sim::makeConfig(sim::Machine::Base);
        distBase.distributedIq = true;
        std::fprintf(stderr, "ablation: distributed base\n");
        variants.addRow({"distributed IQ, no PUBS (III-C2)",
                         pct(geomeanSpeedup(distBase))});

        pubs::cpu::CoreParams distPubs =
            sim::makeConfig(sim::Machine::Pubs);
        distPubs.distributedIq = true;
        // Per-queue partitions are small, so the stall policy is too
        // blunt here; the distributed port uses non-stall dispatch.
        distPubs.pubs.stallPolicy = false;
        std::fprintf(stderr, "ablation: distributed PUBS\n");
        variants.addRow({"distributed IQ + PUBS (III-C2, non-stall)",
                         pct(geomeanSpeedup(distPubs))});
    }
    std::printf("ABLATION: Section III-C implementation variants\n"
                "(the ideal select bounds what partitioning "
                "approximates; PUBS applies to distributed IQs too)\n\n"
                "%s",
                variants.str().c_str());
    maybeWriteCsv("ablation_iii_c", variants);
    return 0;
}
