/**
 * @file
 * Ablations of PUBS design choices beyond the paper's own sweeps
 * (DESIGN.md section 5):
 *
 *  1. resetting vs up/down-saturating confidence counters — the paper
 *     asserts JRS resetting counters; we measure the difference by
 *     comparing counter widths' unconfident rates under both shapes
 *     (the up/down shape is approximated by a narrow resetting counter).
 *  2. tag-hash width q for the brslice_tab/conf_tab vs full tags —
 *     Section IV claims q=8/4 "hardly degrade the performance".
 *  3. set-associative vs tagless tables — the paper's "preliminary
 *     evaluation" preferred set-associative.
 *  4. legacy IQ organisations (shifting / circular) vs the random queue
 *     — quantifies the Section III-B1 taxonomy.
 *
 * Every configuration below is known up front, so the whole ablation is
 * submitted as ONE sweep batch; each section then reads its runs back
 * by the indices SweepSpec::add returned.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace pubs::bench;
namespace sim = pubs::sim;
namespace wl = pubs::wl;

/** Indices of one labelled variant run over a workload list. */
struct Variant
{
    std::string label;
    std::vector<size_t> runs; ///< sweep indices, workload-aligned
};

/** Queue @p params over @p workloads; remember the indices. */
Variant
addVariant(SweepSpec &spec, const std::vector<wl::Workload> &workloads,
           const pubs::cpu::CoreParams &params, const std::string &label)
{
    Variant v{label, {}};
    for (const auto &workload : workloads)
        v.runs.push_back(spec.add(workload, params, label));
    return v;
}

/** Geomean speedup of a variant over base runs at @p baseRuns. */
double
geomeanSpeedup(const SweepResult &sweep, const Variant &variant,
               const std::vector<size_t> &baseRuns)
{
    std::vector<double> ratios;
    for (size_t k = 0; k < variant.runs.size(); ++k) {
        if (!sweep.ok(variant.runs[k]) || !sweep.ok(baseRuns[k]))
            continue;
        ratios.push_back(sweep.at(variant.runs[k])
                             .speedupOver(sweep.at(baseRuns[k])));
    }
    return geoMeanRatio(ratios);
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);

    // A representative D-BP pair keeps this ablation bench fast.
    std::vector<wl::Workload> picks;
    picks.push_back(wl::makeWorkload("sjeng_like"));
    picks.push_back(wl::makeWorkload("gobmk_like"));
    std::vector<wl::Workload> sjengOnly{picks[0]};
    std::vector<wl::Workload> mcfOnly{wl::makeWorkload("mcf_like")};

    SweepSpec spec;
    Variant base =
        addVariant(spec, picks, sim::makeConfig(sim::Machine::Base),
                   "base");

    // --- 2/3: tag handling ---
    pubs::cpu::CoreParams hashed = sim::makeConfig(sim::Machine::Pubs);
    Variant tagHashed = addVariant(spec, picks, hashed, "hashed q=8/4");
    pubs::cpu::CoreParams fullCfg = hashed;
    fullCfg.pubs.fullTags = true;
    Variant tagFull = addVariant(spec, picks, fullCfg, "full tags");
    pubs::cpu::CoreParams narrow = hashed;
    narrow.pubs.brsliceHashBits = 4;
    narrow.pubs.confHashBits = 2;
    Variant tagNarrow = addVariant(spec, picks, narrow, "hashed q=4/2");
    pubs::cpu::CoreParams taglessCfg = hashed;
    taglessCfg.pubs.tagless = true;
    Variant tagless = addVariant(spec, picks, taglessCfg, "tagless");

    // --- 4: IQ organisations (no PUBS) ---
    std::vector<Variant> iqVariants;
    for (auto kind : {pubs::iq::IqKind::Shifting,
                      pubs::iq::IqKind::Circular}) {
        pubs::cpu::CoreParams params = sim::makeConfig(sim::Machine::Base);
        params.iqKind = kind;
        iqVariants.push_back(
            addVariant(spec, picks, params, pubs::iq::iqKindName(kind)));
    }
    iqVariants.push_back(addVariant(spec, picks,
                                    sim::makeConfig(sim::Machine::Age),
                                    "random + age matrix"));

    // --- mode-switch thresholds ---
    Variant mcfBase =
        addVariant(spec, mcfOnly, sim::makeConfig(sim::Machine::Base),
                   "base");
    struct ThresholdPoint
    {
        double threshold;
        Variant sjeng, mcf;
    };
    std::vector<ThresholdPoint> thresholdPoints;
    for (double threshold : {0.5, 1.0, 4.0, 1e9}) {
        pubs::cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
        params.pubs.modeMpkiThreshold = threshold;
        std::string label =
            "pubs/thresh=" + num(threshold > 1e6 ? -1.0 : threshold, 1);
        thresholdPoints.push_back(
            {threshold, addVariant(spec, sjengOnly, params, label),
             addVariant(spec, mcfOnly, params, label)});
    }

    // --- tag handling under a large static code footprint ---
    // The suite's kernels are tiny loops, so the PC-indexed tables see
    // almost no capacity or aliasing pressure. A 192x-unrolled kernel
    // (~6K static instructions, ~200 static hard branches) stresses the
    // brslice_tab/conf_tab the way big-code programs do.
    wl::BranchyParams bigBp;
    bigBp.seed = 7;
    bigBp.elems = 1 << 12;
    bigBp.hardBranches = 1;
    bigBp.sliceDepth = 2;
    bigBp.takenBias = 0.65;
    bigBp.intFiller = 9;
    bigBp.fpFiller = 10;
    bigBp.unroll = 192;
    wl::Workload big;
    big.name = "bigcode";
    big.program = wl::branchyProgram("bigcode", bigBp);
    std::vector<wl::Workload> bigOnly{big};

    Variant bigBase =
        addVariant(spec, bigOnly, sim::makeConfig(sim::Machine::Base),
                   "base");
    Variant bigHashed = addVariant(spec, bigOnly, hashed, "hashed q=8/4");
    Variant bigFull = addVariant(spec, bigOnly, fullCfg, "full tags");
    Variant bigTagless = addVariant(spec, bigOnly, taglessCfg, "tagless");
    pubs::cpu::CoreParams smallTabs = hashed;
    smallTabs.pubs.brsliceSets = 64;
    smallTabs.pubs.confSets = 64;
    Variant bigSmallTabs =
        addVariant(spec, bigOnly, smallTabs, "quarter-size tables");

    // --- blind vs conf_tab under mixed branch confidence ---
    // The suite's hard branches are data-random, so nearly every slice
    // is unconfident and the blind model loses nothing. This kernel
    // adds a perfectly-predicted (confident) loop branch whose slice —
    // the whole index chain — floods the priority entries when every
    // branch is blindly treated as unconfident, recreating the
    // Fig. 11 blind-vs-PUBS gap in isolation.
    wl::BranchyParams mixedBp;
    mixedBp.seed = 11;
    mixedBp.elems = 1 << 12;
    mixedBp.hardBranches = 1;
    mixedBp.sliceDepth = 2;
    mixedBp.takenBias = 0.65;
    mixedBp.intFiller = 9;
    mixedBp.fpFiller = 10;
    mixedBp.condLoopBranch = true;
    wl::Workload mixed;
    mixed.name = "mixed_confidence";
    mixed.program = wl::branchyProgram("mixed_confidence", mixedBp);
    std::vector<wl::Workload> mixedOnly{mixed};

    Variant mixedBase =
        addVariant(spec, mixedOnly, sim::makeConfig(sim::Machine::Base),
                   "base");
    Variant mixedConf = addVariant(spec, mixedOnly,
                                   sim::makeConfig(sim::Machine::Pubs),
                                   "conf_tab");
    pubs::cpu::CoreParams blindCfg = sim::makeConfig(sim::Machine::Pubs);
    blindCfg.pubs.useConfTab = false;
    Variant mixedBlind = addVariant(spec, mixedOnly, blindCfg, "blind");

    // --- 1: confidence counter shape ---
    std::vector<Variant> shapeVariants;
    std::vector<bool> shapeResetting;
    for (auto shape : {pubs::pubs::CounterShape::Resetting,
                       pubs::pubs::CounterShape::UpDown}) {
        pubs::cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
        params.pubs.counterShape = shape;
        bool resetting = shape == pubs::pubs::CounterShape::Resetting;
        shapeResetting.push_back(resetting);
        shapeVariants.push_back(addVariant(
            spec, picks, params, resetting ? "resetting" : "up/down"));
    }

    // --- Section III-C variants ---
    Variant vPubs = addVariant(spec, picks,
                               sim::makeConfig(sim::Machine::Pubs),
                               "PUBS (partitioned unified IQ)");
    pubs::cpu::CoreParams ideal = sim::makeConfig(sim::Machine::Pubs);
    ideal.pubs.priorityEntries = 0;
    ideal.idealPrioritySelect = true;
    Variant vIdeal = addVariant(spec, picks, ideal,
                                "ideal flexible-priority select (III-C1)");
    pubs::cpu::CoreParams distBase = sim::makeConfig(sim::Machine::Base);
    distBase.distributedIq = true;
    Variant vDistBase = addVariant(spec, picks, distBase,
                                   "distributed IQ, no PUBS (III-C2)");
    pubs::cpu::CoreParams distPubs = sim::makeConfig(sim::Machine::Pubs);
    distPubs.distributedIq = true;
    // Per-queue partitions are small, so the stall policy is too blunt
    // here; the distributed port uses non-stall dispatch.
    distPubs.pubs.stallPolicy = false;
    Variant vDistPubs =
        addVariant(spec, picks, distPubs,
                   "distributed IQ + PUBS (III-C2, non-stall)");

    // Run everything at once.
    std::fprintf(stderr, "ablation: %zu runs in one batch\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    // --- report: tag handling ---
    TextTable tags({"tables", "speedup"});
    tags.addRow({"hashed q=8/4 (default)",
                 pct(geomeanSpeedup(sweep, tagHashed, base.runs))});
    tags.addRow({"full tags",
                 pct(geomeanSpeedup(sweep, tagFull, base.runs))});
    tags.addRow({"hashed q=4/2",
                 pct(geomeanSpeedup(sweep, tagNarrow, base.runs))});
    tags.addRow({"tagless direct-mapped",
                 pct(geomeanSpeedup(sweep, tagless, base.runs))});
    std::printf("ABLATION: table tagging (Section IV claims hashing is "
                "nearly free)\n\n%s\n", tags.str().c_str());
    maybeWriteCsv("ablation_tags", tags);

    // --- report: IQ organisations ---
    TextTable iqKinds({"iq_organisation", "ipc_vs_random"});
    for (const Variant &variant : iqVariants) {
        iqKinds.addRow({variant.label,
                        pct(geomeanSpeedup(sweep, variant, base.runs))});
    }
    std::printf("ABLATION: IQ organisation IPC vs the random queue "
                "(Section III-B1 taxonomy)\n\n%s\n",
                iqKinds.str().c_str());
    maybeWriteCsv("ablation_iq_kind", iqKinds);

    // --- report: mode-switch thresholds ---
    TextTable thresholds({"llc_mpki_threshold", "speedup(sjeng)",
                          "speedup(mcf)"});
    for (const ThresholdPoint &point : thresholdPoints) {
        thresholds.addRow(
            {point.threshold > 1e6 ? "inf (never disable)"
                                   : num(point.threshold, 1),
             pct(geomeanSpeedup(sweep, point.sjeng, {base.runs[0]})),
             pct(geomeanSpeedup(sweep, point.mcf, mcfBase.runs))});
    }
    std::printf("ABLATION: mode-switch LLC MPKI threshold\n\n%s\n",
                thresholds.str().c_str());
    maybeWriteCsv("ablation_mode_threshold", thresholds);

    // --- report: big-code tag handling ---
    TextTable bigCode({"tables (large footprint)", "speedup"});
    bigCode.addRow({"hashed q=8/4 (default)",
                    pct(geomeanSpeedup(sweep, bigHashed, bigBase.runs))});
    bigCode.addRow({"full tags",
                    pct(geomeanSpeedup(sweep, bigFull, bigBase.runs))});
    bigCode.addRow({"tagless direct-mapped",
                    pct(geomeanSpeedup(sweep, bigTagless, bigBase.runs))});
    bigCode.addRow({"hashed, quarter-size tables",
                    pct(geomeanSpeedup(sweep, bigSmallTabs,
                                       bigBase.runs))});
    std::printf("ABLATION: table tagging under a ~6K-instruction "
                "footprint\n\n%s\n", bigCode.str().c_str());
    maybeWriteCsv("ablation_tags_bigcode", bigCode);

    // --- report: blind vs conf_tab ---
    TextTable blind({"confidence source (mixed kernel)", "speedup",
                     "priority_stalls"});
    blind.addRow({"conf_tab (6-bit resetting)",
                  pct(geomeanSpeedup(sweep, mixedConf, mixedBase.runs)),
                  std::to_string(
                      sweep.at(mixedConf.runs[0]).priorityStallCycles)});
    blind.addRow({"blind (all branches unconfident)",
                  pct(geomeanSpeedup(sweep, mixedBlind, mixedBase.runs)),
                  std::to_string(
                      sweep.at(mixedBlind.runs[0]).priorityStallCycles)});
    std::printf("ABLATION: blind vs conf_tab on a mixed-confidence "
                "kernel (Fig. 11's blind gap)\n\n%s\n",
                blind.str().c_str());
    maybeWriteCsv("ablation_blind", blind);

    // --- report: confidence counter shape ---
    TextTable shapes({"counter_shape", "speedup", "unconfident_rate"});
    for (size_t v = 0; v < shapeVariants.size(); ++v) {
        std::vector<double> rates;
        for (size_t run : shapeVariants[v].runs)
            if (sweep.ok(run))
                rates.push_back(sweep.at(run).unconfidentBranchRate);
        shapes.addRow({shapeResetting[v] ? "resetting (JRS, paper)"
                                         : "up/down saturating",
                       pct(geomeanSpeedup(sweep, shapeVariants[v],
                                          base.runs)),
                       num(pubs::arithmeticMean(rates), 2)});
    }
    std::printf("ABLATION: confidence counter shape\n"
                "(the paper adopts resetting counters; up/down forgives "
                "isolated mispredictions)\n\n%s\n",
                shapes.str().c_str());
    maybeWriteCsv("ablation_counter_shape", shapes);

    // --- report: Section III-C variants ---
    TextTable variants({"variant", "speedup_vs_unified_base"});
    for (const Variant *variant : {&vPubs, &vIdeal, &vDistBase,
                                   &vDistPubs}) {
        variants.addRow({variant->label,
                         pct(geomeanSpeedup(sweep, *variant,
                                            base.runs))});
    }
    std::printf("ABLATION: Section III-C implementation variants\n"
                "(the ideal select bounds what partitioning "
                "approximates; PUBS applies to distributed IQs too)\n\n"
                "%s",
                variants.str().c_str());
    maybeWriteCsv("ablation_iii_c", variants);
    return 0;
}
