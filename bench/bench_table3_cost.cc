/**
 * @file
 * Table III: the PUBS hardware cost breakdown (def_tab, brslice_tab,
 * conf_tab) at the default configuration, plus the cost impact of the
 * Section IV design choices (tag hashing, associativity, counter width).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "pubs/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace pp = pubs::pubs;

    parseBenchArgs(argc, argv);

    pp::PubsParams defaults;
    std::printf("%s\n", pp::formatCostTable(defaults).c_str());

    TextTable table({"variant", "def_tab_KB", "brslice_KB", "conf_KB",
                     "total_KB"});
    auto row = [&table](const char *name, const pp::PubsParams &p) {
        pp::CostBreakdown cost = pp::computeCost(p);
        table.addRow({name, num(cost.defTabKB()), num(cost.brsliceTabKB()),
                      num(cost.confTabKB()), num(cost.totalKB())});
    };

    row("default (hashed q=8/4)", defaults);

    pp::PubsParams full = defaults;
    full.fullTags = true;
    row("full tags (no hashing)", full);

    pp::PubsParams tagless = defaults;
    tagless.tagless = true;
    row("tagless direct-mapped", tagless);

    for (unsigned bits : {2u, 4u, 8u}) {
        pp::PubsParams p = defaults;
        p.confCounterBits = bits;
        std::string name = std::to_string(bits) + "-bit counters";
        row(name.c_str(), p);
    }

    std::printf("cost sensitivity (Section IV design points)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("table3_cost", table);
    return 0;
}
