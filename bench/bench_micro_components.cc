/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * predictor lookup/update, PUBS table operations, IQ dispatch/select
 * structures, cache accesses, and whole-pipeline simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "branch/perceptron.hh"
#include "common/bench_util.hh"
#include "common/rng.hh"
#include "emu/emulator.hh"
#include "cpu/pipeline.hh"
#include "iq/age_matrix.hh"
#include "iq/random_queue.hh"
#include "mem/cache.hh"
#include "pubs/slice_unit.hh"
#include "sim/config.hh"
#include "sim/run_pool.hh"
#include "workloads/suite.hh"

namespace
{

using namespace pubs;

void
BM_PerceptronPredictUpdate(benchmark::State &state)
{
    branch::Perceptron pred(34, 256);
    Rng rng(1);
    Pc pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        pc = 0x1000 + (rng.next() & 0xff) * 4;
    }
}
BENCHMARK(BM_PerceptronPredictUpdate);

void
BM_SliceUnitDecode(benchmark::State &state)
{
    ::pubs::pubs::SliceUnit unit({});
    trace::DynInst alu;
    alu.pc = 0x1000;
    alu.op = isa::Opcode::Add;
    alu.dst = 3;
    alu.src1 = 4;
    alu.src2 = 5;
    trace::DynInst br;
    br.pc = 0x1004;
    br.op = isa::Opcode::Blt;
    br.src1 = 3;
    br.src2 = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.decode(alu));
        benchmark::DoNotOptimize(unit.decode(br));
    }
}
BENCHMARK(BM_SliceUnitDecode);

void
BM_RandomQueueDispatchRemove(benchmark::State &state)
{
    iq::RandomQueue queue(64, 6, 1);
    Rng rng(2);
    uint32_t id = 0;
    std::vector<uint32_t> live;
    for (auto _ : state) {
        if (live.size() < 48 && queue.canDispatch(false)) {
            queue.dispatch(id, id, false);
            live.push_back(id++);
        } else {
            size_t pick = (size_t)rng.below(live.size());
            queue.remove(live[pick]);
            live.erase(live.begin() + (long)pick);
        }
    }
}
BENCHMARK(BM_RandomQueueDispatchRemove);

void
BM_AgeMatrixOldestReady(benchmark::State &state)
{
    iq::AgeMatrix age(64);
    for (unsigned s = 0; s < 48; ++s)
        age.dispatch(s);
    std::vector<uint64_t> ready{0x0f0f0f0f0f0full};
    for (auto _ : state)
        benchmark::DoNotOptimize(age.oldestReady(ready));
}
BENCHMARK(BM_AgeMatrixOldestReady);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::MainMemory dram(300, 8, 64);
    mem::CacheParams params;
    params.sizeBytes = 32 * 1024;
    mem::Cache cache(params, &dram);
    Rng rng(3);
    Cycle t = 0;
    for (auto _ : state) {
        bool hit;
        Addr addr = (rng.next() & 0xffff);
        benchmark::DoNotOptimize(cache.access(addr, false, t += 2, hit));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_EmulatorStep(benchmark::State &state)
{
    static wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    trace::DynInst di;
    for (auto _ : state)
        benchmark::DoNotOptimize(emu.step(di));
}
BENCHMARK(BM_EmulatorStep);

void
BM_PipelineSimulation(benchmark::State &state)
{
    // Items processed = simulated instructions per wall second.
    static wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    cpu::Pipeline pipe(sim::makeConfig(sim::Machine::Pubs), emu);
    for (auto _ : state)
        pipe.run(1000);
    state.SetItemsProcessed((int64_t)pipe.stats().committed);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_RunPoolNoopTasks(benchmark::State &state)
{
    // Pure scheduling overhead: submit/steal/complete with empty tasks.
    sim::RunPool pool((unsigned)state.range(0));
    constexpr int batch = 256;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i)
            pool.submit([] {});
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RunPoolNoopTasks)->Arg(1)->Arg(4);

void
BM_ParallelSweep(benchmark::State &state)
{
    // Whole-batch simulation throughput through the sweep engine; the
    // argument is the job count, so 1 vs N shows run-level scaling.
    static wl::Workload sjeng = wl::makeWorkload("sjeng_like");
    static wl::Workload gobmk = wl::makeWorkload("gobmk_like");
    uint64_t committed = 0;
    for (auto _ : state) {
        bench::SweepSpec spec;
        spec.jobs = (unsigned)state.range(0);
        spec.warmup = 1000;
        spec.insts = 20000;
        spec.verbose = false;
        for (const auto *w : {&sjeng, &gobmk}) {
            spec.add(*w, sim::makeConfig(sim::Machine::Base), "base");
            spec.add(*w, sim::makeConfig(sim::Machine::Pubs), "pubs");
        }
        bench::SweepResult sweep = bench::runSweep(spec);
        for (const auto &row : sweep.rows)
            committed += row.result.instructions;
    }
    state.SetItemsProcessed((int64_t)committed);
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
