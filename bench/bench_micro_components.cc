/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * predictor lookup/update, PUBS table operations, IQ dispatch/select
 * structures, cache accesses, and whole-pipeline simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <sstream>

#include "branch/perceptron.hh"
#include "common/atomic_file.hh"
#include "common/bench_util.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/slab.hh"
#include "emu/emulator.hh"
#include "cpu/event_wheel.hh"
#include "cpu/pipeline.hh"
#include "iq/age_matrix.hh"
#include "iq/random_queue.hh"
#include "mem/cache.hh"
#include "pubs/slice_unit.hh"
#include "sim/config.hh"
#include "sim/run_pool.hh"
#include "workloads/suite.hh"

namespace
{

using namespace pubs;

void
BM_PerceptronPredictUpdate(benchmark::State &state)
{
    branch::Perceptron pred(34, 256);
    Rng rng(1);
    Pc pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(pred.predict(pc));
        pred.update(pc, taken);
        pc = 0x1000 + (rng.next() & 0xff) * 4;
    }
}
BENCHMARK(BM_PerceptronPredictUpdate);

void
BM_PerceptronDotScalar(benchmark::State &state)
{
    int16_t w[64];
    Rng rng(7);
    for (int i = 0; i < 64; ++i)
        w[i] = (int16_t)((int)rng.below(256) - 128);
    uint64_t history = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simd::perceptronDotScalar(w, 34, history));
        history = history * 6364136223846793005ull + 1442695040888963407ull;
    }
}
BENCHMARK(BM_PerceptronDotScalar);

#if PUBS_SIMD_COMPILED
void
BM_PerceptronDotSimd(benchmark::State &state)
{
    int16_t w[64];
    Rng rng(7);
    for (int i = 0; i < 64; ++i)
        w[i] = (int16_t)((int)rng.below(256) - 128);
    uint64_t history = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(simd::perceptronDotSimd(w, 34, history));
        history = history * 6364136223846793005ull + 1442695040888963407ull;
    }
}
BENCHMARK(BM_PerceptronDotSimd);
#endif

void
BM_CacheTagProbeScalar(benchmark::State &state)
{
    // An 8-way set with unique tags; alternate hits and misses like a
    // warm L1 probe stream.
    uint64_t tags[8];
    for (unsigned wy = 0; wy < 8; ++wy)
        tags[wy] = 0x100 + wy;
    uint64_t probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simd::tagProbeScalar(tags, 0xffu, 8, 0x100 + (probe & 0xf)));
        ++probe;
    }
}
BENCHMARK(BM_CacheTagProbeScalar);

#if PUBS_SIMD_COMPILED
void
BM_CacheTagProbeSimd(benchmark::State &state)
{
    uint64_t tags[8];
    for (unsigned wy = 0; wy < 8; ++wy)
        tags[wy] = 0x100 + wy;
    uint64_t probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simd::tagProbeSimd(tags, 0xffu, 8, 0x100 + (probe & 0xf)));
        ++probe;
    }
}
BENCHMARK(BM_CacheTagProbeSimd);
#endif

void
BM_SliceUnitDecode(benchmark::State &state)
{
    ::pubs::pubs::SliceUnit unit({});
    trace::DynInst alu;
    alu.pc = 0x1000;
    alu.op = isa::Opcode::Add;
    alu.dst = 3;
    alu.src1 = 4;
    alu.src2 = 5;
    trace::DynInst br;
    br.pc = 0x1004;
    br.op = isa::Opcode::Blt;
    br.src1 = 3;
    br.src2 = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.decode(alu));
        benchmark::DoNotOptimize(unit.decode(br));
    }
}
BENCHMARK(BM_SliceUnitDecode);

void
BM_RandomQueueDispatchRemove(benchmark::State &state)
{
    iq::RandomQueue queue(64, 6, 1);
    Rng rng(2);
    uint32_t id = 0;
    std::vector<uint32_t> live;
    for (auto _ : state) {
        if (live.size() < 48 && queue.canDispatch(false)) {
            queue.dispatch(id, id, false);
            live.push_back(id++);
        } else {
            size_t pick = (size_t)rng.below(live.size());
            queue.remove(live[pick]);
            live.erase(live.begin() + (long)pick);
        }
    }
}
BENCHMARK(BM_RandomQueueDispatchRemove);

void
BM_AgeMatrixOldestReady(benchmark::State &state)
{
    iq::AgeMatrix age(64);
    for (unsigned s = 0; s < 48; ++s)
        age.dispatch(s);
    std::vector<uint64_t> ready{0x0f0f0f0f0f0full};
    for (auto _ : state)
        benchmark::DoNotOptimize(age.oldestReady(ready));
}
BENCHMARK(BM_AgeMatrixOldestReady);

void
BM_EventWheelScheduleDrain(benchmark::State &state)
{
    // The wakeup path: schedule completion events a few cycles out,
    // advance the clock, drain. Mimics the pipeline's per-cycle wheel
    // traffic (a handful of operand-ready events per cycle).
    cpu::EventWheel wheel(1024);
    Rng rng(4);
    Cycle now = 0;
    uint64_t fired = 0;
    for (auto _ : state) {
        ++now;
        for (int i = 0; i < 4; ++i) {
            wheel.schedule(now + 1 + rng.below(12),
                           cpu::EventWheel::Kind::OperandReady,
                           (uint32_t)rng.below(192), now, now);
        }
        wheel.drain(now, [&](const cpu::EventWheel::Event &) { ++fired; });
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed((int64_t)fired);
}
BENCHMARK(BM_EventWheelScheduleDrain);

void
BM_SelectBitmapScan(benchmark::State &state)
{
    // The new select loop: ctz-walk the ready bitmap words of a 64-entry
    // queue with a typical sparse ready population.
    iq::RandomQueue queue(64, 6, 1);
    Rng rng(5);
    for (uint32_t id = 0; id < 48; ++id)
        queue.dispatch(id, id, false);
    for (uint32_t id = 0; id < 48; id += 7)
        queue.markReady(id);
    uint64_t picked = 0;
    for (auto _ : state) {
        const auto &words = queue.readyWords();
        for (size_t w = 0; w < words.size(); ++w) {
            uint64_t word = words[w];
            while (word != 0) {
                picked += w * 64 + countTrailingZeros(word);
                word &= word - 1;
            }
        }
    }
    benchmark::DoNotOptimize(picked);
}
BENCHMARK(BM_SelectBitmapScan);

void
BM_SelectFullScan(benchmark::State &state)
{
    // The old select loop for comparison: visit every slot and test it.
    iq::RandomQueue queue(64, 6, 1);
    Rng rng(5);
    for (uint32_t id = 0; id < 48; ++id)
        queue.dispatch(id, id, false);
    std::vector<bool> ready(64, false);
    for (uint32_t id = 0; id < 48; id += 7)
        ready[queue.slotOf(id)] = true;
    uint64_t picked = 0;
    for (auto _ : state) {
        const auto &slots = queue.prioritySlots();
        for (size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].valid && ready[s])
                picked += s;
        }
    }
    benchmark::DoNotOptimize(picked);
}
BENCHMARK(BM_SelectFullScan);

void
BM_SlabDependentChain(benchmark::State &state)
{
    // Scoreboard dependent-overflow traffic: grow a chain of fanout
    // nodes, walk it, free it — the allocation pattern of a producer
    // with more consumers than the inline array holds.
    struct Node
    {
        std::array<uint32_t, 6> ids{};
        uint8_t n = 0;
        uint32_t next = SlabPool<Node>::npos;
    };
    SlabPool<Node> pool;
    uint64_t walked = 0;
    for (auto _ : state) {
        uint32_t head = SlabPool<Node>::npos;
        for (int i = 0; i < 4; ++i) {
            uint32_t node = pool.alloc();
            pool.at(node).n = 6;
            pool.at(node).next = head;
            head = node;
        }
        for (uint32_t node = head; node != SlabPool<Node>::npos;) {
            walked += pool.at(node).n;
            uint32_t next = pool.at(node).next;
            pool.free(node);
            node = next;
        }
    }
    benchmark::DoNotOptimize(walked);
}
BENCHMARK(BM_SlabDependentChain);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::MainMemory dram(300, 8, 64);
    mem::CacheParams params;
    params.sizeBytes = 32 * 1024;
    mem::Cache cache(params, &dram);
    Rng rng(3);
    Cycle t = 0;
    for (auto _ : state) {
        bool hit;
        Addr addr = (rng.next() & 0xffff);
        benchmark::DoNotOptimize(cache.access(addr, false, t += 2, hit));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_EmulatorStep(benchmark::State &state)
{
    static wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    trace::DynInst di;
    for (auto _ : state)
        benchmark::DoNotOptimize(emu.step(di));
}
BENCHMARK(BM_EmulatorStep);

void
BM_PipelineSimulation(benchmark::State &state)
{
    // Items processed = simulated instructions per wall second.
    static wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    cpu::Pipeline pipe(sim::makeConfig(sim::Machine::Pubs), emu);
    for (auto _ : state)
        pipe.run(1000);
    state.SetItemsProcessed((int64_t)pipe.stats().committed);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_RunPoolNoopTasks(benchmark::State &state)
{
    // Pure scheduling overhead: submit/steal/complete with empty tasks.
    sim::RunPool pool((unsigned)state.range(0));
    constexpr int batch = 256;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i)
            pool.submit([] {});
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RunPoolNoopTasks)->Arg(1)->Arg(4);

void
BM_ParallelSweep(benchmark::State &state)
{
    // Whole-batch simulation throughput through the sweep engine; the
    // argument is the job count, so 1 vs N shows run-level scaling.
    static wl::Workload sjeng = wl::makeWorkload("sjeng_like");
    static wl::Workload gobmk = wl::makeWorkload("gobmk_like");
    uint64_t committed = 0;
    for (auto _ : state) {
        bench::SweepSpec spec;
        spec.jobs = (unsigned)state.range(0);
        spec.warmup = 1000;
        spec.insts = 20000;
        spec.verbose = false;
        for (const auto *w : {&sjeng, &gobmk}) {
            spec.add(*w, sim::makeConfig(sim::Machine::Base), "base");
            spec.add(*w, sim::makeConfig(sim::Machine::Pubs), "pubs");
        }
        bench::SweepResult sweep = bench::runSweep(spec);
        for (const auto &row : sweep.rows)
            committed += row.result.instructions;
    }
    state.SetItemsProcessed((int64_t)committed);
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/** Nanoseconds per call of @p fn over a fixed iteration budget. */
template <typename F>
double
kernelNsPerOp(F &&fn)
{
    constexpr int warmup = 100000;
    constexpr int iters = 2000000;
    for (int i = 0; i < warmup; ++i)
        fn(i);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn(i);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           iters;
}

/**
 * Scalar-vs-SIMD timing columns for the two vectorised kernels
 * (common/simd.hh), timed through the production dispatchers with the
 * runtime kill switch toggled — so the numbers reflect what the
 * simulator actually executes, dispatch overhead included. In a build
 * without compiled vector paths both columns time the scalar fallback
 * and the speedup hovers at 1.0.
 */
std::string
kernelTimingsJson()
{
    Rng rng(11);
    int16_t weights[64];
    for (int i = 0; i < 64; ++i)
        weights[i] = (int16_t)((int)rng.below(256) - 128);
    uint64_t histories[256];
    for (int i = 0; i < 256; ++i)
        histories[i] = rng.next();
    uint64_t tags[8];
    for (unsigned wy = 0; wy < 8; ++wy)
        tags[wy] = 0x100 + wy;

    auto timeBoth = [&](auto &&fn, double &scalarNs, double &simdNs) {
        bool saved = simd::scalarForced();
        simd::scalarForced() = true;
        scalarNs = kernelNsPerOp(fn);
        simd::scalarForced() = false;
        simdNs = kernelNsPerOp(fn);
        simd::scalarForced() = saved;
    };
    double dotScalar, dotSimd, probeScalar, probeSimd;
    timeBoth(
        [&](int i) {
            benchmark::DoNotOptimize(
                simd::perceptronDot(weights, 34, histories[i & 255]));
        },
        dotScalar, dotSimd);
    timeBoth(
        [&](int i) {
            benchmark::DoNotOptimize(simd::tagProbe(
                tags, 0xffu, 8, 0x100 + ((uint64_t)i & 0xf)));
        },
        probeScalar, probeSimd);

    std::ostringstream out;
    char buf[256];
    out << "  \"simd_compiled\": " << (simd::compiled() ? "true" : "false")
        << ",\n";
    out << "  \"kernels\": [\n";
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"perceptron_dot\", \"scalar_ns\": %.3f, "
                  "\"simd_ns\": %.3f, \"speedup\": %.2f},\n",
                  dotScalar, dotSimd, dotScalar / dotSimd);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"cache_tag_probe\", \"scalar_ns\": %.3f, "
                  "\"simd_ns\": %.3f, \"speedup\": %.2f}\n",
                  probeScalar, probeSimd, probeScalar / probeSimd);
    out << buf;
    out << "  ],\n";
    std::fprintf(stderr,
                 "hostspeed: perceptron_dot %.2f -> %.2f ns (%.2fx), "
                 "cache_tag_probe %.2f -> %.2f ns (%.2fx)\n",
                 dotScalar, dotSimd, dotScalar / dotSimd, probeScalar,
                 probeSimd, probeScalar / probeSimd);
    return out.str();
}

/**
 * Run the fig8-style sweep (whole suite x base+PUBS machines) and write
 * a host-speed record: per-run KIPS plus the geometric mean, with the
 * instruction budgets that produced them. Wall-clock fields are
 * inherently host-dependent, so this file is a measurement artifact,
 * not part of the determinism contract.
 */
int
writeHostspeed(const char *path)
{
    using namespace ::pubs::bench;
    namespace sim = ::pubs::sim;
    namespace wl = ::pubs::wl;

    auto suite = wl::makeSuite();
    SweepSpec spec;
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Base), "base");
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Pubs), "pubs");
    std::fprintf(stderr, "hostspeed: %zu runs (base + PUBS)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"fig8_hostspeed\",\n";
    out << "  \"measure_insts\": " << measureInsts() << ",\n";
    out << "  \"warmup_insts\": " << warmupInsts() << ",\n";
    out << "  \"jobs\": " << sweep.jobs << ",\n";
    out << kernelTimingsJson();
    out << "  \"runs\": [\n";
    std::vector<double> allKips;
    bool first = true;
    for (size_t i = 0; i < spec.items.size(); ++i) {
        if (!sweep.ok(i))
            continue;
        const sim::RunResult &r = sweep.at(i);
        if (!first)
            out << ",\n";
        first = false;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"workload\": \"%s\", \"machine\": \"%s\", "
                      "\"instructions\": %llu, \"cycles\": %llu, "
                      "\"sim_seconds\": %.6f, \"kips\": %.2f}",
                      spec.items[i].workload.name.c_str(),
                      spec.items[i].machine.c_str(),
                      (unsigned long long)r.instructions,
                      (unsigned long long)r.cycles, r.simSeconds,
                      r.kips());
        out << buf;
        if (r.kips() > 0.0)
            allKips.push_back(r.kips());
    }
    out << "\n  ],\n";
    char geo[64];
    std::snprintf(geo, sizeof(geo), "%.2f", geoMeanRatio(allKips));
    out << "  \"geomean_kips\": " << geo << ",\n";
    out << "  \"failed_runs\": " << sweep.failed() << "\n";
    out << "}\n";
    // Atomic publish: the file either has the old contents or the whole
    // new report, never a truncated mix.
    std::string error = ::pubs::atomicWriteFile(path, out.str());
    if (!error.empty()) {
        std::fprintf(stderr, "hostspeed: cannot write %s: %s\n", path,
                     error.c_str());
        return 1;
    }
    std::fprintf(stderr, "hostspeed: geomean %s KIPS over %zu runs -> %s\n",
                 geo, allKips.size(), path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // `--hostspeed <file.json>` switches from the google-benchmark
    // microbenchmarks to the whole-simulator host-speed sweep. The
    // remaining flags go to the respective harness (--jobs N here,
    // --benchmark_* to google-benchmark).
    const char *hostspeedPath = nullptr;
    std::vector<char *> rest;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--hostspeed") == 0 && i + 1 < argc) {
            hostspeedPath = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            ::pubs::bench::setBenchJobs(
                (unsigned)std::strtoul(argv[++i], nullptr, 10));
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (hostspeedPath)
        return writeHostspeed(hostspeedPath);

    int restArgc = (int)rest.size();
    benchmark::Initialize(&restArgc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
