/**
 * @file
 * Figure 11: average D-BP speedup (bars) and unconfident-branch rate
 * (line) when varying the confidence counter width from 2 to 8 bits,
 * plus the "blind" model (every branch deemed unconfident, no conf_tab).
 * Paper: rate grows with width; optimum 6 bits at ~71% unconfident;
 * blind is worse than PUBS with the conf_tab.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig11: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base));

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    TextTable table({"conf_bits", "speedup", "unconfident_rate"});

    auto sweep = [&](const char *label, unsigned bits, bool useConfTab) {
        pubs::cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
        params.pubs.useConfTab = useConfTab;
        if (useConfTab)
            params.pubs.confCounterBits = bits;
        std::fprintf(stderr, "fig11: %s\n", label);
        std::vector<double> speedups, rates;
        for (size_t i : dbp) {
            pubs::sim::RunResult r = runWorkload(suite[i], params);
            speedups.push_back(r.speedupOver(base.results[i]));
            rates.push_back(useConfTab ? r.unconfidentBranchRate : 1.0);
        }
        table.addRow({label, pct(geoMeanRatio(speedups)),
                      num(pubs::arithmeticMean(rates), 2)});
    };

    for (unsigned bits = 2; bits <= 8; ++bits)
        sweep(std::to_string(bits).c_str(), bits, true);
    sweep("blind", 0, false);

    std::printf("FIGURE 11: D-BP speedup & unconfident rate vs counter "
                "bits\n");
    std::printf("(paper: optimum 6 bits at ~71%% unconfident; blind "
                "below PUBS)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig11_conf_bits", table);
    return 0;
}
