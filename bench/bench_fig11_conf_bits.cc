/**
 * @file
 * Figure 11: average D-BP speedup (bars) and unconfident-branch rate
 * (line) when varying the confidence counter width from 2 to 8 bits,
 * plus the "blind" model (every branch deemed unconfident, no conf_tab).
 * Paper: rate grows with width; optimum 6 bits at ~71% unconfident;
 * blind is worse than PUBS with the conf_tab.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig11: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base),
                             true, "base");

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.ok(i) && base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    // One batch over every (counter width | blind, workload) point.
    struct Point
    {
        std::string label;
        unsigned bits;
        bool useConfTab;
    };
    std::vector<Point> points;
    for (unsigned bits = 2; bits <= 8; ++bits)
        points.push_back({std::to_string(bits), bits, true});
    points.push_back({"blind", 0, false});

    SweepSpec spec;
    for (const Point &point : points) {
        pubs::cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
        params.pubs.useConfTab = point.useConfTab;
        if (point.useConfTab)
            params.pubs.confCounterBits = point.bits;
        for (size_t i : dbp)
            spec.add(suite[i], params, "pubs@" + point.label + "bit");
    }
    std::fprintf(stderr, "fig11: %zu runs (widths x D-BP)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"conf_bits", "speedup", "unconfident_rate"});
    size_t index = 0;
    for (const Point &point : points) {
        std::vector<double> speedups, rates;
        for (size_t k = 0; k < dbp.size(); ++k, ++index) {
            if (!sweep.ok(index))
                continue;
            const pubs::sim::RunResult &r = sweep.at(index);
            speedups.push_back(r.speedupOver(base.results[dbp[k]]));
            rates.push_back(point.useConfTab ? r.unconfidentBranchRate
                                             : 1.0);
        }
        table.addRow({point.label, pct(geoMeanRatio(speedups)),
                      num(pubs::arithmeticMean(rates), 2)});
    }

    std::printf("FIGURE 11: D-BP speedup & unconfident rate vs counter "
                "bits\n");
    std::printf("(paper: optimum 6 bits at ~71%% unconfident; blind "
                "below PUBS)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig11_conf_bits", table);
    return 0;
}
