/**
 * @file
 * Figure 10: average speedup over the base in D-BP when varying the
 * number of priority entries, for both dispatch policies. Paper: with
 * the stall policy, 2 entries degrade below the base, the optimum is 6;
 * the non-stall policy is consistently weaker.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig10: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base),
                             true, "base");

    // D-BP subset (classified on the base machine).
    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.ok(i) && base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    // One batch over every (entry count, policy, workload) point.
    const unsigned entryCounts[] = {2, 4, 6, 8, 10, 12};
    SweepSpec spec;
    for (unsigned entries : entryCounts) {
        for (bool stallPolicy : {true, false}) {
            pubs::cpu::CoreParams params =
                sim::makeConfig(sim::Machine::Pubs);
            params.pubs.priorityEntries = entries;
            params.pubs.stallPolicy = stallPolicy;
            std::string label = "pubs@" + std::to_string(entries) +
                                (stallPolicy ? "/stall" : "/non-stall");
            for (size_t i : dbp)
                spec.add(suite[i], params, label);
        }
    }
    std::fprintf(stderr, "fig10: %zu runs (entries x policy x D-BP)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"priority_entries", "stall", "non-stall"});
    size_t index = 0;
    for (unsigned entries : entryCounts) {
        std::vector<double> stall, nonStall;
        for (bool stallPolicy : {true, false}) {
            for (size_t k = 0; k < dbp.size(); ++k, ++index) {
                if (!sweep.ok(index))
                    continue;
                (stallPolicy ? stall : nonStall)
                    .push_back(sweep.at(index).speedupOver(
                        base.results[dbp[k]]));
            }
        }
        table.addRow({std::to_string(entries),
                      pct(geoMeanRatio(stall)),
                      pct(geoMeanRatio(nonStall))});
    }

    std::printf("FIGURE 10: D-BP geomean speedup vs #priority entries\n");
    std::printf("(paper: stall@2 below base; optimum 6; stall beats "
                "non-stall)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig10_priority_entries", table);
    return 0;
}
