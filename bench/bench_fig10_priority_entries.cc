/**
 * @file
 * Figure 10: average speedup over the base in D-BP when varying the
 * number of priority entries, for both dispatch policies. Paper: with
 * the stall policy, 2 entries degrade below the base, the optimum is 6;
 * the non-stall policy is consistently weaker.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig10: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base));

    // D-BP subset (classified on the base machine).
    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    const unsigned entryCounts[] = {2, 4, 6, 8, 10, 12};
    TextTable table({"priority_entries", "stall", "non-stall"});

    for (unsigned entries : entryCounts) {
        std::vector<double> stall, nonStall;
        for (bool stallPolicy : {true, false}) {
            pubs::cpu::CoreParams params =
                sim::makeConfig(sim::Machine::Pubs);
            params.pubs.priorityEntries = entries;
            params.pubs.stallPolicy = stallPolicy;
            std::fprintf(stderr, "fig10: %u entries, %s policy\n",
                         entries, stallPolicy ? "stall" : "non-stall");
            for (size_t i : dbp) {
                pubs::sim::RunResult r =
                    runWorkload(suite[i], params);
                (stallPolicy ? stall : nonStall)
                    .push_back(r.speedupOver(base.results[i]));
            }
        }
        table.addRow({std::to_string(entries),
                      pct(geoMeanRatio(stall)),
                      pct(geoMeanRatio(nonStall))});
    }

    std::printf("FIGURE 10: D-BP geomean speedup vs #priority entries\n");
    std::printf("(paper: stall@2 below base; optimum 6; stall beats "
                "non-stall)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig10_priority_entries", table);
    return 0;
}
