/**
 * @file
 * Figure 12: per-workload speedup with the mode switch enabled vs
 * disabled. Paper: most programs are indifferent, but the memory-bound
 * mcf and soplex degrade when the switch is disabled (PUBS's reserved
 * entries then cost MLP when the IQ capacity matters most).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig12: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base),
                             true, "base");

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.ok(i) && base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    pubs::cpu::CoreParams withSwitch = sim::makeConfig(sim::Machine::Pubs);
    pubs::cpu::CoreParams noSwitch = sim::makeConfig(sim::Machine::Pubs);
    noSwitch.pubs.modeSwitch = false;

    // One batch: each D-BP workload with the switch on and off.
    SweepSpec spec;
    for (size_t i : dbp) {
        spec.add(suite[i], withSwitch, "pubs/switch-on");
        spec.add(suite[i], noSwitch, "pubs/switch-off");
    }
    std::fprintf(stderr, "fig12: %zu runs (switch on/off x D-BP)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"workload", "llc_mpki", "switch_on", "switch_off",
                     "pubs_on_fraction"});
    std::vector<double> onRatios, offRatios;
    for (size_t k = 0; k < dbp.size(); ++k) {
        if (!sweep.ok(2 * k) || !sweep.ok(2 * k + 1))
            continue;
        size_t i = dbp[k];
        const pubs::sim::RunResult &on = sweep.at(2 * k);
        const pubs::sim::RunResult &off = sweep.at(2 * k + 1);
        double sOn = on.speedupOver(base.results[i]);
        double sOff = off.speedupOver(base.results[i]);
        onRatios.push_back(sOn);
        offRatios.push_back(sOff);
        table.addRow({suite[i].name, num(base.results[i].llcMpki, 1),
                      pct(sOn), pct(sOff),
                      num(on.pubsEnabledFraction, 2)});
    }
    table.addRow({"GM diff", "", pct(geoMeanRatio(onRatios)),
                  pct(geoMeanRatio(offRatios)), ""});

    std::printf("FIGURE 12: speedup with mode switch enabled/disabled "
                "(D-BP)\n");
    std::printf("(paper: mcf and soplex degrade when the switch is "
                "off)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig12_mode_switch", table);
    return 0;
}
