/**
 * @file
 * Figure 12: per-workload speedup with the mode switch enabled vs
 * disabled. Paper: most programs are indifferent, but the memory-bound
 * mcf and soplex degrade when the switch is disabled (PUBS's reserved
 * entries then cost MLP when the IQ capacity matters most).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig12: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base));

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    pubs::cpu::CoreParams withSwitch = sim::makeConfig(sim::Machine::Pubs);
    pubs::cpu::CoreParams noSwitch = sim::makeConfig(sim::Machine::Pubs);
    noSwitch.pubs.modeSwitch = false;

    TextTable table({"workload", "llc_mpki", "switch_on", "switch_off",
                     "pubs_on_fraction"});
    std::vector<double> onRatios, offRatios;
    for (size_t i : dbp) {
        std::fprintf(stderr, "fig12: %s\n", suite[i].name.c_str());
        pubs::sim::RunResult on = runWorkload(suite[i], withSwitch);
        pubs::sim::RunResult off = runWorkload(suite[i], noSwitch);
        double sOn = on.speedupOver(base.results[i]);
        double sOff = off.speedupOver(base.results[i]);
        onRatios.push_back(sOn);
        offRatios.push_back(sOff);
        table.addRow({suite[i].name, num(base.results[i].llcMpki, 1),
                      pct(sOn), pct(sOff),
                      num(on.pubsEnabledFraction, 2)});
    }
    table.addRow({"GM diff", "", pct(geoMeanRatio(onRatios)),
                  pct(geoMeanRatio(offRatios)), ""});

    std::printf("FIGURE 12: speedup with mode switch enabled/disabled "
                "(D-BP)\n");
    std::printf("(paper: mcf and soplex degrade when the switch is "
                "off)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig12_mode_switch", table);
    return 0;
}
