/**
 * @file
 * Figure 13 / Section V-F: is PUBS worth its 4 KB, or should the budget
 * buy a bigger branch predictor? Compares PUBS (default perceptron)
 * against the base machine with the enlarged perceptron (36-bit history,
 * 512-entry weight table — more than double the default predictor's
 * cost). Paper: the bigger predictor helps only marginally; PUBS wins.
 */

#include <cstdio>

#include "branch/predictor.hh"
#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;
    namespace branch = pubs::branch;

    parseBenchArgs(argc, argv);

    auto defaultBp =
        branch::makePredictor(branch::PredictorKind::Perceptron);
    auto largeBp =
        branch::makePredictor(branch::PredictorKind::PerceptronLarge);
    std::printf("predictor cost: default %.2f KB, enlarged %.2f KB "
                "(+%.2f KB; PUBS costs 4.0 KB)\n\n",
                defaultBp->costKB(), largeBp->costKB(),
                largeBp->costKB() - defaultBp->costKB());

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig13: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base),
                             true, "base");

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.ok(i) && base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    pubs::cpu::CoreParams pubsCfg = sim::makeConfig(sim::Machine::Pubs);
    pubs::cpu::CoreParams bigBpCfg = sim::makeConfig(sim::Machine::Base);
    bigBpCfg.predictor = branch::PredictorKind::PerceptronLarge;

    // One batch: each D-BP workload under PUBS and the big predictor.
    SweepSpec spec;
    for (size_t i : dbp) {
        spec.add(suite[i], pubsCfg, "pubs");
        spec.add(suite[i], bigBpCfg, "base/large-bp");
    }
    std::fprintf(stderr, "fig13: %zu runs (pubs + large-bp x D-BP)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"workload", "base_mpki", "bigbp_mpki", "pubs",
                     "large_predictor"});
    std::vector<double> pubsRatios, bigRatios;
    for (size_t k = 0; k < dbp.size(); ++k) {
        if (!sweep.ok(2 * k) || !sweep.ok(2 * k + 1))
            continue;
        size_t i = dbp[k];
        const pubs::sim::RunResult &withPubs = sweep.at(2 * k);
        const pubs::sim::RunResult &withBigBp = sweep.at(2 * k + 1);
        double sPubs = withPubs.speedupOver(base.results[i]);
        double sBig = withBigBp.speedupOver(base.results[i]);
        pubsRatios.push_back(sPubs);
        bigRatios.push_back(sBig);
        table.addRow({suite[i].name,
                      num(base.results[i].branchMpki, 1),
                      num(withBigBp.branchMpki, 1), pct(sPubs),
                      pct(sBig)});
    }
    table.addRow({"GM diff", "", "", pct(geoMeanRatio(pubsRatios)),
                  pct(geoMeanRatio(bigRatios))});

    std::printf("FIGURE 13: PUBS vs enlarged branch predictor (D-BP)\n");
    std::printf("(paper: the enlarged predictor's gain is marginal; "
                "PUBS is clearly better)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig13_large_predictor", table);
    return 0;
}
