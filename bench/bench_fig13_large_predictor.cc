/**
 * @file
 * Figure 13 / Section V-F: is PUBS worth its 4 KB, or should the budget
 * buy a bigger branch predictor? Compares PUBS (default perceptron)
 * against the base machine with the enlarged perceptron (36-bit history,
 * 512-entry weight table — more than double the default predictor's
 * cost). Paper: the bigger predictor helps only marginally; PUBS wins.
 */

#include <cstdio>

#include "branch/predictor.hh"
#include "common/bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;
    namespace branch = pubs::branch;

    auto defaultBp =
        branch::makePredictor(branch::PredictorKind::Perceptron);
    auto largeBp =
        branch::makePredictor(branch::PredictorKind::PerceptronLarge);
    std::printf("predictor cost: default %.2f KB, enlarged %.2f KB "
                "(+%.2f KB; PUBS costs 4.0 KB)\n\n",
                defaultBp->costKB(), largeBp->costKB(),
                largeBp->costKB() - defaultBp->costKB());

    auto suite = wl::makeSuite();
    std::fprintf(stderr, "fig13: base machine\n");
    SuiteRun base = runSuite(suite, sim::makeConfig(sim::Machine::Base));

    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (base.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    pubs::cpu::CoreParams pubsCfg = sim::makeConfig(sim::Machine::Pubs);
    pubs::cpu::CoreParams bigBpCfg = sim::makeConfig(sim::Machine::Base);
    bigBpCfg.predictor = branch::PredictorKind::PerceptronLarge;

    TextTable table({"workload", "base_mpki", "bigbp_mpki", "pubs",
                     "large_predictor"});
    std::vector<double> pubsRatios, bigRatios;
    for (size_t i : dbp) {
        std::fprintf(stderr, "fig13: %s\n", suite[i].name.c_str());
        pubs::sim::RunResult withPubs = runWorkload(suite[i], pubsCfg);
        pubs::sim::RunResult withBigBp = runWorkload(suite[i], bigBpCfg);
        double sPubs = withPubs.speedupOver(base.results[i]);
        double sBig = withBigBp.speedupOver(base.results[i]);
        pubsRatios.push_back(sPubs);
        bigRatios.push_back(sBig);
        table.addRow({suite[i].name,
                      num(base.results[i].branchMpki, 1),
                      num(withBigBp.branchMpki, 1), pct(sPubs),
                      pct(sBig)});
    }
    table.addRow({"GM diff", "", "", pct(geoMeanRatio(pubsRatios)),
                  pct(geoMeanRatio(bigRatios))});

    std::printf("FIGURE 13: PUBS vs enlarged branch predictor (D-BP)\n");
    std::printf("(paper: the enlarged predictor's gain is marginal; "
                "PUBS is clearly better)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig13_large_predictor", table);
    return 0;
}
