/**
 * @file
 * Figure 15 / Section V-G: PUBS vs the age matrix.
 *
 * (a) IPC increase over the base for PUBS, AGE and PUBS+AGE. Paper
 *     (D-BP geomeans): PUBS +7.8%, AGE +6.5%, PUBS+AGE +10.2%; in E-BP
 *     the age matrix is slightly ahead of PUBS.
 * (b) *Performance* of PUBS relative to AGE when the age matrix's 13%
 *     IQ-delay increase lengthens the clock: PUBS ahead by ~11.1%.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "iq/delay_model.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();
    const sim::Machine machines[4] = {
        sim::Machine::Base, sim::Machine::Pubs, sim::Machine::Age,
        sim::Machine::PubsAge};

    // One batch: the whole suite on all four machines.
    SweepSpec spec;
    for (int m = 0; m < 4; ++m)
        for (const auto &workload : suite)
            spec.add(workload, sim::makeConfig(machines[m]),
                     sim::machineName(machines[m]));
    std::fprintf(stderr, "fig15: %zu runs (4 machines)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);
    auto at = [&](int m, size_t i) -> const sim::RunResult & {
        return sweep.at((size_t)m * suite.size() + i);
    };

    pubs::iq::DelayModel delay;

    TextTable table({"workload", "class", "PUBS", "AGE", "PUBS+AGE",
                     "PUBS_vs_AGE_perf"});
    std::vector<double> dbpRatios[3], ebpRatios[3];
    std::vector<double> dbpPerf, ebpPerf;
    for (size_t i = 0; i < suite.size(); ++i) {
        bool allOk = true;
        for (int m = 0; m < 4; ++m)
            allOk = allOk && sweep.ok((size_t)m * suite.size() + i);
        if (!allOk)
            continue;
        const sim::RunResult &base = at(0, i);
        bool hard = base.branchMpki > dbpThreshold;
        double ratio[3];
        for (int m = 1; m < 4; ++m) {
            ratio[m - 1] = at(m, i).speedupOver(base);
            (hard ? dbpRatios : ebpRatios)[m - 1].push_back(ratio[m - 1]);
        }
        // Fig 15(b): performance = IPC / cycle time.
        double perf = delay.performance(at(1, i).ipc, false) /
                      delay.performance(at(2, i).ipc, true);
        (hard ? dbpPerf : ebpPerf).push_back(perf);
        table.addRow({suite[i].name, hard ? "D-BP" : "E-BP",
                      pct(ratio[0]), pct(ratio[1]), pct(ratio[2]),
                      pct(perf)});
    }
    table.addRow({"GM diff", "D-BP", pct(geoMeanRatio(dbpRatios[0])),
                  pct(geoMeanRatio(dbpRatios[1])),
                  pct(geoMeanRatio(dbpRatios[2])),
                  pct(geoMeanRatio(dbpPerf))});
    table.addRow({"GM easy", "E-BP", pct(geoMeanRatio(ebpRatios[0])),
                  pct(geoMeanRatio(ebpRatios[1])),
                  pct(geoMeanRatio(ebpRatios[2])),
                  pct(geoMeanRatio(ebpPerf))});

    std::printf("FIGURE 15(a): IPC increase over base; (b) last column: "
                "PUBS performance over AGE with the age matrix's +13%% "
                "cycle time\n");
    std::printf("(paper D-BP GMs: PUBS +7.8%%, AGE +6.5%%, PUBS+AGE "
                "+10.2%%; PUBS over AGE in performance: +11.1%%)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig15_age_matrix", table);
    return 0;
}
