/**
 * @file
 * Figure 16 / Table IV: IPC increase of PUBS, AGE and PUBS+AGE over the
 * base at four processor sizes. Paper: both criticality-aware schemes
 * gain effectiveness as the window grows; PUBS stays ahead of AGE and
 * PUBS+AGE ahead of both at every size.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;
    namespace cpu = pubs::cpu;

    auto suite = wl::makeSuite();

    // Print Table IV.
    std::printf("TABLE IV: processor size classes\n");
    TextTable sizes({"size", "width", "IQ", "ROB", "LSQ", "regs",
                     "iALU/iMUL/LdSt/FPU"});
    const cpu::SizeClass classes[] = {
        cpu::SizeClass::Small, cpu::SizeClass::Medium,
        cpu::SizeClass::Large, cpu::SizeClass::Huge};
    for (auto size : classes) {
        cpu::CoreParams p = cpu::CoreParams::scaled(size);
        sizes.addRow({cpu::sizeClassName(size),
                      std::to_string(p.issueWidth),
                      std::to_string(p.iqEntries),
                      std::to_string(p.robEntries),
                      std::to_string(p.lsqEntries),
                      std::to_string(p.intPhysRegs) + "+" +
                          std::to_string(p.fpPhysRegs),
                      std::to_string(p.numIntAlu) + "/" +
                          std::to_string(p.numIntMulDiv) + "/" +
                          std::to_string(p.numLdSt) + "/" +
                          std::to_string(p.numFpu)});
    }
    std::printf("%s\n", sizes.str().c_str());

    // Classify D-BP on the default (medium) base machine.
    std::fprintf(stderr, "fig16: classification run\n");
    SuiteRun medium = runSuite(suite, sim::makeConfig(sim::Machine::Base));
    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (medium.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    TextTable table({"size", "PUBS", "AGE", "PUBS+AGE"});
    for (auto size : classes) {
        std::fprintf(stderr, "fig16: size %s\n", cpu::sizeClassName(size));
        std::vector<double> ratios[3];
        std::vector<pubs::sim::RunResult> baseRuns;
        for (size_t i : dbp) {
            baseRuns.push_back(runWorkload(
                suite[i], sim::makeConfig(sim::Machine::Base, size)));
        }
        const sim::Machine machines[3] = {sim::Machine::Pubs,
                                          sim::Machine::Age,
                                          sim::Machine::PubsAge};
        for (int m = 0; m < 3; ++m) {
            for (size_t k = 0; k < dbp.size(); ++k) {
                pubs::sim::RunResult r = runWorkload(
                    suite[dbp[k]], sim::makeConfig(machines[m], size));
                ratios[m].push_back(r.speedupOver(baseRuns[k]));
            }
        }
        table.addRow({cpu::sizeClassName(size),
                      pct(geoMeanRatio(ratios[0])),
                      pct(geoMeanRatio(ratios[1])),
                      pct(geoMeanRatio(ratios[2]))});
    }

    std::printf("FIGURE 16: D-BP geomean IPC increase vs processor "
                "size\n");
    std::printf("(paper: effectiveness grows with size; PUBS > AGE, "
                "PUBS+AGE best)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig16_size_sweep", table);
    return 0;
}
