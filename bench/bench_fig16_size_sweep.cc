/**
 * @file
 * Figure 16 / Table IV: IPC increase of PUBS, AGE and PUBS+AGE over the
 * base at four processor sizes. Paper: both criticality-aware schemes
 * gain effectiveness as the window grows; PUBS stays ahead of AGE and
 * PUBS+AGE ahead of both at every size.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;
    namespace cpu = pubs::cpu;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();

    // Print Table IV.
    std::printf("TABLE IV: processor size classes\n");
    TextTable sizes({"size", "width", "IQ", "ROB", "LSQ", "regs",
                     "iALU/iMUL/LdSt/FPU"});
    const cpu::SizeClass classes[] = {
        cpu::SizeClass::Small, cpu::SizeClass::Medium,
        cpu::SizeClass::Large, cpu::SizeClass::Huge};
    for (auto size : classes) {
        cpu::CoreParams p = cpu::CoreParams::scaled(size);
        sizes.addRow({cpu::sizeClassName(size),
                      std::to_string(p.issueWidth),
                      std::to_string(p.iqEntries),
                      std::to_string(p.robEntries),
                      std::to_string(p.lsqEntries),
                      std::to_string(p.intPhysRegs) + "+" +
                          std::to_string(p.fpPhysRegs),
                      std::to_string(p.numIntAlu) + "/" +
                          std::to_string(p.numIntMulDiv) + "/" +
                          std::to_string(p.numLdSt) + "/" +
                          std::to_string(p.numFpu)});
    }
    std::printf("%s\n", sizes.str().c_str());

    // Classify D-BP on the default (medium) base machine.
    std::fprintf(stderr, "fig16: classification run\n");
    SuiteRun medium = runSuite(suite, sim::makeConfig(sim::Machine::Base),
                               true, "base");
    std::vector<size_t> dbp;
    for (size_t i = 0; i < suite.size(); ++i)
        if (medium.ok(i) && medium.results[i].branchMpki > dbpThreshold)
            dbp.push_back(i);

    // One batch over every (size, machine, workload) point — the
    // largest figure sweep in the harness (4 sizes x 4 machines x D-BP).
    const sim::Machine machines[4] = {
        sim::Machine::Base, sim::Machine::Pubs, sim::Machine::Age,
        sim::Machine::PubsAge};
    SweepSpec spec;
    for (auto size : classes) {
        for (const sim::Machine machine : machines) {
            std::string label = std::string(sim::machineName(machine)) +
                                "@" + cpu::sizeClassName(size);
            for (size_t i : dbp)
                spec.add(suite[i], sim::makeConfig(machine, size), label);
        }
    }
    std::fprintf(stderr, "fig16: %zu runs (sizes x machines x D-BP)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);
    // Index of (size s, machine m, workload k) in the spec.
    auto at = [&](size_t s, size_t m, size_t k) {
        return (s * 4 + m) * dbp.size() + k;
    };

    TextTable table({"size", "PUBS", "AGE", "PUBS+AGE"});
    for (size_t s = 0; s < 4; ++s) {
        std::vector<double> ratios[3];
        for (size_t m = 1; m < 4; ++m) {
            for (size_t k = 0; k < dbp.size(); ++k) {
                if (!sweep.ok(at(s, 0, k)) || !sweep.ok(at(s, m, k)))
                    continue;
                ratios[m - 1].push_back(sweep.at(at(s, m, k))
                                            .speedupOver(
                                                sweep.at(at(s, 0, k))));
            }
        }
        table.addRow({cpu::sizeClassName(classes[s]),
                      pct(geoMeanRatio(ratios[0])),
                      pct(geoMeanRatio(ratios[1])),
                      pct(geoMeanRatio(ratios[2]))});
    }

    std::printf("FIGURE 16: D-BP geomean IPC increase vs processor "
                "size\n");
    std::printf("(paper: effectiveness grows with size; PUBS > AGE, "
                "PUBS+AGE best)\n\n%s",
                table.str().c_str());
    maybeWriteCsv("fig16_size_sweep", table);
    return 0;
}
