/**
 * @file
 * Self-contained HTML dashboard for sweep farms.
 *
 * A ReportBuilder accumulates per-run rows (IPC, KIPS, MPKIs) and
 * farm-health counters across every runSweep() a driver performs, plus
 * an optional raw stats-JSON document (pubs_sim_cli embeds its full
 * StatRegistry). renderDashboardHtml() turns the composite data into
 * one static HTML file — all CSS and JS inline, no CDN, no fetches —
 * that renders per-workload KIPS bars, base-vs-pubs IPC speedups,
 * slice-telemetry coverage/accuracy (when the stats document carries
 * them), and the pool/retry/skip telemetry.
 *
 * The embedded data is RFC 8259-strict JSON (tests parse it back out of
 * the HTML), and the file is written atomically, so a dashboard is
 * either absent or complete.
 */

#ifndef PUBS_BENCH_COMMON_REPORT_HH
#define PUBS_BENCH_COMMON_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "cpu/cpi_stack.hh"

namespace pubs::bench
{

class ReportBuilder
{
  public:
    /** One dashboard row (one sweep run or one CLI run). */
    struct Run
    {
        std::string workload;
        std::string machine;
        bool ok = false;
        uint64_t instructions = 0;
        uint64_t cycles = 0;
        double ipc = 0.0;
        double kips = 0.0;
        double branchMpki = 0.0;
        double llcMpki = 0.0;
        double unconfidentRate = 0.0;
        std::string errorKind; ///< when !ok

        /** Top-down CPI stack of the run; emitted into the data
         *  document (and rendered as a stacked bar) only when
         *  @ref hasCpi — set by addSweep() under --cpi-stack. */
        bool hasCpi = false;
        std::array<uint64_t, cpu::numCpiComponents> cpi{};

        /** One top-cost static branch (dashboard table row). */
        struct Branch
        {
            uint64_t pc = 0;
            uint64_t commits = 0;
            uint64_t mispredicts = 0;
            uint64_t penaltyCycles = 0;
            uint64_t unconfCorrect = 0;
            uint64_t unconfWrong = 0;
            uint64_t sliceInsts = 0;
            uint64_t sliceCovered = 0;
        };

        /** Filled by addSweep() under --branch-profile. */
        std::vector<Branch> branches;
    };

    /** Dashboard heading; defaults to "PUBS sweep farm". */
    void setTitle(std::string title);

    /** Fold one finished sweep's rows + farm counters in. */
    void addSweep(const SweepSpec &spec, const SweepResult &result);

    /** Append a single run row (pubs_sim_cli). */
    void addRun(const Run &run);

    /**
     * Embed a raw stats-JSON document (a StatRegistry::renderJson()
     * dump) under "stats". Must be valid JSON; an invalid document is
     * dropped with a warning rather than corrupting the dashboard.
     */
    void setStatsJson(std::string statsJson);

    /** The composite data document (strict JSON). */
    std::string dataJson() const;

    /** The full self-contained dashboard HTML. */
    std::string html() const;

    /**
     * Atomically write html() to @p path.
     * @return empty on success, error text otherwise.
     */
    std::string writeHtml(const std::string &path) const;

    /** Drop all accumulated state (tests). */
    void clear();

  private:
    std::string title_;
    std::vector<Run> runs_;
    FarmStats farm_;
    size_t sweeps_ = 0;
    unsigned jobs_ = 0;
    double wallSeconds_ = 0.0;
    double busySeconds_ = 0.0;
    std::string statsJson_;
};

/**
 * Render @p dataJson (a ReportBuilder::dataJson() document) into the
 * dashboard HTML. Exposed separately so tests can feed golden data.
 */
std::string renderDashboardHtml(const std::string &dataJson);

/** The process-wide builder runSweep() feeds when --report is set. */
ReportBuilder &globalReport();

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_REPORT_HH
