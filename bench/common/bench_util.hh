/**
 * @file
 * Shared benchmark-harness utilities: instruction budgets (overridable
 * via PUBS_BENCH_INSTS / PUBS_BENCH_WARMUP), aligned text tables in the
 * style of the paper's figures, optional CSV emission
 * (PUBS_BENCH_CSV=<dir>), and suite-run helpers.
 */

#ifndef PUBS_BENCH_COMMON_BENCH_UTIL_HH
#define PUBS_BENCH_COMMON_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::bench
{

/** Measured instructions per run (default 1M; the paper used 100M). */
uint64_t measureInsts();

/** Warmup instructions per run (default 200K). */
uint64_t warmupInsts();

/** The paper's D-BP threshold: branch MPKI > 3.0 on the base machine. */
constexpr double dbpThreshold = 3.0;

/** The paper's memory-intensity threshold: LLC MPKI > 1.0. */
constexpr double memIntensityThreshold = 1.0;

/** Simple aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
        { return rows_; }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a ratio as a percentage delta, e.g. 1.078 -> "+7.8%". */
std::string pct(double ratio);

/** Format a double with @p digits decimals. */
std::string num(double value, int digits = 3);

/**
 * Write the table as CSV into $PUBS_BENCH_CSV/<benchName>.csv if that
 * environment variable is set. Returns true if written.
 */
bool maybeWriteCsv(const std::string &benchName, const TextTable &table);

/** Run one workload on one machine configuration. */
sim::RunResult runWorkload(const wl::Workload &workload,
                           const cpu::CoreParams &params);

/** Results of running the whole suite on one machine. */
struct SuiteRun
{
    std::vector<sim::RunResult> results; ///< index-aligned with suite

    /**
     * Workloads whose simulation threw a SimError (index-aligned with
     * the suite: empty string = ran clean). A failed entry keeps a
     * default-constructed RunResult so downstream ratio math can skip
     * it without renumbering.
     */
    std::vector<std::string> errors;

    size_t
    failed() const
    {
        size_t n = 0;
        for (const std::string &error : errors)
            n += error.empty() ? 0 : 1;
        return n;
    }

    bool ok(size_t index) const { return errors[index].empty(); }
};

/**
 * Run every workload in @p suite on @p params. A workload that throws
 * SimError (bad configuration, trace corruption, checker divergence) is
 * reported and skipped; the sweep continues with the remaining
 * workloads.
 */
SuiteRun runSuite(const std::vector<wl::Workload> &suite,
                  const cpu::CoreParams &params, bool verbose = true);

/** Geometric mean of per-workload ratios over a subset selector. */
double geoMeanRatio(const std::vector<double> &ratios);

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_BENCH_UTIL_HH
