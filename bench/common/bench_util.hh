/**
 * @file
 * Shared benchmark-harness utilities: instruction budgets (overridable
 * via PUBS_BENCH_INSTS / PUBS_BENCH_WARMUP), aligned text tables in the
 * style of the paper's figures, optional CSV emission
 * (PUBS_BENCH_CSV=<dir>), and the parallel sweep engine every figure
 * driver batches its runs through.
 *
 * Determinism contract of the sweep engine: each run is an independent
 * Simulator seeded entirely from its SweepItem (params.seed + the
 * pre-built workload program), results land in spec order regardless of
 * scheduling, and the aggregated output (SweepResult::statsJson(), the
 * per-figure tables, skipped.csv) carries no host-clock fields — so a
 * sweep is byte-identical at any --jobs count, including --jobs 1.
 * Host-speed telemetry (simspeed.csv, pool utilization) is appended in
 * spec order too, but its wall-clock columns are inherently
 * host-dependent and excluded from the contract.
 *
 * Fault isolation: --procs N (or PUBS_BENCH_PROCS) moves each run into
 * its own forked worker process (sim/proc_pool.hh) — a segfaulting or
 * hanging run is retried with backoff and at worst becomes a skip row,
 * never a dead sweep — and the slot-indexed aggregation keeps the
 * determinism contract across the process boundary. --journal PATH
 * write-ahead-journals every completed run (sweep_journal.hh);
 * --resume serves journaled slots of an interrupted sweep so the rerun
 * is byte-identical to an uninterrupted one. All CSV/JSON emission goes
 * through atomic temp-file + rename (common/atomic_file.hh), so no
 * output is ever observable half-written.
 */

#ifndef PUBS_BENCH_COMMON_BENCH_UTIL_HH
#define PUBS_BENCH_COMMON_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::bench
{

/** Measured instructions per run (default 1M; the paper used 100M). */
uint64_t measureInsts();

/** Warmup instructions per run (default 200K). */
uint64_t warmupInsts();

/**
 * Worker threads used by sweeps whose SweepSpec does not pin a count:
 * the --jobs flag (parseBenchArgs) if given, else PUBS_BENCH_JOBS, else
 * hardware concurrency.
 */
unsigned benchJobs();

/** Pin the benchJobs() default (what --jobs does). 0 restores auto. */
void setBenchJobs(unsigned jobs);

/**
 * Worker *processes* used by sweeps whose SweepSpec does not pin a
 * count: the --procs flag if given, else PUBS_BENCH_PROCS, else 0 —
 * and 0 means in-process threads (benchJobs()).
 */
unsigned benchProcs();

/** Pin the benchProcs() default (what --procs does). */
void setBenchProcs(unsigned procs);

/**
 * Write-ahead journal path for sweeps (--journal / PUBS_BENCH_JOURNAL);
 * empty disables journaling. A driver running several sweeps numbers
 * them path, path.1, path.2, ... in call order.
 */
std::string journalPath();

/** Pin the journal path (what --journal does). Empty disables. */
void setJournalPath(std::string path);

/** Was --resume (or PUBS_BENCH_RESUME=1) requested? */
bool resumeRequested();

/** Pin the resume flag (what --resume does). */
void setResume(bool resume);

/**
 * Chrome trace-event output path (--trace-events / PUBS_TRACE_EVENTS);
 * empty disables host-phase profiling. When set, the profiler is
 * enabled and each runSweep() rewrites the trace file atomically.
 */
std::string traceEventsPath();

/** Pin the trace path and enable the profiler. Empty disables. */
void setTraceEventsPath(std::string path);

/**
 * Dashboard output path (--report / PUBS_BENCH_REPORT); empty disables.
 * When set, every runSweep() feeds the global report builder
 * (bench/common/report.hh) and rewrites the self-contained HTML.
 */
std::string reportPath();

/** Pin the dashboard path (what --report does). Empty disables. */
void setReportPath(std::string path);

/** Was --progress (or PUBS_PROGRESS=1) requested? */
bool progressRequested();

/** Pin the progress flag (what --progress does). */
void setProgress(bool progress);

/**
 * Was --cpi-stack (or PUBS_CPI_STACK=1) requested? When on, every
 * runSweep() additionally emits $PUBS_BENCH_CSV/cpi_stack.csv (one row
 * per run, one column per top-down CPI component) and the dashboard
 * gains a stacked-bar CPI panel. The stack itself is always collected;
 * the flag only gates emission, so no-flag output stays byte-identical.
 */
bool cpiStackRequested();

/** Pin the CPI-stack flag (what --cpi-stack does). */
void setCpiStack(bool enabled);

/**
 * Was --branch-profile (or PUBS_BRANCH_PROFILE=1) requested? When on,
 * sweep runs force-enable core telemetry (stderr heartbeat off), every
 * runSweep() emits $PUBS_BENCH_CSV/branch_profile.csv (top static
 * branches per run with the confidence×outcome quadrant and slice
 * coverage), and the dashboard gains a top-branches table.
 */
bool branchProfileRequested();

/** Pin the branch-profile flag (what --branch-profile does). */
void setBranchProfile(bool enabled);

/**
 * Sampled-simulation windows per run (--sample / PUBS_BENCH_SAMPLE);
 * 0 (the default) runs every sweep item straight through.
 */
unsigned sampleWindows();

/** Pin the window count (what --sample does). 0 disables sampling. */
void setSampleWindows(unsigned windows);

/**
 * Instructions between sampled-window starts (--sample-period /
 * PUBS_BENCH_SAMPLE_PERIOD); 0 derives a contiguous period from the
 * per-window budgets (warmup + measure).
 */
uint64_t samplePeriod();

/** Pin the sampling period (what --sample-period does). */
void setSamplePeriod(uint64_t period);

/**
 * Content-addressed checkpoint artifact directory (--checkpoint-dir /
 * PUBS_CHECKPOINT_DIR); empty disables the cache. Sampled sweep runs
 * serve window fast-forward state from here and publish what they
 * compute, so workers (and --resume reruns) share the work.
 */
std::string checkpointDir();

/** Pin the checkpoint directory (what --checkpoint-dir does). */
void setCheckpointDir(std::string dir);

/**
 * The sampling plan sweeps run under, built from sampleWindows() /
 * samplePeriod() and the sweep budgets: the measurement and warmup
 * budgets are split evenly across the windows. Disabled (windows == 0)
 * unless --sample is in effect.
 */
sim::SamplePlan benchSamplePlan(uint64_t warmup, uint64_t insts);

/**
 * Where the live progress document goes when --progress is on:
 * $PUBS_PROGRESS_JSON if set, else "progress.json".
 */
std::string progressJsonPath();

/**
 * Parse the shared bench-driver command line (--jobs N, --procs N,
 * --journal PATH, --resume, --trace-events PATH, --report PATH,
 * --progress, --sample N, --sample-period N, --checkpoint-dir PATH,
 * --help). Unknown flags print usage and exit(2). Every
 * bench_* main calls this first so the whole harness honours the flags
 * uniformly.
 */
void parseBenchArgs(int argc, char **argv);

/** The paper's D-BP threshold: branch MPKI > 3.0 on the base machine. */
constexpr double dbpThreshold = 3.0;

/** The paper's memory-intensity threshold: LLC MPKI > 1.0. */
constexpr double memIntensityThreshold = 1.0;

/** Simple aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
        { return rows_; }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a ratio as a percentage delta, e.g. 1.078 -> "+7.8%". */
std::string pct(double ratio);

/** Format a double with @p digits decimals. */
std::string num(double value, int digits = 3);

/**
 * Write the table as CSV into $PUBS_BENCH_CSV/<benchName>.csv if that
 * environment variable is set. Returns true if written.
 */
bool maybeWriteCsv(const std::string &benchName, const TextTable &table);

/** Run one workload on one machine configuration. */
sim::RunResult runWorkload(const wl::Workload &workload,
                           const cpu::CoreParams &params);

// --- parallel sweep engine -------------------------------------------

/** One independent run: a workload on a machine configuration. */
struct SweepItem
{
    wl::Workload workload;
    cpu::CoreParams params;
    /** Label recorded as RunResult::machine and in CSV/JSON output. */
    std::string machine;
};

/** A batch of independent runs plus the budgets they share. */
struct SweepSpec
{
    /** Sentinel: take the budget from the PUBS_BENCH_* environment. */
    static constexpr uint64_t envBudget = ~0ull;

    std::vector<SweepItem> items;
    uint64_t warmup = envBudget;
    uint64_t insts = envBudget;
    unsigned jobs = 0;  ///< worker threads; 0 = benchJobs()
    /** Worker processes; 0 = benchProcs() (whose 0 = use threads). */
    unsigned procs = 0;
    bool verbose = true;

    /** Append one run; @return its index (== result slot). */
    size_t add(wl::Workload workload, cpu::CoreParams params,
               std::string machine);
};

/** Outcome of one sweep item (index-aligned with the spec). */
struct SweepRow
{
    sim::RunResult result;
    std::string error;     ///< empty = ran clean
    std::string errorKind; ///< SimError kind name when failed
    /**
     * Simulation phase the failure escaped from ("fastforward",
     * "warmup", "measure", "checkpoint_io"; empty when the run never
     * entered a phase or ran clean) — so skipped.csv distinguishes a
     * fast-forward fault from a measurement fault.
     */
    std::string phase;

    bool ok() const { return error.empty(); }
};

/**
 * Farm-health counters of one sweep: how hard the recovery machinery
 * had to work. All zero for an in-process (threads) sweep except
 * journalServed. Host-dependent, so excluded from statsJson()'s
 * determinism contract unless explicitly requested.
 */
struct FarmStats
{
    uint64_t launches = 0;
    uint64_t crashes = 0;
    uint64_t timeouts = 0;
    uint64_t staleKills = 0;
    uint64_t corruptFrames = 0;
    uint64_t retries = 0;
    uint64_t skips = 0;         ///< permanently failed tasks
    uint64_t journalServed = 0; ///< slots replayed from a --resume journal
};

/** Deterministically aggregated results of one sweep. */
struct SweepResult
{
    /** Index-aligned with SweepSpec::items, independent of schedule. */
    std::vector<SweepRow> rows;

    unsigned jobs = 1;        ///< worker threads actually used
    double wallSeconds = 0.0; ///< host wall clock of the whole sweep
    double busySeconds = 0.0; ///< summed per-run simulation time
    FarmStats farm;           ///< recovery-machinery counters

    /** Fraction of thread-seconds spent simulating. */
    double
    utilization() const
    {
        double capacity = wallSeconds * (double)jobs;
        return capacity > 0.0 ? busySeconds / capacity : 0.0;
    }

    size_t
    failed() const
    {
        size_t n = 0;
        for (const SweepRow &row : rows)
            n += row.ok() ? 0 : 1;
        return n;
    }

    bool ok(size_t index) const { return rows[index].ok(); }
    const sim::RunResult &at(size_t i) const { return rows[i].result; }

    /**
     * The whole sweep as one JSON object containing only deterministic
     * fields (no wall-clock / KIPS): byte-identical at any job count.
     * @p includeFarm additionally emits the farm-health counters, which
     * are host-dependent (retries, timeouts) and therefore off by
     * default to preserve the byte-exactness contract.
     */
    std::string statsJson(bool includeFarm = false) const;
};

/**
 * Run every item of @p spec across a work-stealing thread pool, or —
 * when a process count is configured (spec.procs / --procs /
 * PUBS_BENCH_PROCS) — across fault-isolated worker processes with
 * per-run timeout, retry, and skip-after-N-failures. An item that
 * throws SimError is recorded as a skipped row (and in
 * $PUBS_BENCH_CSV/skipped.csv) without sinking the batch, and a worker
 * process that crashes or hangs beyond retry becomes a "proc" skip row
 * the same way; host-speed rows go to simspeed.csv and pool utilization
 * to sweep_pool.csv, all in spec order. With a journal configured,
 * completed runs are write-ahead journaled and --resume serves them
 * back byte-identically after an interruption.
 */
SweepResult runSweep(const SweepSpec &spec);

/** Results of running the whole suite on one machine. */
struct SuiteRun
{
    std::vector<sim::RunResult> results; ///< index-aligned with suite

    /**
     * Workloads whose simulation threw a SimError (index-aligned with
     * the suite: empty string = ran clean). A failed entry keeps a
     * default-constructed RunResult so downstream ratio math can skip
     * it without renumbering.
     */
    std::vector<std::string> errors;

    size_t
    failed() const
    {
        size_t n = 0;
        for (const std::string &error : errors)
            n += error.empty() ? 0 : 1;
        return n;
    }

    bool ok(size_t index) const { return errors[index].empty(); }
};

/**
 * Run every workload in @p suite on @p params, in parallel via
 * runSweep(). A workload that throws SimError (bad configuration, trace
 * corruption, checker divergence) is recorded and skipped; the sweep
 * continues with the remaining workloads. @p machine labels the runs in
 * CSV/JSON output.
 */
SuiteRun runSuite(const std::vector<wl::Workload> &suite,
                  const cpu::CoreParams &params, bool verbose = true,
                  const std::string &machine = "");

/** Geometric mean of per-workload ratios over a subset selector. */
double geoMeanRatio(const std::vector<double> &ratios);

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_BENCH_UTIL_HH
