#include "common/run_codec.hh"

#include <cstring>
#include <vector>

namespace pubs::bench
{

namespace
{

// Bump when the payload layout changes; decodeSweepRow rejects other
// versions, which turns stale journals into clean recompute-from-scratch
// instead of silent misdecodes.
// v2: + failure phase, + sampled-simulation fields (windows, skipped
//     instructions, CI half-widths).
// v3: + CPI-stack component cycles, + per-branch profile rows.
constexpr uint8_t codecVersion = 3;

class Encoder
{
  public:
    void put8(uint8_t v) { out_.push_back((char)v); }

    void
    put32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    put64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back((char)((v >> (8 * i)) & 0xff));
    }

    void
    putDouble(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        put64(bits);
    }

    void
    putString(const std::string &s)
    {
        put32((uint32_t)s.size());
        out_ += s;
    }

    void
    putHistogram(const Histogram &h)
    {
        put64(h.bucketWidth());
        put8((uint8_t)h.scale());
        put32((uint32_t)h.numBuckets());
        for (size_t i = 0; i < h.numBuckets(); ++i)
            put64(h.bucket(i));
        put64(h.sum());
        put64(h.samples());
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

class Decoder
{
  public:
    explicit Decoder(const std::string &bytes) : bytes_(bytes) {}

    bool
    get8(uint8_t &v)
    {
        if (pos_ + 1 > bytes_.size())
            return false;
        v = (uint8_t)bytes_[pos_++];
        return true;
    }

    bool
    get32(uint32_t &v)
    {
        if (pos_ + 4 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)bytes_[pos_++] << (8 * i);
        return true;
    }

    bool
    get64(uint64_t &v)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)bytes_[pos_++] << (8 * i);
        return true;
    }

    bool
    getDouble(double &v)
    {
        uint64_t bits;
        if (!get64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    getString(std::string &s)
    {
        uint32_t length;
        if (!get32(length) || pos_ + (size_t)length > bytes_.size())
            return false;
        s.assign(bytes_, pos_, length);
        pos_ += length;
        return true;
    }

    bool
    getHistogram(Histogram &h)
    {
        uint64_t width, sum, total;
        uint8_t scale;
        uint32_t buckets;
        if (!get64(width) || !get8(scale) || !get32(buckets))
            return false;
        if (width == 0 || buckets == 0 || scale > (uint8_t)BucketScale::Log2)
            return false;
        // An implausible bucket count means a corrupt length field;
        // refuse before the resize can balloon.
        if (buckets > 1u << 20)
            return false;
        std::vector<uint64_t> counts(buckets);
        for (uint32_t i = 0; i < buckets; ++i)
            if (!get64(counts[i]))
                return false;
        if (!get64(sum) || !get64(total))
            return false;
        h.restore(width, (BucketScale)scale, std::move(counts), sum,
                  total);
        return true;
    }

    bool exhausted() const { return pos_ == bytes_.size(); }

  private:
    const std::string &bytes_;
    size_t pos_ = 0;
};

} // namespace

std::string
encodeSweepRow(const SweepRow &row)
{
    Encoder enc;
    enc.put8(codecVersion);
    enc.putString(row.error);
    enc.putString(row.errorKind);
    enc.putString(row.phase);

    const sim::RunResult &r = row.result;
    enc.putString(r.workload);
    enc.putString(r.machine);
    enc.put64(r.instructions);
    enc.put64(r.cycles);
    enc.putDouble(r.ipc);
    enc.putDouble(r.branchMpki);
    enc.putDouble(r.llcMpki);
    enc.putDouble(r.avgMisspecPenalty);
    enc.putDouble(r.avgIqWait);
    enc.putDouble(r.unconfidentBranchRate);
    enc.putDouble(r.pubsEnabledFraction);
    enc.put64(r.priorityStallCycles);
    enc.putDouble(r.simSeconds);
    enc.put8(r.sampled ? 1 : 0);
    enc.put32(r.windows);
    enc.put64(r.skippedInsts);
    enc.putDouble(r.ipcCi95);
    enc.putDouble(r.branchMpkiCi95);
    enc.putDouble(r.llcMpkiCi95);

    // PipelineStats scalar counters, in declaration order. Extend both
    // sides together and bump codecVersion.
    const cpu::PipelineStats &p = r.pipeline;
    enc.put64(p.cycles);
    enc.put64(p.committed);
    enc.put64(p.fetched);
    enc.put64(p.condBranches);
    enc.put64(p.condMispredicts);
    enc.put64(p.indirectJumps);
    enc.put64(p.indirectMispredicts);
    enc.put64(p.btbMissBubbles);
    enc.put64(p.llcMisses);
    enc.put64(p.l1dAccesses);
    enc.put64(p.l1dMisses);
    enc.put64(p.priorityDispatches);
    enc.put64(p.normalDispatches);
    enc.put64(p.priorityStallCycles);
    enc.put64(p.iqFullStallCycles);
    enc.put64(p.robFullStallCycles);
    enc.put64(p.issueConflictCycles);
    enc.put64(p.issued);
    enc.put64(p.misspecPenaltySum);
    enc.put64(p.misspecPenaltyCount);
    enc.put64(p.wrongPathFetched);
    enc.put64(p.squashed);
    enc.put64(p.iqWaitSum);
    enc.put64(p.checkerCommits);
    enc.put64(p.checkerDivergences);
    enc.put64(p.auditsRun);
    enc.put64(p.auditViolations);
    enc.putHistogram(p.misspecPenalty);
    enc.putHistogram(p.iqOccupancy);
    enc.putHistogram(p.iqWait);

    // CPI stack: component count first so a geometry change is caught
    // as a version/shape mismatch rather than a silent misdecode.
    enc.put32((uint32_t)cpu::numCpiComponents);
    for (size_t c = 0; c < cpu::numCpiComponents; ++c)
        enc.put64(p.cpi.cycles[c]);

    enc.put32((uint32_t)r.branchProfile.size());
    for (const sim::BranchProfileRow &b : r.branchProfile) {
        enc.put64(b.pc);
        enc.put64(b.commits);
        enc.put64(b.mispredicts);
        enc.put64(b.penaltyCycles);
        enc.put64(b.confCorrect);
        enc.put64(b.confWrong);
        enc.put64(b.unconfCorrect);
        enc.put64(b.unconfWrong);
        enc.put64(b.sliceInsts);
        enc.put64(b.sliceCovered);
    }
    return enc.take();
}

bool
decodeSweepRow(const std::string &payload, SweepRow &row,
               std::string *error)
{
    auto failWith = [&](const char *what) {
        if (error)
            *error = what;
        return false;
    };

    Decoder dec(payload);
    uint8_t version;
    if (!dec.get8(version))
        return failWith("empty payload");
    if (version != codecVersion)
        return failWith("unknown sweep-row schema version");

    row = SweepRow{};
    sim::RunResult &r = row.result;
    cpu::PipelineStats &p = r.pipeline;
    uint8_t sampled = 0;
    bool ok = dec.getString(row.error) && dec.getString(row.errorKind) &&
              dec.getString(row.phase) &&
              dec.getString(r.workload) && dec.getString(r.machine) &&
              dec.get64(r.instructions) && dec.get64(r.cycles) &&
              dec.getDouble(r.ipc) && dec.getDouble(r.branchMpki) &&
              dec.getDouble(r.llcMpki) &&
              dec.getDouble(r.avgMisspecPenalty) &&
              dec.getDouble(r.avgIqWait) &&
              dec.getDouble(r.unconfidentBranchRate) &&
              dec.getDouble(r.pubsEnabledFraction) &&
              dec.get64(r.priorityStallCycles) &&
              dec.getDouble(r.simSeconds) && dec.get8(sampled) &&
              dec.get32(r.windows) && dec.get64(r.skippedInsts) &&
              dec.getDouble(r.ipcCi95) &&
              dec.getDouble(r.branchMpkiCi95) &&
              dec.getDouble(r.llcMpkiCi95) && dec.get64(p.cycles) &&
              dec.get64(p.committed) && dec.get64(p.fetched) &&
              dec.get64(p.condBranches) && dec.get64(p.condMispredicts) &&
              dec.get64(p.indirectJumps) &&
              dec.get64(p.indirectMispredicts) &&
              dec.get64(p.btbMissBubbles) && dec.get64(p.llcMisses) &&
              dec.get64(p.l1dAccesses) && dec.get64(p.l1dMisses) &&
              dec.get64(p.priorityDispatches) &&
              dec.get64(p.normalDispatches) &&
              dec.get64(p.priorityStallCycles) &&
              dec.get64(p.iqFullStallCycles) &&
              dec.get64(p.robFullStallCycles) &&
              dec.get64(p.issueConflictCycles) && dec.get64(p.issued) &&
              dec.get64(p.misspecPenaltySum) &&
              dec.get64(p.misspecPenaltyCount) &&
              dec.get64(p.wrongPathFetched) && dec.get64(p.squashed) &&
              dec.get64(p.iqWaitSum) && dec.get64(p.checkerCommits) &&
              dec.get64(p.checkerDivergences) && dec.get64(p.auditsRun) &&
              dec.get64(p.auditViolations) &&
              dec.getHistogram(p.misspecPenalty) &&
              dec.getHistogram(p.iqOccupancy) &&
              dec.getHistogram(p.iqWait);
    if (!ok)
        return failWith("short or malformed sweep-row payload");
    if (sampled > 1)
        return failWith("malformed sampled flag in sweep-row payload");
    r.sampled = sampled != 0;

    uint32_t components;
    if (!dec.get32(components) || components != cpu::numCpiComponents)
        return failWith("CPI-stack shape mismatch in sweep-row payload");
    for (size_t c = 0; c < cpu::numCpiComponents; ++c)
        if (!dec.get64(p.cpi.cycles[c]))
            return failWith("short CPI stack in sweep-row payload");

    uint32_t branches;
    if (!dec.get32(branches) || branches > sim::maxBranchProfileRows)
        return failWith("implausible branch-profile row count");
    r.branchProfile.resize(branches);
    for (sim::BranchProfileRow &b : r.branchProfile) {
        uint64_t pc;
        if (!dec.get64(pc) || !dec.get64(b.commits) ||
            !dec.get64(b.mispredicts) || !dec.get64(b.penaltyCycles) ||
            !dec.get64(b.confCorrect) || !dec.get64(b.confWrong) ||
            !dec.get64(b.unconfCorrect) || !dec.get64(b.unconfWrong) ||
            !dec.get64(b.sliceInsts) || !dec.get64(b.sliceCovered))
            return failWith("short branch-profile row");
        b.pc = (Pc)pc;
    }
    if (!dec.exhausted())
        return failWith("trailing bytes after sweep-row payload");
    return true;
}

} // namespace pubs::bench
