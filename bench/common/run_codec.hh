/**
 * @file
 * Bit-exact serialization of one sweep outcome (SweepRow: RunResult +
 * error info, including the full PipelineStats histograms) into a byte
 * payload, used both by the proc-pool pipe frames and by sweep-journal
 * records. Doubles travel as raw IEEE-754 bit patterns, so a decoded
 * row renders byte-identically to the in-process original — the sweep
 * engine's determinism contract survives the process boundary and a
 * journal round trip.
 */

#ifndef PUBS_BENCH_COMMON_RUN_CODEC_HH
#define PUBS_BENCH_COMMON_RUN_CODEC_HH

#include <string>

#include "common/bench_util.hh"

namespace pubs::bench
{

/** Serialize @p row (schema versioned; see run_codec.cc). */
std::string encodeSweepRow(const SweepRow &row);

/**
 * Decode @p payload into @p row.
 * @return true on success; false (with @p error set when non-null) on a
 * short, overlong, or unknown-version payload. @p row is unspecified on
 * failure.
 */
bool decodeSweepRow(const std::string &payload, SweepRow &row,
                    std::string *error = nullptr);

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_RUN_CODEC_HH
