/**
 * @file
 * KIPS regression gate: compare a fresh hostspeed record against the
 * committed baseline.
 *
 * The hostspeed record (BENCH_hostspeed.json, written by
 * `bench_micro_components --hostspeed`) captures per-run simulation
 * speed in KIPS. The gate strict-parses both documents (common/json.hh),
 * joins runs on (workload, machine), and flags a regression when a
 * fresh run is more than the per-workload tolerance below its baseline
 * or the geomean drops by more than the geomean tolerance. Improvements
 * never fail the gate — the baseline is a floor, not a pin.
 *
 * Every evaluation can be appended to a markdown ledger
 * (BENCH_LEDGER.md) so the speed history survives in-repo. The ledger
 * is append-only and written through atomicAppendFile.
 */

#ifndef PUBS_BENCH_COMMON_KIPS_GATE_HH
#define PUBS_BENCH_COMMON_KIPS_GATE_HH

#include <string>
#include <vector>

namespace pubs::bench
{

/** Gate tolerances; defaults match the CI policy. */
struct GateConfig
{
    /** A run may be this fraction below baseline before failing. */
    double perWorkloadTolerance = 0.15;
    /** The geomean may be this fraction below baseline before failing. */
    double geomeanTolerance = 0.07;
};

/** One (workload, machine) pair present in both records. */
struct GateDelta
{
    std::string workload;
    std::string machine;
    double baselineKips = 0.0;
    double freshKips = 0.0;
    double ratio = 0.0; ///< fresh / baseline
    bool regressed = false;
};

/** Outcome of one gate evaluation. */
struct GateResult
{
    /** Non-empty when the inputs could not be read/parsed/joined. */
    std::string error;

    bool pass = false;
    std::vector<GateDelta> deltas;
    /** Baseline (workload, machine) pairs absent from the fresh run. */
    std::vector<std::string> missing;
    double baselineGeomean = 0.0;
    double freshGeomean = 0.0;
    double geomeanRatio = 0.0; ///< fresh / baseline
    bool geomeanRegressed = false;
    GateConfig config;

    /** Count of per-workload regressions. */
    size_t regressions() const;

    /** Human-readable multi-line report (worst deltas first). */
    std::string report() const;

    /** One markdown ledger row: | label | geomean | ratio | verdict |. */
    std::string ledgerRow(const std::string &label) const;
};

/**
 * Evaluate @p fresh against @p baseline (both parsed hostspeed JSON
 * documents as text). Pure function of its inputs — file IO lives in
 * runKipsGateFiles().
 */
GateResult runKipsGate(const std::string &baselineJson,
                       const std::string &freshJson,
                       const GateConfig &config = {});

/** Evaluate two hostspeed files. */
GateResult runKipsGateFiles(const std::string &baselinePath,
                            const std::string &freshPath,
                            const GateConfig &config = {});

/**
 * Append result @p r as one row to the markdown ledger at @p path,
 * creating the file with its table header when absent. @p label names
 * the evaluation (e.g. a date or CI run id).
 * @return empty on success, error text otherwise.
 */
std::string appendLedger(const std::string &path, const GateResult &r,
                         const std::string &label);

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_KIPS_GATE_HH
