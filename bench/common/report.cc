#include "common/report.hh"

#include <cstring>
#include <mutex>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace pubs::bench
{

namespace
{

std::mutex reportMutex;

/**
 * Make a JSON document safe to inline inside a <script> element: the
 * byte sequence "</" (as in a "</script>" inside a string value) would
 * end the script early, and "\/" is a legal JSON escape for '/'.
 */
std::string
scriptSafe(std::string json)
{
    std::string out;
    out.reserve(json.size());
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '<' && i + 1 < json.size() && json[i + 1] == '/') {
            out += "<\\/";
            ++i;
        } else {
            out += json[i];
        }
    }
    return out;
}

} // namespace

void
ReportBuilder::setTitle(std::string title)
{
    std::lock_guard<std::mutex> lock(reportMutex);
    title_ = std::move(title);
}

void
ReportBuilder::addSweep(const SweepSpec &spec, const SweepResult &result)
{
    std::lock_guard<std::mutex> lock(reportMutex);
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        Run run;
        run.workload = spec.items[i].workload.name;
        run.machine = spec.items[i].machine;
        run.ok = row.ok();
        run.instructions = row.result.instructions;
        run.cycles = row.result.cycles;
        run.ipc = row.result.ipc;
        run.kips = row.result.kips();
        run.branchMpki = row.result.branchMpki;
        run.llcMpki = row.result.llcMpki;
        run.unconfidentRate = row.result.unconfidentBranchRate;
        run.errorKind = row.errorKind;
        if (row.ok() && cpiStackRequested()) {
            run.hasCpi = true;
            run.cpi = row.result.pipeline.cpi.cycles;
        }
        if (row.ok() && branchProfileRequested()) {
            for (const sim::BranchProfileRow &b :
                 row.result.branchProfile) {
                Run::Branch branch;
                branch.pc = b.pc;
                branch.commits = b.commits;
                branch.mispredicts = b.mispredicts;
                branch.penaltyCycles = b.penaltyCycles;
                branch.unconfCorrect = b.unconfCorrect;
                branch.unconfWrong = b.unconfWrong;
                branch.sliceInsts = b.sliceInsts;
                branch.sliceCovered = b.sliceCovered;
                run.branches.push_back(branch);
            }
        }
        runs_.push_back(std::move(run));
    }
    farm_.launches += result.farm.launches;
    farm_.crashes += result.farm.crashes;
    farm_.timeouts += result.farm.timeouts;
    farm_.staleKills += result.farm.staleKills;
    farm_.corruptFrames += result.farm.corruptFrames;
    farm_.retries += result.farm.retries;
    farm_.skips += result.farm.skips;
    farm_.journalServed += result.farm.journalServed;
    ++sweeps_;
    jobs_ = result.jobs;
    wallSeconds_ += result.wallSeconds;
    busySeconds_ += result.busySeconds;
}

void
ReportBuilder::addRun(const Run &run)
{
    std::lock_guard<std::mutex> lock(reportMutex);
    runs_.push_back(run);
}

void
ReportBuilder::setStatsJson(std::string statsJson)
{
    json::Value parsed;
    std::string error;
    if (!json::parse(statsJson, parsed, error)) {
        warn("dropping invalid stats JSON from the dashboard: %s",
             error.c_str());
        return;
    }
    std::lock_guard<std::mutex> lock(reportMutex);
    statsJson_ = std::move(statsJson);
}

std::string
ReportBuilder::dataJson() const
{
    std::lock_guard<std::mutex> lock(reportMutex);
    auto quoted = [](const std::string &s) {
        return '"' + jsonEscape(s) + '"';
    };
    std::ostringstream out;
    out << "{\n\"title\": "
        << quoted(title_.empty() ? "PUBS sweep farm" : title_) << ",\n";
    out << "\"sweeps\": " << sweeps_ << ",\n";
    out << "\"jobs\": " << jobs_ << ",\n";
    out << "\"wall_seconds\": " << jsonNumber(wallSeconds_) << ",\n";
    out << "\"busy_seconds\": " << jsonNumber(busySeconds_) << ",\n";
    out << "\"runs\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
        const Run &r = runs_[i];
        out << (i ? ",\n " : "\n ") << "{\"workload\": "
            << quoted(r.workload) << ", \"machine\": " << quoted(r.machine)
            << ", \"ok\": " << (r.ok ? "true" : "false")
            << ", \"instructions\": " << r.instructions
            << ", \"cycles\": " << r.cycles
            << ", \"ipc\": " << jsonNumber(r.ipc)
            << ", \"kips\": " << jsonNumber(r.kips)
            << ", \"branch_mpki\": " << jsonNumber(r.branchMpki)
            << ", \"llc_mpki\": " << jsonNumber(r.llcMpki)
            << ", \"unconfident_rate\": " << jsonNumber(r.unconfidentRate)
            << ", \"error_kind\": " << quoted(r.errorKind);
        if (r.hasCpi) {
            out << ", \"cpi\": {";
            for (size_t c = 0; c < cpu::numCpiComponents; ++c) {
                out << (c ? ", " : "") << '"'
                    << cpu::cpiComponentName((cpu::CpiComponent)c)
                    << "\": " << r.cpi[c];
            }
            out << "}";
        }
        if (!r.branches.empty()) {
            out << ", \"branches\": [";
            for (size_t b = 0; b < r.branches.size(); ++b) {
                const Run::Branch &br = r.branches[b];
                out << (b ? ", " : "") << "{\"pc\": " << br.pc
                    << ", \"commits\": " << br.commits
                    << ", \"mispredicts\": " << br.mispredicts
                    << ", \"penalty_cycles\": " << br.penaltyCycles
                    << ", \"unconf_correct\": " << br.unconfCorrect
                    << ", \"unconf_wrong\": " << br.unconfWrong
                    << ", \"slice_insts\": " << br.sliceInsts
                    << ", \"slice_covered\": " << br.sliceCovered << "}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "\n],\n";
    out << "\"farm\": {\"launches\": " << farm_.launches
        << ", \"crashes\": " << farm_.crashes
        << ", \"timeouts\": " << farm_.timeouts
        << ", \"stale_kills\": " << farm_.staleKills
        << ", \"corrupt_frames\": " << farm_.corruptFrames
        << ", \"retries\": " << farm_.retries
        << ", \"skips\": " << farm_.skips
        << ", \"journal_served\": " << farm_.journalServed << "}";
    if (!statsJson_.empty()) {
        // Already validated by setStatsJson(); spliced in verbatim.
        std::string stats = statsJson_;
        while (!stats.empty() &&
               (stats.back() == '\n' || stats.back() == ' '))
            stats.pop_back();
        out << ",\n\"stats\": " << stats;
    }
    out << "\n}\n";
    return out.str();
}

std::string
ReportBuilder::html() const
{
    return renderDashboardHtml(dataJson());
}

std::string
ReportBuilder::writeHtml(const std::string &path) const
{
    return atomicWriteFile(path, html());
}

void
ReportBuilder::clear()
{
    std::lock_guard<std::mutex> lock(reportMutex);
    title_.clear();
    runs_.clear();
    farm_ = FarmStats{};
    sweeps_ = 0;
    jobs_ = 0;
    wallSeconds_ = 0.0;
    busySeconds_ = 0.0;
    statsJson_.clear();
}

ReportBuilder &
globalReport()
{
    static ReportBuilder *builder = new ReportBuilder;
    return *builder;
}

std::string
renderDashboardHtml(const std::string &dataJson)
{
    // One static page: data inline, styling inline, rendering in plain
    // DOM JS. No external requests, so it works from file:// and in
    // air-gapped CI artifact viewers.
    static const char *prefix = R"HTML(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>PUBS sweep dashboard</title>
<style>
 body { font: 14px/1.45 system-ui, sans-serif; margin: 24px;
        background: #0f1419; color: #d7dde4; }
 h1 { font-size: 20px; margin: 0 0 4px; }
 h2 { font-size: 15px; margin: 28px 0 8px; color: #9ecbff;
      border-bottom: 1px solid #243240; padding-bottom: 4px; }
 .sub { color: #8696a7; margin-bottom: 18px; }
 .cards { display: flex; flex-wrap: wrap; gap: 10px; }
 .card { background: #18202a; border: 1px solid #243240;
         border-radius: 8px; padding: 10px 16px; min-width: 110px; }
 .card .v { font-size: 20px; font-weight: 600; }
 .card .k { font-size: 11px; color: #8696a7; text-transform: uppercase;
            letter-spacing: .05em; }
 .bar-row { display: flex; align-items: center; margin: 3px 0; }
 .bar-label { width: 220px; white-space: nowrap; overflow: hidden;
              text-overflow: ellipsis; font-family: ui-monospace,
              monospace; font-size: 12px; }
 .bar-track { flex: 1; background: #18202a; border-radius: 4px;
              height: 18px; position: relative; }
 .bar-fill { height: 100%; border-radius: 4px; background: #2f81f7; }
 .stack-track { flex: 1; background: #18202a; border-radius: 4px;
                height: 18px; display: flex; overflow: hidden; }
 .stack-seg { height: 100%; }
 .legend { display: flex; flex-wrap: wrap; gap: 10px; margin: 6px 0 10px;
           font-size: 12px; }
 .legend .swatch { display: inline-block; width: 10px; height: 10px;
                   border-radius: 2px; margin-right: 4px; }
 .bar-fill.good { background: #3fb950; }
 .bar-fill.warn { background: #d29922; }
 .bar-fill.bad { background: #f85149; }
 .bar-value { margin-left: 8px; width: 90px; font-family: ui-monospace,
              monospace; font-size: 12px; color: #9ecbff; }
 table { border-collapse: collapse; font-size: 13px; }
 td, th { padding: 4px 12px; border-bottom: 1px solid #243240;
          text-align: right; }
 th { color: #8696a7; font-weight: 500; }
 td:first-child, th:first-child { text-align: left; }
 .fail { color: #f85149; }
 .empty { color: #8696a7; font-style: italic; }
</style>
</head>
<body>
<div id="app"></div>
<script id="data" type="application/json">
)HTML";

    static const char *suffix = R"HTML(</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("data").textContent);
const app = document.getElementById("app");

function el(tag, cls, text) {
  const node = document.createElement(tag);
  if (cls) node.className = cls;
  if (text !== undefined) node.textContent = text;
  return node;
}

function section(title) {
  app.appendChild(el("h2", "", title));
  const box = el("div");
  app.appendChild(box);
  return box;
}

function bar(box, label, value, max, text, cls) {
  const row = el("div", "bar-row");
  row.appendChild(el("div", "bar-label", label));
  const track = el("div", "bar-track");
  const fill = el("div", "bar-fill" + (cls ? " " + cls : ""));
  const pct = max > 0 ? Math.max(0, Math.min(100, 100 * value / max)) : 0;
  fill.style.width = pct + "%";
  track.appendChild(fill);
  row.appendChild(track);
  row.appendChild(el("div", "bar-value", text));
  box.appendChild(row);
}

function card(box, key, value, cls) {
  const c = el("div", "card");
  c.appendChild(el("div", "v" + (cls ? " " + cls : ""), value));
  c.appendChild(el("div", "k", key));
  box.appendChild(c);
}

function geomean(values) {
  if (!values.length) return 0;
  let log = 0;
  for (const v of values) log += Math.log(v);
  return Math.exp(log / values.length);
}

// --- header + summary cards ---
app.appendChild(el("h1", "", DATA.title));
const ok = DATA.runs.filter(r => r.ok);
const failed = DATA.runs.filter(r => !r.ok);
app.appendChild(el("div", "sub",
  DATA.runs.length + " runs, " + DATA.sweeps + " sweeps, " +
  DATA.jobs + " workers"));
const cards = el("div", "cards");
app.appendChild(cards);
card(cards, "runs ok", String(ok.length));
card(cards, "runs failed", String(failed.length),
     failed.length ? "fail" : "");
card(cards, "geomean KIPS",
     geomean(ok.map(r => r.kips).filter(k => k > 0)).toFixed(0));
card(cards, "wall seconds", DATA.wall_seconds.toFixed(1));
if (DATA.wall_seconds > 0 && DATA.jobs > 0)
  card(cards, "utilization", (100 * DATA.busy_seconds /
       (DATA.wall_seconds * DATA.jobs)).toFixed(0) + "%");

// --- per-workload KIPS bars ---
{
  const box = section("Host speed (KIPS per run)");
  const withSpeed = ok.filter(r => r.kips > 0);
  if (!withSpeed.length) {
    box.appendChild(el("div", "empty", "no host-speed data"));
  } else {
    const max = Math.max(...withSpeed.map(r => r.kips));
    for (const r of withSpeed)
      bar(box, r.workload + " / " + r.machine, r.kips, max,
          r.kips.toFixed(0) + " KIPS");
  }
}

// --- base-vs-pubs IPC speedup ---
{
  const box = section("IPC speedup vs baseline");
  const byWorkload = new Map();
  for (const r of ok) {
    if (!byWorkload.has(r.workload)) byWorkload.set(r.workload, []);
    byWorkload.get(r.workload).push(r);
  }
  const rows = [];
  for (const [workload, runs] of byWorkload) {
    if (runs.length < 2) continue;
    let base = runs.find(r => /base/i.test(r.machine)) || runs[0];
    if (base.ipc <= 0) continue;
    for (const r of runs) {
      if (r === base) continue;
      rows.push({ label: workload + ": " + r.machine + " / " +
                  base.machine, speedup: r.ipc / base.ipc });
    }
  }
  if (!rows.length) {
    box.appendChild(el("div", "empty",
      "needs at least two machines per workload"));
  } else {
    const max = Math.max(1.0, ...rows.map(r => r.speedup));
    for (const r of rows) {
      const pct = (100 * (r.speedup - 1)).toFixed(1);
      bar(box, r.label, r.speedup, max,
          r.speedup.toFixed(3) + " (" + (pct >= 0 ? "+" : "") + pct +
          "%)", r.speedup >= 1 ? "good" : "bad");
    }
  }
}

// --- top-down CPI stacks ---
{
  const withCpi = ok.filter(r => r.cpi);
  if (withCpi.length) {
    const box = section("Top-down CPI stack (fraction of cycles)");
    const COLORS = {
      base: "#3fb950", frontend: "#9ecbff", branch_recovery: "#f85149",
      branch_misspec: "#d29922", mem_l2: "#a371f7", mem_dram: "#6e40c9",
      rob_full: "#f0883e", iq_full: "#db6d28", lsq_full: "#bf4b8a",
      rename_full: "#768390", priority_stall: "#e3b341",
      execute: "#2f81f7"
    };
    const names = Object.keys(withCpi[0].cpi);
    const legend = el("div", "legend");
    for (const name of names) {
      const item = el("span");
      const swatch = el("span", "swatch");
      swatch.style.background = COLORS[name] || "#768390";
      item.appendChild(swatch);
      item.appendChild(document.createTextNode(name));
      legend.appendChild(item);
    }
    box.appendChild(legend);
    for (const r of withCpi) {
      const total = names.reduce((sum, n) => sum + r.cpi[n], 0);
      if (!total) continue;
      const row = el("div", "bar-row");
      row.appendChild(el("div", "bar-label",
                         r.workload + " / " + r.machine));
      const track = el("div", "stack-track");
      for (const name of names) {
        if (!r.cpi[name]) continue;
        const seg = el("div", "stack-seg");
        seg.style.width = (100 * r.cpi[name] / total) + "%";
        seg.style.background = COLORS[name] || "#768390";
        seg.title = name + ": " +
                    (100 * r.cpi[name] / total).toFixed(1) + "%";
        track.appendChild(seg);
      }
      row.appendChild(track);
      row.appendChild(el("div", "bar-value",
                         (total / (r.instructions || 1)).toFixed(3) +
                         " CPI"));
      box.appendChild(row);
    }
  }
}

// --- top branch sites ---
{
  const rows = [];
  for (const r of ok) {
    for (const b of (r.branches || []))
      rows.push({ run: r, b: b });
  }
  if (rows.length) {
    const box = section("Top branch sites by misprediction cost");
    rows.sort((x, y) => y.b.mispredicts - x.b.mispredicts ||
                        y.b.penalty_cycles - x.b.penalty_cycles ||
                        x.b.pc - y.b.pc);
    const table = el("table");
    const head = el("tr");
    for (const key of ["run", "pc", "commits", "mispredicts",
                       "penalty cycles", "unconf %", "slice cov"])
      head.appendChild(el("th", "", key));
    table.appendChild(head);
    for (const { run, b } of rows.slice(0, 15)) {
      const tr = el("tr");
      tr.appendChild(el("td", "", run.workload + " / " + run.machine));
      tr.appendChild(el("td", "", "0x" + b.pc.toString(16)));
      tr.appendChild(el("td", "", String(b.commits)));
      tr.appendChild(el("td", "", String(b.mispredicts)));
      tr.appendChild(el("td", "", String(b.penalty_cycles)));
      const unconf = b.unconf_correct + b.unconf_wrong;
      tr.appendChild(el("td", "", b.commits ?
        (100 * unconf / b.commits).toFixed(1) + "%" : "-"));
      tr.appendChild(el("td", "", b.slice_insts ?
        (b.slice_covered / b.slice_insts).toFixed(2) : "-"));
      table.appendChild(tr);
    }
    box.appendChild(table);
  }
}

// --- slice telemetry ---
{
  const box = section("Slice telemetry");
  const tel = DATA.stats && DATA.stats.pubs && DATA.stats.pubs.telemetry;
  if (tel && typeof tel.slice_coverage === "number") {
    bar(box, "true-slice coverage", tel.slice_coverage, 1,
        (100 * tel.slice_coverage).toFixed(1) + "%", "good");
    bar(box, "slice accuracy", tel.slice_accuracy || 0, 1,
        (100 * (tel.slice_accuracy || 0)).toFixed(1) + "%", "good");
  } else {
    const withRate = ok.filter(r => r.unconfident_rate > 0);
    if (!withRate.length) {
      box.appendChild(el("div", "empty", "no slice telemetry recorded"));
    } else {
      for (const r of withRate)
        bar(box, r.workload + " / " + r.machine + " unconfident rate",
            r.unconfident_rate, 1,
            (100 * r.unconfident_rate).toFixed(1) + "%", "warn");
    }
  }
}

// --- farm health ---
{
  const box = section("Farm health");
  const farm = DATA.farm;
  const table = el("table");
  const head = el("tr");
  const body = el("tr");
  for (const [key, cls] of [["launches", ""], ["crashes", "fail"],
       ["timeouts", "fail"], ["stale_kills", "fail"],
       ["corrupt_frames", "fail"], ["retries", ""], ["skips", "fail"],
       ["journal_served", ""]]) {
    head.appendChild(el("th", "", key.replace("_", " ")));
    body.appendChild(el("td", farm[key] > 0 ? cls : "",
                        String(farm[key])));
  }
  table.appendChild(head);
  table.appendChild(body);
  box.appendChild(table);
}

// --- failures ---
if (failed.length) {
  const box = section("Failed runs");
  const table = el("table");
  const head = el("tr");
  for (const key of ["workload", "machine", "error kind"])
    head.appendChild(el("th", "", key));
  table.appendChild(head);
  for (const r of failed) {
    const row = el("tr");
    row.appendChild(el("td", "", r.workload));
    row.appendChild(el("td", "", r.machine));
    row.appendChild(el("td", "fail", r.error_kind));
    table.appendChild(row);
  }
  box.appendChild(table);
}
</script>
</body>
</html>
)HTML";

    std::string out;
    std::string data = scriptSafe(dataJson);
    out.reserve(std::strlen(prefix) + data.size() + std::strlen(suffix));
    out += prefix;
    out += data;
    out += suffix;
    return out;
}

} // namespace pubs::bench
