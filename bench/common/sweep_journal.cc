#include "common/sweep_journal.hh"

#include <cerrno>
#include <cstring>

#include <signal.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::bench
{

namespace
{

constexpr char journalMagic[8] = {'P', 'U', 'B', 'S', 'J', 'N', 'L', '1'};
constexpr uint32_t journalVersion = 1;
constexpr uint32_t recordMagic = 0x43455242u; // "BREC" little-endian
constexpr size_t headerBytes = 32;
constexpr size_t recordHeaderBytes = 20;

void
pack32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

void
pack64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

uint32_t
unpack32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)in[i] << (8 * i);
    return v;
}

uint64_t
unpack64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)in[i] << (8 * i);
    return v;
}

} // namespace

SweepJournal::SweepJournal(std::string path, uint64_t specKey,
                           uint64_t slots, bool resume)
    : path_(std::move(path)), specKey_(specKey), slots_(slots),
      payloads_(slots), present_(slots, false),
      faults_(proc::faultPlanFromEnv())
{
    load(resume);
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

void
SweepJournal::load(bool resume)
{
    // Recover the valid prefix of an existing journal (resume mode).
    long validBytes = headerBytes;
    bool keep = false;
    if (resume) {
        std::FILE *in = std::fopen(path_.c_str(), "rb");
        if (in) {
            uint8_t header[headerBytes];
            if (std::fread(header, 1, sizeof(header), in) ==
                    sizeof(header) &&
                std::memcmp(header, journalMagic, sizeof(journalMagic)) ==
                    0 &&
                unpack32(header + 8) == journalVersion &&
                unpack64(header + 16) == specKey_ &&
                unpack64(header + 24) == slots_) {
                keep = true;
                for (;;) {
                    uint8_t rec[recordHeaderBytes];
                    if (std::fread(rec, 1, sizeof(rec), in) != sizeof(rec))
                        break; // torn tail: header cut short
                    if (unpack32(rec + 0) != recordMagic)
                        break;
                    uint64_t slot = unpack64(rec + 4);
                    uint32_t length = unpack32(rec + 12);
                    uint32_t crc = unpack32(rec + 16);
                    if (slot >= slots_ || length > (64u << 20))
                        break;
                    std::string payload(length, '\0');
                    if (length &&
                        std::fread(payload.data(), 1, length, in) !=
                            length) {
                        break; // torn tail: payload cut short
                    }
                    if (crc32(payload) != crc)
                        break; // bit rot or torn write
                    if (!present_[(size_t)slot])
                        ++loaded_;
                    present_[(size_t)slot] = true;
                    payloads_[(size_t)slot] = std::move(payload);
                    validBytes += (long)(recordHeaderBytes + length);
                }
                long end = -1;
                if (std::fseek(in, 0, SEEK_END) == 0)
                    end = std::ftell(in);
                if (end >= 0 && end != validBytes) {
                    warn("sweep journal '%s': discarding %ld bytes of "
                         "torn/corrupt tail after %zu valid records",
                         path_.c_str(), end - validBytes, loaded_);
                }
            } else {
                warn("sweep journal '%s' does not match this sweep "
                     "(different spec, budgets, or format); starting "
                     "fresh",
                     path_.c_str());
            }
            std::fclose(in);
        }
    }

    if (keep) {
        // Drop the torn tail, then append after the valid prefix.
        if (::truncate(path_.c_str(), validBytes) != 0) {
            warn("sweep journal '%s': cannot truncate torn tail: %s",
                 path_.c_str(), std::strerror(errno));
        }
        file_ = std::fopen(path_.c_str(), "ab");
        if (!file_) {
            throw SimError(SimError::Kind::Fatal,
                           "cannot reopen sweep journal '" + path_ +
                               "': " + std::strerror(errno));
        }
        return;
    }

    loaded_ = 0;
    std::fill(present_.begin(), present_.end(), false);
    file_ = std::fopen(path_.c_str(), "wb");
    if (!file_) {
        throw SimError(SimError::Kind::Fatal,
                       "cannot create sweep journal '" + path_ +
                           "': " + std::strerror(errno));
    }
    uint8_t header[headerBytes] = {};
    std::memcpy(header, journalMagic, sizeof(journalMagic));
    pack32(header + 8, journalVersion);
    pack64(header + 16, specKey_);
    pack64(header + 24, slots_);
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
        std::fflush(file_) != 0) {
        warn("sweep journal '%s': cannot write header: %s (journaling "
             "disabled)",
             path_.c_str(), std::strerror(errno));
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
SweepJournal::has(size_t slot) const
{
    return slot < present_.size() && present_[slot];
}

const std::string &
SweepJournal::payload(size_t slot) const
{
    return payloads_.at(slot);
}

void
SweepJournal::record(size_t slot, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_ || slot >= slots_)
        return;
    std::string rec(recordHeaderBytes, '\0');
    pack32((uint8_t *)rec.data() + 0, recordMagic);
    pack64((uint8_t *)rec.data() + 4, slot);
    pack32((uint8_t *)rec.data() + 12, (uint32_t)payload.size());
    pack32((uint8_t *)rec.data() + 16, crc32(payload));
    rec += payload;
    // One fwrite per record, then flush + fdatasync: the record is
    // durable before the sweep moves on, and a torn append is confined
    // to the (CRC-guarded) tail.
    if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size() ||
        std::fflush(file_) != 0) {
        warn("sweep journal '%s': append failed: %s (resumability lost "
             "from here)",
             path_.c_str(), std::strerror(errno));
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    ::fdatasync(::fileno(file_));

    ++commits_;
    if (faults_.killAfter && commits_ >= faults_.killAfter) {
        // Deterministic mid-sweep kill -9 for tests and CI: the record
        // just committed survives, everything in flight is lost.
        ::raise(SIGKILL);
    }
}

} // namespace pubs::bench
