#include "common/bench_util.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/checksum.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/run_codec.hh"
#include "common/stats.hh"
#include "common/sweep_journal.hh"
#include "sim/proc_pool.hh"
#include "sim/run_pool.hh"

namespace pubs::bench
{

namespace
{

uint64_t
envCount(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    fatal_if(end == value || parsed == 0, "bad %s value '%s'", name, value);
    return parsed;
}

/** Jobs pinned by --jobs / setBenchJobs(); 0 = auto. */
std::atomic<unsigned> pinnedJobs{0};

/** Worker processes pinned by --procs / setBenchProcs(). */
std::atomic<unsigned> pinnedProcs{0};
std::atomic<bool> procsPinned{false};

/** Journal path / resume flag pinned by --journal / --resume. */
std::mutex journalConfigMutex;
std::string pinnedJournalPath;
bool journalPathPinned = false;
int pinnedResume = -1; ///< -1 = unset, else 0/1

/** Serialises CSV appends across concurrent sweeps in one process. */
std::mutex csvMutex;

} // namespace

uint64_t
measureInsts()
{
    return envCount("PUBS_BENCH_INSTS", 1000000);
}

uint64_t
warmupInsts()
{
    return envCount("PUBS_BENCH_WARMUP", 200000);
}

unsigned
benchJobs()
{
    unsigned pinned = pinnedJobs.load(std::memory_order_relaxed);
    if (pinned)
        return pinned;
    uint64_t env = envCount("PUBS_BENCH_JOBS", 0x10000);
    if (env != 0x10000)
        return (unsigned)env;
    return sim::RunPool::hardwareThreads();
}

void
setBenchJobs(unsigned jobs)
{
    pinnedJobs.store(jobs, std::memory_order_relaxed);
}

unsigned
benchProcs()
{
    if (procsPinned.load(std::memory_order_relaxed))
        return pinnedProcs.load(std::memory_order_relaxed);
    uint64_t env = envCount("PUBS_BENCH_PROCS", 0x10000);
    if (env != 0x10000)
        return (unsigned)env;
    return 0;
}

void
setBenchProcs(unsigned procs)
{
    pinnedProcs.store(procs, std::memory_order_relaxed);
    procsPinned.store(true, std::memory_order_relaxed);
}

std::string
journalPath()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (journalPathPinned)
            return pinnedJournalPath;
    }
    const char *env = std::getenv("PUBS_BENCH_JOURNAL");
    return env ? env : "";
}

void
setJournalPath(std::string path)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedJournalPath = std::move(path);
    journalPathPinned = true;
}

bool
resumeRequested()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (pinnedResume >= 0)
            return pinnedResume != 0;
    }
    const char *env = std::getenv("PUBS_BENCH_RESUME");
    return env && *env && std::strcmp(env, "0") != 0;
}

void
setResume(bool resume)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedResume = resume ? 1 : 0;
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            unsigned long jobs = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(jobs == 0, "--jobs wants a positive thread count");
            setBenchJobs((unsigned)jobs);
        } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
            unsigned long procs = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(procs == 0,
                     "--procs wants a positive process count");
            setBenchProcs((unsigned)procs);
        } else if (std::strcmp(argv[i], "--journal") == 0 &&
                   i + 1 < argc) {
            setJournalPath(argv[++i]);
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            setResume(true);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--jobs N] [--procs N] [--journal PATH] "
                "[--resume]\n"
                "  --jobs N       parallel in-process runs (default: "
                "hardware concurrency, or $PUBS_BENCH_JOBS)\n"
                "  --procs N      fault-isolated worker processes "
                "instead of threads (or $PUBS_BENCH_PROCS); crashed or "
                "hung runs are retried, then skipped\n"
                "  --journal PATH write-ahead journal of completed runs "
                "(or $PUBS_BENCH_JOURNAL)\n"
                "  --resume       serve journaled runs of an "
                "interrupted sweep (or $PUBS_BENCH_RESUME=1)\n",
                argv[0]);
            std::exit(std::strcmp(argv[i], "--help") == 0 ? 0 : 2);
        }
    }
    if (resumeRequested() && journalPath().empty())
        fatal("--resume needs --journal PATH (or $PUBS_BENCH_JOURNAL)");
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    while (cells.size() < header_.size())
        cells.emplace_back("");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << cells[c]
                << std::string(widths[c] + 2 - cells[c].size(), ' ');
        }
        out << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
pct(double ratio)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buffer;
}

std::string
num(double value, int digits)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

bool
maybeWriteCsv(const std::string &benchName, const TextTable &table)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return false;
    std::string path = std::string(dir) + "/" + benchName + ".csv";
    std::ostringstream out;
    auto emitRow = [&out](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            out << (c ? "," : "") << cells[c];
        out << "\n";
    };
    emitRow(table.header());
    for (const auto &row : table.rows())
        emitRow(row);
    std::string error = atomicWriteFile(path, out.str());
    if (!error.empty()) {
        warn("cannot write CSV: %s", error.c_str());
        return false;
    }
    return true;
}

namespace
{

/**
 * Atomically append @p rows to $PUBS_BENCH_CSV/<name> (creating it
 * with @p header): a kill mid-write leaves the previous complete file,
 * never a torn one. Caller holds csvMutex (or is provably
 * single-threaded); atomicity is per whole file, not per line.
 */
void
appendCsvAtomic(const char *name, const char *header,
                const std::string &rows)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir || rows.empty())
        return;
    std::string path = std::string(dir) + "/" + name;
    std::string error = atomicAppendFile(path, header, rows);
    if (!error.empty())
        warn("cannot append CSV: %s", error.c_str());
}

/**
 * One host-speed record for $PUBS_BENCH_CSV/simspeed.csv, so every
 * bench invocation accumulates a simulator-performance log alongside
 * its model results.
 */
std::string
simSpeedCsvLine(const sim::RunResult &result,
                const cpu::CoreParams &params)
{
    char line[192];
    std::snprintf(line, sizeof(line), "%s,%d,%llu,%llu,%.4f,%.1f\n",
                  result.workload.c_str(), params.usePubs ? 1 : 0,
                  (unsigned long long)result.instructions,
                  (unsigned long long)result.cycles, result.simSeconds,
                  result.kips());
    return line;
}

constexpr const char *simSpeedCsvHeader =
    "workload,pubs,instructions,cycles,sim_seconds,kips\n";

/**
 * Record every skipped item of a finished sweep in
 * $PUBS_BENCH_CSV/skipped.csv (header on creation), in spec order, so
 * a batch's holes are machine-readable instead of stderr-only.
 */
void
appendSkipCsv(const SweepSpec &spec, const SweepResult &result)
{
    if (result.failed() == 0)
        return;
    std::ostringstream out;
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        if (row.ok())
            continue;
        // Quote the free-text message; strip characters that would
        // break one-row-per-line parsing.
        std::string message = row.error;
        for (char &c : message)
            if (c == '\n' || c == '\r' || c == '"')
                c = ' ';
        out << spec.items[i].workload.name << ','
            << spec.items[i].machine << ',' << row.errorKind << ",\""
            << message << "\"\n";
    }
    appendCsvAtomic("skipped.csv", "workload,machine,error_kind,error\n",
                    out.str());
}

/** Append one pool-utilization record to sweep_pool.csv. */
void
appendPoolCsv(const SweepResult &result)
{
    char line[160];
    std::snprintf(line, sizeof(line), "%zu,%zu,%u,%.4f,%.4f,%.3f\n",
                  result.rows.size(), result.failed(), result.jobs,
                  result.wallSeconds, result.busySeconds,
                  result.utilization());
    appendCsvAtomic("sweep_pool.csv",
                    "runs,failed,jobs,wall_seconds,busy_seconds,"
                    "utilization\n",
                    line);
}

} // namespace

sim::RunResult
runWorkload(const wl::Workload &workload, const cpu::CoreParams &params)
{
    sim::RunResult result =
        sim::simulate(params, workload.program, warmupInsts(),
                      measureInsts());
    result.workload = workload.name;
    std::lock_guard<std::mutex> lock(csvMutex);
    appendCsvAtomic("simspeed.csv", simSpeedCsvHeader,
                    simSpeedCsvLine(result, params));
    return result;
}

size_t
SweepSpec::add(wl::Workload workload, cpu::CoreParams params,
               std::string machine)
{
    items.push_back(
        {std::move(workload), std::move(params), std::move(machine)});
    return items.size() - 1;
}

std::string
SweepResult::statsJson() const
{
    auto quoted = [](const std::string &s) {
        return '"' + jsonEscape(s) + '"';
    };
    std::ostringstream out;
    out << "{\"sweep\": {\"runs\": " << rows.size()
        << ", \"failed\": " << failed() << "},\n\"runs\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &row = rows[i];
        const sim::RunResult &r = row.result;
        out << (i ? ",\n " : "\n ") << "{\"workload\": "
            << quoted(r.workload)
            << ", \"machine\": " << quoted(r.machine)
            << ", \"ok\": " << (row.ok() ? "true" : "false");
        if (row.ok()) {
            out << ", \"instructions\": " << r.instructions
                << ", \"cycles\": " << r.cycles
                << ", \"ipc\": " << jsonNumber(r.ipc)
                << ", \"branch_mpki\": " << jsonNumber(r.branchMpki)
                << ", \"llc_mpki\": " << jsonNumber(r.llcMpki)
                << ", \"avg_misspec_penalty\": "
                << jsonNumber(r.avgMisspecPenalty)
                << ", \"avg_iq_wait\": " << jsonNumber(r.avgIqWait)
                << ", \"unconfident_rate\": "
                << jsonNumber(r.unconfidentBranchRate)
                << ", \"pubs_enabled_fraction\": "
                << jsonNumber(r.pubsEnabledFraction)
                << ", \"priority_stall_cycles\": "
                << r.priorityStallCycles;
        } else {
            out << ", \"error_kind\": " << quoted(row.errorKind)
                << ", \"error\": " << quoted(row.error);
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

namespace
{

/**
 * Identity of a sweep for journal matching: a resumed journal must come
 * from the same items (workload, machine, full machine configuration,
 * seed) with the same budgets, in the same order. Hashes the
 * human-readable CoreParams description, which covers every field that
 * shapes a run.
 */
uint64_t
sweepKey(const SweepSpec &spec, uint64_t warmup, uint64_t insts)
{
    uint32_t lo = 0, hi = 0x50554253u;
    auto mix = [&](const std::string &text) {
        lo = crc32(text, lo);
        hi = crc32(text, hi ^ 0x9e3779b9u);
    };
    mix(std::to_string(warmup) + ":" + std::to_string(insts) + ":" +
        std::to_string(spec.items.size()));
    for (const SweepItem &item : spec.items) {
        mix(item.workload.name);
        mix(item.machine);
        mix(std::to_string(item.params.seed));
        mix(item.params.describe());
    }
    return ((uint64_t)hi << 32) | lo;
}

/** Run one sweep item to a SweepRow (never throws SimError out). */
SweepRow
runSweepItem(const SweepItem &item, uint64_t warmup, uint64_t insts)
{
    SweepRow row;
    try {
        // Each run owns its Simulator (pipeline, emulator, RNG
        // streams, stats); nothing is shared with siblings, so the
        // result depends only on the item, never on the schedule.
        sim::RunResult r = sim::simulate(item.params,
                                         item.workload.program, warmup,
                                         insts);
        r.workload = item.workload.name;
        r.machine = item.machine;
        row.result = std::move(r);
    } catch (const SimError &error) {
        // Skip-and-continue: one broken run must not sink the batch.
        row.error = error.what();
        row.errorKind = SimError::kindName(error.kind());
        row.result.workload = item.workload.name;
        row.result.machine = item.machine;
    }
    return row;
}

void
logSweepRow(const SweepRow &row, const SweepItem &item, size_t done,
            size_t total)
{
    if (row.ok()) {
        std::fprintf(stderr,
                     "  [%3zu/%zu] %-18s %-14s ipc=%.3f "
                     "brMPKI=%.1f llcMPKI=%.1f kips=%.0f\n",
                     done, total, item.workload.name.c_str(),
                     item.machine.c_str(), row.result.ipc,
                     row.result.branchMpki, row.result.llcMpki,
                     row.result.kips());
    } else {
        std::fprintf(stderr,
                     "  [%3zu/%zu] %-18s %-14s FAILED (%s: %s)\n", done,
                     total, item.workload.name.c_str(),
                     item.machine.c_str(), row.errorKind.c_str(),
                     row.error.c_str());
    }
}

/** In-process thread-pool execution of the slots in @p todo. */
void
runSweepThreads(const SweepSpec &spec, uint64_t warmup, uint64_t insts,
                const std::vector<size_t> &todo, SweepResult &result,
                SweepJournal *journal)
{
    sim::RunPool pool(spec.jobs ? spec.jobs : benchJobs());
    result.jobs = pool.threads();

    std::mutex logMutex;
    std::atomic<size_t> completed{0};
    for (size_t slot : todo) {
        pool.submit([&, slot] {
            const SweepItem &item = spec.items[slot];
            SweepRow &row = result.rows[slot];
            row = runSweepItem(item, warmup, insts);
            // Write-ahead: the row is durable before the sweep's final
            // output exists, so a kill from here on cannot lose it.
            if (journal)
                journal->record(slot, encodeSweepRow(row));
            size_t done = completed.fetch_add(1) + 1;
            if (spec.verbose) {
                std::lock_guard<std::mutex> lock(logMutex);
                logSweepRow(row, item, done, todo.size());
            }
        });
    }
    pool.wait();

    sim::PoolStats stats = pool.stats();
    result.wallSeconds = stats.wallSeconds;
    result.busySeconds = stats.busySeconds;
}

/**
 * Fault-isolated execution of the slots in @p todo across forked
 * worker processes: a crashing, hanging, or frame-corrupting run is
 * retried with backoff and, beyond retry, becomes a "proc" skip row.
 */
void
runSweepProcs(const SweepSpec &spec, uint64_t warmup, uint64_t insts,
              const std::vector<size_t> &todo, SweepResult &result,
              SweepJournal *journal, unsigned procs)
{
    sim::ProcPool::Config config =
        sim::ProcPool::configFromEnv(sim::ProcPool::Config{});
    config.procs = procs;
    config.verbose = spec.verbose;
    sim::ProcPool pool(config);
    result.jobs = pool.procs();

    size_t completed = 0;
    pool.run(
        todo.size(),
        [&](size_t index, unsigned attempt) {
            // Worker process: simulate and ship the row — including a
            // SimError skip row, which is a result, not a worker
            // failure — back over the CRC-checked pipe.
            (void)attempt;
            return encodeSweepRow(
                runSweepItem(spec.items[todo[index]], warmup, insts));
        },
        [&](size_t index, const sim::ProcResult &outcome) {
            // Parent, in completion order: decode, journal, report.
            size_t slot = todo[index];
            const SweepItem &item = spec.items[slot];
            SweepRow &row = result.rows[slot];
            if (outcome.ok && decodeSweepRow(outcome.payload, row)) {
                if (journal)
                    journal->record(slot, outcome.payload);
            } else {
                row = SweepRow{};
                row.error = outcome.ok
                                ? "worker returned an undecodable "
                                  "result payload"
                                : outcome.error;
                row.errorKind =
                    SimError::kindName(SimError::Kind::Proc);
                row.result.workload = item.workload.name;
                row.result.machine = item.machine;
                // Deliberately not journaled: a --resume rerun retries
                // the slot instead of resurrecting the failure.
            }
            if (spec.verbose)
                logSweepRow(row, item, ++completed, todo.size());
        });

    const sim::ProcPoolStats &stats = pool.stats();
    result.wallSeconds = stats.wallSeconds;
    result.busySeconds = stats.busySeconds;
    if (spec.verbose &&
        (stats.retries || stats.timeouts || stats.crashes ||
         stats.corruptFrames)) {
        std::fprintf(stderr,
                     "  proc pool: %llu launches, %llu crashes, %llu "
                     "timeouts, %llu corrupt frames, %llu retries, "
                     "%llu skipped\n",
                     (unsigned long long)stats.launches,
                     (unsigned long long)stats.crashes,
                     (unsigned long long)stats.timeouts,
                     (unsigned long long)stats.corruptFrames,
                     (unsigned long long)stats.retries,
                     (unsigned long long)stats.permanentFailures);
    }
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec)
{
    uint64_t warmup =
        spec.warmup == SweepSpec::envBudget ? warmupInsts() : spec.warmup;
    uint64_t insts =
        spec.insts == SweepSpec::envBudget ? measureInsts() : spec.insts;

    SweepResult result;
    result.rows.resize(spec.items.size());

    // Journal setup: a driver running several sweeps numbers the files
    // in call order, which is deterministic, so a resumed process finds
    // each sweep's journal under the same name.
    std::unique_ptr<SweepJournal> journal;
    std::vector<size_t> todo;
    size_t served = 0;
    std::string basePath = journalPath();
    if (!basePath.empty()) {
        static std::atomic<unsigned> sweepCounter{0};
        unsigned nth = sweepCounter.fetch_add(1);
        std::string path =
            nth ? basePath + "." + std::to_string(nth) : basePath;
        journal = std::make_unique<SweepJournal>(
            path, sweepKey(spec, warmup, insts), spec.items.size(),
            resumeRequested());
    }
    for (size_t i = 0; i < spec.items.size(); ++i) {
        if (journal && journal->has(i) &&
            decodeSweepRow(journal->payload(i), result.rows[i])) {
            ++served;
        } else {
            todo.push_back(i);
        }
    }
    if (spec.verbose && served) {
        std::fprintf(stderr,
                     "  sweep: %zu of %zu runs served from journal %s\n",
                     served, spec.items.size(),
                     journal->path().c_str());
    }

    unsigned procs = spec.procs ? spec.procs : benchProcs();
    if (procs) {
        runSweepProcs(spec, warmup, insts, todo, result, journal.get(),
                      procs);
    } else {
        runSweepThreads(spec, warmup, insts, todo, result,
                        journal.get());
    }

    if (size_t n = result.failed()) {
        warn("%zu of %zu sweep runs failed and were skipped", n,
             spec.items.size());
    }
    if (spec.verbose && spec.items.size() > 1) {
        std::fprintf(stderr,
                     "  sweep: %zu runs on %u %s in %.2f s "
                     "(utilization %.0f%%)\n",
                     spec.items.size(), result.jobs,
                     procs ? "procs" : "jobs", result.wallSeconds,
                     result.utilization() * 100.0);
    }

    // All telemetry CSVs are appended in spec order after the barrier,
    // so their row order is schedule-independent.
    std::lock_guard<std::mutex> lock(csvMutex);
    std::string speedRows;
    for (size_t i = 0; i < result.rows.size(); ++i)
        if (result.rows[i].ok())
            speedRows += simSpeedCsvLine(result.rows[i].result,
                                         spec.items[i].params);
    appendCsvAtomic("simspeed.csv", simSpeedCsvHeader, speedRows);
    appendSkipCsv(spec, result);
    appendPoolCsv(result);
    return result;
}

SuiteRun
runSuite(const std::vector<wl::Workload> &suite,
         const cpu::CoreParams &params, bool verbose,
         const std::string &machine)
{
    SweepSpec spec;
    spec.verbose = verbose;
    for (const auto &workload : suite)
        spec.add(workload, params, machine);
    SweepResult sweep = runSweep(spec);

    SuiteRun run;
    for (SweepRow &row : sweep.rows) {
        run.results.push_back(std::move(row.result));
        run.errors.push_back(std::move(row.error));
    }
    return run;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geometricMean(ratios);
}

} // namespace pubs::bench
