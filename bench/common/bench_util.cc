#include "common/bench_util.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/checksum.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "common/progress.hh"
#include "common/report.hh"
#include "common/run_codec.hh"
#include "common/stats.hh"
#include "common/sweep_journal.hh"
#include "sim/proc_pool.hh"
#include "sim/run_pool.hh"

namespace pubs::bench
{

namespace
{

uint64_t
envCount(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    fatal_if(end == value || parsed == 0, "bad %s value '%s'", name, value);
    return parsed;
}

/** Jobs pinned by --jobs / setBenchJobs(); 0 = auto. */
std::atomic<unsigned> pinnedJobs{0};

/** Worker processes pinned by --procs / setBenchProcs(). */
std::atomic<unsigned> pinnedProcs{0};
std::atomic<bool> procsPinned{false};

/** Journal path / resume flag pinned by --journal / --resume. */
std::mutex journalConfigMutex;
std::string pinnedJournalPath;
bool journalPathPinned = false;
int pinnedResume = -1; ///< -1 = unset, else 0/1

/** Observability flags pinned by --trace-events / --report / --progress. */
std::string pinnedTracePath;
bool tracePathPinned = false;
std::string pinnedReportPath;
bool reportPathPinned = false;
int pinnedProgress = -1; ///< -1 = unset, else 0/1

/** CPI-stack / branch-profile emission pinned by --cpi-stack /
 *  --branch-profile. -1 = unset, else 0/1. */
int pinnedCpiStack = -1;
int pinnedBranchProfile = -1;

/** Sampling knobs pinned by --sample / --sample-period. */
std::atomic<unsigned> pinnedSampleWindows{0};
std::atomic<bool> sampleWindowsPinned{false};
std::atomic<uint64_t> pinnedSamplePeriod{0};
std::atomic<bool> samplePeriodPinned{false};

/** Checkpoint cache directory pinned by --checkpoint-dir. */
std::string pinnedCheckpointDir;
bool checkpointDirPinned = false;

/** Serialises CSV appends across concurrent sweeps in one process. */
std::mutex csvMutex;

} // namespace

uint64_t
measureInsts()
{
    return envCount("PUBS_BENCH_INSTS", 1000000);
}

uint64_t
warmupInsts()
{
    return envCount("PUBS_BENCH_WARMUP", 200000);
}

unsigned
benchJobs()
{
    unsigned pinned = pinnedJobs.load(std::memory_order_relaxed);
    if (pinned)
        return pinned;
    uint64_t env = envCount("PUBS_BENCH_JOBS", 0x10000);
    if (env != 0x10000)
        return (unsigned)env;
    return sim::RunPool::hardwareThreads();
}

void
setBenchJobs(unsigned jobs)
{
    pinnedJobs.store(jobs, std::memory_order_relaxed);
}

unsigned
benchProcs()
{
    if (procsPinned.load(std::memory_order_relaxed))
        return pinnedProcs.load(std::memory_order_relaxed);
    uint64_t env = envCount("PUBS_BENCH_PROCS", 0x10000);
    if (env != 0x10000)
        return (unsigned)env;
    return 0;
}

void
setBenchProcs(unsigned procs)
{
    pinnedProcs.store(procs, std::memory_order_relaxed);
    procsPinned.store(true, std::memory_order_relaxed);
}

std::string
journalPath()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (journalPathPinned)
            return pinnedJournalPath;
    }
    const char *env = std::getenv("PUBS_BENCH_JOURNAL");
    return env ? env : "";
}

void
setJournalPath(std::string path)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedJournalPath = std::move(path);
    journalPathPinned = true;
}

bool
resumeRequested()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (pinnedResume >= 0)
            return pinnedResume != 0;
    }
    const char *env = std::getenv("PUBS_BENCH_RESUME");
    return env && *env && std::strcmp(env, "0") != 0;
}

void
setResume(bool resume)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedResume = resume ? 1 : 0;
}

std::string
traceEventsPath()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (tracePathPinned)
            return pinnedTracePath;
    }
    const char *env = std::getenv("PUBS_TRACE_EVENTS");
    return env ? env : "";
}

void
setTraceEventsPath(std::string path)
{
    bool enable = !path.empty();
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        pinnedTracePath = std::move(path);
        tracePathPinned = true;
    }
    if (enable)
        prof::enable();
    else
        prof::disable();
}

std::string
reportPath()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (reportPathPinned)
            return pinnedReportPath;
    }
    const char *env = std::getenv("PUBS_BENCH_REPORT");
    return env ? env : "";
}

void
setReportPath(std::string path)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedReportPath = std::move(path);
    reportPathPinned = true;
}

bool
progressRequested()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (pinnedProgress >= 0)
            return pinnedProgress != 0;
    }
    const char *env = std::getenv("PUBS_PROGRESS");
    return env && *env && std::strcmp(env, "0") != 0;
}

void
setProgress(bool progress)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedProgress = progress ? 1 : 0;
}

bool
cpiStackRequested()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (pinnedCpiStack >= 0)
            return pinnedCpiStack != 0;
    }
    const char *env = std::getenv("PUBS_CPI_STACK");
    return env && *env && std::strcmp(env, "0") != 0;
}

void
setCpiStack(bool enabled)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedCpiStack = enabled ? 1 : 0;
}

bool
branchProfileRequested()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (pinnedBranchProfile >= 0)
            return pinnedBranchProfile != 0;
    }
    const char *env = std::getenv("PUBS_BRANCH_PROFILE");
    return env && *env && std::strcmp(env, "0") != 0;
}

void
setBranchProfile(bool enabled)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedBranchProfile = enabled ? 1 : 0;
}

std::string
progressJsonPath()
{
    const char *env = std::getenv("PUBS_PROGRESS_JSON");
    return env && *env ? env : "progress.json";
}

unsigned
sampleWindows()
{
    if (sampleWindowsPinned.load(std::memory_order_relaxed))
        return pinnedSampleWindows.load(std::memory_order_relaxed);
    uint64_t env = envCount("PUBS_BENCH_SAMPLE", 0x10000);
    return env != 0x10000 ? (unsigned)env : 0;
}

void
setSampleWindows(unsigned windows)
{
    pinnedSampleWindows.store(windows, std::memory_order_relaxed);
    sampleWindowsPinned.store(true, std::memory_order_relaxed);
}

uint64_t
samplePeriod()
{
    if (samplePeriodPinned.load(std::memory_order_relaxed))
        return pinnedSamplePeriod.load(std::memory_order_relaxed);
    uint64_t env = envCount("PUBS_BENCH_SAMPLE_PERIOD", 0x10000);
    return env != 0x10000 ? env : 0;
}

void
setSamplePeriod(uint64_t period)
{
    pinnedSamplePeriod.store(period, std::memory_order_relaxed);
    samplePeriodPinned.store(true, std::memory_order_relaxed);
}

std::string
checkpointDir()
{
    {
        std::lock_guard<std::mutex> lock(journalConfigMutex);
        if (checkpointDirPinned)
            return pinnedCheckpointDir;
    }
    const char *env = std::getenv("PUBS_CHECKPOINT_DIR");
    return env ? env : "";
}

void
setCheckpointDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(journalConfigMutex);
    pinnedCheckpointDir = std::move(dir);
    checkpointDirPinned = true;
}

sim::SamplePlan
benchSamplePlan(uint64_t warmup, uint64_t insts)
{
    sim::SamplePlan plan;
    plan.windows = sampleWindows();
    if (!plan.windows)
        return plan;
    plan.measureInsts = std::max<uint64_t>(1, insts / plan.windows);
    plan.warmupInsts = warmup / plan.windows;
    uint64_t period = samplePeriod();
    // Default to contiguous windows: the stitched run then covers the
    // same instruction stream as a straight-through run of the same
    // total budget, which is what EXPERIMENTS.md compares against.
    plan.periodInsts =
        period ? period : plan.warmupInsts + plan.measureInsts;
    return plan;
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            unsigned long jobs = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(jobs == 0, "--jobs wants a positive thread count");
            setBenchJobs((unsigned)jobs);
        } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
            unsigned long procs = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(procs == 0,
                     "--procs wants a positive process count");
            setBenchProcs((unsigned)procs);
        } else if (std::strcmp(argv[i], "--journal") == 0 &&
                   i + 1 < argc) {
            setJournalPath(argv[++i]);
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            setResume(true);
        } else if (std::strcmp(argv[i], "--trace-events") == 0 &&
                   i + 1 < argc) {
            setTraceEventsPath(argv[++i]);
        } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
            setReportPath(argv[++i]);
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            setProgress(true);
        } else if (std::strcmp(argv[i], "--cpi-stack") == 0) {
            setCpiStack(true);
        } else if (std::strcmp(argv[i], "--branch-profile") == 0) {
            setBranchProfile(true);
        } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
            unsigned long windows = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(windows == 0,
                     "--sample wants a positive window count");
            setSampleWindows((unsigned)windows);
        } else if (std::strcmp(argv[i], "--sample-period") == 0 &&
                   i + 1 < argc) {
            unsigned long long period =
                std::strtoull(argv[++i], nullptr, 10);
            fatal_if(period == 0,
                     "--sample-period wants a positive instruction "
                     "count");
            setSamplePeriod((uint64_t)period);
        } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
                   i + 1 < argc) {
            setCheckpointDir(argv[++i]);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--jobs N] [--procs N] [--journal PATH] "
                "[--resume] [--trace-events PATH] [--report PATH] "
                "[--progress] [--cpi-stack] [--branch-profile] "
                "[--sample N] [--sample-period N] "
                "[--checkpoint-dir PATH]\n"
                "  --jobs N       parallel in-process runs (default: "
                "hardware concurrency, or $PUBS_BENCH_JOBS)\n"
                "  --procs N      fault-isolated worker processes "
                "instead of threads (or $PUBS_BENCH_PROCS); crashed or "
                "hung runs are retried, then skipped\n"
                "  --journal PATH write-ahead journal of completed runs "
                "(or $PUBS_BENCH_JOURNAL)\n"
                "  --resume       serve journaled runs of an "
                "interrupted sweep (or $PUBS_BENCH_RESUME=1)\n"
                "  --trace-events PATH  host-phase profile as Chrome "
                "trace-event JSON (or $PUBS_TRACE_EVENTS)\n"
                "  --report PATH  self-contained HTML dashboard "
                "(or $PUBS_BENCH_REPORT)\n"
                "  --progress     live progress meter + progress.json "
                "(or $PUBS_PROGRESS=1; $PUBS_PROGRESS_JSON sets the "
                "path)\n"
                "  --cpi-stack    emit per-run top-down CPI stacks to "
                "$PUBS_BENCH_CSV/cpi_stack.csv and the dashboard "
                "(or $PUBS_CPI_STACK=1)\n"
                "  --branch-profile  per-static-branch cost profile to "
                "$PUBS_BENCH_CSV/branch_profile.csv and the dashboard; "
                "forces core telemetry on (or $PUBS_BRANCH_PROFILE=1)\n"
                "  --sample N     sampled simulation with N measurement "
                "windows per run (or $PUBS_BENCH_SAMPLE); budgets are "
                "split across the windows\n"
                "  --sample-period N  instructions between window "
                "starts (or $PUBS_BENCH_SAMPLE_PERIOD; default: "
                "contiguous windows)\n"
                "  --checkpoint-dir PATH  content-addressed checkpoint "
                "cache shared across runs (or $PUBS_CHECKPOINT_DIR)\n",
                argv[0]);
            std::exit(std::strcmp(argv[i], "--help") == 0 ? 0 : 2);
        }
    }
    if (resumeRequested() && journalPath().empty())
        fatal("--resume needs --journal PATH (or $PUBS_BENCH_JOURNAL)");
    // Environment-only activation (no --trace-events flag on the
    // command line) still has to switch the profiler on.
    if (!traceEventsPath().empty())
        prof::enable();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    while (cells.size() < header_.size())
        cells.emplace_back("");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << cells[c]
                << std::string(widths[c] + 2 - cells[c].size(), ' ');
        }
        out << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
pct(double ratio)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buffer;
}

std::string
num(double value, int digits)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

bool
maybeWriteCsv(const std::string &benchName, const TextTable &table)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return false;
    std::string path = std::string(dir) + "/" + benchName + ".csv";
    std::ostringstream out;
    auto emitRow = [&out](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            out << (c ? "," : "") << cells[c];
        out << "\n";
    };
    emitRow(table.header());
    for (const auto &row : table.rows())
        emitRow(row);
    std::string error = atomicWriteFile(path, out.str());
    if (!error.empty()) {
        warn("cannot write CSV: %s", error.c_str());
        return false;
    }
    return true;
}

namespace
{

/**
 * Atomically append @p rows to $PUBS_BENCH_CSV/<name> (creating it
 * with @p header): a kill mid-write leaves the previous complete file,
 * never a torn one. Caller holds csvMutex (or is provably
 * single-threaded); atomicity is per whole file, not per line.
 */
void
appendCsvAtomic(const char *name, const char *header,
                const std::string &rows)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir || rows.empty())
        return;
    std::string path = std::string(dir) + "/" + name;
    std::string error = atomicAppendFile(path, header, rows);
    if (!error.empty())
        warn("cannot append CSV: %s", error.c_str());
}

/**
 * One host-speed record for $PUBS_BENCH_CSV/simspeed.csv, so every
 * bench invocation accumulates a simulator-performance log alongside
 * its model results.
 */
std::string
simSpeedCsvLine(const sim::RunResult &result,
                const cpu::CoreParams &params)
{
    char line[192];
    std::snprintf(line, sizeof(line), "%s,%d,%llu,%llu,%.4f,%.1f\n",
                  result.workload.c_str(), params.usePubs ? 1 : 0,
                  (unsigned long long)result.instructions,
                  (unsigned long long)result.cycles, result.simSeconds,
                  result.kips());
    return line;
}

constexpr const char *simSpeedCsvHeader =
    "workload,pubs,instructions,cycles,sim_seconds,kips\n";

/**
 * Record every skipped item of a finished sweep in
 * $PUBS_BENCH_CSV/skipped.csv (header on creation), in spec order, so
 * a batch's holes are machine-readable instead of stderr-only.
 */
void
appendSkipCsv(const SweepSpec &spec, const SweepResult &result)
{
    if (result.failed() == 0)
        return;
    std::ostringstream out;
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        if (row.ok())
            continue;
        // Quote the free-text message; strip characters that would
        // break one-row-per-line parsing.
        std::string message = row.error;
        for (char &c : message)
            if (c == '\n' || c == '\r' || c == '"')
                c = ' ';
        out << spec.items[i].workload.name << ','
            << spec.items[i].machine << ',' << row.errorKind << ','
            << row.phase << ",\"" << message << "\"\n";
    }
    appendCsvAtomic("skipped.csv",
                    "workload,machine,error_kind,phase,error\n",
                    out.str());
}

/**
 * One cpi_stack.csv row per clean run, in spec order: the wide format
 * (one column per top-down component) so a spreadsheet stacks them
 * without pivoting. Only written under --cpi-stack.
 */
void
appendCpiStackCsv(const SweepSpec &spec, const SweepResult &result)
{
    std::string header = "workload,machine,total_cycles";
    for (size_t c = 0; c < cpu::numCpiComponents; ++c) {
        header += ',';
        header += cpu::cpiComponentName((cpu::CpiComponent)c);
    }
    header += '\n';
    std::ostringstream out;
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        if (!row.ok())
            continue;
        const cpu::CpiStack &cpi = row.result.pipeline.cpi;
        out << spec.items[i].workload.name << ','
            << spec.items[i].machine << ',' << cpi.total();
        for (size_t c = 0; c < cpu::numCpiComponents; ++c)
            out << ',' << cpi.cycles[c];
        out << '\n';
    }
    appendCsvAtomic("cpi_stack.csv", header.c_str(), out.str());
}

/**
 * The per-static-branch cost profile of every clean run, in spec
 * order. Only written under --branch-profile (which forces telemetry,
 * so the rows exist).
 */
void
appendBranchProfileCsv(const SweepSpec &spec, const SweepResult &result)
{
    std::ostringstream out;
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        if (!row.ok())
            continue;
        for (const sim::BranchProfileRow &b : row.result.branchProfile) {
            char pc[24];
            std::snprintf(pc, sizeof(pc), "0x%llx",
                          (unsigned long long)b.pc);
            out << spec.items[i].workload.name << ','
                << spec.items[i].machine << ',' << pc << ','
                << b.commits << ',' << b.mispredicts << ','
                << b.penaltyCycles << ',' << b.confCorrect << ','
                << b.confWrong << ',' << b.unconfCorrect << ','
                << b.unconfWrong << ',' << b.sliceInsts << ','
                << b.sliceCovered << '\n';
        }
    }
    appendCsvAtomic("branch_profile.csv",
                    "workload,machine,pc,commits,mispredicts,"
                    "penalty_cycles,conf_correct,conf_wrong,"
                    "unconf_correct,unconf_wrong,slice_insts,"
                    "slice_covered\n",
                    out.str());
}

/** Append one pool-utilization + farm-health record to sweep_pool.csv. */
void
appendPoolCsv(const SweepResult &result)
{
    const FarmStats &farm = result.farm;
    char line[288];
    std::snprintf(line, sizeof(line),
                  "%zu,%zu,%u,%.4f,%.4f,%.3f,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu,%llu\n",
                  result.rows.size(), result.failed(), result.jobs,
                  result.wallSeconds, result.busySeconds,
                  result.utilization(),
                  (unsigned long long)farm.launches,
                  (unsigned long long)farm.crashes,
                  (unsigned long long)farm.timeouts,
                  (unsigned long long)farm.staleKills,
                  (unsigned long long)farm.corruptFrames,
                  (unsigned long long)farm.retries,
                  (unsigned long long)farm.skips,
                  (unsigned long long)farm.journalServed);
    appendCsvAtomic("sweep_pool.csv",
                    "runs,failed,jobs,wall_seconds,busy_seconds,"
                    "utilization,launches,crashes,timeouts,stale_kills,"
                    "corrupt_frames,retries,skips,journal_served\n",
                    line);
}

} // namespace

sim::RunResult
runWorkload(const wl::Workload &workload, const cpu::CoreParams &params)
{
    sim::RunResult result =
        sim::simulate(params, workload.program, warmupInsts(),
                      measureInsts());
    result.workload = workload.name;
    std::lock_guard<std::mutex> lock(csvMutex);
    appendCsvAtomic("simspeed.csv", simSpeedCsvHeader,
                    simSpeedCsvLine(result, params));
    return result;
}

size_t
SweepSpec::add(wl::Workload workload, cpu::CoreParams params,
               std::string machine)
{
    items.push_back(
        {std::move(workload), std::move(params), std::move(machine)});
    return items.size() - 1;
}

std::string
SweepResult::statsJson(bool includeFarm) const
{
    auto quoted = [](const std::string &s) {
        return '"' + jsonEscape(s) + '"';
    };
    std::ostringstream out;
    out << "{\"sweep\": {\"runs\": " << rows.size()
        << ", \"failed\": " << failed() << "},\n\"runs\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &row = rows[i];
        const sim::RunResult &r = row.result;
        out << (i ? ",\n " : "\n ") << "{\"workload\": "
            << quoted(r.workload)
            << ", \"machine\": " << quoted(r.machine)
            << ", \"ok\": " << (row.ok() ? "true" : "false");
        if (row.ok()) {
            out << ", \"instructions\": " << r.instructions
                << ", \"cycles\": " << r.cycles
                << ", \"ipc\": " << jsonNumber(r.ipc)
                << ", \"branch_mpki\": " << jsonNumber(r.branchMpki)
                << ", \"llc_mpki\": " << jsonNumber(r.llcMpki)
                << ", \"avg_misspec_penalty\": "
                << jsonNumber(r.avgMisspecPenalty)
                << ", \"avg_iq_wait\": " << jsonNumber(r.avgIqWait)
                << ", \"unconfident_rate\": "
                << jsonNumber(r.unconfidentBranchRate)
                << ", \"pubs_enabled_fraction\": "
                << jsonNumber(r.pubsEnabledFraction)
                << ", \"priority_stall_cycles\": "
                << r.priorityStallCycles;
            if (r.sampled) {
                out << ", \"sampled\": true, \"windows\": " << r.windows
                    << ", \"skipped_insts\": " << r.skippedInsts
                    << ", \"ipc_ci95\": " << jsonNumber(r.ipcCi95)
                    << ", \"branch_mpki_ci95\": "
                    << jsonNumber(r.branchMpkiCi95)
                    << ", \"llc_mpki_ci95\": "
                    << jsonNumber(r.llcMpkiCi95);
            }
        } else {
            out << ", \"error_kind\": " << quoted(row.errorKind)
                << ", \"error\": " << quoted(row.error);
            if (!row.phase.empty())
                out << ", \"phase\": " << quoted(row.phase);
        }
        out << "}";
    }
    out << "\n]";
    if (includeFarm) {
        out << ",\n\"farm\": {\"launches\": " << farm.launches
            << ", \"crashes\": " << farm.crashes
            << ", \"timeouts\": " << farm.timeouts
            << ", \"stale_kills\": " << farm.staleKills
            << ", \"corrupt_frames\": " << farm.corruptFrames
            << ", \"retries\": " << farm.retries
            << ", \"skips\": " << farm.skips
            << ", \"journal_served\": " << farm.journalServed << "}";
    }
    out << "}\n";
    return out.str();
}

namespace
{

/**
 * Identity of a sweep for journal matching: a resumed journal must come
 * from the same items (workload, machine, full machine configuration,
 * seed) with the same budgets, in the same order. Hashes the
 * human-readable CoreParams description, which covers every field that
 * shapes a run.
 */
uint64_t
sweepKey(const SweepSpec &spec, uint64_t warmup, uint64_t insts)
{
    uint32_t lo = 0, hi = 0x50554253u;
    auto mix = [&](const std::string &text) {
        lo = crc32(text, lo);
        hi = crc32(text, hi ^ 0x9e3779b9u);
    };
    mix(std::to_string(warmup) + ":" + std::to_string(insts) + ":" +
        std::to_string(spec.items.size()));
    // A sampled sweep's rows are not interchangeable with a
    // straight-through sweep's: mixing the plan keeps a --resume from
    // serving one to the other. Disabled sampling leaves the key
    // unchanged, so existing journals stay valid.
    sim::SamplePlan plan = benchSamplePlan(warmup, insts);
    if (plan.enabled())
        mix("sample:" + plan.describe());
    // Branch-profile rows ride in the journaled payload, so rows taken
    // with the flag off must not be served to a sweep that wants them
    // (and vice versa). Off leaves the key — and old journals — intact.
    if (branchProfileRequested())
        mix("branch_profile:1");
    for (const SweepItem &item : spec.items) {
        mix(item.workload.name);
        mix(item.machine);
        mix(std::to_string(item.params.seed));
        mix(item.params.describe());
    }
    return ((uint64_t)hi << 32) | lo;
}

/** Run one sweep item to a SweepRow (never throws SimError out). */
SweepRow
runSweepItem(const SweepItem &item, uint64_t warmup, uint64_t insts)
{
    SweepRow row;
    sim::clearFailedPhase();
    try {
        // Each run owns its Simulator (pipeline, emulator, RNG
        // streams, stats); nothing is shared with siblings, so the
        // result depends only on the item, never on the schedule.
        cpu::CoreParams params = item.params;
        if (branchProfileRequested()) {
            // Telemetry is purely observational (simulated cycles are
            // bit-identical with it on), so forcing it here changes
            // only what the row carries, never the model results.
            params.telemetry = true;
            params.heartbeatToStderr = false;
        }
        sim::SamplePlan plan = benchSamplePlan(warmup, insts);
        sim::RunResult r;
        if (plan.enabled()) {
            std::string dir = checkpointDir();
            sim::CheckpointStore store(dir);
            r = sim::simulateSampled(params, item.workload.program,
                                     plan, dir.empty() ? nullptr : &store,
                                     item.machine);
        } else {
            r = sim::simulate(params, item.workload.program, warmup,
                              insts);
        }
        r.workload = item.workload.name;
        r.machine = item.machine;
        row.result = std::move(r);
    } catch (const SimError &error) {
        // Skip-and-continue: one broken run must not sink the batch.
        row.error = error.what();
        row.errorKind = SimError::kindName(error.kind());
        row.phase = sim::simPhaseName(sim::lastFailedPhase());
        row.result.workload = item.workload.name;
        row.result.machine = item.machine;
    }
    return row;
}

void
logSweepRow(const SweepRow &row, const SweepItem &item, size_t done,
            size_t total)
{
    if (row.ok()) {
        std::fprintf(stderr,
                     "  [%3zu/%zu] %-18s %-14s ipc=%.3f "
                     "brMPKI=%.1f llcMPKI=%.1f kips=%.0f\n",
                     done, total, item.workload.name.c_str(),
                     item.machine.c_str(), row.result.ipc,
                     row.result.branchMpki, row.result.llcMpki,
                     row.result.kips());
    } else {
        std::fprintf(stderr,
                     "  [%3zu/%zu] %-18s %-14s FAILED (%s: %s)\n", done,
                     total, item.workload.name.c_str(),
                     item.machine.c_str(), row.errorKind.c_str(),
                     row.error.c_str());
    }
}

/** In-process thread-pool execution of the slots in @p todo. */
void
runSweepThreads(const SweepSpec &spec, uint64_t warmup, uint64_t insts,
                const std::vector<size_t> &todo, SweepResult &result,
                SweepJournal *journal, progress::Meter *meter)
{
    sim::RunPool pool(spec.jobs ? spec.jobs : benchJobs());
    result.jobs = pool.threads();

    // Worker threads report straight into the meter; the sink is global
    // (one live sweep at a time), cleared once the pool drains.
    if (meter) {
        progress::setCallbackSink(
            [meter](const progress::Sample &sample) {
                meter->update(sample);
            },
            250);
    }

    std::mutex logMutex;
    std::atomic<size_t> completed{0};
    for (size_t slot : todo) {
        pool.submit([&, slot] {
            const SweepItem &item = spec.items[slot];
            SweepRow &row = result.rows[slot];
            progress::beginTask(slot, item.workload.name,
                                warmup + insts);
            row = runSweepItem(item, warmup, insts);
            progress::endTask();
            // Write-ahead: the row is durable before the sweep's final
            // output exists, so a kill from here on cannot lose it.
            if (journal) {
                prof::Scope span("journal/commit");
                journal->record(slot, encodeSweepRow(row));
            }
            if (meter)
                meter->runFinished(slot, row.ok());
            size_t done = completed.fetch_add(1) + 1;
            if (spec.verbose) {
                std::lock_guard<std::mutex> lock(logMutex);
                logSweepRow(row, item, done, todo.size());
            }
        });
    }
    pool.wait();
    if (meter)
        progress::clearSink();

    sim::PoolStats stats = pool.stats();
    result.wallSeconds = stats.wallSeconds;
    result.busySeconds = stats.busySeconds;
}

/**
 * Fault-isolated execution of the slots in @p todo across forked
 * worker processes: a crashing, hanging, or frame-corrupting run is
 * retried with backoff and, beyond retry, becomes a "proc" skip row.
 */
void
runSweepProcs(const SweepSpec &spec, uint64_t warmup, uint64_t insts,
              const std::vector<size_t> &todo, SweepResult &result,
              SweepJournal *journal, unsigned procs,
              progress::Meter *meter)
{
    sim::ProcPool::Config config =
        sim::ProcPool::configFromEnv(sim::ProcPool::Config{});
    config.procs = procs;
    config.verbose = spec.verbose;
    if (meter) {
        // Typed-frame protocol: workers interleave progress heartbeats
        // with the final result frame, and a heartbeat stream that goes
        // quiet gets the worker SIGKILLed + retried well before the
        // coarse per-run timeout. PUBS_PROC_STALE overrides; negative
        // disables.
        config.progressFrames = true;
        if (config.staleSeconds == 0.0)
            config.staleSeconds = 30.0;
        config.onProgress = [meter](const progress::Sample &sample) {
            meter->update(sample);
        };
    }
    sim::ProcPool pool(config);
    result.jobs = pool.procs();

    size_t completed = 0;
    pool.run(
        todo.size(),
        [&](size_t index, unsigned attempt) {
            // Worker process: simulate and ship the row — including a
            // SimError skip row, which is a result, not a worker
            // failure — back over the CRC-checked pipe.
            (void)attempt;
            size_t slot = todo[index];
            const SweepItem &item = spec.items[slot];
            progress::beginTask(slot, item.workload.name,
                                warmup + insts);
            std::string payload =
                encodeSweepRow(runSweepItem(item, warmup, insts));
            progress::endTask();
            return payload;
        },
        [&](size_t index, const sim::ProcResult &outcome) {
            // Parent, in completion order: decode, journal, report.
            size_t slot = todo[index];
            const SweepItem &item = spec.items[slot];
            SweepRow &row = result.rows[slot];
            if (outcome.ok && decodeSweepRow(outcome.payload, row)) {
                if (journal) {
                    prof::Scope span("journal/commit");
                    journal->record(slot, outcome.payload);
                }
            } else {
                row = SweepRow{};
                row.error = outcome.ok
                                ? "worker returned an undecodable "
                                  "result payload"
                                : outcome.error;
                row.errorKind =
                    SimError::kindName(SimError::Kind::Proc);
                row.result.workload = item.workload.name;
                row.result.machine = item.machine;
                // Deliberately not journaled: a --resume rerun retries
                // the slot instead of resurrecting the failure.
            }
            if (meter) {
                meter->setFarmTotals(pool.stats().retries,
                                     pool.stats().timeouts,
                                     pool.stats().staleKills);
                meter->runFinished(slot, row.ok());
            }
            if (spec.verbose)
                logSweepRow(row, item, ++completed, todo.size());
        });

    const sim::ProcPoolStats &stats = pool.stats();
    result.wallSeconds = stats.wallSeconds;
    result.busySeconds = stats.busySeconds;
    result.farm.launches = stats.launches;
    result.farm.crashes = stats.crashes;
    result.farm.timeouts = stats.timeouts;
    result.farm.staleKills = stats.staleKills;
    result.farm.corruptFrames = stats.corruptFrames;
    result.farm.retries = stats.retries;
    result.farm.skips = stats.permanentFailures;
    if (spec.verbose &&
        (stats.retries || stats.timeouts || stats.staleKills ||
         stats.crashes || stats.corruptFrames)) {
        std::fprintf(stderr,
                     "  proc pool: %llu launches, %llu crashes, %llu "
                     "timeouts, %llu stale kills, %llu corrupt frames, "
                     "%llu retries, %llu skipped\n",
                     (unsigned long long)stats.launches,
                     (unsigned long long)stats.crashes,
                     (unsigned long long)stats.timeouts,
                     (unsigned long long)stats.staleKills,
                     (unsigned long long)stats.corruptFrames,
                     (unsigned long long)stats.retries,
                     (unsigned long long)stats.permanentFailures);
    }
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec)
{
    uint64_t warmup =
        spec.warmup == SweepSpec::envBudget ? warmupInsts() : spec.warmup;
    uint64_t insts =
        spec.insts == SweepSpec::envBudget ? measureInsts() : spec.insts;

    SweepResult result;
    result.rows.resize(spec.items.size());

    // Journal setup: a driver running several sweeps numbers the files
    // in call order, which is deterministic, so a resumed process finds
    // each sweep's journal under the same name.
    std::unique_ptr<SweepJournal> journal;
    std::vector<size_t> todo;
    size_t served = 0;
    std::string basePath = journalPath();
    if (!basePath.empty()) {
        static std::atomic<unsigned> sweepCounter{0};
        unsigned nth = sweepCounter.fetch_add(1);
        std::string path =
            nth ? basePath + "." + std::to_string(nth) : basePath;
        journal = std::make_unique<SweepJournal>(
            path, sweepKey(spec, warmup, insts), spec.items.size(),
            resumeRequested());
    }
    for (size_t i = 0; i < spec.items.size(); ++i) {
        if (journal && journal->has(i) &&
            decodeSweepRow(journal->payload(i), result.rows[i])) {
            ++served;
        } else {
            todo.push_back(i);
        }
    }
    if (spec.verbose && served) {
        std::fprintf(stderr,
                     "  sweep: %zu of %zu runs served from journal %s\n",
                     served, spec.items.size(),
                     journal->path().c_str());
    }

    result.farm.journalServed = served;

    // Live progress plane: per-worker heartbeats -> one meter.
    std::unique_ptr<progress::Meter> meter;
    if (progressRequested()) {
        progress::Meter::Config meterConfig;
        meterConfig.totalRuns = todo.size();
        meterConfig.jsonPath = progressJsonPath();
        meter = std::make_unique<progress::Meter>(meterConfig);
    }

    unsigned procs = spec.procs ? spec.procs : benchProcs();
    if (procs) {
        runSweepProcs(spec, warmup, insts, todo, result, journal.get(),
                      procs, meter.get());
    } else {
        runSweepThreads(spec, warmup, insts, todo, result, journal.get(),
                        meter.get());
    }
    if (meter) {
        meter->setFarmTotals(result.farm.retries, result.farm.timeouts,
                             result.farm.staleKills);
        meter->finish();
    }

    if (size_t n = result.failed()) {
        warn("%zu of %zu sweep runs failed and were skipped", n,
             spec.items.size());
    }
    if (spec.verbose && spec.items.size() > 1) {
        std::fprintf(stderr,
                     "  sweep: %zu runs on %u %s in %.2f s "
                     "(utilization %.0f%%)\n",
                     spec.items.size(), result.jobs,
                     procs ? "procs" : "jobs", result.wallSeconds,
                     result.utilization() * 100.0);
    }

    // All telemetry CSVs are appended in spec order after the barrier,
    // so their row order is schedule-independent.
    std::lock_guard<std::mutex> lock(csvMutex);
    std::string speedRows;
    for (size_t i = 0; i < result.rows.size(); ++i)
        if (result.rows[i].ok())
            speedRows += simSpeedCsvLine(result.rows[i].result,
                                         spec.items[i].params);
    appendCsvAtomic("simspeed.csv", simSpeedCsvHeader, speedRows);
    appendSkipCsv(spec, result);
    appendPoolCsv(result);
    if (cpiStackRequested())
        appendCpiStackCsv(spec, result);
    if (branchProfileRequested())
        appendBranchProfileCsv(spec, result);

    // Observability outputs, rewritten (atomically) after every sweep so
    // a driver that runs several sweeps leaves them cumulative and a
    // kill mid-driver leaves the last complete version.
    if (!reportPath().empty()) {
        globalReport().addSweep(spec, result);
        std::string error = globalReport().writeHtml(reportPath());
        if (!error.empty())
            warn("cannot write dashboard: %s", error.c_str());
    }
    {
        prof::Scope span("sweep/trace_export");
        std::string trace = traceEventsPath();
        if (!trace.empty()) {
            try {
                prof::writeTrace(trace);
            } catch (const SimError &error) {
                warn("cannot write trace events: %s", error.what());
            }
        }
    }
    return result;
}

SuiteRun
runSuite(const std::vector<wl::Workload> &suite,
         const cpu::CoreParams &params, bool verbose,
         const std::string &machine)
{
    SweepSpec spec;
    spec.verbose = verbose;
    for (const auto &workload : suite)
        spec.add(workload, params, machine);
    SweepResult sweep = runSweep(spec);

    SuiteRun run;
    for (SweepRow &row : sweep.rows) {
        run.results.push_back(std::move(row.result));
        run.errors.push_back(std::move(row.error));
    }
    return run;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geometricMean(ratios);
}

} // namespace pubs::bench
