#include "common/bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace pubs::bench
{

namespace
{

uint64_t
envCount(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    fatal_if(end == value || parsed == 0, "bad %s value '%s'", name, value);
    return parsed;
}

} // namespace

uint64_t
measureInsts()
{
    return envCount("PUBS_BENCH_INSTS", 1000000);
}

uint64_t
warmupInsts()
{
    return envCount("PUBS_BENCH_WARMUP", 200000);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    while (cells.size() < header_.size())
        cells.emplace_back("");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << cells[c]
                << std::string(widths[c] + 2 - cells[c].size(), ' ');
        }
        out << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
pct(double ratio)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buffer;
}

std::string
num(double value, int digits)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

bool
maybeWriteCsv(const std::string &benchName, const TextTable &table)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return false;
    std::string path = std::string(dir) + "/" + benchName + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return false;
    }
    auto emitRow = [&out](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            out << (c ? "," : "") << cells[c];
        out << "\n";
    };
    emitRow(table.header());
    for (const auto &row : table.rows())
        emitRow(row);
    return true;
}

namespace
{

/**
 * Append one host-speed record to $PUBS_BENCH_CSV/simspeed.csv (header
 * written on creation), so every bench invocation accumulates a
 * simulator-performance log alongside its model results.
 */
void
appendSimSpeedCsv(const sim::RunResult &result,
                  const cpu::CoreParams &params)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/simspeed.csv";
    bool fresh = !std::ifstream(path).good();
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    if (fresh)
        out << "workload,pubs,instructions,cycles,sim_seconds,kips\n";
    char line[192];
    std::snprintf(line, sizeof(line), "%s,%d,%llu,%llu,%.4f,%.1f\n",
                  result.workload.c_str(), params.usePubs ? 1 : 0,
                  (unsigned long long)result.instructions,
                  (unsigned long long)result.cycles, result.simSeconds,
                  result.kips());
    out << line;
}

} // namespace

sim::RunResult
runWorkload(const wl::Workload &workload, const cpu::CoreParams &params)
{
    sim::RunResult result =
        sim::simulate(params, workload.program, warmupInsts(),
                      measureInsts());
    result.workload = workload.name;
    appendSimSpeedCsv(result, params);
    return result;
}

SuiteRun
runSuite(const std::vector<wl::Workload> &suite,
         const cpu::CoreParams &params, bool verbose)
{
    SuiteRun run;
    for (const auto &workload : suite) {
        if (verbose) {
            std::fprintf(stderr, "  running %-18s ...", workload.name.c_str());
            std::fflush(stderr);
        }
        try {
            sim::RunResult r = runWorkload(workload, params);
            if (verbose) {
                std::fprintf(stderr,
                             " ipc=%.3f brMPKI=%.1f llcMPKI=%.1f "
                             "kips=%.0f\n",
                             r.ipc, r.branchMpki, r.llcMpki, r.kips());
            }
            run.results.push_back(std::move(r));
            run.errors.emplace_back();
        } catch (const SimError &error) {
            // Skip-and-continue: one broken run must not end the sweep.
            if (verbose)
                std::fprintf(stderr, " FAILED\n");
            std::fprintf(stderr, "  %s error in %s: %s\n",
                         SimError::kindName(error.kind()),
                         workload.name.c_str(), error.what());
            sim::RunResult placeholder;
            placeholder.workload = workload.name;
            run.results.push_back(std::move(placeholder));
            run.errors.emplace_back(error.what());
        }
    }
    if (size_t n = run.failed()) {
        warn("%zu of %zu workloads failed and were skipped", n,
             suite.size());
    }
    return run;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geometricMean(ratios);
}

} // namespace pubs::bench
