#include "common/bench_util.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/run_pool.hh"

namespace pubs::bench
{

namespace
{

uint64_t
envCount(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    fatal_if(end == value || parsed == 0, "bad %s value '%s'", name, value);
    return parsed;
}

/** Jobs pinned by --jobs / setBenchJobs(); 0 = auto. */
std::atomic<unsigned> pinnedJobs{0};

/** Serialises CSV appends across concurrent sweeps in one process. */
std::mutex csvMutex;

} // namespace

uint64_t
measureInsts()
{
    return envCount("PUBS_BENCH_INSTS", 1000000);
}

uint64_t
warmupInsts()
{
    return envCount("PUBS_BENCH_WARMUP", 200000);
}

unsigned
benchJobs()
{
    unsigned pinned = pinnedJobs.load(std::memory_order_relaxed);
    if (pinned)
        return pinned;
    uint64_t env = envCount("PUBS_BENCH_JOBS", 0x10000);
    if (env != 0x10000)
        return (unsigned)env;
    return sim::RunPool::hardwareThreads();
}

void
setBenchJobs(unsigned jobs)
{
    pinnedJobs.store(jobs, std::memory_order_relaxed);
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            unsigned long jobs = std::strtoul(argv[++i], nullptr, 10);
            fatal_if(jobs == 0, "--jobs wants a positive thread count");
            setBenchJobs((unsigned)jobs);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N]\n"
                         "  --jobs N   parallel simulation runs "
                         "(default: hardware concurrency, or "
                         "$PUBS_BENCH_JOBS)\n",
                         argv[0]);
            std::exit(std::strcmp(argv[i], "--help") == 0 ? 0 : 2);
        }
    }
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    while (cells.size() < header_.size())
        cells.emplace_back("");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out << cells[c]
                << std::string(widths[c] + 2 - cells[c].size(), ' ');
        }
        out << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
pct(double ratio)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buffer;
}

std::string
num(double value, int digits)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
    return buffer;
}

bool
maybeWriteCsv(const std::string &benchName, const TextTable &table)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return false;
    std::string path = std::string(dir) + "/" + benchName + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return false;
    }
    auto emitRow = [&out](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            out << (c ? "," : "") << cells[c];
        out << "\n";
    };
    emitRow(table.header());
    for (const auto &row : table.rows())
        emitRow(row);
    return true;
}

namespace
{

/**
 * Append one host-speed record to $PUBS_BENCH_CSV/simspeed.csv (header
 * written on creation), so every bench invocation accumulates a
 * simulator-performance log alongside its model results. Caller holds
 * csvMutex (or is provably single-threaded).
 */
void
appendSimSpeedCsv(const sim::RunResult &result,
                  const cpu::CoreParams &params)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/simspeed.csv";
    bool fresh = !std::ifstream(path).good();
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    if (fresh)
        out << "workload,pubs,instructions,cycles,sim_seconds,kips\n";
    char line[192];
    std::snprintf(line, sizeof(line), "%s,%d,%llu,%llu,%.4f,%.1f\n",
                  result.workload.c_str(), params.usePubs ? 1 : 0,
                  (unsigned long long)result.instructions,
                  (unsigned long long)result.cycles, result.simSeconds,
                  result.kips());
    out << line;
}

/**
 * Record every skipped item of a finished sweep in
 * $PUBS_BENCH_CSV/skipped.csv (header on creation), in spec order, so
 * a batch's holes are machine-readable instead of stderr-only.
 */
void
appendSkipCsv(const SweepSpec &spec, const SweepResult &result)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir || result.failed() == 0)
        return;
    std::string path = std::string(dir) + "/skipped.csv";
    bool fresh = !std::ifstream(path).good();
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    if (fresh)
        out << "workload,machine,error_kind,error\n";
    for (size_t i = 0; i < result.rows.size(); ++i) {
        const SweepRow &row = result.rows[i];
        if (row.ok())
            continue;
        // Quote the free-text message; strip characters that would
        // break one-row-per-line parsing.
        std::string message = row.error;
        for (char &c : message)
            if (c == '\n' || c == '\r' || c == '"')
                c = ' ';
        out << spec.items[i].workload.name << ','
            << spec.items[i].machine << ',' << row.errorKind << ",\""
            << message << "\"\n";
    }
}

/** Append one pool-utilization record to sweep_pool.csv. */
void
appendPoolCsv(const SweepResult &result)
{
    const char *dir = std::getenv("PUBS_BENCH_CSV");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/sweep_pool.csv";
    bool fresh = !std::ifstream(path).good();
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot write CSV to %s", path.c_str());
        return;
    }
    if (fresh)
        out << "runs,failed,jobs,wall_seconds,busy_seconds,"
               "utilization\n";
    char line[160];
    std::snprintf(line, sizeof(line), "%zu,%zu,%u,%.4f,%.4f,%.3f\n",
                  result.rows.size(), result.failed(), result.jobs,
                  result.wallSeconds, result.busySeconds,
                  result.utilization());
    out << line;
}

} // namespace

sim::RunResult
runWorkload(const wl::Workload &workload, const cpu::CoreParams &params)
{
    sim::RunResult result =
        sim::simulate(params, workload.program, warmupInsts(),
                      measureInsts());
    result.workload = workload.name;
    std::lock_guard<std::mutex> lock(csvMutex);
    appendSimSpeedCsv(result, params);
    return result;
}

size_t
SweepSpec::add(wl::Workload workload, cpu::CoreParams params,
               std::string machine)
{
    items.push_back(
        {std::move(workload), std::move(params), std::move(machine)});
    return items.size() - 1;
}

std::string
SweepResult::statsJson() const
{
    auto quoted = [](const std::string &s) {
        return '"' + jsonEscape(s) + '"';
    };
    std::ostringstream out;
    out << "{\"sweep\": {\"runs\": " << rows.size()
        << ", \"failed\": " << failed() << "},\n\"runs\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &row = rows[i];
        const sim::RunResult &r = row.result;
        out << (i ? ",\n " : "\n ") << "{\"workload\": "
            << quoted(r.workload)
            << ", \"machine\": " << quoted(r.machine)
            << ", \"ok\": " << (row.ok() ? "true" : "false");
        if (row.ok()) {
            out << ", \"instructions\": " << r.instructions
                << ", \"cycles\": " << r.cycles
                << ", \"ipc\": " << jsonNumber(r.ipc)
                << ", \"branch_mpki\": " << jsonNumber(r.branchMpki)
                << ", \"llc_mpki\": " << jsonNumber(r.llcMpki)
                << ", \"avg_misspec_penalty\": "
                << jsonNumber(r.avgMisspecPenalty)
                << ", \"avg_iq_wait\": " << jsonNumber(r.avgIqWait)
                << ", \"unconfident_rate\": "
                << jsonNumber(r.unconfidentBranchRate)
                << ", \"pubs_enabled_fraction\": "
                << jsonNumber(r.pubsEnabledFraction)
                << ", \"priority_stall_cycles\": "
                << r.priorityStallCycles;
        } else {
            out << ", \"error_kind\": " << quoted(row.errorKind)
                << ", \"error\": " << quoted(row.error);
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

SweepResult
runSweep(const SweepSpec &spec)
{
    uint64_t warmup =
        spec.warmup == SweepSpec::envBudget ? warmupInsts() : spec.warmup;
    uint64_t insts =
        spec.insts == SweepSpec::envBudget ? measureInsts() : spec.insts;

    SweepResult result;
    result.rows.resize(spec.items.size());

    sim::RunPool pool(spec.jobs ? spec.jobs : benchJobs());
    result.jobs = pool.threads();

    std::mutex logMutex;
    std::atomic<size_t> completed{0};
    for (size_t i = 0; i < spec.items.size(); ++i) {
        pool.submit([&, i] {
            const SweepItem &item = spec.items[i];
            SweepRow &row = result.rows[i];
            try {
                // Each run owns its Simulator (pipeline, emulator, RNG
                // streams, stats); nothing is shared with siblings, so
                // the result depends only on the item, never on the
                // schedule.
                sim::RunResult r =
                    sim::simulate(item.params, item.workload.program,
                                  warmup, insts);
                r.workload = item.workload.name;
                r.machine = item.machine;
                row.result = std::move(r);
            } catch (const SimError &error) {
                // Skip-and-continue: one broken run must not sink the
                // batch.
                row.error = error.what();
                row.errorKind = SimError::kindName(error.kind());
                row.result.workload = item.workload.name;
                row.result.machine = item.machine;
            }
            size_t done = completed.fetch_add(1) + 1;
            if (spec.verbose) {
                std::lock_guard<std::mutex> lock(logMutex);
                if (row.ok()) {
                    std::fprintf(
                        stderr,
                        "  [%3zu/%zu] %-18s %-14s ipc=%.3f "
                        "brMPKI=%.1f llcMPKI=%.1f kips=%.0f\n",
                        done, spec.items.size(),
                        item.workload.name.c_str(),
                        item.machine.c_str(), row.result.ipc,
                        row.result.branchMpki, row.result.llcMpki,
                        row.result.kips());
                } else {
                    std::fprintf(stderr,
                                 "  [%3zu/%zu] %-18s %-14s FAILED "
                                 "(%s: %s)\n",
                                 done, spec.items.size(),
                                 item.workload.name.c_str(),
                                 item.machine.c_str(),
                                 row.errorKind.c_str(),
                                 row.error.c_str());
                }
            }
        });
    }
    pool.wait();

    sim::PoolStats stats = pool.stats();
    result.wallSeconds = stats.wallSeconds;
    result.busySeconds = stats.busySeconds;

    if (size_t n = result.failed()) {
        warn("%zu of %zu sweep runs failed and were skipped", n,
             spec.items.size());
    }
    if (spec.verbose && spec.items.size() > 1) {
        std::fprintf(stderr,
                     "  sweep: %zu runs on %u jobs in %.2f s "
                     "(utilization %.0f%%)\n",
                     spec.items.size(), result.jobs, result.wallSeconds,
                     result.utilization() * 100.0);
    }

    // All telemetry CSVs are appended in spec order after the barrier,
    // so their row order is schedule-independent.
    std::lock_guard<std::mutex> lock(csvMutex);
    for (size_t i = 0; i < result.rows.size(); ++i)
        if (result.rows[i].ok())
            appendSimSpeedCsv(result.rows[i].result, spec.items[i].params);
    appendSkipCsv(spec, result);
    appendPoolCsv(result);
    return result;
}

SuiteRun
runSuite(const std::vector<wl::Workload> &suite,
         const cpu::CoreParams &params, bool verbose,
         const std::string &machine)
{
    SweepSpec spec;
    spec.verbose = verbose;
    for (const auto &workload : suite)
        spec.add(workload, params, machine);
    SweepResult sweep = runSweep(spec);

    SuiteRun run;
    for (SweepRow &row : sweep.rows) {
        run.results.push_back(std::move(row.result));
        run.errors.push_back(std::move(row.error));
    }
    return run;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geometricMean(ratios);
}

} // namespace pubs::bench
