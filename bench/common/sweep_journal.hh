/**
 * @file
 * Write-ahead journal for sweep results: every completed run is
 * appended as a CRC-protected record and fsync'd *before* the sweep's
 * final output is rendered, so a crash, OOM-kill, or kill -9 mid-sweep
 * loses at most the runs still in flight. A re-run with --resume serves
 * the journaled slots without re-simulating and produces byte-identical
 * final output versus an uninterrupted run.
 *
 * Journal format v1 (little-endian):
 *   header  — 8-byte magic "PUBSJNL1", u32 format version, u32 reserved
 *             (zero), u64 spec key, u64 slot count
 *   records — u32 record magic "JREC", u64 slot index, u32 payload
 *             length, u32 CRC32 of the payload, payload bytes
 *             (run_codec.hh sweep-row encoding)
 *
 * Recovery semantics: records are read sequentially; the first record
 * whose magic, bounds, or CRC fails marks the torn tail of an
 * interrupted append and everything from it on is discarded (the file
 * is truncated back to the valid prefix before new appends). A journal
 * whose header key, slot count, or version disagrees with the resuming
 * sweep is discarded wholesale — a stale journal must never leak rows
 * into a different sweep.
 */

#ifndef PUBS_BENCH_COMMON_SWEEP_JOURNAL_HH
#define PUBS_BENCH_COMMON_SWEEP_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/subprocess.hh"

namespace pubs::bench
{

class SweepJournal
{
  public:
    /**
     * Open the journal at @p path for a sweep identified by @p specKey
     * with @p slots runs. With @p resume, existing valid records for
     * this exact (key, slots) pair are loaded and served via has() /
     * payload(); otherwise the file is recreated empty. Throws SimError
     * (Kind::Fatal) if the file cannot be created.
     */
    SweepJournal(std::string path, uint64_t specKey, uint64_t slots,
                 bool resume);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Was @p slot completed in a previous (interrupted) sweep? */
    bool has(size_t slot) const;

    /** Journaled payload of @p slot (valid only when has(slot)). */
    const std::string &payload(size_t slot) const;

    /** Records recovered at open (resume mode). */
    size_t loaded() const { return loaded_; }

    /**
     * Append and fsync one completed run (thread-safe). Failures to
     * append degrade to a warning: the sweep still completes, it just
     * loses resumability from this point.
     *
     * Honours the PUBS_FAULT killafter:N directive: after the Nth
     * commit of this process the parent SIGKILLs itself, giving tests
     * and CI a deterministic mid-sweep kill -9.
     */
    void record(size_t slot, const std::string &payload);

    const std::string &path() const { return path_; }

  private:
    void load(bool resume);

    std::string path_;
    uint64_t specKey_;
    uint64_t slots_;
    std::FILE *file_ = nullptr;
    std::vector<std::string> payloads_;
    std::vector<bool> present_;
    size_t loaded_ = 0;
    std::mutex mutex_;
    proc::FaultPlan faults_;
    uint64_t commits_ = 0;
};

} // namespace pubs::bench

#endif // PUBS_BENCH_COMMON_SWEEP_JOURNAL_HH
