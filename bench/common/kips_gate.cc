#include "common/kips_gate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/json.hh"

namespace pubs::bench
{

namespace
{

struct SpeedRun
{
    std::string workload;
    std::string machine;
    double kips = 0.0;
};

/** Extract the runs[] rows of one parsed hostspeed document. */
std::string
extractRuns(const json::Value &doc, std::vector<SpeedRun> &out)
{
    if (!doc.isObject())
        return "top-level value is not an object";
    const json::Value *runs = doc.find("runs");
    if (!runs || !runs->isArray())
        return "missing \"runs\" array";
    for (const json::Value &row : runs->array()) {
        if (!row.isObject())
            return "\"runs\" element is not an object";
        SpeedRun run;
        run.workload = row.stringOr("workload", "");
        run.machine = row.stringOr("machine", "");
        run.kips = row.numberOr("kips", 0.0);
        if (run.workload.empty())
            return "run row without a \"workload\"";
        if (run.kips <= 0.0)
            continue; // failed / unmeasured runs carry no speed signal
        out.push_back(std::move(run));
    }
    if (out.empty())
        return "no usable runs (all rows failed or kips <= 0)";
    return "";
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log = 0.0;
    for (double v : values)
        log += std::log(v);
    return std::exp(log / (double)values.size());
}

std::string
fmt(const char *format, double a, double b = 0.0, double c = 0.0)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), format, a, b, c);
    return buf;
}

} // namespace

size_t
GateResult::regressions() const
{
    size_t n = 0;
    for (const GateDelta &d : deltas)
        n += d.regressed ? 1 : 0;
    return n;
}

std::string
GateResult::report() const
{
    std::ostringstream out;
    if (!error.empty()) {
        out << "kips_gate: ERROR: " << error << "\n";
        return out.str();
    }
    std::vector<GateDelta> sorted = deltas;
    std::sort(sorted.begin(), sorted.end(),
              [](const GateDelta &a, const GateDelta &b) {
                  return a.ratio < b.ratio;
              });
    out << "kips_gate: " << deltas.size() << " matched runs, tolerance "
        << fmt("%.0f%% per workload / %.0f%% geomean\n",
               100.0 * config.perWorkloadTolerance,
               100.0 * config.geomeanTolerance);
    for (const GateDelta &d : sorted) {
        out << "  " << (d.regressed ? "FAIL" : " ok ") << "  "
            << d.workload << "/" << d.machine << ": "
            << fmt("%.0f -> %.0f KIPS (%+.1f%%)\n", d.baselineKips,
                   d.freshKips, 100.0 * (d.ratio - 1.0));
    }
    for (const std::string &name : missing)
        out << "  MISS  " << name << ": in baseline, absent from fresh\n";
    out << "  " << (geomeanRegressed ? "FAIL" : " ok ") << "  geomean: "
        << fmt("%.0f -> %.0f KIPS (%+.1f%%)\n", baselineGeomean,
               freshGeomean,
               100.0 * (geomeanRatio - 1.0));
    out << "kips_gate: " << (pass ? "PASS" : "FAIL");
    if (!pass)
        out << " (" << regressions() << " workload regressions"
            << (geomeanRegressed ? ", geomean regressed" : "")
            << (missing.empty() ? "" : ", missing runs") << ")";
    out << "\n";
    return out.str();
}

std::string
GateResult::ledgerRow(const std::string &label) const
{
    if (!error.empty())
        return "| " + label + " | - | - | - | ERROR: " + error + " |\n";
    std::ostringstream out;
    out << "| " << label << " | "
        << fmt("%.0f | %.0f | %+.1f%% | ", baselineGeomean, freshGeomean,
               100.0 * (geomeanRatio - 1.0))
        << (pass ? "pass" : "**FAIL**") << " |\n";
    return out.str();
}

GateResult
runKipsGate(const std::string &baselineJson, const std::string &freshJson,
            const GateConfig &config)
{
    GateResult result;
    result.config = config;

    json::Value baseDoc, freshDoc;
    std::string error;
    if (!json::parse(baselineJson, baseDoc, error)) {
        result.error = "baseline: " + error;
        return result;
    }
    if (!json::parse(freshJson, freshDoc, error)) {
        result.error = "fresh: " + error;
        return result;
    }
    std::vector<SpeedRun> baseRuns, freshRuns;
    error = extractRuns(baseDoc, baseRuns);
    if (!error.empty()) {
        result.error = "baseline: " + error;
        return result;
    }
    error = extractRuns(freshDoc, freshRuns);
    if (!error.empty()) {
        result.error = "fresh: " + error;
        return result;
    }

    std::vector<double> baseKips, freshKips;
    for (const SpeedRun &base : baseRuns) {
        const SpeedRun *fresh = nullptr;
        for (const SpeedRun &f : freshRuns) {
            if (f.workload == base.workload && f.machine == base.machine) {
                fresh = &f;
                break;
            }
        }
        if (!fresh) {
            result.missing.push_back(base.workload + "/" + base.machine);
            continue;
        }
        GateDelta delta;
        delta.workload = base.workload;
        delta.machine = base.machine;
        delta.baselineKips = base.kips;
        delta.freshKips = fresh->kips;
        delta.ratio = fresh->kips / base.kips;
        delta.regressed =
            delta.ratio < 1.0 - config.perWorkloadTolerance;
        baseKips.push_back(base.kips);
        freshKips.push_back(fresh->kips);
        result.deltas.push_back(std::move(delta));
    }
    if (result.deltas.empty()) {
        result.error = "no (workload, machine) pairs match between "
                       "baseline and fresh";
        return result;
    }

    result.baselineGeomean = geomean(baseKips);
    result.freshGeomean = geomean(freshKips);
    result.geomeanRatio = result.freshGeomean / result.baselineGeomean;
    result.geomeanRegressed =
        result.geomeanRatio < 1.0 - config.geomeanTolerance;
    result.pass = !result.geomeanRegressed && result.regressions() == 0 &&
                  result.missing.empty();
    return result;
}

GateResult
runKipsGateFiles(const std::string &baselinePath,
                 const std::string &freshPath, const GateConfig &config)
{
    GateResult result;
    result.config = config;
    std::string baseline, fresh;
    if (!readWholeFile(baselinePath, baseline)) {
        result.error = "cannot read baseline " + baselinePath;
        return result;
    }
    if (!readWholeFile(freshPath, fresh)) {
        result.error = "cannot read fresh record " + freshPath;
        return result;
    }
    return runKipsGate(baseline, fresh, config);
}

std::string
appendLedger(const std::string &path, const GateResult &r,
             const std::string &label)
{
    static const char *header =
        "# Host-speed ledger\n\n"
        "Appended by `ci/kips_gate --ledger`; baseline vs fresh "
        "geomean KIPS per evaluation.\n\n"
        "| run | baseline | fresh | delta | verdict |\n"
        "|---|---|---|---|---|\n";
    return atomicAppendFile(path, header, r.ledgerRow(label));
}

} // namespace pubs::bench
