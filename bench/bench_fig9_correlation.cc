/**
 * @file
 * Figure 9: correlation between PUBS speedup, branch MPKI, and memory
 * intensity. The paper plots one dot per program: red = compute-intensive
 * (LLC MPKI <= 1.0), blue = memory-intensive (> 1.0); for the red dots,
 * speedup correlates with branch MPKI and exceeds the blue dots.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

namespace
{

/** Pearson correlation coefficient. */
double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    double mx = 0, my = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= (double)x.size();
    my /= (double)y.size();
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    auto suite = wl::makeSuite();
    SweepSpec spec;
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Base), "base");
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Pubs), "pubs");
    std::fprintf(stderr, "fig9: %zu runs (base + PUBS)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"workload", "branch_mpki", "llc_mpki", "intensity",
                     "speedup"});
    std::vector<double> mpkiCompute, speedupCompute;
    std::vector<double> speedupMem;
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!sweep.ok(i) || !sweep.ok(suite.size() + i))
            continue;
        const sim::RunResult &b = sweep.at(i);
        double speedup = sweep.at(suite.size() + i).speedupOver(b);
        bool memIntensive = b.llcMpki > memIntensityThreshold;
        if (memIntensive) {
            speedupMem.push_back(speedup);
        } else {
            mpkiCompute.push_back(b.branchMpki);
            speedupCompute.push_back(speedup);
        }
        table.addRow({suite[i].name, num(b.branchMpki, 1),
                      num(b.llcMpki, 1),
                      memIntensive ? "memory (blue)" : "compute (red)",
                      pct(speedup)});
    }

    std::printf("FIGURE 9: speedup vs branch MPKI vs memory intensity\n");
    std::printf("(paper: compute-intensive dots correlate with branch "
                "MPKI; memory dots sit lower)\n\n%s\n",
                table.str().c_str());

    double r = pearson(mpkiCompute, speedupCompute);
    double meanCompute = pubs::arithmeticMean(speedupCompute);
    double meanMem = speedupMem.empty()
                         ? 1.0
                         : pubs::arithmeticMean(speedupMem);
    std::printf("correlation(speedup, branch MPKI) over compute "
                "programs: r = %.2f\n", r);
    std::printf("mean speedup: compute %s vs memory-intensive %s\n",
                pct(meanCompute).c_str(), pct(meanMem).c_str());
    maybeWriteCsv("fig9_correlation", table);
    return 0;
}
