/**
 * @file
 * Figure 8: speedup of PUBS over the base machine, per workload.
 *
 * The paper reports per-program bars for the D-BP programs (branch MPKI
 * > 3.0 on the base machine), "GM diff" (their geometric mean), and
 * "GM easy" (geometric mean of the E-BP programs). Paper results:
 * GM diff +7.8%, max +19.2% (sjeng), min +0.3% (mcf); GM easy ~ 0.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs::bench;
    namespace sim = pubs::sim;
    namespace wl = pubs::wl;

    parseBenchArgs(argc, argv);

    // One batch: the whole suite on both machines, scheduled across the
    // pool at once so slow and fast workloads interleave.
    auto suite = wl::makeSuite();
    SweepSpec spec;
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Base), "base");
    for (const auto &workload : suite)
        spec.add(workload, sim::makeConfig(sim::Machine::Pubs), "pubs");
    std::fprintf(stderr, "fig8: %zu runs (base + PUBS)\n",
                 spec.items.size());
    SweepResult sweep = runSweep(spec);

    TextTable table({"workload", "class", "branch_mpki", "llc_mpki",
                     "base_ipc", "pubs_ipc", "speedup"});
    std::vector<double> dbp;
    std::vector<double> ebp;
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!sweep.ok(i) || !sweep.ok(suite.size() + i))
            continue;
        const sim::RunResult &b = sweep.at(i);
        const sim::RunResult &p = sweep.at(suite.size() + i);
        bool hard = b.branchMpki > dbpThreshold;
        double speedup = p.speedupOver(b);
        (hard ? dbp : ebp).push_back(speedup);
        table.addRow({suite[i].name, hard ? "D-BP" : "E-BP",
                      num(b.branchMpki, 1), num(b.llcMpki, 1),
                      num(b.ipc), num(p.ipc), pct(speedup)});
    }
    table.addRow({"GM diff", "D-BP", "", "", "", "",
                  dbp.empty() ? "n/a" : pct(geoMeanRatio(dbp))});
    table.addRow({"GM easy", "E-BP", "", "", "", "",
                  ebp.empty() ? "n/a" : pct(geoMeanRatio(ebp))});

    std::printf("FIGURE 8: speedup of PUBS over the base\n");
    std::printf("(paper: GM diff +7.8%%, max +19.2%% sjeng, min +0.3%% "
                "mcf, GM easy ~0%%)\n\n%s", table.str().c_str());
    maybeWriteCsv("fig8_speedup", table);
    return 0;
}
