/**
 * @file
 * Tables I & II: print the base processor configuration and the PUBS
 * parameter set used throughout the evaluation.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "pubs/cost_model.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace pubs;

    bench::parseBenchArgs(argc, argv);

    cpu::CoreParams base = sim::makeConfig(sim::Machine::Base);
    std::printf("TABLE I: base processor configuration\n%s\n",
                base.describe().c_str());

    cpu::CoreParams withPubs = sim::makeConfig(sim::Machine::Pubs);
    std::printf("TABLE II: PUBS parameters\n%s\n",
                withPubs.describe().c_str());

    std::printf("%s\n",
                ::pubs::pubs::formatCostTable(withPubs.pubs).c_str());
    return 0;
}
