#!/usr/bin/env bash
# Two-stage PGO build pipeline (DESIGN.md §13).
#
# Stage 1 builds with -fprofile-generate, runs a short fig8 sweep as the
# training workload (the same sweep the reference output pins, so the
# profile reflects the real hot paths), then stage 2 rebuilds with
# -fprofile-use. Both binaries write a host-speed record and the KIPS
# gate renders the comparison, so the PGO win (or loss) lands in a
# ledger instead of a scrollback buffer.
#
# Usage: ci/pgo_build.sh [output-dir]
#
# Environment:
#   PUBS_MARCH        -march= value for both stages (default: native)
#   PGO_TRAIN_INSTS   training-sweep instruction budget (default 50000)
#   PGO_TRAIN_WARMUP  training-sweep warmup budget (default 10000)
#   PGO_BENCH_INSTS   measurement budget for the KIPS records (200000)
#   PGO_BENCH_WARMUP  measurement warmup (50000)
#   PGO_JOBS          sweep job count for training + measurement (2)
#
# Outputs (in output-dir, default ./pgo_out):
#   hostspeed_plain.json  KIPS record of the stage-1-equivalent plain build
#   hostspeed_pgo.json    KIPS record of the -fprofile-use build
#   PGO_LEDGER.md         kips_gate comparison, plain -> PGO

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo/pgo_out}"
march="${PUBS_MARCH:-native}"
train_insts="${PGO_TRAIN_INSTS:-50000}"
train_warmup="${PGO_TRAIN_WARMUP:-10000}"
bench_insts="${PGO_BENCH_INSTS:-200000}"
bench_warmup="${PGO_BENCH_WARMUP:-50000}"
jobs="${PGO_JOBS:-2}"
nproc_jobs="$(nproc)"

mkdir -p "$out"
profile_dir="$out/profdata"
rm -rf "$profile_dir"
mkdir -p "$profile_dir"

echo "== PGO pipeline: -march=$march, training ${train_insts}/${train_warmup}, measuring ${bench_insts}/${bench_warmup}"

# --- baseline: plain optimized build at the same -march ----------------
build_plain="$out/build_plain"
cmake -B "$build_plain" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DPUBS_MARCH="$march" > /dev/null
cmake --build "$build_plain" -j "$nproc_jobs" \
    --target bench_micro_components bench_fig8_speedup kips_gate
PUBS_BENCH_INSTS="$bench_insts" PUBS_BENCH_WARMUP="$bench_warmup" \
    "$build_plain/bench/bench_micro_components" \
    --hostspeed "$out/hostspeed_plain.json" --jobs "$jobs"

# --- stage 1: instrumented build + training sweep ----------------------
build_gen="$out/build_pgo"
rm -rf "$build_gen"
cmake -B "$build_gen" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DPUBS_MARCH="$march" -DPUBS_PGO=generate \
    -DPUBS_PGO_DIR="$profile_dir" > /dev/null
cmake --build "$build_gen" -j "$nproc_jobs" --target bench_fig8_speedup
echo "== training: short fig8 sweep on the instrumented binary"
PUBS_BENCH_INSTS="$train_insts" PUBS_BENCH_WARMUP="$train_warmup" \
    "$build_gen/bench/bench_fig8_speedup" --jobs "$jobs" \
    > "$out/fig8_train.txt"
ls "$profile_dir"/*.gcda > /dev/null 2>&1 || {
    echo "pgo_build: no .gcda profiles written to $profile_dir" >&2
    exit 1
}

# --- stage 2: rebuild with -fprofile-use -------------------------------
cmake -B "$build_gen" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
    -DPUBS_MARCH="$march" -DPUBS_PGO=use \
    -DPUBS_PGO_DIR="$profile_dir" > /dev/null
# The stage flag changed, so every object rebuilds against the profile.
cmake --build "$build_gen" -j "$nproc_jobs" --clean-first \
    --target bench_micro_components bench_fig8_speedup
PUBS_BENCH_INSTS="$bench_insts" PUBS_BENCH_WARMUP="$bench_warmup" \
    "$build_gen/bench/bench_micro_components" \
    --hostspeed "$out/hostspeed_pgo.json" --jobs "$jobs"

# --- PGO output must stay bit-exact ------------------------------------
PUBS_BENCH_INSTS="$train_insts" PUBS_BENCH_WARMUP="$train_warmup" \
    "$build_gen/bench/bench_fig8_speedup" --jobs "$jobs" \
    > "$out/fig8_pgo.txt"
diff <(grep -v jobs "$out/fig8_train.txt") \
     <(grep -v jobs "$out/fig8_pgo.txt")
echo "== PGO build is byte-identical on the training sweep"

# --- render the comparison --------------------------------------------
"$build_plain/ci/kips_gate" \
    --baseline "$out/hostspeed_plain.json" \
    --fresh "$out/hostspeed_pgo.json" \
    --ledger "$out/PGO_LEDGER.md" \
    --label "pgo-march-$march" \
    --warn-only
echo "== comparison appended to $out/PGO_LEDGER.md"
