# Driver for the perf-labelled KIPS gate test: run a fresh hostspeed
# sweep, then gate it against the committed baseline. Invoked by ctest
# via cmake -P (see ci/CMakeLists.txt); hard-fails on regression, which
# is the intended local behaviour — CI shared runners use the gate
# binary directly with --warn-only instead.
execute_process(
    COMMAND ${HOSTSPEED_BIN} --hostspeed ${FRESH}
    RESULT_VARIABLE sweep_rc)
if(NOT sweep_rc EQUAL 0)
    message(FATAL_ERROR "hostspeed sweep failed (rc=${sweep_rc})")
endif()
execute_process(
    COMMAND ${GATE_BIN} --baseline ${BASELINE} --fresh ${FRESH}
            --label "ctest-perf"
    RESULT_VARIABLE gate_rc)
if(NOT gate_rc EQUAL 0)
    message(FATAL_ERROR "kips_gate failed (rc=${gate_rc})")
endif()
