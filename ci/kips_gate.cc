/**
 * @file
 * CI entry point of the KIPS regression gate.
 *
 *   kips_gate --baseline BENCH_hostspeed.json --fresh fresh.json \
 *             [--ledger BENCH_LEDGER.md] [--label NAME] \
 *             [--per-workload-tol 0.15] [--geomean-tol 0.07] \
 *             [--warn-only]
 *
 * Exit status: 0 = pass (or --warn-only), 1 = regression, 2 = bad
 * invocation or unreadable/invalid input. --warn-only still prints the
 * full report and writes the ledger, but never fails the build — for
 * shared CI runners whose wall-clock speed is not trustworthy.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/kips_gate.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --baseline FILE --fresh FILE\n"
                 "          [--ledger FILE] [--label NAME]\n"
                 "          [--per-workload-tol FRAC] [--geomean-tol FRAC]\n"
                 "          [--warn-only]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ::pubs::bench;

    std::string baseline, fresh, ledger, label = "local";
    GateConfig config;
    bool warnOnly = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--baseline"))
            baseline = next("--baseline");
        else if (!std::strcmp(argv[i], "--fresh"))
            fresh = next("--fresh");
        else if (!std::strcmp(argv[i], "--ledger"))
            ledger = next("--ledger");
        else if (!std::strcmp(argv[i], "--label"))
            label = next("--label");
        else if (!std::strcmp(argv[i], "--per-workload-tol"))
            config.perWorkloadTolerance =
                std::strtod(next("--per-workload-tol"), nullptr);
        else if (!std::strcmp(argv[i], "--geomean-tol"))
            config.geomeanTolerance =
                std::strtod(next("--geomean-tol"), nullptr);
        else if (!std::strcmp(argv[i], "--warn-only"))
            warnOnly = true;
        else if (!std::strcmp(argv[i], "--help"))
            usage(argv[0]);
        else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         argv[i]);
            usage(argv[0]);
        }
    }
    if (baseline.empty() || fresh.empty())
        usage(argv[0]);

    GateResult result = runKipsGateFiles(baseline, fresh, config);
    std::fputs(result.report().c_str(), stdout);
    if (!ledger.empty()) {
        std::string error = appendLedger(ledger, result, label);
        if (!error.empty())
            std::fprintf(stderr, "kips_gate: cannot append %s: %s\n",
                         ledger.c_str(), error.c_str());
    }
    if (!result.error.empty())
        return 2;
    if (!result.pass && warnOnly) {
        std::fputs("kips_gate: regression DOWNGRADED to warning "
                   "(--warn-only)\n",
                   stdout);
        return 0;
    }
    return result.pass ? 0 : 1;
}
