/**
 * @file
 * CLI wrapper over common/stats_diff: compare two stats-JSON documents
 * with per-field tolerances and an allowlist for host-dependent fields.
 *
 *     stats_diff A.json B.json [--abs-tol X] [--rel-tol X]
 *                [--allow PATH]...
 *
 * Exit 0 when the documents match under the tolerances, 1 with one
 * mismatch per line on stdout when they differ, 2 on usage or I/O
 * errors. Replaces the `diff <(grep -v ...)` pipelines in CI, which
 * compare formatting instead of values and silently drop whole lines.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/atomic_file.hh"
#include "common/stats_diff.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s A.json B.json [--abs-tol X] [--rel-tol X] "
                 "[--allow PATH]...\n"
                 "  --abs-tol X   absolute tolerance on numeric fields\n"
                 "  --rel-tol X   relative tolerance on numeric fields\n"
                 "  --allow PATH  ignore this dotted path and its "
                 "subtree (repeatable), e.g. --allow run.kips\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string pathA, pathB;
    pubs::StatsDiffOptions options;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--abs-tol") == 0 && i + 1 < argc) {
            options.absTol = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--rel-tol") == 0 &&
                   i + 1 < argc) {
            options.relTol = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--allow") == 0 && i + 1 < argc) {
            options.allow.emplace_back(argv[++i]);
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (pathA.empty()) {
            pathA = argv[i];
        } else if (pathB.empty()) {
            pathB = argv[i];
        } else {
            usage(argv[0]);
        }
    }
    if (pathA.empty() || pathB.empty())
        usage(argv[0]);

    std::string a, b;
    if (!pubs::readWholeFile(pathA, a)) {
        std::fprintf(stderr, "cannot read %s\n", pathA.c_str());
        return 2;
    }
    if (!pubs::readWholeFile(pathB, b)) {
        std::fprintf(stderr, "cannot read %s\n", pathB.c_str());
        return 2;
    }

    pubs::StatsDiff diff = pubs::diffStatsJsonText(a, b, options);
    for (const std::string &mismatch : diff.mismatches)
        std::printf("%s\n", mismatch.c_str());
    if (diff.ok()) {
        std::printf("stats_diff: %llu leaves match (%llu ignored)\n",
                    (unsigned long long)diff.comparedLeaves,
                    (unsigned long long)diff.ignoredLeaves);
        return 0;
    }
    std::printf("stats_diff: %zu mismatch%s (%llu leaves compared, "
                "%llu ignored)\n",
                diff.mismatches.size(),
                diff.mismatches.size() == 1 ? "" : "es",
                (unsigned long long)diff.comparedLeaves,
                (unsigned long long)diff.ignoredLeaves);
    return 1;
}
