#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace pubs::isa
{

namespace
{

struct Token
{
    std::string text;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == '#' || c == ';')
            break;
        if (std::isspace((unsigned char)c) || c == ',') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> m;
        for (size_t i = 0; i < (size_t)Opcode::NumOpcodes; ++i) {
            auto op = (Opcode)i;
            m[mnemonic(op)] = op;
        }
        return m;
    }();
    return table;
}

std::optional<RegId>
parseReg(const std::string &token, char prefix, int limit)
{
    if (token.size() < 2 || token[0] != prefix)
        return std::nullopt;
    for (size_t i = 1; i < token.size(); ++i)
        if (!std::isdigit((unsigned char)token[i]))
            return std::nullopt;
    int value = std::stoi(token.substr(1));
    if (value >= limit)
        return std::nullopt;
    return (RegId)value;
}

RegId
expectReg(int line, const std::string &token, RegClass cls)
{
    std::optional<RegId> r;
    if (cls == RegClass::Fp)
        r = parseReg(token, 'f', numFpRegs);
    else
        r = parseReg(token, 'r', numIntRegs);
    if (!r) {
        throw AsmError(line, "expected " +
                       std::string(cls == RegClass::Fp ? "fp" : "int") +
                       " register, got '" + token + "'");
    }
    return *r;
}

std::optional<int64_t>
parseImm(const std::string &token)
{
    if (token.empty())
        return std::nullopt;
    size_t pos = 0;
    bool negative = token[0] == '-';
    if (negative)
        pos = 1;
    if (pos >= token.size())
        return std::nullopt;
    int base = 10;
    if (token.size() > pos + 2 && token[pos] == '0' &&
        (token[pos + 1] == 'x' || token[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    for (size_t i = pos; i < token.size(); ++i) {
        char c = token[i];
        bool ok = base == 16 ? std::isxdigit((unsigned char)c)
                             : std::isdigit((unsigned char)c);
        if (!ok)
            return std::nullopt;
    }
    try {
        int64_t v = std::stoll(token.substr(negative ? 1 : 0), nullptr, 0);
        return negative ? -v : v;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

int64_t
expectImm(int line, const std::string &token)
{
    auto v = parseImm(token);
    if (!v)
        throw AsmError(line, "expected immediate, got '" + token + "'");
    return *v;
}

struct Fixup
{
    size_t instIndex;
    std::string label;
    int line;
};

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Program prog(name);
    std::vector<Fixup> fixups;

    std::istringstream stream(source);
    std::string line;
    int lineNo = 0;
    while (std::getline(stream, line)) {
        ++lineNo;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        // Label definitions ("name:"), possibly followed by an
        // instruction on the same line.
        while (!tokens.empty() && tokens[0].back() == ':') {
            std::string label = tokens[0].substr(0, tokens[0].size() - 1);
            if (label.empty())
                throw AsmError(lineNo, "empty label");
            if (prog.hasLabel(label))
                throw AsmError(lineNo, "duplicate label '" + label + "'");
            prog.defineLabel(label);
            tokens.erase(tokens.begin());
        }
        if (tokens.empty())
            continue;

        // Data directives.
        if (tokens[0] == ".data64") {
            if (tokens.size() != 3)
                throw AsmError(lineNo, ".data64 needs <addr> <value>");
            prog.addData64((Addr)expectImm(lineNo, tokens[1]),
                           (uint64_t)expectImm(lineNo, tokens[2]));
            continue;
        }

        auto it = mnemonicMap().find(tokens[0]);
        if (it == mnemonicMap().end())
            throw AsmError(lineNo, "unknown mnemonic '" + tokens[0] + "'");
        Opcode op = it->second;
        const OpInfo &info = opInfo(op);
        std::vector<std::string> operands(tokens.begin() + 1, tokens.end());

        auto need = [&](size_t n) {
            if (operands.size() != n) {
                throw AsmError(lineNo, std::string(info.mnemonic) +
                               " expects " + std::to_string(n) +
                               " operands, got " +
                               std::to_string(operands.size()));
            }
        };

        Inst inst;
        inst.op = op;

        if (op == Opcode::Nop || op == Opcode::Halt) {
            need(0);
        } else if (op == Opcode::Li) {
            need(2);
            inst.dst = expectReg(lineNo, operands[0], RegClass::Int);
            inst.imm = expectImm(lineNo, operands[1]);
        } else if (isLoad(op)) {
            need(3);
            inst.dst = expectReg(lineNo, operands[0], info.dstClass);
            inst.src1 = expectReg(lineNo, operands[1], RegClass::Int);
            inst.imm = expectImm(lineNo, operands[2]);
        } else if (isStore(op)) {
            need(3);
            inst.src2 = expectReg(lineNo, operands[0], info.srcClass);
            inst.src1 = expectReg(lineNo, operands[1], RegClass::Int);
            inst.imm = expectImm(lineNo, operands[2]);
        } else if (isCondBranch(op)) {
            need(3);
            inst.src1 = expectReg(lineNo, operands[0], RegClass::Int);
            inst.src2 = expectReg(lineNo, operands[1], RegClass::Int);
            fixups.push_back({prog.size(), operands[2], lineNo});
        } else if (op == Opcode::J) {
            need(1);
            fixups.push_back({prog.size(), operands[0], lineNo});
        } else if (op == Opcode::Jal) {
            need(2);
            inst.dst = expectReg(lineNo, operands[0], RegClass::Int);
            fixups.push_back({prog.size(), operands[1], lineNo});
        } else if (op == Opcode::Jr) {
            need(1);
            inst.src1 = expectReg(lineNo, operands[0], RegClass::Int);
        } else if (op == Opcode::Fcvt || op == Opcode::Ficvt) {
            need(2);
            inst.dst = expectReg(lineNo, operands[0], info.dstClass);
            inst.src1 = expectReg(lineNo, operands[1], info.srcClass);
        } else if (op == Opcode::Fmov) {
            need(2);
            inst.dst = expectReg(lineNo, operands[0], RegClass::Fp);
            inst.src1 = expectReg(lineNo, operands[1], RegClass::Fp);
        } else if (info.hasImm) {
            // Register-immediate ALU form.
            need(3);
            inst.dst = expectReg(lineNo, operands[0], info.dstClass);
            inst.src1 = expectReg(lineNo, operands[1], info.srcClass);
            inst.imm = expectImm(lineNo, operands[2]);
        } else {
            // Register-register-register form.
            need(3);
            inst.dst = expectReg(lineNo, operands[0], info.dstClass);
            inst.src1 = expectReg(lineNo, operands[1], info.srcClass);
            inst.src2 = expectReg(lineNo, operands[2], info.srcClass);
        }

        prog.append(inst);
    }

    for (const auto &fixup : fixups) {
        if (!prog.hasLabel(fixup.label)) {
            throw AsmError(fixup.line,
                           "undefined label '" + fixup.label + "'");
        }
        prog.at(fixup.instIndex).imm = (int64_t)prog.labelIndex(fixup.label);
    }
    return prog;
}

} // namespace pubs::isa
