/**
 * @file
 * The micro-ISA: a small fixed-width RISC instruction set with the operand
 * classes the PUBS timing model needs (int ALU / mul / div, FP, load/store,
 * conditional branches, jumps). 32 integer + 32 floating-point logical
 * registers (64 total — the def_tab row count in the paper).
 *
 * Integer register r0 is hardwired to zero.
 */

#ifndef PUBS_ISA_ISA_HH
#define PUBS_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pubs::isa
{

/** Every opcode in the micro-ISA. */
enum class Opcode : uint8_t
{
    // Integer ALU, register-register.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    // Integer ALU, register-immediate.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
    // Load a sign-extended 32-bit immediate.
    Li,
    // Integer multiply / divide.
    Mul, Div, Rem,
    // Memory: 8-byte and 4-byte integer, 8-byte FP. Address = [src1+imm].
    Ld, Lw, St, Sw, Fld, Fst,
    // Floating point (double precision).
    Fadd, Fsub, Fmul, Fdiv, Fcvt /* int->fp */, Ficvt /* fp->int */,
    Fmov, Fclt /* fp less-than -> int reg */,
    // Control. Conditional branches compare src1, src2; imm is the target
    // expressed as an absolute instruction index within the program.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    J, Jal, Jr,
    // Misc.
    Nop, Halt,

    NumOpcodes,
};

/** Functional-unit class of an instruction (drives FU-port arbitration). */
enum class OpClass : uint8_t
{
    IntAlu,   ///< 1-cycle integer ops and compares
    IntMul,   ///< pipelined multiplier
    IntDiv,   ///< unpipelined divider
    FpAlu,    ///< FP add/sub/convert/compare/move
    FpMul,    ///< FP multiply
    FpDiv,    ///< FP divide (unpipelined)
    Load,
    Store,
    Branch,   ///< conditional branches and all jumps
    Nop,

    NumClasses,
};

/** Which register file an operand lives in. */
enum class RegClass : uint8_t { Int, Fp, None };

/**
 * A static instruction. Fixed three-operand form; unused operands are
 * invalidReg. Branch/jump targets are absolute instruction indices held
 * in imm (resolved from labels by the assembler / builder).
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;
    int64_t imm = 0;
};

/** Static properties of an opcode, indexed by Opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    /** Execution latency in cycles (memory ops: address-generation part). */
    unsigned latency;
    /** True if the FU is blocked for the whole latency (divides). */
    bool unpipelined;
    RegClass dstClass;
    RegClass srcClass;   ///< class of register sources
    bool hasImm;
};

/** Look up static properties for @p op. */
const OpInfo &opInfo(Opcode op);

/** Convenience: functional-unit class for @p op. */
OpClass opClass(Opcode op);

/** Human-readable mnemonic. */
const char *mnemonic(Opcode op);

/** Human-readable name of an OpClass. */
const char *opClassName(OpClass cls);

inline bool
isBranch(Opcode op)
{
    return op >= Opcode::Beq && op <= Opcode::Jr;
}

inline bool
isCondBranch(Opcode op)
{
    return op >= Opcode::Beq && op <= Opcode::Bgeu;
}

inline bool
isLoad(Opcode op)
{
    return op == Opcode::Ld || op == Opcode::Lw || op == Opcode::Fld;
}

inline bool
isStore(Opcode op)
{
    return op == Opcode::St || op == Opcode::Sw || op == Opcode::Fst;
}

inline bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

/**
 * Register class of a source operand of @p inst. Memory instructions
 * always use an integer base-address register as src1; the store-data
 * register (src2) follows the opcode's data class. For everything else
 * both sources share the opcode's srcClass.
 *
 * @param which 0 for src1, 1 for src2.
 */
RegClass srcRegClass(const Inst &inst, int which);

/** Register class of the destination operand of @p inst. */
RegClass dstRegClass(const Inst &inst);

/**
 * Encode a register id for the unified 64-row logical register space used
 * by the def_tab: int registers map to [0,32), fp registers to [32,64).
 */
inline int
unifiedReg(RegClass cls, RegId r)
{
    return cls == RegClass::Fp ? numIntRegs + r : r;
}

/** Register name ("r7" / "f3"). */
std::string regName(RegClass cls, RegId r);

/** Format one instruction as assembly text. */
std::string disassemble(const Inst &inst);

} // namespace pubs::isa

#endif // PUBS_ISA_ISA_HH
