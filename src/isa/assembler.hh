/**
 * @file
 * A two-pass text assembler for the micro-ISA.
 *
 * Syntax (one instruction per line, '#' or ';' comments):
 *
 *     loop:
 *         addi r1, r1, 1
 *         ld   r2, r3, 8        # r2 = mem[r3 + 8]
 *         st   r2, r3, 16       # mem[r3 + 16] = r2
 *         beq  r1, r2, loop
 *         jal  r31, func
 *         jr   r31
 *         halt
 *     .data64 0x2000 42         # install a 64-bit word before execution
 *
 * Errors are reported with line numbers via AsmError.
 */

#ifndef PUBS_ISA_ASSEMBLER_HH
#define PUBS_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace pubs::isa
{

/** Raised on any syntax or semantic error in assembly text. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &message)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             message),
          line_(line)
    {}

    int line() const { return line_; }

  private:
    int line_;
};

/** Assemble @p source into a Program named @p name. */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

} // namespace pubs::isa

#endif // PUBS_ISA_ASSEMBLER_HH
