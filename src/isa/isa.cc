#include "isa/isa.hh"

#include <array>
#include <sstream>

#include "common/logging.hh"

namespace pubs::isa
{

namespace
{

using enum OpClass;
using enum RegClass;

constexpr size_t numOps = (size_t)Opcode::NumOpcodes;

// One row per opcode, in Opcode declaration order.
const std::array<OpInfo, numOps> opTable = {{
    // mnemonic  class   lat unpip  dst   src   imm
    {"add",   IntAlu, 1, false, Int,  Int,  false},
    {"sub",   IntAlu, 1, false, Int,  Int,  false},
    {"and",   IntAlu, 1, false, Int,  Int,  false},
    {"or",    IntAlu, 1, false, Int,  Int,  false},
    {"xor",   IntAlu, 1, false, Int,  Int,  false},
    {"sll",   IntAlu, 1, false, Int,  Int,  false},
    {"srl",   IntAlu, 1, false, Int,  Int,  false},
    {"sra",   IntAlu, 1, false, Int,  Int,  false},
    {"slt",   IntAlu, 1, false, Int,  Int,  false},
    {"sltu",  IntAlu, 1, false, Int,  Int,  false},
    {"addi",  IntAlu, 1, false, Int,  Int,  true},
    {"andi",  IntAlu, 1, false, Int,  Int,  true},
    {"ori",   IntAlu, 1, false, Int,  Int,  true},
    {"xori",  IntAlu, 1, false, Int,  Int,  true},
    {"slli",  IntAlu, 1, false, Int,  Int,  true},
    {"srli",  IntAlu, 1, false, Int,  Int,  true},
    {"srai",  IntAlu, 1, false, Int,  Int,  true},
    {"slti",  IntAlu, 1, false, Int,  Int,  true},
    {"li",    IntAlu, 1, false, Int,  None, true},
    {"mul",   IntMul, 3, false, Int,  Int,  false},
    {"div",   IntDiv, 20, true, Int,  Int,  false},
    {"rem",   IntDiv, 20, true, Int,  Int,  false},
    {"ld",    Load,  1, false, Int,  Int,  true},
    {"lw",    Load,  1, false, Int,  Int,  true},
    {"st",    Store, 1, false, None, Int,  true},
    {"sw",    Store, 1, false, None, Int,  true},
    {"fld",   Load,  1, false, Fp,   Int,  true},
    {"fst",   Store, 1, false, None, Fp,   true},
    {"fadd",  FpAlu, 3, false, Fp,   Fp,   false},
    {"fsub",  FpAlu, 3, false, Fp,   Fp,   false},
    {"fmul",  FpMul, 4, false, Fp,   Fp,   false},
    {"fdiv",  FpDiv, 12, true, Fp,   Fp,   false},
    {"fcvt",  FpAlu, 3, false, Fp,   Int,  false},
    {"ficvt", FpAlu, 3, false, Int,  Fp,   false},
    {"fmov",  FpAlu, 1, false, Fp,   Fp,   false},
    {"fclt",  FpAlu, 3, false, Int,  Fp,   false},
    {"beq",   Branch, 1, false, None, Int, true},
    {"bne",   Branch, 1, false, None, Int, true},
    {"blt",   Branch, 1, false, None, Int, true},
    {"bge",   Branch, 1, false, None, Int, true},
    {"bltu",  Branch, 1, false, None, Int, true},
    {"bgeu",  Branch, 1, false, None, Int, true},
    {"j",     Branch, 1, false, None, None, true},
    {"jal",   Branch, 1, false, Int,  None, true},
    {"jr",    Branch, 1, false, None, Int, false},
    {"nop",   OpClass::Nop, 1, false, None, None, false},
    {"halt",  OpClass::Nop, 1, false, None, None, false},
}};

const char *const classNames[(size_t)OpClass::NumClasses] = {
    "IntAlu", "IntMul", "IntDiv", "FpAlu", "FpMul", "FpDiv",
    "Load", "Store", "Branch", "Nop",
};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    panic_if((size_t)op >= numOps, "bad opcode %d", (int)op);
    return opTable[(size_t)op];
}

OpClass
opClass(Opcode op)
{
    return opInfo(op).cls;
}

const char *
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

const char *
opClassName(OpClass cls)
{
    panic_if((size_t)cls >= (size_t)OpClass::NumClasses, "bad opclass");
    return classNames[(size_t)cls];
}

RegClass
srcRegClass(const Inst &inst, int which)
{
    const OpInfo &info = opInfo(inst.op);
    if (isMem(inst.op))
        return which == 0 ? RegClass::Int : info.srcClass;
    return info.srcClass;
}

RegClass
dstRegClass(const Inst &inst)
{
    return opInfo(inst.op).dstClass;
}

std::string
regName(RegClass cls, RegId r)
{
    if (cls == RegClass::None || r == invalidReg)
        return "-";
    std::ostringstream out;
    out << (cls == RegClass::Fp ? 'f' : 'r') << r;
    return out.str();
}

std::string
disassemble(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream out;
    out << info.mnemonic;

    auto emit = [&out, first = true](const std::string &s) mutable {
        out << (first ? " " : ", ") << s;
        first = false;
    };

    if (inst.dst != invalidReg)
        emit(regName(info.dstClass, inst.dst));
    if (inst.src1 != invalidReg)
        emit(regName(srcRegClass(inst, 0), inst.src1));
    if (inst.src2 != invalidReg)
        emit(regName(srcRegClass(inst, 1), inst.src2));
    if (info.hasImm)
        emit(std::to_string(inst.imm));
    return out.str();
}

} // namespace pubs::isa
