#include "isa/builder.hh"

#include "common/logging.hh"

namespace pubs::isa
{

namespace
{

void
checkReg(RegClass cls, RegId r)
{
    if (cls == RegClass::None) {
        fatal_if(r != invalidReg, "operand present where none expected");
        return;
    }
    int limit = cls == RegClass::Fp ? numFpRegs : numIntRegs;
    fatal_if(r < 0 || r >= limit, "register %d out of range", (int)r);
}

} // namespace

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    prog_.defineLabel(name);
    return *this;
}

ProgramBuilder &
ProgramBuilder::rrr(Opcode op, RegId dst, RegId src1, RegId src2)
{
    const OpInfo &info = opInfo(op);
    fatal_if(info.hasImm, "opcode %s needs an immediate", info.mnemonic);
    Inst inst{op, dst, src1, src2, 0};
    checkReg(info.dstClass, dst);
    if (src1 != invalidReg)
        checkReg(srcRegClass(inst, 0), src1);
    if (src2 != invalidReg)
        checkReg(srcRegClass(inst, 1), src2);
    prog_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::rri(Opcode op, RegId dst, RegId src1, int64_t imm)
{
    const OpInfo &info = opInfo(op);
    fatal_if(!info.hasImm, "opcode %s takes no immediate", info.mnemonic);
    Inst inst{op, dst, src1, invalidReg, imm};
    checkReg(info.dstClass, dst);
    checkReg(srcRegClass(inst, 0), src1);
    prog_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::li(RegId dst, int64_t imm)
{
    checkReg(RegClass::Int, dst);
    fatal_if(imm < INT32_MIN || imm > INT32_MAX,
             "li immediate %lld out of 32-bit range", (long long)imm);
    prog_.append({Opcode::Li, dst, invalidReg, invalidReg, imm});
    return *this;
}

ProgramBuilder &
ProgramBuilder::load(Opcode op, RegId dst, RegId base, int64_t offset)
{
    fatal_if(!isLoad(op), "load() with non-load opcode %s", mnemonic(op));
    Inst inst{op, dst, base, invalidReg, offset};
    checkReg(dstRegClass(inst), dst);
    checkReg(RegClass::Int, base);
    prog_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::store(Opcode op, RegId value, RegId base, int64_t offset)
{
    fatal_if(!isStore(op), "store() with non-store opcode %s", mnemonic(op));
    Inst inst{op, invalidReg, base, value, offset};
    checkReg(RegClass::Int, base);
    checkReg(srcRegClass(inst, 1), value);
    prog_.append(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::branch(Opcode op, RegId a, RegId b, const std::string &target)
{
    fatal_if(!isCondBranch(op), "branch() with non-branch opcode %s",
             mnemonic(op));
    checkReg(RegClass::Int, a);
    checkReg(RegClass::Int, b);
    size_t idx = prog_.append({op, invalidReg, a, b, 0});
    fixups_.push_back({idx, target});
    return *this;
}

ProgramBuilder &
ProgramBuilder::jump(const std::string &target)
{
    size_t idx = prog_.append({Opcode::J, invalidReg, invalidReg,
                               invalidReg, 0});
    fixups_.push_back({idx, target});
    return *this;
}

ProgramBuilder &
ProgramBuilder::jal(RegId link, const std::string &target)
{
    checkReg(RegClass::Int, link);
    size_t idx = prog_.append({Opcode::Jal, link, invalidReg,
                               invalidReg, 0});
    fixups_.push_back({idx, target});
    return *this;
}

ProgramBuilder &
ProgramBuilder::jr(RegId target)
{
    checkReg(RegClass::Int, target);
    prog_.append({Opcode::Jr, invalidReg, target, invalidReg, 0});
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    prog_.append({Opcode::Nop, invalidReg, invalidReg, invalidReg, 0});
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    prog_.append({Opcode::Halt, invalidReg, invalidReg, invalidReg, 0});
    return *this;
}

ProgramBuilder &
ProgramBuilder::data64(Addr addr, uint64_t value)
{
    prog_.addData64(addr, value);
    return *this;
}

ProgramBuilder &
ProgramBuilder::dataF64(Addr addr, double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    prog_.addData64(addr, bits);
    return *this;
}

ProgramBuilder &
ProgramBuilder::dataBytes(Addr addr, std::vector<uint8_t> bytes)
{
    prog_.addData(addr, std::move(bytes));
    return *this;
}

Program
ProgramBuilder::build()
{
    panic_if(built_, "ProgramBuilder::build() called twice");
    built_ = true;
    for (const auto &fixup : fixups_) {
        size_t target = prog_.labelIndex(fixup.label);
        prog_.at(fixup.instIndex).imm = (int64_t)target;
    }
    fixups_.clear();
    return std::move(prog_);
}

} // namespace pubs::isa
