#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace pubs::isa
{

size_t
Program::append(const Inst &inst)
{
    insts_.push_back(inst);
    return insts_.size() - 1;
}

void
Program::defineLabel(const std::string &label)
{
    fatal_if(labels_.count(label), "duplicate label '%s'", label.c_str());
    labels_[label] = insts_.size();
}

size_t
Program::labelIndex(const std::string &label) const
{
    auto it = labels_.find(label);
    fatal_if(it == labels_.end(), "undefined label '%s'", label.c_str());
    return it->second;
}

bool
Program::hasLabel(const std::string &label) const
{
    return labels_.count(label) != 0;
}

void
Program::addData(Addr addr, std::vector<uint8_t> bytes)
{
    data_.push_back({addr, std::move(bytes)});
}

void
Program::addData64(Addr addr, uint64_t value)
{
    std::vector<uint8_t> bytes(8);
    for (int i = 0; i < 8; ++i)
        bytes[i] = (value >> (8 * i)) & 0xff;
    addData(addr, std::move(bytes));
}

const Inst &
Program::at(size_t index) const
{
    panic_if(index >= insts_.size(), "instruction index %zu out of range",
             index);
    return insts_[index];
}

Inst &
Program::at(size_t index)
{
    panic_if(index >= insts_.size(), "instruction index %zu out of range",
             index);
    return insts_[index];
}

size_t
Program::indexOf(Pc pc) const
{
    panic_if(!contains(pc), "pc %#llx outside program",
             (unsigned long long)pc);
    return (pc - basePc()) / instBytes;
}

std::string
Program::listing() const
{
    // Invert the label map for printing.
    std::map<size_t, std::vector<std::string>> byIndex;
    for (const auto &[name, idx] : labels_)
        byIndex[idx].push_back(name);

    std::ostringstream out;
    for (size_t i = 0; i < insts_.size(); ++i) {
        auto it = byIndex.find(i);
        if (it != byIndex.end())
            for (const auto &label : it->second)
                out << label << ":\n";
        char pc[32];
        std::snprintf(pc, sizeof(pc), "%6llx:  ",
                      (unsigned long long)pcOf(i));
        out << pc << disassemble(insts_[i]) << "\n";
    }
    return out.str();
}

} // namespace pubs::isa
