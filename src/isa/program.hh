/**
 * @file
 * A Program is an ordered list of static instructions plus optional named
 * labels and initial-data directives. The program is loaded at a fixed
 * base PC; instruction i lives at basePc() + i * instBytes.
 */

#ifndef PUBS_ISA_PROGRAM_HH
#define PUBS_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace pubs::isa
{

/** Initial memory contents installed before execution starts. */
struct DataInit
{
    Addr addr;
    std::vector<uint8_t> bytes;
};

class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    /** Code is loaded at this PC. */
    static constexpr Pc basePc() { return 0x1000; }

    /** Append an instruction; returns its index. */
    size_t append(const Inst &inst);

    /** Define @p label as the index of the next appended instruction. */
    void defineLabel(const std::string &label);

    /** Index of @p label; fatal if undefined. */
    size_t labelIndex(const std::string &label) const;

    bool hasLabel(const std::string &label) const;

    /** Add an initial-data region. */
    void addData(Addr addr, std::vector<uint8_t> bytes);

    /** Convenience: install a little-endian 64-bit word at @p addr. */
    void addData64(Addr addr, uint64_t value);

    const Inst &at(size_t index) const;
    Inst &at(size_t index);

    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    Pc pcOf(size_t index) const { return basePc() + index * instBytes; }

    /** Instruction index of @p pc; fatal if out of range / misaligned. */
    size_t indexOf(Pc pc) const;

    bool
    contains(Pc pc) const
    {
        return pc >= basePc() && pc < basePc() + size() * instBytes &&
               (pc - basePc()) % instBytes == 0;
    }

    const std::vector<Inst> &insts() const { return insts_; }
    const std::vector<DataInit> &dataInits() const { return data_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Full listing (one disassembled line per instruction, with labels). */
    std::string listing() const;

  private:
    std::string name_;
    std::vector<Inst> insts_;
    std::map<std::string, size_t> labels_;
    std::vector<DataInit> data_;
};

} // namespace pubs::isa

#endif // PUBS_ISA_PROGRAM_HH
