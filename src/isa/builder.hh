/**
 * @file
 * Fluent construction of Programs with forward-label resolution. Workload
 * kernels use this instead of text assembly.
 */

#ifndef PUBS_ISA_BUILDER_HH
#define PUBS_ISA_BUILDER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace pubs::isa
{

class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "prog")
        : prog_(std::move(name))
    {}

    /** Define a label at the next instruction. */
    ProgramBuilder &label(const std::string &name);

    /** Generic register-register-register op. */
    ProgramBuilder &rrr(Opcode op, RegId dst, RegId src1, RegId src2);

    /** Generic register-register-immediate op. */
    ProgramBuilder &rri(Opcode op, RegId dst, RegId src1, int64_t imm);

    // Readable wrappers for the common cases.
    ProgramBuilder &add(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Add, d, a, b); }
    ProgramBuilder &sub(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Sub, d, a, b); }
    ProgramBuilder &and_(RegId d, RegId a, RegId b)
        { return rrr(Opcode::And, d, a, b); }
    ProgramBuilder &or_(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Or, d, a, b); }
    ProgramBuilder &xor_(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Xor, d, a, b); }
    ProgramBuilder &sll(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Sll, d, a, b); }
    ProgramBuilder &slt(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Slt, d, a, b); }
    ProgramBuilder &mul(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Mul, d, a, b); }
    ProgramBuilder &div(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Div, d, a, b); }
    ProgramBuilder &rem(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Rem, d, a, b); }
    ProgramBuilder &addi(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Addi, d, a, imm); }
    ProgramBuilder &andi(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Andi, d, a, imm); }
    ProgramBuilder &xori(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Xori, d, a, imm); }
    ProgramBuilder &slli(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Slli, d, a, imm); }
    ProgramBuilder &srli(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Srli, d, a, imm); }
    ProgramBuilder &slti(RegId d, RegId a, int64_t imm)
        { return rri(Opcode::Slti, d, a, imm); }

    /** Load a sign-extended 32-bit immediate into an integer register. */
    ProgramBuilder &li(RegId dst, int64_t imm);

    /** Load: dst = mem[base + offset]. */
    ProgramBuilder &load(Opcode op, RegId dst, RegId base, int64_t offset);
    ProgramBuilder &ld(RegId d, RegId base, int64_t off)
        { return load(Opcode::Ld, d, base, off); }
    ProgramBuilder &lw(RegId d, RegId base, int64_t off)
        { return load(Opcode::Lw, d, base, off); }
    ProgramBuilder &fld(RegId d, RegId base, int64_t off)
        { return load(Opcode::Fld, d, base, off); }

    /** Store: mem[base + offset] = value. */
    ProgramBuilder &store(Opcode op, RegId value, RegId base,
                          int64_t offset);
    ProgramBuilder &st(RegId v, RegId base, int64_t off)
        { return store(Opcode::St, v, base, off); }
    ProgramBuilder &sw(RegId v, RegId base, int64_t off)
        { return store(Opcode::Sw, v, base, off); }
    ProgramBuilder &fst(RegId v, RegId base, int64_t off)
        { return store(Opcode::Fst, v, base, off); }

    // FP register-register ops.
    ProgramBuilder &fadd(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Fadd, d, a, b); }
    ProgramBuilder &fsub(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Fsub, d, a, b); }
    ProgramBuilder &fmul(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Fmul, d, a, b); }
    ProgramBuilder &fdiv(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Fdiv, d, a, b); }
    ProgramBuilder &fcvt(RegId d, RegId a)
        { return rrr(Opcode::Fcvt, d, a, invalidReg); }
    ProgramBuilder &ficvt(RegId d, RegId a)
        { return rrr(Opcode::Ficvt, d, a, invalidReg); }
    ProgramBuilder &fclt(RegId d, RegId a, RegId b)
        { return rrr(Opcode::Fclt, d, a, b); }

    /** Conditional branch to @p target (label). */
    ProgramBuilder &branch(Opcode op, RegId a, RegId b,
                           const std::string &target);
    ProgramBuilder &beq(RegId a, RegId b, const std::string &t)
        { return branch(Opcode::Beq, a, b, t); }
    ProgramBuilder &bne(RegId a, RegId b, const std::string &t)
        { return branch(Opcode::Bne, a, b, t); }
    ProgramBuilder &blt(RegId a, RegId b, const std::string &t)
        { return branch(Opcode::Blt, a, b, t); }
    ProgramBuilder &bge(RegId a, RegId b, const std::string &t)
        { return branch(Opcode::Bge, a, b, t); }

    /** Unconditional jump to a label. */
    ProgramBuilder &jump(const std::string &target);

    /** Call: link register receives the return PC. */
    ProgramBuilder &jal(RegId link, const std::string &target);

    /** Indirect jump / return. */
    ProgramBuilder &jr(RegId target);

    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /** Install initial data. */
    ProgramBuilder &data64(Addr addr, uint64_t value);
    ProgramBuilder &dataF64(Addr addr, double value);
    ProgramBuilder &dataBytes(Addr addr, std::vector<uint8_t> bytes);

    /** Number of instructions appended so far. */
    size_t size() const { return prog_.size(); }

    /** Resolve forward references and return the finished program. */
    Program build();

  private:
    struct Fixup
    {
        size_t instIndex;
        std::string label;
    };

    Program prog_;
    std::vector<Fixup> fixups_;
    bool built_ = false;
};

} // namespace pubs::isa

#endif // PUBS_ISA_BUILDER_HH
