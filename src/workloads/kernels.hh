/**
 * @file
 * Parameterised program kernels used to synthesise the workload suite.
 * Each kernel builds an infinite-loop micro-ISA program whose branch
 * behaviour and memory behaviour are controlled by its parameters:
 *
 *  - takenBias: probability a data-dependent branch is taken. 0.5 is
 *    unpredictable (≈50% mispredicts); 0.9 is mostly-taken but still
 *    unconfident under a resetting counter; ≈1.0 is easy.
 *  - working-set size: controls the L1/L2/DRAM residency of the data
 *    and thus the LLC MPKI (memory intensity).
 *  - slice depth / filler ops: shape the branch slices and the competing
 *    computation slices that contend for issue slots.
 *
 * All data is generated from the seed, so runs are exactly reproducible.
 */

#ifndef PUBS_WORKLOADS_KERNELS_HH
#define PUBS_WORKLOADS_KERNELS_HH

#include "isa/program.hh"

namespace pubs::wl
{

/** Array walk with data-dependent branches (sjeng/gobmk/astar-like). */
struct BranchyParams
{
    uint64_t seed = 1;
    unsigned elems = 1 << 13;    ///< 8-byte elements (1<<13 = 64 KB)
    unsigned hardBranches = 2;   ///< data-dependent branches per iteration
    unsigned sliceDepth = 2;     ///< dependent ALU ops from load to branch
    double takenBias = 0.5;
    unsigned intFiller = 6;      ///< independent int ops per iteration
    unsigned fpFiller = 4;       ///< independent fp ops per iteration
    bool withStore = false;      ///< add one scratch store per iteration
    /**
     * Replicate the loop body this many times with distinct PCs: large
     * static code footprints stress the PC-indexed brslice_tab /
     * conf_tab / BTB / L1I the way big-code programs (gcc, xalancbmk)
     * do. 1 = the plain loop.
     */
    unsigned unroll = 1;
    /**
     * Close the loop with an always-taken *conditional* branch instead
     * of an unconditional jump. Its slice (the whole index chain) is
     * perfectly predicted, so with the conf_tab it stays out of the
     * priority entries — but the "blind" model floods them with it
     * (the effect behind Fig. 11's blind-vs-PUBS gap).
     */
    bool condLoopBranch = false;
};

isa::Program branchyProgram(const std::string &name,
                            const BranchyParams &params);

/** Multi-chain pointer chase over a random ring (mcf/omnetpp-like). */
struct PointerChaseParams
{
    uint64_t seed = 1;
    unsigned nodes = 1 << 18;    ///< 64 B nodes (1<<18 = 16 MB)
    unsigned chains = 4;         ///< independent chases (MLP)
    double takenBias = 0.5;      ///< branch on node payload
    unsigned intFiller = 2;
    unsigned fpFiller = 0;
};

isa::Program pointerChaseProgram(const std::string &name,
                                 const PointerChaseParams &params);

/** Streaming FP kernel, prefetcher-friendly (libquantum/lbm-like). */
struct StreamParams
{
    uint64_t seed = 1;
    unsigned elems = 1 << 19;    ///< doubles per array (1<<19 = 4 MB each)
    unsigned fpOps = 3;          ///< fp ops per element
    bool withHardBranch = false; ///< add one data-dependent branch
    double takenBias = 0.5;
    unsigned gatherElems = 0;    ///< irregular gather array (0 = off)
    unsigned gatherEvery = 1;    ///< gather on every Nth iteration (2^n)
    /** If non-zero, gathers only run while bit @p gatherPhaseBit of the
     *  iteration counter is clear: the workload alternates memory-heavy
     *  and compute phases (soplex-like), exercising the mode switch. */
    unsigned gatherPhaseBit = 0;
};

isa::Program streamProgram(const std::string &name,
                           const StreamParams &params);

/** Register-resident compute loop with easy control (hmmer/namd-like). */
struct ComputeParams
{
    uint64_t seed = 1;
    unsigned intChains = 4;
    unsigned fpChains = 4;
    unsigned innerCount = 16;    ///< inner counted-loop trip count
    double rareBranchBias = 0.97;///< bias of an occasional data branch
    unsigned elems = 1 << 10;    ///< small resident array for the branch
};

isa::Program computeProgram(const std::string &name,
                            const ComputeParams &params);

/** Table-driven state machine (gcc/perlbench/xalancbmk-like). */
struct StateMachineParams
{
    uint64_t seed = 1;
    unsigned states = 64;        ///< power of two
    unsigned inputSymbols = 16;  ///< power of two
    unsigned inputElems = 1 << 14; ///< input stream length (wraps)
    unsigned hardBranches = 2;   ///< branches on the state value
    /** Fraction of states below the first branch's split threshold:
     *  smaller = more biased = easier to predict. */
    double splitFraction = 0.5;
    unsigned intFiller = 4;
    unsigned fpFiller = 2;
};

isa::Program stateMachineProgram(const std::string &name,
                                 const StateMachineParams &params);

} // namespace pubs::wl

#endif // PUBS_WORKLOADS_KERNELS_HH
