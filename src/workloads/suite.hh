/**
 * @file
 * The synthetic benchmark suite standing in for SPEC CPU2006 (the paper
 * evaluates all of SPEC2006 except wrf). Each entry is calibrated to land
 * in the same region of the (branch MPKI, LLC MPKI) plane as its
 * namesake: D-BP programs have branch MPKI > 3.0, memory-intensive
 * programs have LLC MPKI > 1.0 (the paper's thresholds).
 */

#ifndef PUBS_WORKLOADS_SUITE_HH
#define PUBS_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace pubs::wl
{

struct Workload
{
    std::string name;
    /** Expected to be a difficult-branch-prediction (D-BP) program. */
    bool expectHardBp = false;
    /** Expected to be memory intensive (LLC MPKI > 1). */
    bool expectMemIntensive = false;
    isa::Program program;
};

/** Names of every workload in the suite (D-BP entries first). */
std::vector<std::string> suiteNames();

/** Build one workload by name; fatal on unknown names. */
Workload makeWorkload(const std::string &name, uint64_t seed = 1);

/** Build the full suite. */
std::vector<Workload> makeSuite(uint64_t seed = 1);

} // namespace pubs::wl

#endif // PUBS_WORKLOADS_SUITE_HH
