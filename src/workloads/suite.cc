#include "workloads/suite.hh"

#include <functional>
#include <map>

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace pubs::wl
{

namespace
{

struct SuiteEntry
{
    bool hardBp;
    bool memIntensive;
    std::function<isa::Program(const std::string &, uint64_t)> build;
};

// NOTE: the numeric parameters below are calibration targets for the
// (branch MPKI, LLC MPKI) plane, not measurements of the real SPEC
// binaries; see DESIGN.md for the substitution rationale.
const std::map<std::string, SuiteEntry> &
suiteTable()
{
    static const std::map<std::string, SuiteEntry> table = {
        // ---- difficult branch prediction (D-BP target: MPKI > 3) ----
        {"sjeng_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              BranchyParams p;
              p.seed = s;
              p.elems = 1 << 13;
              p.hardBranches = 1;
              p.sliceDepth = 2;
              p.takenBias = 0.64;
              p.intFiller = 9;
              p.fpFiller = 10;
              return branchyProgram(n, p);
          }}},
        {"astar_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              BranchyParams p;
              p.seed = s;
              p.elems = 1 << 12;
              p.hardBranches = 2;
              p.sliceDepth = 1;
              p.takenBias = 0.60;
              p.intFiller = 6;
              p.fpFiller = 10;
              return branchyProgram(n, p);
          }}},
        {"gobmk_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              BranchyParams p;
              p.seed = s;
              p.elems = 1 << 13;
              p.hardBranches = 1;
              p.sliceDepth = 3;
              p.takenBias = 0.65;
              p.intFiller = 8;
              p.fpFiller = 10;
              return branchyProgram(n, p);
          }}},
        {"bzip2_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              BranchyParams p;
              p.seed = s;
              p.elems = 1 << 16;
              p.hardBranches = 1;
              p.sliceDepth = 1;
              p.takenBias = 0.84;
              p.intFiller = 8;
              p.fpFiller = 8;
              p.withStore = true;
              return branchyProgram(n, p);
          }}},
        {"gcc_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              StateMachineParams p;
              p.seed = s;
              p.states = 64;
              p.inputSymbols = 16;
              p.inputElems = 1 << 14;
              p.hardBranches = 1;
              p.splitFraction = 0.13;
              p.intFiller = 8;
              p.fpFiller = 8;
              return stateMachineProgram(n, p);
          }}},
        {"perlbench_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              StateMachineParams p;
              p.seed = s;
              p.states = 32;
              p.inputSymbols = 16;
              p.inputElems = 1 << 13;
              p.hardBranches = 1;
              p.splitFraction = 0.18;
              p.intFiller = 8;
              p.fpFiller = 10;
              return stateMachineProgram(n, p);
          }}},
        {"xalancbmk_like",
         {true, false,
          [](const std::string &n, uint64_t s) {
              StateMachineParams p;
              p.seed = s;
              p.states = 128;
              p.inputSymbols = 16;
              p.inputElems = 1 << 17;
              p.hardBranches = 2;
              p.splitFraction = 0.20;
              p.intFiller = 8;
              p.fpFiller = 8;
              return stateMachineProgram(n, p);
          }}},
        {"mcf_like",
         {true, true,
          [](const std::string &n, uint64_t s) {
              PointerChaseParams p;
              p.seed = s;
              p.nodes = 1 << 18; // 16 MB: far beyond the 2 MB LLC
              p.chains = 4;
              p.takenBias = 0.85;
              p.intFiller = 4;
              return pointerChaseProgram(n, p);
          }}},
        {"soplex_like",
         {true, true,
          [](const std::string &n, uint64_t s) {
              StreamParams p;
              p.seed = s;
              p.elems = 1 << 17; // arrays are L2-resident...
              p.fpOps = 2;
              p.withHardBranch = true;
              p.takenBias = 0.80;
              p.gatherElems = 1 << 20; // ...but the 8 MB gather is not
              p.gatherEvery = 8;
              p.gatherPhaseBit = 12; // ~2 mode-switch intervals per phase
              return streamProgram(n, p);
          }}},
        {"omnetpp_like",
         {true, true,
          [](const std::string &n, uint64_t s) {
              PointerChaseParams p;
              p.seed = s;
              p.nodes = 1 << 15; // 2 MB: right at the LLC boundary
              p.chains = 2;
              p.takenBias = 0.75;
              p.intFiller = 4;
              p.fpFiller = 2;
              return pointerChaseProgram(n, p);
          }}},

        // ---- easy branch prediction (E-BP) ----
        {"hmmer_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              ComputeParams p;
              p.seed = s;
              p.intChains = 6;
              p.fpChains = 2;
              p.innerCount = 16;
              p.rareBranchBias = 0.97;
              return computeProgram(n, p);
          }}},
        {"libquantum_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              StreamParams p;
              p.seed = s;
              p.elems = 1 << 19;
              p.fpOps = 2;
              return streamProgram(n, p);
          }}},
        {"lbm_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              StreamParams p;
              p.seed = s;
              p.elems = 1 << 20;
              p.fpOps = 4;
              return streamProgram(n, p);
          }}},
        {"milc_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              StreamParams p;
              p.seed = s;
              p.elems = 1 << 18;
              p.fpOps = 3;
              return streamProgram(n, p);
          }}},
        {"namd_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              ComputeParams p;
              p.seed = s;
              p.intChains = 2;
              p.fpChains = 6;
              p.innerCount = 32;
              p.rareBranchBias = 0.99;
              return computeProgram(n, p);
          }}},
        {"gromacs_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              ComputeParams p;
              p.seed = s;
              p.intChains = 4;
              p.fpChains = 5;
              p.innerCount = 16;
              p.rareBranchBias = 0.98;
              return computeProgram(n, p);
          }}},
        {"h264ref_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              BranchyParams p;
              p.seed = s;
              p.elems = 1 << 12;
              p.hardBranches = 1;
              p.sliceDepth = 1;
              p.takenBias = 0.965;
              p.intFiller = 4;
              p.fpFiller = 10;
              return branchyProgram(n, p);
          }}},
        {"bwaves_like",
         {false, false,
          [](const std::string &n, uint64_t s) {
              StreamParams p;
              p.seed = s;
              p.elems = 1 << 20;
              p.fpOps = 5;
              return streamProgram(n, p);
          }}},
    };
    return table;
}

} // namespace

std::vector<std::string>
suiteNames()
{
    // D-BP entries first, then E-BP, each alphabetical.
    std::vector<std::string> hard;
    std::vector<std::string> easy;
    for (const auto &[name, entry] : suiteTable())
        (entry.hardBp ? hard : easy).push_back(name);
    hard.insert(hard.end(), easy.begin(), easy.end());
    return hard;
}

Workload
makeWorkload(const std::string &name, uint64_t seed)
{
    auto it = suiteTable().find(name);
    fatal_if(it == suiteTable().end(), "unknown workload '%s'",
             name.c_str());
    Workload w;
    w.name = name;
    w.expectHardBp = it->second.hardBp;
    w.expectMemIntensive = it->second.memIntensive;
    w.program = it->second.build(name, seed);
    return w;
}

std::vector<Workload>
makeSuite(uint64_t seed)
{
    std::vector<Workload> suite;
    for (const auto &name : suiteNames())
        suite.push_back(makeWorkload(name, seed));
    return suite;
}

} // namespace pubs::wl
