#include "workloads/kernels.hh"

#include <string>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace pubs::wl
{

using isa::Opcode;
using isa::ProgramBuilder;

namespace
{

// Register conventions shared by the kernels (integer file):
//   r0  zero               r1  loop index
//   r2  primary base       r3  loaded value (slice head)
//   r4..r9 scratch         r10 index mask
//   r11 accumulator        r12..r19 int filler chains
//   r20 branch threshold   r21/r22 secondary/tertiary bases
//   r23 scratch-store base r24..r29 chase chains / split thresholds
//   r30 state              r31 gather base
// FP file: f1..f8 filler chains, f10/f11 constants, f1..f3 stream data.

constexpr Addr primaryBase = 0x100000;    // 1 MB
constexpr Addr secondaryBase = 0x4000000; // 64 MB
constexpr Addr tertiaryBase = 0x8000000;  // 128 MB
constexpr Addr scratchBase = 0xc000000;   // 192 MB
constexpr Addr chaseBase = 0x10000000;    // 256 MB
constexpr Addr gatherBase = 0x18000000;   // 384 MB

/** Values are drawn uniformly from [0, 2^30); thresholds scale with it. */
constexpr int64_t valueRange = (int64_t)1 << 30;

int64_t
thresholdFor(double takenBias)
{
    fatal_if(takenBias < 0.0 || takenBias > 1.0, "bias out of range");
    return (int64_t)(takenBias * (double)valueRange);
}

/** Append a random uint64 array as program data. */
void
installRandomWords(isa::Program &prog, Addr base, size_t count,
                   uint64_t limit, Rng &rng)
{
    std::vector<uint8_t> bytes(count * 8);
    for (size_t i = 0; i < count; ++i) {
        uint64_t v = rng.below(limit);
        for (int b = 0; b < 8; ++b)
            bytes[i * 8 + b] = (v >> (8 * b)) & 0xff;
    }
    prog.addData(base, std::move(bytes));
}

/** Append a random double array (values in [0,2)) as program data. */
void
installRandomDoubles(isa::Program &prog, Addr base, size_t count, Rng &rng)
{
    std::vector<uint8_t> bytes(count * 8);
    for (size_t i = 0; i < count; ++i) {
        double v = rng.uniform() * 2.0;
        uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        for (int b = 0; b < 8; ++b)
            bytes[i * 8 + b] = (bits >> (8 * b)) & 0xff;
    }
    prog.addData(base, std::move(bytes));
}

/** Load FP constants: f10 = 1.0, f11 = 0.5. */
void
emitFpConstants(ProgramBuilder &b)
{
    b.li(4, 1).fcvt(10, 4);
    b.li(4, 2).fcvt(11, 4).fdiv(11, 10, 11); // 1.0 / 2.0
}

/** Seed the integer filler chains r12..r19. */
void
emitFillerInit(ProgramBuilder &b)
{
    for (RegId r = 12; r <= 19; ++r)
        b.li(r, 17 * r + 1);
}

/**
 * Independent computation-slice filler: @p intOps single-cycle integer
 * ops across chains r12..r19 and @p fpOps FP ops across chains f1..f8.
 * These are the "computation slices" that compete with branch slices for
 * issue slots.
 */
void
emitFiller(ProgramBuilder &b, unsigned intOps, unsigned fpOps)
{
    // One in three integer ops is dependence-free (its sources are
    // loop-invariant), so it is ready the moment it dispatches: these
    // form the "ready pool" that position-random select draws from ahead
    // of branch-slice instructions; the rest are short dependence chains.
    for (unsigned i = 0; i < intOps; ++i) {
        RegId r = (RegId)(12 + (i % 8));
        switch (i % 3) {
          case 0: b.add(r, 20, 20); break;      // independent
          case 1: b.addi(r, r, 3); break;       // chained
          case 2: b.xori(r, r, 0x55); break;    // chained
        }
    }
    for (unsigned i = 0; i < fpOps; ++i) {
        RegId f = (RegId)(1 + (i % 8));
        switch (i % 3) {
          case 0: b.fmul(f, 10, 11); break; // independent
          default: b.fadd(f, f, 11); break; // chained
        }
    }
}

/**
 * A slice-mangling chain of @p depth dependent single-cycle ops on r3,
 * preserving uniformity over [0, 2^30).
 */
void
emitSliceChain(ProgramBuilder &b, unsigned depth)
{
    for (unsigned d = 0; d < depth; ++d) {
        if (d % 2 == 0) {
            b.xori(3, 3, 0x2f1d);
        } else {
            b.srli(6, 3, 11).xor_(3, 3, 6);
        }
    }
}

/**
 * The data-dependent branch at the end of a branch slice: compares r3
 * against the bias threshold in r20; both arms do one op on r11.
 */
void
emitHardBranch(ProgramBuilder &b, const std::string &tag)
{
    std::string taken = "tk_" + tag;
    std::string join = "jn_" + tag;
    b.blt(3, 20, taken);
    b.xor_(11, 11, 3);
    b.jump(join);
    b.label(taken);
    b.add(11, 11, 3);
    b.label(join);
}

/** r5 = primary base + 8 * (r1 & mask); clobbers r4. */
void
emitIndexedAddress(ProgramBuilder &b, RegId baseReg)
{
    b.and_(4, 1, 10);
    b.slli(5, 4, 3);
    b.add(5, 5, baseReg);
}

} // namespace

isa::Program
branchyProgram(const std::string &name, const BranchyParams &p)
{
    fatal_if(!isPowerOf2(p.elems), "elems must be a power of two");
    Rng rng(p.seed);

    ProgramBuilder b(name);
    b.li(2, (int64_t)primaryBase);
    b.li(10, (int64_t)p.elems - 1);
    b.li(20, thresholdFor(p.takenBias));
    b.li(23, (int64_t)scratchBase);
    b.li(1, 0).li(11, 0);
    emitFillerInit(b);
    emitFpConstants(b);

    fatal_if(p.unroll == 0, "unroll must be at least 1");
    if (p.condLoopBranch)
        b.li(9, valueRange); // loop bound far beyond any index value
    b.label("loop");
    for (unsigned u = 0; u < p.unroll; ++u) {
        for (unsigned h = 0; h < p.hardBranches; ++h) {
            emitIndexedAddress(b, 2);
            b.ld(3, 5, 0);
            emitSliceChain(b, p.sliceDepth);
            emitHardBranch(b, "b" + std::to_string(h) + "_" +
                                  std::to_string(u));
            b.addi(1, 1, 1);
        }
        emitFiller(b, p.intFiller, p.fpFiller);
        if (p.withStore) {
            b.and_(7, 1, 10);
            b.slli(7, 7, 3);
            b.add(7, 7, 23);
            b.st(11, 7, 0);
        }
    }
    if (p.condLoopBranch)
        b.blt(1, 9, "loop"); // always taken: a confident branch slice
    b.jump("loop");

    isa::Program prog = b.build();
    installRandomWords(prog, primaryBase, p.elems, valueRange, rng);
    return prog;
}

isa::Program
pointerChaseProgram(const std::string &name, const PointerChaseParams &p)
{
    fatal_if(!isPowerOf2(p.nodes), "nodes must be a power of two");
    fatal_if(p.chains == 0 || p.chains > 6, "chains must be 1..6");
    Rng rng(p.seed);

    constexpr unsigned nodeBytes = 64;

    ProgramBuilder b(name);
    b.li(20, thresholdFor(p.takenBias));
    b.li(11, 0).li(1, 0);
    emitFillerInit(b);
    emitFpConstants(b);
    // Chain head pointers, spread evenly around the ring.
    for (unsigned c = 0; c < p.chains; ++c) {
        Addr start = chaseBase +
                     (Addr)(c * (uint64_t)p.nodes / p.chains) * nodeBytes;
        fatal_if(start > INT32_MAX, "chase region exceeds li range");
        b.li((RegId)(24 + c), (int64_t)start);
    }

    b.label("loop");
    for (unsigned c = 0; c < p.chains; ++c) {
        RegId ptr = (RegId)(24 + c);
        b.ld(3, ptr, 8); // payload
        b.xori(3, 3, 0x11ef);
        emitHardBranch(b, "c" + std::to_string(c));
        b.ld(ptr, ptr, 0); // follow the next pointer (serial dependence)
    }
    emitFiller(b, p.intFiller, p.fpFiller);
    b.addi(1, 1, 1);
    b.jump("loop");

    isa::Program prog = b.build();

    // Build a single-cycle random ring (Sattolo's algorithm) so every
    // chain touches the whole working set.
    std::vector<uint32_t> perm(p.nodes);
    for (uint32_t i = 0; i < p.nodes; ++i)
        perm[i] = i;
    for (uint32_t i = p.nodes - 1; i > 0; --i) {
        uint32_t j = (uint32_t)rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    // perm now encodes a permutation; turn it into a successor ring:
    // node perm[k] -> perm[k+1].
    std::vector<uint8_t> bytes((size_t)p.nodes * nodeBytes, 0);
    auto put64 = [&bytes](size_t offset, uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes[offset + i] = (v >> (8 * i)) & 0xff;
    };
    for (uint32_t k = 0; k < p.nodes; ++k) {
        uint32_t node = perm[k];
        uint32_t next = perm[(k + 1) % p.nodes];
        size_t offset = (size_t)node * nodeBytes;
        put64(offset + 0, chaseBase + (uint64_t)next * nodeBytes);
        put64(offset + 8, rng.below(valueRange));
    }
    prog.addData(chaseBase, std::move(bytes));
    return prog;
}

isa::Program
streamProgram(const std::string &name, const StreamParams &p)
{
    fatal_if(!isPowerOf2(p.elems), "elems must be a power of two");
    Rng rng(p.seed);

    constexpr unsigned branchElems = 1 << 12; // small, L1-resident

    ProgramBuilder b(name);
    b.li(2, (int64_t)secondaryBase);            // A
    b.li(21, (int64_t)(secondaryBase + (Addr)p.elems * 8 + (1 << 20))); // B
    b.li(22, (int64_t)tertiaryBase);            // C (output)
    b.li(10, (int64_t)p.elems - 1);
    b.li(20, thresholdFor(p.takenBias));
    b.li(23, (int64_t)primaryBase); // int array for the optional branch
    if (p.gatherElems > 0)
        b.li(31, (int64_t)gatherBase);
    b.li(1, 0).li(11, 0);
    emitFillerInit(b);
    emitFpConstants(b);

    b.label("loop");
    b.and_(4, 1, 10);
    b.slli(5, 4, 3);
    b.add(6, 5, 2);
    b.fld(1, 6, 0);
    b.add(7, 5, 21);
    b.fld(2, 7, 0);
    b.fmul(3, 1, 2);
    for (unsigned i = 0; i < p.fpOps; ++i)
        b.fadd((RegId)(4 + (i % 3)), (RegId)(4 + (i % 3)), 3);
    b.add(8, 5, 22);
    b.fst(3, 8, 0);
    if (p.withHardBranch) {
        b.andi(9, 1, branchElems - 1);
        b.slli(9, 9, 3);
        b.add(9, 9, 23);
        b.ld(3, 9, 0);
        b.xori(3, 3, 0x3c5a);
        emitHardBranch(b, "s");
    }
    if (p.gatherElems > 0) {
        fatal_if(!isPowerOf2(p.gatherElems), "gather size must be 2^n");
        fatal_if(!isPowerOf2(p.gatherEvery), "gatherEvery must be 2^n");
        // Irregular gather: index by the (random) loaded value; these
        // accesses defeat the stream prefetcher and miss in the LLC.
        // Throttled to every Nth iteration by a (predictable) counter
        // branch so the memory intensity is tunable.
        if (p.gatherPhaseBit > 0) {
            b.andi(9, 1, (int64_t)1 << p.gatherPhaseBit);
            b.bne(9, 0, "skip_gather");
        }
        if (p.gatherEvery > 1) {
            b.andi(9, 1, (int64_t)p.gatherEvery - 1);
            b.bne(9, 0, "skip_gather");
        }
        // Mix the running accumulator into the index so the gather
        // address sequence is aperiodic (the raw input array repeats).
        b.xor_(8, 3, 11);
        b.li(9, (int64_t)p.gatherElems - 1);
        b.and_(9, 8, 9);
        b.slli(9, 9, 3);
        b.add(9, 9, 31);
        b.ld(7, 9, 0);
        b.add(11, 11, 7);
        if (p.gatherEvery > 1)
            b.label("skip_gather");
    }
    b.addi(1, 1, 1);
    b.jump("loop");

    isa::Program prog = b.build();
    installRandomDoubles(prog, secondaryBase, p.elems, rng);
    installRandomDoubles(prog,
                         secondaryBase + (Addr)p.elems * 8 + (1 << 20),
                         p.elems, rng);
    installRandomWords(prog, primaryBase, branchElems, valueRange, rng);
    if (p.gatherElems > 0)
        installRandomWords(prog, gatherBase, p.gatherElems, valueRange,
                           rng);
    return prog;
}

isa::Program
computeProgram(const std::string &name, const ComputeParams &p)
{
    fatal_if(!isPowerOf2(p.elems), "elems must be a power of two");
    fatal_if(p.intChains == 0 || p.intChains > 8, "intChains must be 1..8");
    fatal_if(p.fpChains > 8, "fpChains must be <= 8");
    Rng rng(p.seed);

    ProgramBuilder b(name);
    b.li(2, (int64_t)primaryBase);
    b.li(10, (int64_t)p.elems - 1);
    b.li(20, thresholdFor(p.rareBranchBias));
    b.li(9, (int64_t)p.innerCount);
    b.li(1, 0).li(11, 0);
    emitFillerInit(b);
    emitFpConstants(b);

    b.label("outer");
    b.add(5, 0, 0); // inner counter = 0
    b.label("inner");
    emitFiller(b, p.intChains, p.fpChains);
    b.addi(1, 1, 1);
    b.addi(5, 5, 1);
    b.blt(5, 9, "inner"); // counted loop: easily predicted
    // The occasional (mostly-taken) data-dependent branch.
    emitIndexedAddress(b, 2);
    b.ld(3, 5, 0);
    emitHardBranch(b, "rare");
    b.jump("outer");

    isa::Program prog = b.build();
    installRandomWords(prog, primaryBase, p.elems, valueRange, rng);
    return prog;
}

isa::Program
stateMachineProgram(const std::string &name, const StateMachineParams &p)
{
    fatal_if(!isPowerOf2(p.states) || !isPowerOf2(p.inputSymbols) ||
                 !isPowerOf2(p.inputElems),
             "state-machine sizes must be powers of two");
    fatal_if(p.hardBranches > 6, "at most 6 state-split branches");
    Rng rng(p.seed);

    unsigned symbolShift = exactLog2(p.inputSymbols);
    Addr tableBase = primaryBase;
    Addr inputBase = secondaryBase;

    ProgramBuilder b(name);
    b.li(22, (int64_t)tableBase);
    b.li(21, (int64_t)inputBase);
    b.li(10, (int64_t)p.inputElems - 1);
    // One state-split threshold per hard branch; smaller split fractions
    // make the branch more biased (easier to predict by majority).
    for (unsigned h = 0; h < p.hardBranches; ++h) {
        int64_t threshold = (int64_t)((double)p.states *
                                      p.splitFraction / (double)(h + 1));
        if (threshold < 1)
            threshold = 1;
        b.li((RegId)(24 + h), threshold);
    }
    b.li(30, 0);                       // state
    b.li(1, 0).li(11, 0);
    emitFillerInit(b);
    emitFpConstants(b);

    b.label("loop");
    // Fetch the next input symbol (sequential, cache-friendly).
    b.and_(4, 1, 10);
    b.slli(5, 4, 3);
    b.add(5, 5, 21);
    b.ld(6, 5, 0);
    // next_state = table[state * symbols + input] — a load whose address
    // depends on the previous state: the canonical branch slice.
    b.slli(7, 30, (int64_t)symbolShift);
    b.add(7, 7, 6);
    b.slli(7, 7, 3);
    b.add(7, 7, 22);
    b.ld(30, 7, 0);
    // Branches on the (pseudo-random-walk) state value.
    for (unsigned h = 0; h < p.hardBranches; ++h) {
        std::string tag = "h" + std::to_string(h);
        std::string taken = "tk_" + tag;
        std::string join = "jn_" + tag;
        b.blt(30, (RegId)(24 + h), taken);
        b.xor_(11, 11, 30);
        b.jump(join);
        b.label(taken);
        b.add(11, 11, 30);
        b.label(join);
    }
    emitFiller(b, p.intFiller, p.fpFiller);
    b.addi(1, 1, 1);
    b.jump("loop");

    isa::Program prog = b.build();
    installRandomWords(prog, inputBase, p.inputElems, p.inputSymbols, rng);
    installRandomWords(prog, tableBase,
                       (size_t)p.states * p.inputSymbols, p.states, rng);
    return prog;
}

} // namespace pubs::wl
