#include "emu/emulator.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::emu
{

using isa::Opcode;

SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    Addr num = addr / pageBytes;
    if (num == memoPageNum_)
        return memoPage_;
    auto it = pages_.find(num);
    Page *page = it == pages_.end() ? nullptr : it->second.get();
    memoPageNum_ = num;
    memoPage_ = page;
    return page;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    Addr num = addr / pageBytes;
    if (num == memoPageNum_ && memoPage_)
        return *memoPage_;
    auto &slot = pages_[num];
    if (!slot)
        slot = std::make_unique<Page>();
    memoPageNum_ = num;
    memoPage_ = slot.get();
    return *slot;
}

uint8_t
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SparseMemory::writeByte(Addr addr, uint8_t value)
{
    getPage(addr)[addr % pageBytes] = value;
}

uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "bad access size %u", size);
    Addr off = addr % pageBytes;
    if (off + size <= pageBytes) {
        // Whole access within one page: a single translation instead of
        // one hash probe per byte.
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= (uint64_t)(*page)[off + i] << (8 * i);
        return v;
    }
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= (uint64_t)readByte(addr + i) << (8 * i);
    return v;
}

void
SparseMemory::write(Addr addr, uint64_t value, unsigned size)
{
    panic_if(size == 0 || size > 8, "bad access size %u", size);
    Addr off = addr % pageBytes;
    if (off + size <= pageBytes) {
        Page &page = getPage(addr);
        for (unsigned i = 0; i < size; ++i)
            page[off + i] = (value >> (8 * i)) & 0xff;
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, (value >> (8 * i)) & 0xff);
}

double
SparseMemory::readF64(Addr addr) const
{
    uint64_t bits = read(addr, 8);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
SparseMemory::writeF64(Addr addr, double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write(addr, bits, 8);
}

void
SparseMemory::serialize(Serializer &s) const
{
    s.beginObject("sparse_memory");
    std::vector<Addr> pageNums;
    pageNums.reserve(pages_.size());
    for (const auto &entry : pages_)
        pageNums.push_back(entry.first);
    std::sort(pageNums.begin(), pageNums.end());
    s.u64(pageNums.size());
    for (Addr num : pageNums) {
        s.u64(num);
        s.bytes(pages_.at(num)->data(), pageBytes);
    }
    s.endObject("sparse_memory");
}

void
SparseMemory::unserialize(Deserializer &d)
{
    d.beginObject("sparse_memory");
    pages_.clear();
    memoPageNum_ = ~(Addr)0;
    memoPage_ = nullptr;
    uint64_t count = d.u64();
    Addr prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
        Addr num = d.u64();
        if (i > 0 && num <= prev)
            throw CheckpointError("checkpoint memory pages out of order");
        prev = num;
        auto page = std::make_unique<Page>();
        d.bytes(page->data(), pageBytes);
        pages_[num] = std::move(page);
    }
    d.endObject("sparse_memory");
}

void
SparseMemory::copyFrom(const SparseMemory &other)
{
    pages_.clear();
    memoPageNum_ = ~(Addr)0;
    memoPage_ = nullptr;
    for (const auto &entry : other.pages_)
        pages_[entry.first] = std::make_unique<Page>(*entry.second);
}

Emulator::Emulator(const isa::Program &program) : prog_(program)
{
    fatal_if(prog_.empty(), "cannot emulate an empty program");
    reset();
}

void
Emulator::reset()
{
    intRegs_.fill(0);
    fpRegs_.fill(0.0);
    mem_ = SparseMemory();
    for (const auto &init : prog_.dataInits()) {
        for (size_t i = 0; i < init.bytes.size(); ++i)
            mem_.writeByte(init.addr + i, init.bytes[i]);
    }
    pc_ = prog_.basePc();
    seq_ = 0;
    halted_ = false;
}

int64_t
Emulator::intReg(RegId r) const
{
    panic_if(r < 0 || r >= numIntRegs, "int register %d out of range",
             (int)r);
    return r == 0 ? 0 : intRegs_[r];
}

void
Emulator::setIntReg(RegId r, int64_t value)
{
    panic_if(r < 0 || r >= numIntRegs, "int register %d out of range",
             (int)r);
    if (r != 0)
        intRegs_[r] = value;
}

double
Emulator::fpReg(RegId r) const
{
    panic_if(r < 0 || r >= numFpRegs, "fp register %d out of range",
             (int)r);
    return fpRegs_[r];
}

void
Emulator::setFpReg(RegId r, double value)
{
    panic_if(r < 0 || r >= numFpRegs, "fp register %d out of range",
             (int)r);
    fpRegs_[r] = value;
}

Pc
Emulator::executeBranch(const isa::Inst &inst, bool &taken)
{
    Pc target = prog_.pcOf((size_t)inst.imm);
    int64_t a = inst.src1 != invalidReg ? intReg(inst.src1) : 0;
    int64_t b = inst.src2 != invalidReg ? intReg(inst.src2) : 0;
    uint64_t ua = (uint64_t)a, ub = (uint64_t)b;

    switch (inst.op) {
      case Opcode::Beq:  taken = a == b; break;
      case Opcode::Bne:  taken = a != b; break;
      case Opcode::Blt:  taken = a < b; break;
      case Opcode::Bge:  taken = a >= b; break;
      case Opcode::Bltu: taken = ua < ub; break;
      case Opcode::Bgeu: taken = ua >= ub; break;
      case Opcode::J:
      case Opcode::Jal:
        taken = true;
        break;
      case Opcode::Jr:
        taken = true;
        target = (Pc)ua;
        break;
      default:
        panic("executeBranch on non-branch %s", isa::mnemonic(inst.op));
    }
    return taken ? target : pc_ + instBytes;
}

bool
Emulator::step(trace::DynInst &out)
{
    if (halted_)
        return false;

    size_t index = prog_.indexOf(pc_);
    const isa::Inst &inst = prog_.at(index);

    out = trace::DynInst();
    out.seq = seq_;
    out.pc = pc_;
    out.op = inst.op;
    out.dst = inst.dst;
    out.src1 = inst.src1;
    out.src2 = inst.src2;

    Pc nextPc = pc_ + instBytes;

    auto r = [this](RegId reg) { return intReg(reg); };
    auto f = [this](RegId reg) { return fpReg(reg); };

    switch (inst.op) {
      case Opcode::Add:  setIntReg(inst.dst, r(inst.src1) + r(inst.src2));
        break;
      case Opcode::Sub:  setIntReg(inst.dst, r(inst.src1) - r(inst.src2));
        break;
      case Opcode::And:  setIntReg(inst.dst, r(inst.src1) & r(inst.src2));
        break;
      case Opcode::Or:   setIntReg(inst.dst, r(inst.src1) | r(inst.src2));
        break;
      case Opcode::Xor:  setIntReg(inst.dst, r(inst.src1) ^ r(inst.src2));
        break;
      case Opcode::Sll:
        setIntReg(inst.dst,
                  (int64_t)((uint64_t)r(inst.src1)
                            << ((uint64_t)r(inst.src2) & 63)));
        break;
      case Opcode::Srl:
        setIntReg(inst.dst,
                  (int64_t)((uint64_t)r(inst.src1) >>
                            ((uint64_t)r(inst.src2) & 63)));
        break;
      case Opcode::Sra:
        setIntReg(inst.dst, r(inst.src1) >> ((uint64_t)r(inst.src2) & 63));
        break;
      case Opcode::Slt:
        setIntReg(inst.dst, r(inst.src1) < r(inst.src2) ? 1 : 0);
        break;
      case Opcode::Sltu:
        setIntReg(inst.dst,
                  (uint64_t)r(inst.src1) < (uint64_t)r(inst.src2) ? 1 : 0);
        break;
      case Opcode::Addi: setIntReg(inst.dst, r(inst.src1) + inst.imm);
        break;
      case Opcode::Andi: setIntReg(inst.dst, r(inst.src1) & inst.imm);
        break;
      case Opcode::Ori:  setIntReg(inst.dst, r(inst.src1) | inst.imm);
        break;
      case Opcode::Xori: setIntReg(inst.dst, r(inst.src1) ^ inst.imm);
        break;
      case Opcode::Slli:
        setIntReg(inst.dst,
                  (int64_t)((uint64_t)r(inst.src1) << (inst.imm & 63)));
        break;
      case Opcode::Srli:
        setIntReg(inst.dst,
                  (int64_t)((uint64_t)r(inst.src1) >> (inst.imm & 63)));
        break;
      case Opcode::Srai:
        setIntReg(inst.dst, r(inst.src1) >> (inst.imm & 63));
        break;
      case Opcode::Slti:
        setIntReg(inst.dst, r(inst.src1) < inst.imm ? 1 : 0);
        break;
      case Opcode::Li:   setIntReg(inst.dst, inst.imm);
        break;
      case Opcode::Mul:  setIntReg(inst.dst, r(inst.src1) * r(inst.src2));
        break;
      case Opcode::Div: {
        int64_t d = r(inst.src2);
        setIntReg(inst.dst, d == 0 ? -1 : r(inst.src1) / d);
        break;
      }
      case Opcode::Rem: {
        int64_t d = r(inst.src2);
        setIntReg(inst.dst, d == 0 ? r(inst.src1) : r(inst.src1) % d);
        break;
      }
      case Opcode::Ld: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 8;
        setIntReg(inst.dst, (int64_t)mem_.read(addr, 8));
        break;
      }
      case Opcode::Lw: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 4;
        setIntReg(inst.dst, (int64_t)(int32_t)mem_.read(addr, 4));
        break;
      }
      case Opcode::St: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 8;
        mem_.write(addr, (uint64_t)r(inst.src2), 8);
        break;
      }
      case Opcode::Sw: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 4;
        mem_.write(addr, (uint64_t)r(inst.src2), 4);
        break;
      }
      case Opcode::Fld: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 8;
        setFpReg(inst.dst, mem_.readF64(addr));
        break;
      }
      case Opcode::Fst: {
        Addr addr = (Addr)(r(inst.src1) + inst.imm);
        out.effAddr = addr;
        out.memSize = 8;
        mem_.writeF64(addr, f(inst.src2));
        break;
      }
      case Opcode::Fadd: setFpReg(inst.dst, f(inst.src1) + f(inst.src2));
        break;
      case Opcode::Fsub: setFpReg(inst.dst, f(inst.src1) - f(inst.src2));
        break;
      case Opcode::Fmul: setFpReg(inst.dst, f(inst.src1) * f(inst.src2));
        break;
      case Opcode::Fdiv: {
        double d = f(inst.src2);
        setFpReg(inst.dst, d == 0.0 ? 0.0 : f(inst.src1) / d);
        break;
      }
      case Opcode::Fcvt: setFpReg(inst.dst, (double)r(inst.src1));
        break;
      case Opcode::Ficvt: setIntReg(inst.dst, (int64_t)f(inst.src1));
        break;
      case Opcode::Fmov: setFpReg(inst.dst, f(inst.src1));
        break;
      case Opcode::Fclt:
        setIntReg(inst.dst, f(inst.src1) < f(inst.src2) ? 1 : 0);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::J:
      case Opcode::Jr: {
        bool taken = false;
        nextPc = executeBranch(inst, taken);
        out.taken = taken;
        break;
      }
      case Opcode::Jal: {
        setIntReg(inst.dst, (int64_t)(pc_ + instBytes));
        bool taken = false;
        nextPc = executeBranch(inst, taken);
        out.taken = taken;
        break;
      }
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        nextPc = pc_;
        break;
      default:
        panic("unimplemented opcode %d", (int)inst.op);
    }

    // Record the architectural result for the lockstep commit checker.
    if (inst.dst != invalidReg) {
        isa::RegClass dstCls = isa::dstRegClass(inst);
        if (dstCls == isa::RegClass::Fp) {
            double v = fpReg(inst.dst);
            std::memcpy(&out.dstValue, &v, sizeof(v));
            out.hasDstValue = true;
        } else if (dstCls == isa::RegClass::Int) {
            out.dstValue = (uint64_t)intReg(inst.dst);
            out.hasDstValue = true;
        }
    }

    out.nextPc = nextPc;
    pc_ = nextPc;
    ++seq_;
    return true;
}

void
Emulator::serialize(Serializer &s) const
{
    s.beginObject("emulator");
    for (int64_t r : intRegs_)
        s.i64(r);
    for (double r : fpRegs_)
        s.f64(r);
    s.u64(pc_);
    s.u64(seq_);
    s.boolean(halted_);
    mem_.serialize(s);
    s.endObject("emulator");
}

void
Emulator::unserialize(Deserializer &d)
{
    d.beginObject("emulator");
    for (int64_t &r : intRegs_)
        r = d.i64();
    for (double &r : fpRegs_)
        r = d.f64();
    pc_ = d.u64();
    seq_ = d.u64();
    halted_ = d.boolean();
    if (!halted_ && !prog_.contains(pc_))
        throw CheckpointError("checkpoint PC outside the program");
    mem_.unserialize(d);
    d.endObject("emulator");
}

void
Emulator::copyArchState(const Emulator &other)
{
    intRegs_ = other.intRegs_;
    fpRegs_ = other.fpRegs_;
    pc_ = other.pc_;
    seq_ = other.seq_;
    halted_ = other.halted_;
    mem_.copyFrom(other.mem_);
}

} // namespace pubs::emu
