/**
 * @file
 * Functional emulator for the micro-ISA. Executes a Program one
 * instruction at a time, producing the dynamic-instruction stream the
 * timing model consumes (it plays the role SimpleScalar's functional core
 * played for the paper).
 */

#ifndef PUBS_EMU_EMULATOR_HH
#define PUBS_EMU_EMULATOR_HH

#include <array>
#include <memory>
#include <unordered_map>

#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "trace/dyninst.hh"

namespace pubs::emu
{

/** Sparse byte-addressable memory backed by 4 KB pages. */
class SparseMemory
{
  public:
    static constexpr size_t pageBytes = 4096;

    uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, uint8_t value);

    /** Little-endian multi-byte accessors; size 1..8 bytes. */
    uint64_t read(Addr addr, unsigned size) const;
    void write(Addr addr, uint64_t value, unsigned size);

    uint64_t read64(Addr a) const { return read(a, 8); }
    void write64(Addr a, uint64_t v) { write(a, v, 8); }

    double readF64(Addr addr) const;
    void writeF64(Addr addr, double value);

    /** Number of pages currently allocated. */
    size_t pagesAllocated() const { return pages_.size(); }

    /**
     * Checkpoint the page set. Pages are emitted sorted by page number,
     * so the byte stream is independent of hash-map iteration order and
     * of the access pattern that allocated the pages.
     */
    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

    /** Deep-copy another memory's page set (checker resync). */
    void copyFrom(const SparseMemory &other);

  private:
    using Page = std::array<uint8_t, pageBytes>;

    Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    // One-entry translation memo: guest accesses cluster on a page for
    // stretches, and the hash probe per byte dominated the emulator's
    // host profile on memory-bound workloads. Node-based unordered_map
    // keeps Page pointers stable across rehash, so the memo only needs
    // invalidating when the page set is replaced wholesale. A memoised
    // nullptr (page never written) is refreshed by getPage on the first
    // allocating write.
    mutable Addr memoPageNum_ = ~(Addr)0;
    mutable Page *memoPage_ = nullptr;
};

/**
 * The architectural machine: registers + memory + PC. step() retires one
 * instruction and reports it as a DynInst.
 */
class Emulator : public trace::InstSource
{
  public:
    explicit Emulator(const isa::Program &program);

    /** Reset architectural state and re-install the program's data. */
    void reset();

    /** Execute one instruction. @return false once halted. */
    bool step(trace::DynInst &out);

    /** InstSource interface. */
    bool next(trace::DynInst &out) override { return step(out); }
    const isa::Program *program() const override { return &prog_; }

    bool halted() const { return halted_; }
    Pc pc() const { return pc_; }
    SeqNum instsRetired() const { return seq_; }

    /** Architectural integer register (r0 reads as zero). */
    int64_t intReg(RegId r) const;
    void setIntReg(RegId r, int64_t value);

    double fpReg(RegId r) const;
    void setFpReg(RegId r, double value);

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Checkpoint the full architectural state (regs + PC + memory). */
    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

    /**
     * Copy @p other's architectural state wholesale. Both emulators must
     * run the same program; used to resync the lockstep checker's
     * private emulator after a fast-forward or restore.
     */
    void copyArchState(const Emulator &other);

  private:
    Pc executeBranch(const isa::Inst &inst, bool &taken);

    const isa::Program &prog_;
    SparseMemory mem_;
    std::array<int64_t, numIntRegs> intRegs_{};
    std::array<double, numFpRegs> fpRegs_{};
    Pc pc_ = 0;
    SeqNum seq_ = 0;
    bool halted_ = false;
};

} // namespace pubs::emu

#endif // PUBS_EMU_EMULATOR_HH
