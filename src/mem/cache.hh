/**
 * @file
 * A generic set-associative, write-back/write-allocate, LRU cache with
 * MSHR-based non-blocking misses. The model is latency-based (each access
 * returns the cycle its data becomes available) rather than event-driven,
 * which is sufficient for the load-latency and MLP behaviour the paper's
 * evaluation depends on.
 */

#ifndef PUBS_MEM_CACHE_HH
#define PUBS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::mem
{

struct CacheParams
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    unsigned hitLatency = 2;
    unsigned mshrs = 16;
};

/** A level below a cache that can be asked for a line. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Request the line containing @p addr at time @p now.
     * @param isPrefetch demand misses count in stats; prefetches do not.
     * @return the cycle the line arrives.
     */
    virtual Cycle fill(Addr addr, Cycle now, bool isPrefetch) = 0;

    /**
     * Functional-warming fill: update contents, replacement state and
     * counters exactly like fill() at an idle instant, but create no
     * cycle-coupled state (no MSHR, no in-flight fill, no channel
     * reservation). Warming is therefore a pure fold over the access
     * stream — warming A then B leaves the same state as warming A+B in
     * one pass, which is what makes checkpoint chaining bit-exact.
     */
    virtual void warmFill(Addr addr, bool isPrefetch) = 0;
};

class Cache : public MemLevel
{
  public:
    Cache(const CacheParams &params, MemLevel *next);

    /**
     * Demand access (load/store/fetch) at time @p now.
     * @param write marks the line dirty on hit/fill.
     * @param hit out-parameter: did the access hit?
     * @return cycle the data is available.
     */
    Cycle access(Addr addr, bool write, Cycle now, bool &hit);

    /** MemLevel interface: a higher level requests this line. */
    Cycle fill(Addr addr, Cycle now, bool isPrefetch) override;

    /** Install a line without a demand request (prefetch landing here). */
    void installPrefetch(Addr addr, Cycle now);

    /**
     * Functional-warming demand access: same contents/LRU/counter
     * effects as access() with no timing state. @return hit?
     */
    bool warmAccess(Addr addr, bool write);

    /** MemLevel interface, warming flavour. */
    void warmFill(Addr addr, bool isPrefetch) override;

    /** Warming counterpart of installPrefetch(). */
    void warmInstallPrefetch(Addr addr);

    /**
     * Checkpoint the warm state: contents, LRU clocks and counters.
     * Cycle-coupled state (MSHRs, in-flight fills) must be idle — the
     * pipeline is pristine whenever a checkpoint is taken — so it is
     * not serialized and is re-zeroed on restore.
     */
    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

    /** Does the cache currently hold the line containing @p addr? */
    bool contains(Addr addr) const;

    const CacheParams &params() const { return params_; }

    uint64_t demandAccesses() const { return accesses_; }
    uint64_t demandMisses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    uint64_t prefetchFills() const { return prefetchFills_; }
    uint64_t usefulPrefetches() const { return usefulPrefetches_; }
    uint64_t mshrHits() const { return mshrHits_; }

    double
    missRate() const
    {
        return accesses_ ? (double)misses_ / (double)accesses_ : 0.0;
    }

  private:
    /**
     * Data-oriented line state (DESIGN.md §13): the fields the probe
     * touches on every access — tags and valid bits — live in dense
     * per-set arrays (tags_, validBits_) so a set's tags share one or
     * two cache lines and can be compared with one vector op. The
     * remaining per-line state, touched only on hits and fills, stays
     * in this parallel record.
     */
    struct Line
    {
        bool dirty = false;
        bool wasPrefetched = false;
        uint64_t lastUse = 0;
        /** Cycle the line's data arrives (fill in flight until then). */
        Cycle fillReady = 0;
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        Cycle readyCycle = 0;
    };

    Addr lineAddrOf(Addr addr) const { return addr & ~(Addr)(params_.lineBytes - 1); }
    size_t setOf(Addr addr) const;
    uint64_t tagOf(Addr addr) const;
    /** Way holding @p addr, or -1. The SIMD/scalar probe of tags_. */
    int findWay(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    /** Pick the victim way for a fill (first invalid way, else LRU). */
    unsigned victimWay(Addr addr);
    /** Point set/way metadata at @p tag and return the line record. */
    Line &installLine(Addr addr, unsigned way);
    Cycle missPath(Addr addr, Cycle now, bool isPrefetch);
    void warmMissPath(Addr addr, bool isPrefetch);

    CacheParams params_;
    MemLevel *next_;
    unsigned sets_;
    uint64_t useClock_ = 0;
    std::vector<Line> lines_;
    /** Dense set-major tag array: tags_[set * ways + way]. */
    std::vector<uint64_t> tags_;
    /** Per-set valid bitmask (bit w = way w valid); ways <= 32. */
    std::vector<uint32_t> validBits_;
    std::vector<Mshr> mshrs_;

    /** Per-set most-recently-hit way, tried first by findLine(). A pure
     *  search hint: tags are unique within a set, so probe order never
     *  changes the outcome. */
    std::vector<uint8_t> mruWay_;

    /**
     * Clean-hit memo: when the immediately preceding demand access was
     * a read hit on a line whose fill had completed, a repeat read of
     * the same line can skip the way scan (the dominant case is
     * sequential i-fetch walking a line). Valid only back-to-back —
     * any other access, fill or prefetch invalidates it — so no LRU
     * decision, stat counter or returned latency can differ from the
     * unmemoised path (the only skipped effect is a lastUse re-bump of
     * a line nothing else touched in between, an order-preserving
     * relabelling; fillReady <= the memoising access's cycle <= now).
     */
    Addr memoLine_ = 0;
    bool memoHit_ = false;

    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
    uint64_t prefetchFills_ = 0;
    uint64_t usefulPrefetches_ = 0;
    uint64_t mshrHits_ = 0;
};

/** Fixed-latency, bandwidth-limited main memory (Table I: 300 cycles,
 *  8 B/cycle). */
class MainMemory : public MemLevel
{
  public:
    MainMemory(unsigned latency, unsigned bytesPerCycle, unsigned lineBytes);

    Cycle fill(Addr addr, Cycle now, bool isPrefetch) override;

    void warmFill(Addr addr, bool isPrefetch) override;

    uint64_t requests() const { return requests_; }

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    unsigned latency_;
    unsigned cyclesPerLine_;
    Cycle channelFree_ = 0;
    uint64_t requests_ = 0;
};

} // namespace pubs::mem

#endif // PUBS_MEM_CACHE_HH
