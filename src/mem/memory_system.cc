#include "mem/memory_system.hh"

namespace pubs::mem
{

MemorySystem::MemorySystem(const MemoryParams &params) : params_(params)
{
    mem_ = std::make_unique<MainMemory>(params.memLatency,
                                        params.memBytesPerCycle,
                                        params.l2.lineBytes);
    l2_ = std::make_unique<Cache>(params.l2, mem_.get());
    l1i_ = std::make_unique<Cache>(params.l1i, l2_.get());
    l1d_ = std::make_unique<Cache>(params.l1d, l2_.get());
    if (params.prefetch) {
        StreamPrefetcherParams pf = params.prefetcher;
        pf.lineBytes = params.l2.lineBytes;
        prefetcher_ = std::make_unique<StreamPrefetcher>(pf, l2_.get());
    }
}

Cycle
MemorySystem::fetchAccess(Pc pc, Cycle now)
{
    uint64_t missesBefore = l2_->demandMisses();
    bool hit = false;
    Cycle ready = l1i_->access(pc, false, now, hit);
    if (!hit && params_.nextLineIPrefetch) {
        // Simple sequential instruction prefetch into the L1I.
        Addr nextLine = (pc | (Addr)(params_.l1i.lineBytes - 1)) + 1;
        l1i_->installPrefetch(nextLine, now);
    }
    llcMisses_ += l2_->demandMisses() - missesBefore;
    return ready;
}

DataAccess
MemorySystem::dataAccess(Addr addr, bool write, Cycle now)
{
    uint64_t l2MissesBefore = l2_->demandMisses();

    DataAccess result;
    result.readyCycle = l1d_->access(addr, write, now, result.l1Hit);
    result.llcMiss = l2_->demandMisses() != l2MissesBefore;
    if (result.llcMiss)
        ++llcMisses_;

    if (!result.l1Hit && prefetcher_)
        prefetcher_->observeMiss(addr, now);

    return result;
}

} // namespace pubs::mem
