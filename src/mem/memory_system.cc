#include "mem/memory_system.hh"

#include "common/error.hh"

namespace pubs::mem
{

MemorySystem::MemorySystem(const MemoryParams &params) : params_(params)
{
    mem_ = std::make_unique<MainMemory>(params.memLatency,
                                        params.memBytesPerCycle,
                                        params.l2.lineBytes);
    l2_ = std::make_unique<Cache>(params.l2, mem_.get());
    l1i_ = std::make_unique<Cache>(params.l1i, l2_.get());
    l1d_ = std::make_unique<Cache>(params.l1d, l2_.get());
    if (params.prefetch) {
        StreamPrefetcherParams pf = params.prefetcher;
        pf.lineBytes = params.l2.lineBytes;
        prefetcher_ = std::make_unique<StreamPrefetcher>(pf, l2_.get());
    }
}

Cycle
MemorySystem::fetchAccess(Pc pc, Cycle now)
{
    uint64_t missesBefore = l2_->demandMisses();
    bool hit = false;
    Cycle ready = l1i_->access(pc, false, now, hit);
    if (!hit && params_.nextLineIPrefetch) {
        // Simple sequential instruction prefetch into the L1I.
        Addr nextLine = (pc | (Addr)(params_.l1i.lineBytes - 1)) + 1;
        l1i_->installPrefetch(nextLine, now);
    }
    llcMisses_ += l2_->demandMisses() - missesBefore;
    return ready;
}

DataAccess
MemorySystem::dataAccess(Addr addr, bool write, Cycle now)
{
    uint64_t l2MissesBefore = l2_->demandMisses();

    DataAccess result;
    result.readyCycle = l1d_->access(addr, write, now, result.l1Hit);
    result.llcMiss = l2_->demandMisses() != l2MissesBefore;
    if (result.llcMiss)
        ++llcMisses_;

    if (!result.l1Hit && prefetcher_)
        prefetcher_->observeMiss(addr, now);

    return result;
}

void
MemorySystem::warmFetch(Pc pc)
{
    uint64_t missesBefore = l2_->demandMisses();
    bool hit = l1i_->warmAccess(pc, false);
    if (!hit && params_.nextLineIPrefetch) {
        Addr nextLine = (pc | (Addr)(params_.l1i.lineBytes - 1)) + 1;
        l1i_->warmInstallPrefetch(nextLine);
    }
    llcMisses_ += l2_->demandMisses() - missesBefore;
}

DataAccess
MemorySystem::warmData(Addr addr, bool write)
{
    uint64_t l2MissesBefore = l2_->demandMisses();

    DataAccess result;
    result.l1Hit = l1d_->warmAccess(addr, write);
    result.readyCycle = 0;
    result.llcMiss = l2_->demandMisses() != l2MissesBefore;
    if (result.llcMiss)
        ++llcMisses_;

    if (!result.l1Hit && prefetcher_)
        prefetcher_->warmObserveMiss(addr);

    return result;
}

void
MemorySystem::serialize(Serializer &s) const
{
    s.beginObject("memory_system");
    l1i_->serialize(s);
    l1d_->serialize(s);
    l2_->serialize(s);
    mem_->serialize(s);
    s.boolean(prefetcher_ != nullptr);
    if (prefetcher_)
        prefetcher_->serialize(s);
    s.u64(llcMisses_);
    s.endObject("memory_system");
}

void
MemorySystem::unserialize(Deserializer &d)
{
    d.beginObject("memory_system");
    l1i_->unserialize(d);
    l1d_->unserialize(d);
    l2_->unserialize(d);
    mem_->unserialize(d);
    bool hadPrefetcher = d.boolean();
    if (hadPrefetcher != (prefetcher_ != nullptr)) {
        throw CheckpointError(
            "checkpoint prefetcher presence does not match configuration");
    }
    if (prefetcher_)
        prefetcher_->unserialize(d);
    llcMisses_ = d.u64();
    d.endObject("memory_system");
}

} // namespace pubs::mem
