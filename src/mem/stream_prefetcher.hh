/**
 * @file
 * Stream-based data prefetcher (Table I: 32 tracked streams, 16-line
 * distance, degree 2, prefetching into the L2 cache). Streams are
 * detected from L1D demand-miss line addresses; once a stream has two
 * hits in the same direction it issues `degree` line prefetches `distance`
 * lines ahead of the demand address.
 */

#ifndef PUBS_MEM_STREAM_PREFETCHER_HH
#define PUBS_MEM_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::mem
{

class Cache;

struct StreamPrefetcherParams
{
    unsigned streams = 32;
    unsigned distanceLines = 16;
    unsigned degree = 2;
    unsigned lineBytes = 64;
};

class StreamPrefetcher
{
  public:
    StreamPrefetcher(const StreamPrefetcherParams &params, Cache *target);

    /** Observe a demand miss at @p addr; may issue prefetches. */
    void observeMiss(Addr addr, Cycle now);

    /** Warming flavour: prefetches land via warmInstallPrefetch(). */
    void warmObserveMiss(Addr addr);

    uint64_t prefetchesIssued() const { return issued_; }
    uint64_t streamsAllocated() const { return allocated_; }

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    void observe(Addr addr, Cycle now, bool warm);
    struct Stream
    {
        bool valid = false;
        bool confirmed = false;
        int direction = 1;          ///< +1 ascending, -1 descending
        uint64_t lastLine = 0;
        uint64_t lastUse = 0;
    };

    Stream *findStream(uint64_t line);
    Stream &allocateStream(uint64_t line);

    StreamPrefetcherParams params_;
    Cache *target_;
    uint64_t useClock_ = 0;
    uint64_t issued_ = 0;
    uint64_t allocated_ = 0;
    std::vector<Stream> streams_;
};

} // namespace pubs::mem

#endif // PUBS_MEM_STREAM_PREFETCHER_HH
