#include "mem/cache.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace pubs::mem
{

Cache::Cache(const CacheParams &params, MemLevel *next)
    : params_(params), next_(next)
{
    fatal_if(!isPowerOf2(params.lineBytes), "line size must be 2^n");
    fatal_if(params.ways == 0, "cache needs at least one way");
    uint64_t lines = params.sizeBytes / params.lineBytes;
    fatal_if(lines % params.ways != 0, "size/ways mismatch");
    sets_ = (unsigned)(lines / params.ways);
    fatal_if(!isPowerOf2(sets_), "cache sets must be 2^n");
    fatal_if(params.ways > 32, "the per-set valid mask is 32 bits");
    mruWay_.assign(sets_, 0);
    fatal_if(params.mshrs == 0, "cache needs at least one MSHR");
    lines_.resize(lines);
    tags_.assign(lines, 0);
    validBits_.assign(sets_, 0);
    mshrs_.reserve(params.mshrs);
}

size_t
Cache::setOf(Addr addr) const
{
    return (addr / params_.lineBytes) & (sets_ - 1);
}

uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) / sets_;
}

int
Cache::findWay(Addr addr) const
{
    size_t set = setOf(addr);
    size_t base = set * params_.ways;
    uint64_t tag = tagOf(addr);
    // Most-recently-hit way first: at most one way can match the tag,
    // so the search order cannot change which line is found.
    unsigned hint = mruWay_[set];
    if (((validBits_[set] >> hint) & 1u) && tags_[base + hint] == tag)
        return (int)hint;
    return simd::tagProbe(&tags_[base], validBits_[set], params_.ways,
                          tag);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    int way = findWay(addr);
    if (way < 0)
        return nullptr;
    size_t set = setOf(addr);
    mruWay_[set] = (uint8_t)way;
    return &lines_[set * params_.ways + (size_t)way];
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

unsigned
Cache::victimWay(Addr addr)
{
    size_t set = setOf(addr);
    uint32_t free = ~validBits_[set] &
                    (params_.ways == 32 ? 0xffffffffu
                                        : ((1u << params_.ways) - 1));
    if (free != 0)
        return (unsigned)countTrailingZeros((uint64_t)free);
    size_t base = set * params_.ways;
    unsigned victim = 0;
    for (unsigned w = 1; w < params_.ways; ++w) {
        if (lines_[base + w].lastUse < lines_[base + victim].lastUse)
            victim = w;
    }
    if (lines_[base + victim].dirty)
        ++writebacks_;
    return victim;
}

Cache::Line &
Cache::installLine(Addr addr, unsigned way)
{
    size_t set = setOf(addr);
    mruWay_[set] = (uint8_t)way;
    validBits_[set] |= 1u << way;
    tags_[set * params_.ways + way] = tagOf(addr);
    return lines_[set * params_.ways + way];
}

Cycle
Cache::missPath(Addr addr, Cycle now, bool isPrefetch)
{
    Addr lineAddr = lineAddrOf(addr);

    // Retire completed MSHRs.
    std::erase_if(mshrs_, [now](const Mshr &m) { return m.readyCycle <= now; });

    // Merge with an outstanding miss to the same line.
    for (const Mshr &m : mshrs_) {
        if (m.lineAddr == lineAddr) {
            ++mshrHits_;
            return m.readyCycle;
        }
    }

    // A full MSHR file delays the request until the earliest entry
    // retires (the structural stall of a blocking miss).
    Cycle start = now;
    if (mshrs_.size() >= params_.mshrs) {
        auto earliest = std::min_element(
            mshrs_.begin(), mshrs_.end(),
            [](const Mshr &a, const Mshr &b) {
                return a.readyCycle < b.readyCycle;
            });
        start = earliest->readyCycle;
        mshrs_.erase(earliest);
    }

    Cycle ready = next_->fill(lineAddr, start, isPrefetch);
    mshrs_.push_back({lineAddr, ready});

    // Install the line now; its data only becomes usable at `ready`
    // (accesses that arrive earlier merge with the in-flight fill).
    Line &line = installLine(addr, victimWay(addr));
    line.dirty = false;
    line.wasPrefetched = isPrefetch;
    line.lastUse = ++useClock_;
    line.fillReady = ready;
    return ready;
}

Cycle
Cache::access(Addr addr, bool write, Cycle now, bool &hit)
{
    ++accesses_;
    Addr lineAddr = lineAddrOf(addr);
    if (!write && memoHit_ && lineAddr == memoLine_) {
        hit = true;
        return now + params_.hitLatency;
    }
    memoLine_ = lineAddr;
    memoHit_ = false;
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        if (write)
            line->dirty = true;
        if (line->wasPrefetched) {
            ++usefulPrefetches_;
            line->wasPrefetched = false;
        }
        if (line->fillReady > now) {
            // Fill still in flight: merge with it.
            hit = false;
            ++mshrHits_;
            return line->fillReady + params_.hitLatency;
        }
        hit = true;
        memoHit_ = !write;
        return now + params_.hitLatency;
    }
    hit = false;
    ++misses_;
    Cycle ready = missPath(addr, now, false);
    if (write) {
        if (Line *line = findLine(addr))
            line->dirty = true;
    }
    return ready + params_.hitLatency;
}

Cycle
Cache::fill(Addr addr, Cycle now, bool isPrefetch)
{
    memoHit_ = false;
    // A request from the level above is a demand access at this level
    // unless it is a prefetch.
    if (!isPrefetch)
        ++accesses_;
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        if (line->wasPrefetched && !isPrefetch) {
            ++usefulPrefetches_;
            line->wasPrefetched = false;
        }
        if (line->fillReady > now) {
            if (!isPrefetch)
                ++mshrHits_;
            return line->fillReady + params_.hitLatency;
        }
        return now + params_.hitLatency;
    }
    if (!isPrefetch)
        ++misses_;
    return missPath(addr, now, isPrefetch) + params_.hitLatency;
}

void
Cache::installPrefetch(Addr addr, Cycle now)
{
    memoHit_ = false;
    if (findLine(addr))
        return;
    ++prefetchFills_;
    missPath(addr, now, true);
}

void
Cache::warmMissPath(Addr addr, bool isPrefetch)
{
    // Same install as missPath(), minus every cycle-coupled effect:
    // no MSHR entry, no fill-in-flight window, and the level below is
    // warmed instead of timed.
    next_->warmFill(lineAddrOf(addr), isPrefetch);
    Line &line = installLine(addr, victimWay(addr));
    line.dirty = false;
    line.wasPrefetched = isPrefetch;
    line.lastUse = ++useClock_;
    line.fillReady = 0;
}

bool
Cache::warmAccess(Addr addr, bool write)
{
    ++accesses_;
    memoHit_ = false;
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        if (write)
            line->dirty = true;
        if (line->wasPrefetched) {
            ++usefulPrefetches_;
            line->wasPrefetched = false;
        }
        return true;
    }
    ++misses_;
    warmMissPath(addr, false);
    if (write) {
        if (Line *line = findLine(addr))
            line->dirty = true;
    }
    return false;
}

void
Cache::warmFill(Addr addr, bool isPrefetch)
{
    memoHit_ = false;
    if (!isPrefetch)
        ++accesses_;
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        if (line->wasPrefetched && !isPrefetch) {
            ++usefulPrefetches_;
            line->wasPrefetched = false;
        }
        return;
    }
    if (!isPrefetch)
        ++misses_;
    warmMissPath(addr, isPrefetch);
}

void
Cache::warmInstallPrefetch(Addr addr)
{
    memoHit_ = false;
    if (findLine(addr))
        return;
    ++prefetchFills_;
    warmMissPath(addr, true);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::serialize(Serializer &s) const
{
    s.beginObject("cache");
    s.str(params_.name);
    s.u32(sets_);
    s.u32(params_.ways);
    s.u32(params_.lineBytes);
    s.u64(useClock_);
    for (size_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        bool valid =
            (validBits_[i / params_.ways] >> (i % params_.ways)) & 1u;
        uint8_t flags = (valid ? 1 : 0) | (line.dirty ? 2 : 0) |
                        (line.wasPrefetched ? 4 : 0);
        s.u8(flags);
        s.u64(tags_[i]);
        s.u64(line.lastUse);
    }
    for (uint8_t way : mruWay_)
        s.u8(way);
    s.u64(accesses_);
    s.u64(misses_);
    s.u64(writebacks_);
    s.u64(prefetchFills_);
    s.u64(usefulPrefetches_);
    s.u64(mshrHits_);
    s.endObject("cache");
}

void
Cache::unserialize(Deserializer &d)
{
    d.beginObject("cache");
    std::string name = d.str();
    uint32_t sets = d.u32(), ways = d.u32(), lineBytes = d.u32();
    if (name != params_.name || sets != sets_ || ways != params_.ways ||
        lineBytes != params_.lineBytes) {
        throw CheckpointError(
            "checkpoint cache '" + name + "' (" + std::to_string(sets) +
            "x" + std::to_string(ways) + "x" + std::to_string(lineBytes) +
            ") does not match configured '" + params_.name + "'");
    }
    useClock_ = d.u64();
    std::fill(validBits_.begin(), validBits_.end(), 0);
    for (size_t i = 0; i < lines_.size(); ++i) {
        Line &line = lines_[i];
        uint8_t flags = d.u8();
        if (flags & ~7u)
            throw CheckpointError("checkpoint cache line flags corrupt");
        if (flags & 1)
            validBits_[i / params_.ways] |= 1u << (i % params_.ways);
        line.dirty = flags & 2;
        line.wasPrefetched = flags & 4;
        tags_[i] = d.u64();
        line.lastUse = d.u64();
        line.fillReady = 0;
    }
    for (uint8_t &way : mruWay_) {
        way = d.u8();
        if (way >= params_.ways)
            throw CheckpointError("checkpoint cache MRU way out of range");
    }
    accesses_ = d.u64();
    misses_ = d.u64();
    writebacks_ = d.u64();
    prefetchFills_ = d.u64();
    usefulPrefetches_ = d.u64();
    mshrHits_ = d.u64();
    mshrs_.clear();
    memoLine_ = 0;
    memoHit_ = false;
    d.endObject("cache");
}

MainMemory::MainMemory(unsigned latency, unsigned bytesPerCycle,
                       unsigned lineBytes)
    : latency_(latency),
      cyclesPerLine_((lineBytes + bytesPerCycle - 1) / bytesPerCycle)
{
    fatal_if(bytesPerCycle == 0, "memory bandwidth must be non-zero");
}

Cycle
MainMemory::fill(Addr, Cycle now, bool)
{
    ++requests_;
    Cycle start = std::max(now, channelFree_);
    channelFree_ = start + cyclesPerLine_;
    return start + latency_;
}

void
MainMemory::warmFill(Addr, bool)
{
    ++requests_;
}

void
MainMemory::serialize(Serializer &s) const
{
    s.beginObject("main_memory");
    s.u64(requests_);
    s.endObject("main_memory");
}

void
MainMemory::unserialize(Deserializer &d)
{
    d.beginObject("main_memory");
    requests_ = d.u64();
    channelFree_ = 0;
    d.endObject("main_memory");
}

} // namespace pubs::mem
