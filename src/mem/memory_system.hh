/**
 * @file
 * The full memory hierarchy of Table I: split 32 KB L1I / L1D, unified
 * 2 MB L2 (the LLC), 300-cycle 8 B/cycle main memory, and a stream
 * prefetcher observing L1D misses and filling the L2.
 */

#ifndef PUBS_MEM_MEMORY_SYSTEM_HH
#define PUBS_MEM_MEMORY_SYSTEM_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/stream_prefetcher.hh"

namespace pubs::mem
{

struct MemoryParams
{
    CacheParams l1i{"l1i", 32 * 1024, 8, 64, 1, 8};
    CacheParams l1d{"l1d", 32 * 1024, 8, 64, 2, 16};
    CacheParams l2{"l2", 2 * 1024 * 1024, 16, 64, 12, 32};
    unsigned memLatency = 300;
    unsigned memBytesPerCycle = 8;
    bool prefetch = true;
    StreamPrefetcherParams prefetcher{};
    /** Next-line instruction prefetch on L1I misses. */
    bool nextLineIPrefetch = true;
};

/** Outcome of a data-side access. */
struct DataAccess
{
    Cycle readyCycle = 0;
    bool l1Hit = false;
    bool llcMiss = false; ///< missed in the L2 (the last-level cache)
};

class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryParams &params);

    /** Instruction fetch of the line containing @p pc. */
    Cycle fetchAccess(Pc pc, Cycle now);

    /** Load/store data access. */
    DataAccess dataAccess(Addr addr, bool write, Cycle now);

    /** Functional-warming fetch: same contents/counter effects, no
     *  timing state (readyCycle of the warming DataAccess is 0). */
    void warmFetch(Pc pc);

    /** Functional-warming data access. */
    DataAccess warmData(Addr addr, bool write);

    /** Checkpoint every level plus the prefetcher and LLC-miss count. */
    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

    const Cache &l1i() const { return *l1i_; }
    const Cache &l1d() const { return *l1d_; }
    const Cache &l2() const { return *l2_; }
    const MainMemory &mainMemory() const { return *mem_; }
    const StreamPrefetcher *prefetcher() const { return prefetcher_.get(); }

    uint64_t llcMisses() const { return llcMisses_; }

  private:
    MemoryParams params_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<StreamPrefetcher> prefetcher_;
    uint64_t llcMisses_ = 0;
};

} // namespace pubs::mem

#endif // PUBS_MEM_MEMORY_SYSTEM_HH
