#include "mem/stream_prefetcher.hh"

#include <cstdlib>

#include "common/error.hh"
#include "common/logging.hh"
#include "mem/cache.hh"

namespace pubs::mem
{

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherParams &params,
                                   Cache *target)
    : params_(params), target_(target), streams_(params.streams)
{
    fatal_if(params.streams == 0, "prefetcher needs at least one stream");
    fatal_if(!target, "prefetcher needs a target cache");
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(uint64_t line)
{
    // A stream matches if the new miss is within the tracking window of
    // its last line, in either direction.
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        int64_t delta = (int64_t)line - (int64_t)s.lastLine;
        if (delta != 0 && std::llabs(delta) <= 4)
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocateStream(uint64_t line)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    ++allocated_;
    *victim = Stream{};
    victim->valid = true;
    victim->lastLine = line;
    victim->lastUse = ++useClock_;
    return *victim;
}

void
StreamPrefetcher::observeMiss(Addr addr, Cycle now)
{
    observe(addr, now, false);
}

void
StreamPrefetcher::warmObserveMiss(Addr addr)
{
    observe(addr, 0, true);
}

void
StreamPrefetcher::observe(Addr addr, Cycle now, bool warm)
{
    uint64_t line = addr / params_.lineBytes;
    Stream *stream = findStream(line);
    if (!stream) {
        allocateStream(line);
        return;
    }

    int64_t delta = (int64_t)line - (int64_t)stream->lastLine;
    int direction = delta > 0 ? 1 : -1;
    stream->lastUse = ++useClock_;

    if (!stream->confirmed) {
        stream->confirmed = true;
        stream->direction = direction;
    } else if (direction != stream->direction) {
        // Direction flip: retrain.
        stream->confirmed = false;
        stream->direction = direction;
        stream->lastLine = line;
        return;
    }
    stream->lastLine = line;

    // Issue `degree` prefetches `distance` lines ahead.
    for (unsigned d = 0; d < params_.degree; ++d) {
        int64_t targetLine =
            (int64_t)line +
            stream->direction * (int64_t)(params_.distanceLines + d);
        if (targetLine < 0)
            continue;
        Addr prefetchAddr = (Addr)targetLine * params_.lineBytes;
        if (warm)
            target_->warmInstallPrefetch(prefetchAddr);
        else
            target_->installPrefetch(prefetchAddr, now);
        ++issued_;
    }
}

void
StreamPrefetcher::serialize(Serializer &s) const
{
    s.beginObject("stream_prefetcher");
    s.u32((uint32_t)streams_.size());
    s.u64(useClock_);
    s.u64(issued_);
    s.u64(allocated_);
    for (const Stream &st : streams_) {
        s.boolean(st.valid);
        s.boolean(st.confirmed);
        s.i64(st.direction);
        s.u64(st.lastLine);
        s.u64(st.lastUse);
    }
    s.endObject("stream_prefetcher");
}

void
StreamPrefetcher::unserialize(Deserializer &d)
{
    d.beginObject("stream_prefetcher");
    uint32_t count = d.u32();
    if (count != streams_.size()) {
        throw CheckpointError("checkpoint prefetcher has " +
                              std::to_string(count) + " streams, expected " +
                              std::to_string(streams_.size()));
    }
    useClock_ = d.u64();
    issued_ = d.u64();
    allocated_ = d.u64();
    for (Stream &st : streams_) {
        st.valid = d.boolean();
        st.confirmed = d.boolean();
        int64_t direction = d.i64();
        if (direction != 1 && direction != -1)
            throw CheckpointError("checkpoint prefetcher direction corrupt");
        st.direction = (int)direction;
        st.lastLine = d.u64();
        st.lastUse = d.u64();
    }
    d.endObject("stream_prefetcher");
}

} // namespace pubs::mem
