#include "mem/stream_prefetcher.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "mem/cache.hh"

namespace pubs::mem
{

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherParams &params,
                                   Cache *target)
    : params_(params), target_(target), streams_(params.streams)
{
    fatal_if(params.streams == 0, "prefetcher needs at least one stream");
    fatal_if(!target, "prefetcher needs a target cache");
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(uint64_t line)
{
    // A stream matches if the new miss is within the tracking window of
    // its last line, in either direction.
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        int64_t delta = (int64_t)line - (int64_t)s.lastLine;
        if (delta != 0 && std::llabs(delta) <= 4)
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocateStream(uint64_t line)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    ++allocated_;
    *victim = Stream{};
    victim->valid = true;
    victim->lastLine = line;
    victim->lastUse = ++useClock_;
    return *victim;
}

void
StreamPrefetcher::observeMiss(Addr addr, Cycle now)
{
    uint64_t line = addr / params_.lineBytes;
    Stream *stream = findStream(line);
    if (!stream) {
        allocateStream(line);
        return;
    }

    int64_t delta = (int64_t)line - (int64_t)stream->lastLine;
    int direction = delta > 0 ? 1 : -1;
    stream->lastUse = ++useClock_;

    if (!stream->confirmed) {
        stream->confirmed = true;
        stream->direction = direction;
    } else if (direction != stream->direction) {
        // Direction flip: retrain.
        stream->confirmed = false;
        stream->direction = direction;
        stream->lastLine = line;
        return;
    }
    stream->lastLine = line;

    // Issue `degree` prefetches `distance` lines ahead.
    for (unsigned d = 0; d < params_.degree; ++d) {
        int64_t targetLine =
            (int64_t)line +
            stream->direction * (int64_t)(params_.distanceLines + d);
        if (targetLine < 0)
            continue;
        Addr prefetchAddr = (Addr)targetLine * params_.lineBytes;
        target_->installPrefetch(prefetchAddr, now);
        ++issued_;
    }
}

} // namespace pubs::mem
