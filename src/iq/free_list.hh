/**
 * @file
 * A LIFO free list of entry indices. The random queue keeps one for its
 * priority partition and one for its normal partition (Section III-B2).
 */

#ifndef PUBS_IQ_FREE_LIST_HH
#define PUBS_IQ_FREE_LIST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace pubs::iq
{

class FreeList
{
  public:
    FreeList() = default;

    /** Populate with indices [first, first + count). */
    FreeList(uint32_t first, uint32_t count);

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    size_t initialSize() const { return initialSize_; }

    /** Pop a free index; panics when empty. */
    uint32_t pop();

    /**
     * Pop a uniformly random free index. This models the *random queue*:
     * over the long term, holes open at arbitrary positions, so a newly
     * dispatched instruction's position — and therefore its positional
     * issue priority — is uncorrelated with its age (Section III-B1).
     */
    uint32_t popRandom(Rng &rng);

    /** Return an index to the list. */
    void push(uint32_t index);

    /** Current free indices, unordered (structural auditor). */
    const std::vector<uint32_t> &contents() const { return entries_; }

  private:
    std::vector<uint32_t> entries_;
    size_t initialSize_ = 0;
};

} // namespace pubs::iq

#endif // PUBS_IQ_FREE_LIST_HH
