#include "iq/age_matrix.hh"

#include "common/logging.hh"

namespace pubs::iq
{

AgeMatrix::AgeMatrix(unsigned size)
    : size_(size),
      words_((size + 63) / 64),
      rows_((size_t)size * words_, 0),
      valid_(words_, 0)
{
    fatal_if(size == 0, "age matrix size must be non-zero");
}

void
AgeMatrix::dispatch(unsigned slot)
{
    panic_if(slot >= size_, "age matrix slot %u out of range", slot);
    panic_if(valid(slot), "age matrix dispatch into occupied slot %u",
             slot);
    // Everything currently valid is older than the newcomer.
    for (unsigned w = 0; w < words_; ++w)
        rows_[(size_t)slot * words_ + w] = valid_[w];
    valid_[slot / 64] |= (uint64_t)1 << (slot % 64);
}

void
AgeMatrix::remove(unsigned slot)
{
    panic_if(slot >= size_, "age matrix slot %u out of range", slot);
    panic_if(!valid(slot), "age matrix remove of empty slot %u", slot);
    valid_[slot / 64] &= ~((uint64_t)1 << (slot % 64));
    uint64_t clearMask = ~((uint64_t)1 << (slot % 64));
    unsigned word = slot / 64;
    for (unsigned s = 0; s < size_; ++s)
        rows_[(size_t)s * words_ + word] &= clearMask;
    for (unsigned w = 0; w < words_; ++w)
        rows_[(size_t)slot * words_ + w] = 0;
}

bool
AgeMatrix::valid(unsigned slot) const
{
    return (valid_[slot / 64] >> (slot % 64)) & 1;
}

bool
AgeMatrix::older(unsigned a, unsigned b) const
{
    panic_if(a >= size_ || b >= size_, "age matrix slot out of range");
    // a is older than b iff a appears in b's older-set row.
    return (rows_[(size_t)b * words_ + a / 64] >> (a % 64)) & 1;
}

int
AgeMatrix::oldestReady(const std::vector<uint64_t> &readyMask) const
{
    panic_if(readyMask.size() < words_, "ready mask too small");
    for (unsigned w = 0; w < words_; ++w) {
        uint64_t candidates = readyMask[w] & valid_[w];
        while (candidates) {
            unsigned bit = (unsigned)__builtin_ctzll(candidates);
            candidates &= candidates - 1;
            unsigned slot = w * 64 + bit;
            // Oldest ready: no *ready* instruction is older than it.
            bool anyOlderReady = false;
            for (unsigned v = 0; v < words_; ++v) {
                if (rows_[(size_t)slot * words_ + v] & readyMask[v] &
                    valid_[v]) {
                    anyOlderReady = true;
                    break;
                }
            }
            if (!anyOlderReady)
                return (int)slot;
        }
    }
    return -1;
}

} // namespace pubs::iq
