#include "iq/shifting_queue.hh"

#include "common/logging.hh"

namespace pubs::iq
{

ShiftingQueue::ShiftingQueue(unsigned size)
    : capacity_(size), slots_(size)
{
    fatal_if(size == 0, "IQ size must be non-zero");
    initReady(size);
}

bool
ShiftingQueue::canDispatch(bool) const
{
    return occupancy_ < capacity_;
}

void
ShiftingQueue::dispatch(uint32_t clientId, SeqNum seq, bool)
{
    panic_if(occupancy_ >= capacity_, "dispatch into full shifting queue");
    slots_[occupancy_] = {true, clientId, seq};
    noteInsert((uint32_t)occupancy_, clientId);
    ++occupancy_;
}

void
ShiftingQueue::remove(uint32_t clientId)
{
    uint32_t i = slotOf(clientId);
    panic_if(i == noSlot || i >= occupancy_ ||
                 slots_[i].clientId != clientId,
             "remove of client %u not in shifting queue", clientId);
    noteErase(i, clientId);
    // Compact: shift everything younger one slot toward the head, ready
    // bits and slot index moving along with the instructions.
    for (size_t j = i + 1; j < occupancy_; ++j) {
        slots_[j - 1] = slots_[j];
        noteMove((uint32_t)j, (uint32_t)(j - 1), slots_[j - 1].clientId);
    }
    --occupancy_;
    slots_[occupancy_].valid = false;
}

} // namespace pubs::iq
