#include "iq/shifting_queue.hh"

#include "common/logging.hh"

namespace pubs::iq
{

ShiftingQueue::ShiftingQueue(unsigned size)
    : capacity_(size), slots_(size)
{
    fatal_if(size == 0, "IQ size must be non-zero");
}

bool
ShiftingQueue::canDispatch(bool) const
{
    return occupancy_ < capacity_;
}

void
ShiftingQueue::dispatch(uint32_t clientId, SeqNum seq, bool)
{
    panic_if(occupancy_ >= capacity_, "dispatch into full shifting queue");
    slots_[occupancy_] = {true, clientId, seq};
    ++occupancy_;
}

void
ShiftingQueue::remove(uint32_t clientId)
{
    for (size_t i = 0; i < occupancy_; ++i) {
        if (slots_[i].clientId == clientId) {
            // Compact: shift everything younger one slot toward the head.
            for (size_t j = i + 1; j < occupancy_; ++j)
                slots_[j - 1] = slots_[j];
            --occupancy_;
            slots_[occupancy_].valid = false;
            return;
        }
    }
    panic("remove of client %u not in shifting queue", clientId);
}

} // namespace pubs::iq
