/**
 * @file
 * Issue-queue organisations (Section III-B1).
 *
 * The select logic in all modern IQs is position-based: the closer an
 * entry is to the head, the higher its issue priority. The queue kinds
 * differ in how instructions map to positions:
 *
 *  - RandomQueue   — dispatch fills arbitrary free holes; position is
 *                    uncorrelated with age (the paper's baseline). PUBS
 *                    partitions it into priority + normal entries.
 *  - ShiftingQueue — compacting, age-ordered (DEC Alpha 21264 style).
 *  - CircularQueue — age-ordered circular buffer; holes waste capacity
 *                    and wraparound reverses priority.
 *
 * The timing pipeline scans prioritySlots() in ascending order each cycle
 * and issues ready instructions subject to FU ports — exactly the
 * positional select the paper assumes.
 */

#ifndef PUBS_IQ_ISSUE_QUEUE_HH
#define PUBS_IQ_ISSUE_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace pubs::iq
{

/** One occupied (or free) position in an IQ, in priority order. */
struct IqSlot
{
    bool valid = false;
    uint32_t clientId = 0; ///< pipeline's in-flight instruction handle
    SeqNum seq = 0;        ///< age (dispatch order)
};

class IssueQueue
{
  public:
    virtual ~IssueQueue() = default;

    /**
     * Can an instruction be dispatched into the requested partition?
     * Queues without partitions ignore @p priority.
     */
    virtual bool canDispatch(bool priority) const = 0;

    /** Insert; panics if canDispatch(priority) is false. */
    virtual void dispatch(uint32_t clientId, SeqNum seq, bool priority) = 0;

    /**
     * Dispatch ignoring the partition (PUBS disabled periods): a free
     * list is chosen at random weighted by partition size
     * (Section III-B3). Unpartitioned queues fall back to dispatch().
     */
    virtual void
    dispatchUniform(uint32_t clientId, SeqNum seq, Rng &rng)
    {
        (void)rng;
        dispatch(clientId, seq, false);
    }

    /** Remove the instruction with @p clientId (it issued / squashed). */
    virtual void remove(uint32_t clientId) = 0;

    /**
     * Slots in positional priority order (ascending = highest priority
     * first). Invalid slots are holes and must be skipped.
     */
    virtual const std::vector<IqSlot> &prioritySlots() const = 0;

    virtual size_t occupancy() const = 0;
    virtual size_t capacity() const = 0;

    /** Number of reserved PUBS priority entries (0 if unpartitioned). */
    virtual unsigned priorityEntries() const { return 0; }

    /** Occupied priority entries this cycle (0 if unpartitioned). */
    virtual size_t priorityOccupancy() const { return 0; }

    virtual const char *kindName() const = 0;

    bool empty() const { return occupancy() == 0; }

    // --- ready bitmap (wakeup scoreboard interface) ------------------
    //
    // The pipeline's scoreboard marks an entry ready when its last
    // pending operand completes; select then visits only set bits (one
    // uint64_t word at a time, ctz iteration) instead of rescanning
    // every slot. The bits live here, keyed by slot, so they follow the
    // queue's own placement policy — including ShiftingQueue
    // compaction, which moves them along with the instructions.

    static constexpr uint32_t noSlot = UINT32_MAX;

    /** Slot currently holding @p clientId, or noSlot. */
    uint32_t
    slotOf(uint32_t clientId) const
    {
        return clientId < slotIndex_.size() ? slotIndex_[clientId]
                                            : noSlot;
    }

    /** Mark the resident @p clientId ready for select (idempotent). */
    void
    markReady(uint32_t clientId)
    {
        uint32_t slot = slotOf(clientId);
        panic_if(slot == noSlot, "markReady of client %u not in IQ",
                 clientId);
        uint64_t bit = (uint64_t)1 << (slot % 64);
        if (!(ready_[slot / 64] & bit)) {
            ready_[slot / 64] |= bit;
            ++readyCount_;
        }
    }

    /** Clear the ready bit of slot @p slot (mem-blocked load). */
    void
    clearReadySlot(uint32_t slot)
    {
        uint64_t bit = (uint64_t)1 << (slot % 64);
        if (ready_[slot / 64] & bit) {
            ready_[slot / 64] &= ~bit;
            --readyCount_;
        }
    }

    bool hasReady() const { return readyCount_ != 0; }
    size_t readyCount() const { return readyCount_; }

    /** Ready bits by slot, 64 slots per word (select iteration). */
    const std::vector<uint64_t> &readyWords() const { return ready_; }

    /** Is the ready bit of @p slot set? (auditing / tests) */
    bool
    readyAt(uint32_t slot) const
    {
        return (ready_[slot / 64] >> (slot % 64)) & 1;
    }

  protected:
    /** Size the bitmap; every concrete queue calls this once. */
    void
    initReady(size_t capacity)
    {
        ready_.assign((capacity + 63) / 64, 0);
    }

    /** Bookkeeping hooks the concrete queues call on slot changes. */
    void
    noteInsert(uint32_t slot, uint32_t clientId)
    {
        if (clientId >= slotIndex_.size())
            slotIndex_.resize((size_t)clientId + 1, noSlot);
        slotIndex_[clientId] = slot;
    }

    void
    noteErase(uint32_t slot, uint32_t clientId)
    {
        clearReadySlot(slot);
        slotIndex_[clientId] = noSlot;
    }

    /** The instruction in @p from moved to @p to (compaction). */
    void
    noteMove(uint32_t from, uint32_t to, uint32_t clientId)
    {
        slotIndex_[clientId] = to;
        uint64_t bit = (uint64_t)1 << (from % 64);
        if (ready_[from / 64] & bit) {
            ready_[from / 64] &= ~bit;
            ready_[to / 64] |= (uint64_t)1 << (to % 64);
        }
    }

  private:
    std::vector<uint64_t> ready_;
    std::vector<uint32_t> slotIndex_; ///< clientId -> slot, grown on use
    size_t readyCount_ = 0;
};

/** Queue kinds for configuration. */
enum class IqKind
{
    Random,
    Shifting,
    Circular,
};

const char *iqKindName(IqKind kind);

} // namespace pubs::iq

#endif // PUBS_IQ_ISSUE_QUEUE_HH
