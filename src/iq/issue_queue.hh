/**
 * @file
 * Issue-queue organisations (Section III-B1).
 *
 * The select logic in all modern IQs is position-based: the closer an
 * entry is to the head, the higher its issue priority. The queue kinds
 * differ in how instructions map to positions:
 *
 *  - RandomQueue   — dispatch fills arbitrary free holes; position is
 *                    uncorrelated with age (the paper's baseline). PUBS
 *                    partitions it into priority + normal entries.
 *  - ShiftingQueue — compacting, age-ordered (DEC Alpha 21264 style).
 *  - CircularQueue — age-ordered circular buffer; holes waste capacity
 *                    and wraparound reverses priority.
 *
 * The timing pipeline scans prioritySlots() in ascending order each cycle
 * and issues ready instructions subject to FU ports — exactly the
 * positional select the paper assumes.
 */

#ifndef PUBS_IQ_ISSUE_QUEUE_HH
#define PUBS_IQ_ISSUE_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace pubs::iq
{

/** One occupied (or free) position in an IQ, in priority order. */
struct IqSlot
{
    bool valid = false;
    uint32_t clientId = 0; ///< pipeline's in-flight instruction handle
    SeqNum seq = 0;        ///< age (dispatch order)
};

class IssueQueue
{
  public:
    virtual ~IssueQueue() = default;

    /**
     * Can an instruction be dispatched into the requested partition?
     * Queues without partitions ignore @p priority.
     */
    virtual bool canDispatch(bool priority) const = 0;

    /** Insert; panics if canDispatch(priority) is false. */
    virtual void dispatch(uint32_t clientId, SeqNum seq, bool priority) = 0;

    /**
     * Dispatch ignoring the partition (PUBS disabled periods): a free
     * list is chosen at random weighted by partition size
     * (Section III-B3). Unpartitioned queues fall back to dispatch().
     */
    virtual void
    dispatchUniform(uint32_t clientId, SeqNum seq, Rng &rng)
    {
        (void)rng;
        dispatch(clientId, seq, false);
    }

    /** Remove the instruction with @p clientId (it issued / squashed). */
    virtual void remove(uint32_t clientId) = 0;

    /**
     * Slots in positional priority order (ascending = highest priority
     * first). Invalid slots are holes and must be skipped.
     */
    virtual const std::vector<IqSlot> &prioritySlots() const = 0;

    virtual size_t occupancy() const = 0;
    virtual size_t capacity() const = 0;

    /** Number of reserved PUBS priority entries (0 if unpartitioned). */
    virtual unsigned priorityEntries() const { return 0; }

    /** Occupied priority entries this cycle (0 if unpartitioned). */
    virtual size_t priorityOccupancy() const { return 0; }

    virtual const char *kindName() const = 0;

    bool empty() const { return occupancy() == 0; }
};

/** Queue kinds for configuration. */
enum class IqKind
{
    Random,
    Shifting,
    Circular,
};

const char *iqKindName(IqKind kind);

} // namespace pubs::iq

#endif // PUBS_IQ_ISSUE_QUEUE_HH
