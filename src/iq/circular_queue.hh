/**
 * @file
 * The circular (non-compacting, age-ordered) queue of Section III-B1.
 * Dispatch appends at the tail; issued instructions leave holes that are
 * only reclaimed when the head pointer passes them, wasting capacity.
 * Positional priority follows the *physical* index, so wraparound
 * reverses the age-priority relation — both pathologies the paper cites
 * for why this organisation is no longer used.
 */

#ifndef PUBS_IQ_CIRCULAR_QUEUE_HH
#define PUBS_IQ_CIRCULAR_QUEUE_HH

#include "iq/issue_queue.hh"

namespace pubs::iq
{

class CircularQueue : public IssueQueue
{
  public:
    explicit CircularQueue(unsigned size);

    bool canDispatch(bool priority) const override;
    void dispatch(uint32_t clientId, SeqNum seq, bool priority) override;
    void remove(uint32_t clientId) override;
    const std::vector<IqSlot> &prioritySlots() const override
        { return slots_; }
    size_t occupancy() const override { return occupancy_; }
    size_t capacity() const override { return capacity_; }
    const char *kindName() const override { return "circular"; }

    /** Slots between head and tail that hold no instruction. */
    size_t holes() const;

  private:
    void advanceHead();

    unsigned capacity_;
    std::vector<IqSlot> slots_;
    size_t head_ = 0; ///< oldest possibly-valid physical slot
    size_t tail_ = 0; ///< next dispatch position
    size_t used_ = 0; ///< slots between head and tail (incl. holes)
    size_t occupancy_ = 0;
};

} // namespace pubs::iq

#endif // PUBS_IQ_CIRCULAR_QUEUE_HH
