/**
 * @file
 * Analytical IQ delay model (Section V-G1). The paper's transistor-level
 * HSPICE study (CAM wakeup, prefix-sum select, 16 nm predictive models,
 * ITRS wire parasitics) found that adding the age matrix lengthens the IQ
 * critical path — and hence the clock cycle — by 13%. We take that
 * result as the model's parameter and expose the cycle-time-adjusted
 * performance computation used in Fig. 15(b).
 */

#ifndef PUBS_IQ_DELAY_MODEL_HH
#define PUBS_IQ_DELAY_MODEL_HH

namespace pubs::iq
{

class DelayModel
{
  public:
    /** The paper's measured age-matrix delay penalty: +13%. */
    static constexpr double paperAgeMatrixFactor = 1.13;

    explicit DelayModel(double ageMatrixFactor = paperAgeMatrixFactor)
        : ageMatrixFactor_(ageMatrixFactor)
    {}

    /** Relative clock cycle time (base = 1.0). */
    double
    cycleTime(bool hasAgeMatrix) const
    {
        return hasAgeMatrix ? ageMatrixFactor_ : 1.0;
    }

    /**
     * Performance in instructions per unit time: IPC divided by cycle
     * time (assuming the IQ delay increase directly lengthens the clock,
     * as Fig. 15(b) does).
     */
    double
    performance(double ipc, bool hasAgeMatrix) const
    {
        return ipc / cycleTime(hasAgeMatrix);
    }

    double ageMatrixFactor() const { return ageMatrixFactor_; }

  private:
    double ageMatrixFactor_;
};

} // namespace pubs::iq

#endif // PUBS_IQ_DELAY_MODEL_HH
