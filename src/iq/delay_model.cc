#include "iq/delay_model.hh"

#include "common/logging.hh"
#include "iq/issue_queue.hh"

namespace pubs::iq
{

const char *
iqKindName(IqKind kind)
{
    switch (kind) {
      case IqKind::Random: return "random";
      case IqKind::Shifting: return "shifting";
      case IqKind::Circular: return "circular";
    }
    panic("unknown IQ kind %d", (int)kind);
}

} // namespace pubs::iq
