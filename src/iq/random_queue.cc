#include "iq/random_queue.hh"

#include "common/logging.hh"

namespace pubs::iq
{

RandomQueue::RandomQueue(unsigned size, unsigned priorityEntries,
                         uint64_t seed)
    : priorityEntries_(priorityEntries),
      rng_(seed),
      slots_(size),
      priorityFree_(0, priorityEntries),
      normalFree_(priorityEntries, size - priorityEntries)
{
    fatal_if(size == 0, "IQ size must be non-zero");
    fatal_if(priorityEntries > size,
             "more priority entries (%u) than IQ entries (%u)",
             priorityEntries, size);
    initReady(size);
}

bool
RandomQueue::canDispatch(bool priority) const
{
    if (priority)
        return !priorityFree_.empty();
    return !normalFree_.empty();
}

void
RandomQueue::place(uint32_t index, uint32_t clientId, SeqNum seq)
{
    IqSlot &slot = slots_[index];
    panic_if(slot.valid, "dispatch into occupied IQ slot %u", index);
    slot = {true, clientId, seq};
    ++occupancy_;
    noteInsert(index, clientId);
}

void
RandomQueue::dispatch(uint32_t clientId, SeqNum seq, bool priority)
{
    panic_if(!canDispatch(priority), "dispatch into full %s partition",
             priority ? "priority" : "normal");
    uint32_t index = priority ? priorityFree_.popRandom(rng_)
                              : normalFree_.popRandom(rng_);
    place(index, clientId, seq);
}

void
RandomQueue::dispatchUniform(uint32_t clientId, SeqNum seq, Rng &rng)
{
    // Section III-B3: choose a free list at random, weighted by the
    // partition entry ratio; fall back to the other list when the chosen
    // one is exhausted so no capacity is wasted in uniform mode.
    bool pickPriority = false;
    if (priorityEntries_ > 0) {
        double ratio = (double)priorityEntries_ / (double)slots_.size();
        pickPriority = rng.chance(ratio);
    }
    if (pickPriority && priorityFree_.empty())
        pickPriority = false;
    else if (!pickPriority && normalFree_.empty())
        pickPriority = true;
    panic_if(pickPriority ? priorityFree_.empty() : normalFree_.empty(),
             "uniform dispatch into a full IQ");
    uint32_t index = pickPriority ? priorityFree_.popRandom(rng_)
                                  : normalFree_.popRandom(rng_);
    place(index, clientId, seq);
}

void
RandomQueue::remove(uint32_t clientId)
{
    uint32_t i = slotOf(clientId);
    panic_if(i == noSlot || !slots_[i].valid ||
                 slots_[i].clientId != clientId,
             "remove of client %u not in IQ", clientId);
    slots_[i].valid = false;
    --occupancy_;
    if (i < priorityEntries_)
        priorityFree_.push(i);
    else
        normalFree_.push(i);
    noteErase(i, clientId);
}

} // namespace pubs::iq
