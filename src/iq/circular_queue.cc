#include "iq/circular_queue.hh"

#include "common/logging.hh"

namespace pubs::iq
{

CircularQueue::CircularQueue(unsigned size)
    : capacity_(size), slots_(size)
{
    fatal_if(size == 0, "IQ size must be non-zero");
    initReady(size);
}

bool
CircularQueue::canDispatch(bool) const
{
    return used_ < capacity_;
}

void
CircularQueue::dispatch(uint32_t clientId, SeqNum seq, bool)
{
    panic_if(used_ >= capacity_, "dispatch into full circular queue");
    slots_[tail_] = {true, clientId, seq};
    noteInsert((uint32_t)tail_, clientId);
    tail_ = (tail_ + 1) % capacity_;
    ++used_;
    ++occupancy_;
}

void
CircularQueue::remove(uint32_t clientId)
{
    uint32_t i = slotOf(clientId);
    panic_if(i == noSlot || !slots_[i].valid ||
                 slots_[i].clientId != clientId,
             "remove of client %u not in circular queue", clientId);
    slots_[i].valid = false;
    --occupancy_;
    noteErase(i, clientId);
    advanceHead();
}

void
CircularQueue::advanceHead()
{
    // Reclaim leading holes only; interior holes stay wasted until the
    // instructions ahead of them issue.
    while (used_ > 0 && !slots_[head_].valid) {
        head_ = (head_ + 1) % capacity_;
        --used_;
    }
}

size_t
CircularQueue::holes() const
{
    return used_ - occupancy_;
}

} // namespace pubs::iq
