/**
 * @file
 * The random queue (the paper's baseline IQ organisation) with optional
 * PUBS partitioning: the first priorityEntries slots are reserved for
 * unconfident-branch-slice instructions and, being closest to the head,
 * are granted first by the positional select logic.
 */

#ifndef PUBS_IQ_RANDOM_QUEUE_HH
#define PUBS_IQ_RANDOM_QUEUE_HH

#include "iq/free_list.hh"
#include "iq/issue_queue.hh"

namespace pubs::iq
{

class RandomQueue : public IssueQueue
{
  public:
    /**
     * @param size total IQ entries.
     * @param priorityEntries reserved head entries (0 = plain random
     *        queue without PUBS).
     */
    RandomQueue(unsigned size, unsigned priorityEntries,
                uint64_t seed = 1);

    bool canDispatch(bool priority) const override;
    void dispatch(uint32_t clientId, SeqNum seq, bool priority) override;
    void dispatchUniform(uint32_t clientId, SeqNum seq, Rng &rng) override;
    void remove(uint32_t clientId) override;
    const std::vector<IqSlot> &prioritySlots() const override
        { return slots_; }
    size_t occupancy() const override { return occupancy_; }
    size_t capacity() const override { return slots_.size(); }
    unsigned priorityEntries() const override { return priorityEntries_; }
    size_t priorityOccupancy() const override
        { return priorityEntries_ - priorityFree_.size(); }
    const char *kindName() const override { return "random"; }

    size_t freePriority() const { return priorityFree_.size(); }
    size_t freeNormal() const { return normalFree_.size(); }

    /** Free-list objects, for the structural auditor (cpu/audit.hh). */
    const FreeList &priorityFreeList() const { return priorityFree_; }
    const FreeList &normalFreeList() const { return normalFree_; }

  private:
    void place(uint32_t index, uint32_t clientId, SeqNum seq);

    unsigned priorityEntries_;
    Rng rng_;
    std::vector<IqSlot> slots_;
    FreeList priorityFree_;
    FreeList normalFree_;
    size_t occupancy_ = 0;
};

} // namespace pubs::iq

#endif // PUBS_IQ_RANDOM_QUEUE_HH
