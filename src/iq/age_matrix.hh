/**
 * @file
 * The age matrix (Section V-G1, after [11]/[7]): a bit matrix where row s
 * records the set of IQ slots holding instructions *older* than slot s.
 * Each cycle it picks the single oldest ready instruction — that slot's
 * row ANDed with the ready (issue-request) vector is empty — which the
 * select logic then grants with the highest priority; all other grants
 * remain positional.
 */

#ifndef PUBS_IQ_AGE_MATRIX_HH
#define PUBS_IQ_AGE_MATRIX_HH

#include <cstdint>
#include <vector>

namespace pubs::iq
{

class AgeMatrix
{
  public:
    explicit AgeMatrix(unsigned size);

    /** Slot @p slot received a newly dispatched (youngest) instruction. */
    void dispatch(unsigned slot);

    /** Slot @p slot was vacated. */
    void remove(unsigned slot);

    /**
     * The oldest slot among those set in @p readyMask (bit i = slot i
     * requests issue). @return -1 if the mask is empty.
     */
    int oldestReady(const std::vector<uint64_t> &readyMask) const;

    /** Is the instruction in slot @p a older than the one in @p b? */
    bool older(unsigned a, unsigned b) const;

    bool valid(unsigned slot) const;
    unsigned size() const { return size_; }

    /** Bits of storage: size x size matrix cells. */
    uint64_t costBits() const { return (uint64_t)size_ * size_; }

  private:
    unsigned size_;
    unsigned words_;
    std::vector<uint64_t> rows_;  ///< rows_[s * words_ + w]
    std::vector<uint64_t> valid_; ///< occupancy bit per slot
};

} // namespace pubs::iq

#endif // PUBS_IQ_AGE_MATRIX_HH
