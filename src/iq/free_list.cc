#include "iq/free_list.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pubs::iq
{

FreeList::FreeList(uint32_t first, uint32_t count)
{
    entries_.reserve(count);
    // Push in reverse so that pop() initially hands out ascending indices.
    for (uint32_t i = 0; i < count; ++i)
        entries_.push_back(first + count - 1 - i);
    initialSize_ = count;
}

uint32_t
FreeList::pop()
{
    panic_if(entries_.empty(), "pop from empty free list");
    uint32_t index = entries_.back();
    entries_.pop_back();
    return index;
}

uint32_t
FreeList::popRandom(Rng &rng)
{
    panic_if(entries_.empty(), "pop from empty free list");
    size_t pick = (size_t)rng.below(entries_.size());
    std::swap(entries_[pick], entries_.back());
    uint32_t index = entries_.back();
    entries_.pop_back();
    return index;
}

void
FreeList::push(uint32_t index)
{
    entries_.push_back(index);
}

} // namespace pubs::iq
