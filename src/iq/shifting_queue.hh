/**
 * @file
 * The shifting (compacting, age-ordered) queue of the DEC Alpha 21264.
 * Instructions stay physically ordered by age; issued instructions'
 * holes are compacted away, so positional priority equals age priority.
 * Not used in modern processors (the compaction circuit sits on the IQ
 * critical path) — modelled here for the Section III-B1 taxonomy ablation.
 */

#ifndef PUBS_IQ_SHIFTING_QUEUE_HH
#define PUBS_IQ_SHIFTING_QUEUE_HH

#include "iq/issue_queue.hh"

namespace pubs::iq
{

class ShiftingQueue : public IssueQueue
{
  public:
    explicit ShiftingQueue(unsigned size);

    bool canDispatch(bool priority) const override;
    void dispatch(uint32_t clientId, SeqNum seq, bool priority) override;
    void remove(uint32_t clientId) override;
    const std::vector<IqSlot> &prioritySlots() const override
        { return slots_; }
    size_t occupancy() const override { return occupancy_; }
    size_t capacity() const override { return capacity_; }
    const char *kindName() const override { return "shifting"; }

  private:
    unsigned capacity_;
    /** Compacted: the first occupancy_ slots are valid, oldest first. */
    std::vector<IqSlot> slots_;
    size_t occupancy_ = 0;
};

} // namespace pubs::iq

#endif // PUBS_IQ_SHIFTING_QUEUE_HH
