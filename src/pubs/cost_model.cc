#include "pubs/cost_model.hh"

#include <sstream>

#include "pubs/brslice_tab.hh"
#include "pubs/conf_tab.hh"
#include "pubs/def_tab.hh"

namespace pubs::pubs
{

CostBreakdown
computeCost(const PubsParams &params)
{
    BrsliceTab brslice(params);
    ConfTab conf(params);
    DefTab def(brslice.scheme());

    CostBreakdown cost;
    cost.defTabBits = def.costBits();
    cost.brsliceTabBits = brslice.costBits();
    cost.confTabBits = conf.costBits();
    return cost;
}

std::string
formatCostTable(const PubsParams &params)
{
    CostBreakdown cost = computeCost(params);
    char line[128];
    std::ostringstream out;
    out << "TABLE III: PUBS hardware cost\n";
    out << "  table         entries  cost (KB)\n";
    std::snprintf(line, sizeof(line), "  def_tab       %7d  %9.3f\n",
                  numLogicalRegs, cost.defTabKB());
    out << line;
    std::snprintf(line, sizeof(line), "  brslice_tab   %7u  %9.3f\n",
                  params.brsliceSets *
                      (params.tagless ? 1 : params.brsliceWays),
                  cost.brsliceTabKB());
    out << line;
    std::snprintf(line, sizeof(line), "  conf_tab      %7u  %9.3f\n",
                  params.confSets * (params.tagless ? 1 : params.confWays),
                  cost.confTabKB());
    out << line;
    std::snprintf(line, sizeof(line), "  total                  %9.3f\n",
                  cost.totalKB());
    out << line;
    return out.str();
}

} // namespace pubs::pubs
