/**
 * @file
 * The confidence estimation table (conf_tab): set-associative, hashed-tag
 * table keyed by branch PC, holding one JRS saturating resetting counter
 * per entry (Section III-A1).
 */

#ifndef PUBS_PUBS_CONF_TAB_HH
#define PUBS_PUBS_CONF_TAB_HH

#include "common/stats.hh"
#include "pubs/params.hh"
#include "pubs/table.hh"

namespace pubs::pubs
{

class ConfTab
{
  public:
    explicit ConfTab(const PubsParams &params);

    TableKey keyOf(Pc branchPc) const { return table_.scheme().keyOf(branchPc); }

    /**
     * Train the counter of the branch identified by @p key with the
     * prediction outcome. Allocates on first sight: the counter is
     * initialised to the maximum on a correct prediction, to 0 otherwise
     * (Section III-A1); afterwards correct increments (saturating) and
     * incorrect resets to 0.
     */
    void update(const TableKey &key, bool correctPrediction);

    /**
     * Confidence of the branch (or slice pointer) @p key.
     * @return true if an entry exists and its counter is NOT saturated —
     *         i.e. the branch is *unconfident*. Missing entries count as
     *         confident (per Section III-A3).
     */
    bool unconfident(const TableKey &key);

    /** Raw counter value, if present (tests / stats). */
    bool counterValue(const TableKey &key, uint32_t &out);

    void clear() { table_.clear(); }

    size_t validEntries() const { return table_.validEntries(); }

    unsigned counterBits() const { return counterBits_; }
    uint32_t counterMax() const { return counterMax_; }
    CounterShape shape() const { return shape_; }

    /** Per Fig. 6: each entry stores (tag t_c, counter) + valid. */
    uint64_t costBits() const;

    /**
     * Confidence-counter dynamics, accumulated on every update():
     * how often counters are (re)allocated, pushed towards saturation,
     * reset by mispredictions, and how often they *reach* saturation —
     * the transition that flips a branch from unconfident to confident.
     */
    struct Dynamics
    {
        uint64_t updates = 0;     ///< total training events
        uint64_t allocations = 0; ///< first-sight (or re-alloc) entries
        uint64_t increments = 0;  ///< correct outcomes below saturation
        uint64_t resets = 0;      ///< mispredictions (resetting shape)
        uint64_t decrements = 0;  ///< mispredictions (up-down shape)
        uint64_t saturations = 0; ///< transitions into the saturated state
    };

    const Dynamics &dynamics() const { return dynamics_; }

    /** Snapshot histogram of counter values across valid entries. */
    Histogram valueHistogram() const;

    /** Publish dynamics + occupancy + value distribution into @p group. */
    void fillStats(StatGroup &group) const;

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    struct ConfEntry
    {
        uint32_t counter = 0;
    };

    unsigned counterBits_;
    uint32_t counterMax_;
    CounterShape shape_;
    Dynamics dynamics_;
    HashedTagTable<ConfEntry> table_;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_CONF_TAB_HH
