/**
 * @file
 * The confidence estimation table (conf_tab): set-associative, hashed-tag
 * table keyed by branch PC, holding one JRS saturating resetting counter
 * per entry (Section III-A1).
 */

#ifndef PUBS_PUBS_CONF_TAB_HH
#define PUBS_PUBS_CONF_TAB_HH

#include "pubs/params.hh"
#include "pubs/table.hh"

namespace pubs::pubs
{

class ConfTab
{
  public:
    explicit ConfTab(const PubsParams &params);

    TableKey keyOf(Pc branchPc) const { return table_.scheme().keyOf(branchPc); }

    /**
     * Train the counter of the branch identified by @p key with the
     * prediction outcome. Allocates on first sight: the counter is
     * initialised to the maximum on a correct prediction, to 0 otherwise
     * (Section III-A1); afterwards correct increments (saturating) and
     * incorrect resets to 0.
     */
    void update(const TableKey &key, bool correctPrediction);

    /**
     * Confidence of the branch (or slice pointer) @p key.
     * @return true if an entry exists and its counter is NOT saturated —
     *         i.e. the branch is *unconfident*. Missing entries count as
     *         confident (per Section III-A3).
     */
    bool unconfident(const TableKey &key);

    /** Raw counter value, if present (tests / stats). */
    bool counterValue(const TableKey &key, uint32_t &out);

    void clear() { table_.clear(); }

    size_t validEntries() const { return table_.validEntries(); }

    unsigned counterBits() const { return counterBits_; }
    uint32_t counterMax() const { return counterMax_; }
    CounterShape shape() const { return shape_; }

    /** Per Fig. 6: each entry stores (tag t_c, counter) + valid. */
    uint64_t costBits() const;

  private:
    struct ConfEntry
    {
        uint32_t counter = 0;
    };

    unsigned counterBits_;
    uint32_t counterMax_;
    CounterShape shape_;
    HashedTagTable<ConfEntry> table_;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_CONF_TAB_HH
