/**
 * @file
 * The decode-stage orchestrator of the PUBS prediction scheme
 * (Section III-A): walks dataflow backwards through the def_tab, links
 * slice instructions to confidence counters via the brslice_tab, and
 * classifies every decoding instruction as inside / outside an
 * unconfident branch slice.
 */

#ifndef PUBS_PUBS_SLICE_UNIT_HH
#define PUBS_PUBS_SLICE_UNIT_HH

#include "pubs/brslice_tab.hh"
#include "pubs/conf_tab.hh"
#include "pubs/def_tab.hh"
#include "pubs/params.hh"
#include "trace/dyninst.hh"

namespace pubs::pubs
{

/** Decode-time classification of one instruction. */
struct SliceDecision
{
    /** Predicted member of some branch slice (including the branch). */
    bool inBranchSlice = false;
    /** Member of an *unconfident* branch slice — the PUBS trigger. */
    bool unconfident = false;
};

class SliceUnit
{
  public:
    explicit SliceUnit(const PubsParams &params);

    /**
     * Process one decoding instruction: performs the def_tab /
     * brslice_tab bookkeeping and returns the classification.
     */
    SliceDecision decode(const trace::DynInst &inst);

    /**
     * Train the confidence counter of the conditional branch at @p pc
     * with its prediction outcome (called at branch resolution).
     */
    void branchResolved(Pc pc, bool correctPrediction);

    // --- statistics (Fig. 11's unconfident-branch-rate line) ---
    uint64_t dynamicBranches() const { return dynamicBranches_; }
    uint64_t unconfidentBranches() const { return unconfidentBranches_; }
    uint64_t sliceInsts() const { return sliceInsts_; }
    uint64_t unconfidentSliceInsts() const { return unconfidentSliceInsts_; }

    double
    unconfidentBranchRate() const
    {
        return dynamicBranches_ == 0
                   ? 0.0
                   : (double)unconfidentBranches_ / (double)dynamicBranches_;
    }

    DefTab &defTab() { return defTab_; }
    BrsliceTab &brsliceTab() { return brsliceTab_; }
    ConfTab &confTab() { return confTab_; }
    const ConfTab &confTab() const { return confTab_; }

    /** Checkpoint all three tables plus the slice statistics. */
    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    /** Propagate the conf pointer to the producers of @p inst's sources. */
    void linkProducers(const trace::DynInst &inst, const TableKey &confPtr);

    PubsParams params_;
    BrsliceTab brsliceTab_;
    ConfTab confTab_;
    DefTab defTab_;

    uint64_t dynamicBranches_ = 0;
    uint64_t unconfidentBranches_ = 0;
    uint64_t sliceInsts_ = 0;
    uint64_t unconfidentSliceInsts_ = 0;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_SLICE_UNIT_HH
