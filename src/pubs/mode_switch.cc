#include "pubs/mode_switch.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

ModeSwitch::ModeSwitch(const PubsParams &params)
    : useSwitch_(params.modeSwitch),
      intervalLength_(params.modeInterval),
      threshold_(params.modeMpkiThreshold)
{
    fatal_if(intervalLength_ == 0, "mode-switch interval must be non-zero");
}

void
ModeSwitch::noteCommit()
{
    if (!useSwitch_)
        return;
    if (++commits_ >= intervalLength_)
        rollInterval();
}

void
ModeSwitch::noteLlcMiss()
{
    if (useSwitch_)
        ++misses_;
}

void
ModeSwitch::rollInterval()
{
    double mpki = (double)misses_ * 1000.0 / (double)commits_;
    enabled_ = mpki < threshold_;
    ++intervals_;
    if (enabled_)
        ++enabledIntervals_;
    commits_ = 0;
    misses_ = 0;
}

double
ModeSwitch::enabledFraction()  const
{
    if (intervals_ == 0)
        return 1.0;
    return (double)enabledIntervals_ / (double)intervals_;
}

void
ModeSwitch::serialize(Serializer &s) const
{
    s.beginObject("mode_switch");
    s.boolean(enabled_);
    s.u64(commits_);
    s.u64(misses_);
    s.u64(intervals_);
    s.u64(enabledIntervals_);
    s.endObject("mode_switch");
}

void
ModeSwitch::unserialize(Deserializer &d)
{
    d.beginObject("mode_switch");
    enabled_ = d.boolean();
    commits_ = d.u64();
    misses_ = d.u64();
    intervals_ = d.u64();
    enabledIntervals_ = d.u64();
    d.endObject("mode_switch");
}

} // namespace pubs::pubs
