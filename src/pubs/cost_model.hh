/**
 * @file
 * Hardware cost accounting for the PUBS tables (Table III). The paper
 * reports 4.0 KB total for the default configuration; this model derives
 * the per-table bit counts from the configured geometry so sensitivity
 * studies can report their real costs.
 */

#ifndef PUBS_PUBS_COST_MODEL_HH
#define PUBS_PUBS_COST_MODEL_HH

#include <string>

#include "pubs/params.hh"

namespace pubs::pubs
{

struct CostBreakdown
{
    uint64_t defTabBits = 0;
    uint64_t brsliceTabBits = 0;
    uint64_t confTabBits = 0;

    uint64_t totalBits() const
    {
        return defTabBits + brsliceTabBits + confTabBits;
    }

    double defTabKB() const { return (double)defTabBits / 8192.0; }
    double brsliceTabKB() const { return (double)brsliceTabBits / 8192.0; }
    double confTabKB() const { return (double)confTabBits / 8192.0; }
    double totalKB() const { return (double)totalBits() / 8192.0; }
};

/** Compute the Table III breakdown for @p params. */
CostBreakdown computeCost(const PubsParams &params);

/** Render the breakdown as the paper's Table III. */
std::string formatCostTable(const PubsParams &params);

} // namespace pubs::pubs

#endif // PUBS_PUBS_COST_MODEL_HH
