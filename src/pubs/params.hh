/**
 * @file
 * PUBS configuration (the paper's Table II). Defaults reflect the paper's
 * chosen operating point: 6 priority entries with the stall dispatch
 * policy, 6-bit resetting confidence counters, 4-way set-associative
 * brslice_tab / conf_tab with XOR-folded tags of q = 8 / 4 bits, and
 * LLC-MPKI-driven mode switching.
 */

#ifndef PUBS_PUBS_PARAMS_HH
#define PUBS_PUBS_PARAMS_HH

#include <cstdint>

namespace pubs::pubs
{

/** Shape of the confidence counters in the conf_tab. */
enum class CounterShape
{
    Resetting, ///< JRS resetting counter (the paper's choice)
    UpDown,    ///< saturating up/down counter (ablation)
};

struct PubsParams
{
    /** Number of reserved entries at the head of the IQ (Fig. 10: 6). */
    unsigned priorityEntries = 6;

    /**
     * Stall dispatch when an unconfident-slice instruction finds no free
     * priority entry (true, the paper's default) vs. fall back to a
     * normal entry (false).
     */
    bool stallPolicy = true;

    /** Confidence counter width in bits (Fig. 11: 6). */
    unsigned confCounterBits = 6;

    /** Counter behaviour on a misprediction: reset (paper) or decrement
     *  (ablation). */
    CounterShape counterShape = CounterShape::Resetting;

    /** conf_tab geometry. */
    unsigned confSets = 256;
    unsigned confWays = 4;

    /** brslice_tab geometry. */
    unsigned brsliceSets = 256;
    unsigned brsliceWays = 4;

    /** Hashed-tag widths q (Section IV: 8 for brslice_tab, 4 for
     *  conf_tab). */
    unsigned brsliceHashBits = 8;
    unsigned confHashBits = 4;

    /**
     * False = the "blind" model of Fig. 11: every branch is estimated
     * unconfident and the conf_tab is omitted.
     */
    bool useConfTab = true;

    /** Enable the LLC-MPKI mode switch (Section III-B3). */
    bool modeSwitch = true;

    /** Committed instructions per mode-switch observation interval. */
    uint64_t modeInterval = 100000;

    /** PUBS enabled iff interval LLC MPKI < this threshold. */
    double modeMpkiThreshold = 1.0;

    /** Ablation: untagged direct-mapped tables (hash bits ignored). */
    bool tagless = false;

    /** Ablation: full (un-hashed) tags instead of XOR-folded ones. */
    bool fullTags = false;

    /** PC bits available for tagging (the paper's example uses 62). */
    static constexpr unsigned pcBits = 62;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_PARAMS_HH
