/**
 * @file
 * Mode switching (Section III-B3): observe LLC misses per kilo committed
 * instructions over fixed intervals; PUBS is enabled for the next interval
 * iff the observed MPKI is below a threshold. In disabled periods the IQ
 * is used uniformly (the pipeline then picks a free list at random,
 * weighted by partition size).
 */

#ifndef PUBS_PUBS_MODE_SWITCH_HH
#define PUBS_PUBS_MODE_SWITCH_HH

#include <cstdint>

#include "common/serialize.hh"
#include "pubs/params.hh"

namespace pubs::pubs
{

class ModeSwitch
{
  public:
    explicit ModeSwitch(const PubsParams &params);

    /** Call once per committed instruction. */
    void noteCommit();

    /** Call once per LLC miss. */
    void noteLlcMiss();

    /** Is PUBS currently enabled? Always true when mode switching is
     *  configured off. */
    bool pubsEnabled() const { return enabled_; }

    uint64_t intervals() const { return intervals_; }
    uint64_t enabledIntervals() const { return enabledIntervals_; }

    /** Fraction of completed intervals with PUBS enabled (1.0 before the
     *  first interval completes). */
    double enabledFraction() const;

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    void rollInterval();

    bool useSwitch_;
    uint64_t intervalLength_;
    double threshold_;
    bool enabled_ = true;
    uint64_t commits_ = 0;
    uint64_t misses_ = 0;
    uint64_t intervals_ = 0;
    uint64_t enabledIntervals_ = 0;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_MODE_SWITCH_HH
