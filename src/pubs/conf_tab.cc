#include "pubs/conf_tab.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

namespace
{

KeyScheme
confScheme(const PubsParams &p)
{
    return {p.confSets, p.tagless ? 0u : p.confHashBits, p.fullTags,
            PubsParams::pcBits};
}

} // namespace

ConfTab::ConfTab(const PubsParams &params)
    : counterBits_(params.confCounterBits),
      counterMax_((1u << params.confCounterBits) - 1),
      shape_(params.counterShape),
      table_(params.confSets, params.tagless ? 1 : params.confWays,
             confScheme(params))
{
    fatal_if(counterBits_ == 0 || counterBits_ > 16,
             "confidence counter width %u out of range", counterBits_);
}

void
ConfTab::update(const TableKey &key, bool correctPrediction)
{
    ++dynamics_.updates;
    bool allocated = false;
    ConfEntry &entry = table_.lookupOrAllocate(key, allocated);
    if (allocated) {
        ++dynamics_.allocations;
        entry.counter = correctPrediction ? counterMax_ : 0;
        if (entry.counter == counterMax_)
            ++dynamics_.saturations;
        return;
    }
    if (correctPrediction) {
        if (entry.counter < counterMax_) {
            ++dynamics_.increments;
            if (++entry.counter == counterMax_)
                ++dynamics_.saturations;
        }
    } else if (shape_ == CounterShape::Resetting) {
        ++dynamics_.resets;
        entry.counter = 0;
    } else if (entry.counter > 0) {
        ++dynamics_.decrements;
        --entry.counter;
    }
}

bool
ConfTab::unconfident(const TableKey &key)
{
    ConfEntry *entry = table_.lookup(key);
    if (!entry)
        return false; // no information: treated as confident
    return entry->counter != counterMax_;
}

bool
ConfTab::counterValue(const TableKey &key, uint32_t &out)
{
    if (ConfEntry *entry = table_.lookup(key)) {
        out = entry->counter;
        return true;
    }
    return false;
}

Histogram
ConfTab::valueHistogram() const
{
    // Narrow counters get one bucket per value; wide ones fall back to
    // log2 buckets so the snapshot stays compact.
    Histogram h = counterMax_ < 64
                      ? Histogram(counterMax_ + 1)
                      : Histogram(17, 1, BucketScale::Log2);
    table_.forEachValid(
        [&h](const ConfEntry &entry) { h.sample(entry.counter); });
    return h;
}

void
ConfTab::fillStats(StatGroup &group) const
{
    group.add("counter_bits", (double)counterBits_);
    group.add("valid_entries", (double)validEntries());
    group.add("capacity", (double)table_.capacity());
    group.add("updates", (double)dynamics_.updates,
              "confidence training events");
    group.add("allocations", (double)dynamics_.allocations,
              "entries (re)allocated on first sight");
    group.add("increments", (double)dynamics_.increments);
    group.add("resets", (double)dynamics_.resets,
              "counters reset to 0 by a misprediction");
    group.add("decrements", (double)dynamics_.decrements);
    group.add("saturations", (double)dynamics_.saturations,
              "transitions into the confident (saturated) state");
    group.addHistogram("counter_value", valueHistogram(),
                       "snapshot of counter values across valid entries");
}

uint64_t
ConfTab::costBits() const
{
    unsigned perEntry = 1 + table_.scheme().tagBits() + counterBits_;
    return (uint64_t)table_.capacity() * perEntry;
}

void
ConfTab::serialize(Serializer &s) const
{
    s.beginObject("conf_tab");
    s.u32(counterBits_);
    s.u8((uint8_t)shape_);
    s.u64(dynamics_.updates);
    s.u64(dynamics_.allocations);
    s.u64(dynamics_.increments);
    s.u64(dynamics_.resets);
    s.u64(dynamics_.decrements);
    s.u64(dynamics_.saturations);
    table_.serialize(s, [](Serializer &out, const ConfEntry &e) {
        out.u32(e.counter);
    });
    s.endObject("conf_tab");
}

void
ConfTab::unserialize(Deserializer &d)
{
    d.beginObject("conf_tab");
    uint32_t counterBits = d.u32();
    uint8_t shape = d.u8();
    if (counterBits != counterBits_ || shape != (uint8_t)shape_) {
        throw CheckpointError(
            "checkpoint conf_tab counter geometry does not match");
    }
    dynamics_.updates = d.u64();
    dynamics_.allocations = d.u64();
    dynamics_.increments = d.u64();
    dynamics_.resets = d.u64();
    dynamics_.decrements = d.u64();
    dynamics_.saturations = d.u64();
    uint32_t counterMax = counterMax_;
    table_.unserialize(d, [counterMax](Deserializer &in, ConfEntry &e) {
        e.counter = in.u32();
        if (e.counter > counterMax)
            throw CheckpointError("checkpoint conf_tab counter overflows");
    });
    d.endObject("conf_tab");
}

} // namespace pubs::pubs
