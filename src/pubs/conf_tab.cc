#include "pubs/conf_tab.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

namespace
{

KeyScheme
confScheme(const PubsParams &p)
{
    return {p.confSets, p.tagless ? 0u : p.confHashBits, p.fullTags,
            PubsParams::pcBits};
}

} // namespace

ConfTab::ConfTab(const PubsParams &params)
    : counterBits_(params.confCounterBits),
      counterMax_((1u << params.confCounterBits) - 1),
      shape_(params.counterShape),
      table_(params.confSets, params.tagless ? 1 : params.confWays,
             confScheme(params))
{
    fatal_if(counterBits_ == 0 || counterBits_ > 16,
             "confidence counter width %u out of range", counterBits_);
}

void
ConfTab::update(const TableKey &key, bool correctPrediction)
{
    bool allocated = false;
    ConfEntry &entry = table_.lookupOrAllocate(key, allocated);
    if (allocated) {
        entry.counter = correctPrediction ? counterMax_ : 0;
        return;
    }
    if (correctPrediction) {
        if (entry.counter < counterMax_)
            ++entry.counter;
    } else if (shape_ == CounterShape::Resetting) {
        entry.counter = 0;
    } else if (entry.counter > 0) {
        --entry.counter;
    }
}

bool
ConfTab::unconfident(const TableKey &key)
{
    ConfEntry *entry = table_.lookup(key);
    if (!entry)
        return false; // no information: treated as confident
    return entry->counter != counterMax_;
}

bool
ConfTab::counterValue(const TableKey &key, uint32_t &out)
{
    if (ConfEntry *entry = table_.lookup(key)) {
        out = entry->counter;
        return true;
    }
    return false;
}

uint64_t
ConfTab::costBits() const
{
    unsigned perEntry = 1 + table_.scheme().tagBits() + counterBits_;
    return (uint64_t)table_.capacity() * perEntry;
}

} // namespace pubs::pubs
