/**
 * @file
 * The define table (def_tab): one row per logical register (64 rows),
 * holding the compressed identity (d_b — the brslice_tab key) of the most
 * recent instruction that writes the register. Used at decode to walk the
 * dataflow backwards when constructing branch slices.
 */

#ifndef PUBS_PUBS_DEF_TAB_HH
#define PUBS_PUBS_DEF_TAB_HH

#include <array>

#include "common/types.hh"
#include "pubs/table.hh"

namespace pubs::pubs
{

class DefTab
{
  public:
    /** @param brsliceScheme key scheme of the brslice_tab d_b refers to. */
    explicit DefTab(KeyScheme brsliceScheme);

    /** Record that the instruction with key @p producer defines @p reg. */
    void define(int unifiedReg, const TableKey &producer);

    /**
     * The key of the most recent producer of @p reg.
     * @return false if the register has no recorded producer.
     */
    bool producerOf(int unifiedReg, TableKey &out) const;

    void clear();

    /** Storage cost in bits: 64 x (valid + index + tag). */
    uint64_t costBits() const;

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    struct Row
    {
        bool valid = false;
        TableKey key{};
    };

    KeyScheme brsliceScheme_;
    std::array<Row, numLogicalRegs> rows_{};
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_DEF_TAB_HH
