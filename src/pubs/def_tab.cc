#include "pubs/def_tab.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

DefTab::DefTab(KeyScheme brsliceScheme) : brsliceScheme_(brsliceScheme) {}

void
DefTab::define(int unifiedReg, const TableKey &producer)
{
    panic_if(unifiedReg < 0 || unifiedReg >= numLogicalRegs,
             "def_tab register %d out of range", unifiedReg);
    rows_[unifiedReg] = {true, producer};
}

bool
DefTab::producerOf(int unifiedReg, TableKey &out) const
{
    panic_if(unifiedReg < 0 || unifiedReg >= numLogicalRegs,
             "def_tab register %d out of range", unifiedReg);
    const Row &row = rows_[unifiedReg];
    if (!row.valid)
        return false;
    out = row.key;
    return true;
}

void
DefTab::clear()
{
    rows_.fill(Row{});
}

uint64_t
DefTab::costBits() const
{
    unsigned perRow =
        1 + brsliceScheme_.indexBits() + brsliceScheme_.tagBits();
    return (uint64_t)numLogicalRegs * perRow;
}

void
DefTab::serialize(Serializer &s) const
{
    s.beginObject("def_tab");
    for (const Row &row : rows_) {
        s.boolean(row.valid);
        s.u32(row.key.index);
        s.u32(row.key.tag);
    }
    s.endObject("def_tab");
}

void
DefTab::unserialize(Deserializer &d)
{
    d.beginObject("def_tab");
    for (Row &row : rows_) {
        row.valid = d.boolean();
        row.key.index = d.u32();
        row.key.tag = d.u32();
    }
    d.endObject("def_tab");
}

} // namespace pubs::pubs
