#include "pubs/def_tab.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

DefTab::DefTab(KeyScheme brsliceScheme) : brsliceScheme_(brsliceScheme) {}

void
DefTab::define(int unifiedReg, const TableKey &producer)
{
    panic_if(unifiedReg < 0 || unifiedReg >= numLogicalRegs,
             "def_tab register %d out of range", unifiedReg);
    rows_[unifiedReg] = {true, producer};
}

bool
DefTab::producerOf(int unifiedReg, TableKey &out) const
{
    panic_if(unifiedReg < 0 || unifiedReg >= numLogicalRegs,
             "def_tab register %d out of range", unifiedReg);
    const Row &row = rows_[unifiedReg];
    if (!row.valid)
        return false;
    out = row.key;
    return true;
}

void
DefTab::clear()
{
    rows_.fill(Row{});
}

uint64_t
DefTab::costBits() const
{
    unsigned perRow =
        1 + brsliceScheme_.indexBits() + brsliceScheme_.tagBits();
    return (uint64_t)numLogicalRegs * perRow;
}

} // namespace pubs::pubs
