/**
 * @file
 * The generic set-associative, LRU, hashed-tag table underlying the
 * brslice_tab and conf_tab (Section IV / Fig. 6).
 *
 * A PC is decomposed as d = i || t: i indexes the set (log2(sets) bits)
 * and t is the tag, either the full remaining PC bits or an XOR-fold of
 * them down to q bits (Fig. 7). Folded tags can alias; that is the
 * intentional accuracy/cost trade the paper evaluates.
 */

#ifndef PUBS_PUBS_TABLE_HH
#define PUBS_PUBS_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::pubs
{

/** The compressed identity of a PC relative to one table's geometry. */
struct TableKey
{
    uint32_t index = 0; ///< set index i
    uint32_t tag = 0;   ///< (possibly hashed) tag t

    bool operator==(const TableKey &) const = default;
};

/** How a table derives keys from PCs. */
struct KeyScheme
{
    unsigned sets;
    unsigned hashBits;   ///< q; 0 means untagged (tagless ablation)
    bool fullTags;       ///< keep the whole tag instead of folding
    unsigned pcBits;     ///< significant PC bits

    /** Bits the index consumes. */
    unsigned indexBits() const { return floorLog2(sets); }

    /** Bits one stored tag occupies (for cost accounting). */
    unsigned
    tagBits() const
    {
        if (hashBits == 0)
            return 0;
        if (fullTags)
            return pcBits - indexBits();
        return hashBits;
    }

    TableKey
    keyOf(Pc pc) const
    {
        uint64_t word = pc / instBytes;
        TableKey key;
        key.index = (uint32_t)(word & (sets - 1));
        uint64_t tagPart = (word >> indexBits()) & mask(pcBits - indexBits());
        if (hashBits == 0)
            key.tag = 0;
        else if (fullTags)
            key.tag = (uint32_t)tagPart;
        else
            key.tag = (uint32_t)xorFold(tagPart, hashBits);
        return key;
    }
};

/**
 * Set-associative LRU table storing one Payload per entry.
 */
template <typename Payload>
class HashedTagTable
{
  public:
    HashedTagTable(unsigned sets, unsigned ways, KeyScheme scheme)
        : sets_(sets),
          ways_(ways),
          scheme_(scheme),
          entries_((size_t)sets * ways)
    {
        fatal_if(!isPowerOf2(sets), "table sets must be a power of two");
        fatal_if(ways == 0, "table needs at least one way");
        fatal_if(scheme.sets != sets, "key scheme / table mismatch");
    }

    const KeyScheme &scheme() const { return scheme_; }

    /** Find the payload for @p key, or nullptr. */
    Payload *
    lookup(const TableKey &key)
    {
        size_t base = (size_t)key.index * ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (e.valid && e.tag == key.tag) {
                e.lastUse = ++useClock_;
                return &e.payload;
            }
        }
        return nullptr;
    }

    /**
     * Find or allocate (LRU victim) the entry for @p key.
     * @param allocated set true if a new entry was allocated.
     */
    Payload &
    lookupOrAllocate(const TableKey &key, bool &allocated)
    {
        if (Payload *hit = lookup(key)) {
            allocated = false;
            return *hit;
        }
        allocated = true;
        size_t base = (size_t)key.index * ways_;
        Entry *victim = &entries_[base];
        for (unsigned w = 0; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lastUse < victim->lastUse)
                victim = &e;
        }
        victim->valid = true;
        victim->tag = key.tag;
        victim->lastUse = ++useClock_;
        victim->payload = Payload();
        return victim->payload;
    }

    /** Invalidate everything. */
    void
    clear()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    size_t capacity() const { return entries_.size(); }

    size_t
    validEntries() const
    {
        size_t n = 0;
        for (const auto &e : entries_)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** Visit every valid payload (telemetry snapshots). */
    template <typename F>
    void
    forEachValid(F &&visit) const
    {
        for (const auto &e : entries_) {
            if (e.valid)
                visit(e.payload);
        }
    }

    /**
     * Checkpoint the table; @p writePayload emits one payload as
     * `(Serializer &, const Payload &)`.
     */
    template <typename WriteP>
    void
    serialize(Serializer &s, WriteP &&writePayload) const
    {
        s.beginObject("hashed_tag_table");
        s.u32(sets_);
        s.u32(ways_);
        s.u64(useClock_);
        for (const Entry &e : entries_) {
            s.boolean(e.valid);
            s.u32(e.tag);
            s.u64(e.lastUse);
            writePayload(s, e.payload);
        }
        s.endObject("hashed_tag_table");
    }

    /** Restore; @p readPayload is `(Deserializer &, Payload &)`. */
    template <typename ReadP>
    void
    unserialize(Deserializer &d, ReadP &&readPayload)
    {
        d.beginObject("hashed_tag_table");
        uint32_t sets = d.u32(), ways = d.u32();
        if (sets != sets_ || ways != ways_) {
            throw CheckpointError(
                "checkpoint table is " + std::to_string(sets) + "x" +
                std::to_string(ways) + ", expected " +
                std::to_string(sets_) + "x" + std::to_string(ways_));
        }
        useClock_ = d.u64();
        for (Entry &e : entries_) {
            e.valid = d.boolean();
            e.tag = d.u32();
            e.lastUse = d.u64();
            readPayload(d, e.payload);
        }
        d.endObject("hashed_tag_table");
    }

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
        Payload payload{};
    };

    unsigned sets_;
    unsigned ways_;
    KeyScheme scheme_;
    uint64_t useClock_ = 0;
    std::vector<Entry> entries_;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_TABLE_HH
