#include "pubs/slice_unit.hh"

#include "common/logging.hh"

namespace pubs::pubs
{

SliceUnit::SliceUnit(const PubsParams &params)
    : params_(params),
      brsliceTab_(params),
      confTab_(params),
      defTab_(brsliceTab_.scheme())
{
}

void
SliceUnit::linkProducers(const trace::DynInst &inst, const TableKey &confPtr)
{
    isa::Inst staticInst{inst.op, inst.dst, inst.src1, inst.src2, 0};
    const RegId srcs[2] = {inst.src1, inst.src2};
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == invalidReg)
            continue;
        isa::RegClass cls = isa::srcRegClass(staticInst, i);
        if (cls == isa::RegClass::None)
            continue;
        int unified = isa::unifiedReg(cls, srcs[i]);
        TableKey producer;
        if (defTab_.producerOf(unified, producer))
            brsliceTab_.link(producer, confPtr);
    }
}

SliceDecision
SliceUnit::decode(const trace::DynInst &inst)
{
    SliceDecision decision;

    if (inst.isCondBranch()) {
        ++dynamicBranches_;
        TableKey confKey = confTab_.keyOf(inst.pc);
        decision.inBranchSlice = true;
        decision.unconfident =
            params_.useConfTab ? confTab_.unconfident(confKey) : true;
        if (decision.unconfident)
            ++unconfidentBranches_;

        // Step 1 of Section III-A2: point the branch's direct producers
        // at this branch's confidence counter.
        linkProducers(inst, confKey);

        ++sliceInsts_;
        if (decision.unconfident)
            ++unconfidentSliceInsts_;
        return decision;
    }

    // Non-branch (or unconditional control transfer): consult the
    // brslice_tab; if this instruction previously fed a branch slice,
    // inherit that branch's pointer and keep walking backwards.
    TableKey myKey = brsliceTab_.keyOf(inst.pc);
    TableKey confPtr;
    if (brsliceTab_.lookup(myKey, confPtr)) {
        decision.inBranchSlice = true;
        decision.unconfident =
            params_.useConfTab ? confTab_.unconfident(confPtr) : true;
        // Steps 2/3 of Section III-A2: propagate to this instruction's
        // own producers.
        linkProducers(inst, confPtr);

        ++sliceInsts_;
        if (decision.unconfident)
            ++unconfidentSliceInsts_;
    }

    // Record this instruction as the most recent producer of its
    // destination register.
    if (inst.dst != invalidReg) {
        isa::Inst staticInst{inst.op, inst.dst, inst.src1, inst.src2, 0};
        isa::RegClass cls = isa::dstRegClass(staticInst);
        if (cls != isa::RegClass::None)
            defTab_.define(isa::unifiedReg(cls, inst.dst), myKey);
    }

    return decision;
}

void
SliceUnit::branchResolved(Pc pc, bool correctPrediction)
{
    if (!params_.useConfTab)
        return;
    confTab_.update(confTab_.keyOf(pc), correctPrediction);
}

void
SliceUnit::serialize(Serializer &s) const
{
    s.beginObject("slice_unit");
    brsliceTab_.serialize(s);
    confTab_.serialize(s);
    defTab_.serialize(s);
    s.u64(dynamicBranches_);
    s.u64(unconfidentBranches_);
    s.u64(sliceInsts_);
    s.u64(unconfidentSliceInsts_);
    s.endObject("slice_unit");
}

void
SliceUnit::unserialize(Deserializer &d)
{
    d.beginObject("slice_unit");
    brsliceTab_.unserialize(d);
    confTab_.unserialize(d);
    defTab_.unserialize(d);
    dynamicBranches_ = d.u64();
    unconfidentBranches_ = d.u64();
    sliceInsts_ = d.u64();
    unconfidentSliceInsts_ = d.u64();
    d.endObject("slice_unit");
}

} // namespace pubs::pubs
