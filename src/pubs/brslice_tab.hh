/**
 * @file
 * The branch slice table (brslice_tab): set-associative, hashed-tag table
 * keyed by the PC of a slice instruction; the payload is a pointer
 * (d_c — the conf_tab key) to the confidence counter of the branch the
 * instruction's result (transitively) feeds.
 */

#ifndef PUBS_PUBS_BRSLICE_TAB_HH
#define PUBS_PUBS_BRSLICE_TAB_HH

#include "pubs/params.hh"
#include "pubs/table.hh"

namespace pubs::pubs
{

class BrsliceTab
{
  public:
    explicit BrsliceTab(const PubsParams &params);

    const KeyScheme &scheme() const { return table_.scheme(); }

    TableKey keyOf(Pc pc) const { return table_.scheme().keyOf(pc); }

    /** Link the instruction identified by @p inst to branch pointer
     *  @p confPtr (allocating an entry if needed). */
    void link(const TableKey &inst, const TableKey &confPtr);

    /**
     * The conf_tab pointer for instruction @p inst, if this instruction
     * is (predicted to be) part of some branch slice.
     */
    bool lookup(const TableKey &inst, TableKey &confPtrOut);

    void clear() { table_.clear(); }

    size_t validEntries() const { return table_.validEntries(); }

    /** Per Fig. 6: each entry stores (tag t_b, pointer d_c) + valid. */
    uint64_t costBits() const;

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    /** Pointer into the conf_tab (d_c = i_c || t_c). */
    struct Pointer
    {
        TableKey confKey{};
    };

    KeyScheme confScheme_;
    HashedTagTable<Pointer> table_;
};

} // namespace pubs::pubs

#endif // PUBS_PUBS_BRSLICE_TAB_HH
