#include "pubs/brslice_tab.hh"

namespace pubs::pubs
{

namespace
{

KeyScheme
brsliceScheme(const PubsParams &p)
{
    return {p.brsliceSets, p.tagless ? 0u : p.brsliceHashBits, p.fullTags,
            PubsParams::pcBits};
}

KeyScheme
confScheme(const PubsParams &p)
{
    return {p.confSets, p.tagless ? 0u : p.confHashBits, p.fullTags,
            PubsParams::pcBits};
}

} // namespace

BrsliceTab::BrsliceTab(const PubsParams &params)
    : confScheme_(confScheme(params)),
      table_(params.brsliceSets, params.tagless ? 1 : params.brsliceWays,
             brsliceScheme(params))
{
}

void
BrsliceTab::link(const TableKey &inst, const TableKey &confPtr)
{
    bool allocated = false;
    Pointer &entry = table_.lookupOrAllocate(inst, allocated);
    entry.confKey = confPtr;
}

bool
BrsliceTab::lookup(const TableKey &inst, TableKey &confPtrOut)
{
    if (Pointer *p = table_.lookup(inst)) {
        confPtrOut = p->confKey;
        return true;
    }
    return false;
}

uint64_t
BrsliceTab::costBits() const
{
    unsigned perEntry = 1 + table_.scheme().tagBits() +
                        confScheme_.indexBits() + confScheme_.tagBits();
    return (uint64_t)table_.capacity() * perEntry;
}

void
BrsliceTab::serialize(Serializer &s) const
{
    s.beginObject("brslice_tab");
    table_.serialize(s, [](Serializer &out, const Pointer &p) {
        out.u32(p.confKey.index);
        out.u32(p.confKey.tag);
    });
    s.endObject("brslice_tab");
}

void
BrsliceTab::unserialize(Deserializer &d)
{
    d.beginObject("brslice_tab");
    table_.unserialize(d, [](Deserializer &in, Pointer &p) {
        p.confKey.index = in.u32();
        p.confKey.tag = in.u32();
    });
    d.endObject("brslice_tab");
}

} // namespace pubs::pubs
