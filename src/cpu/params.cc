#include "cpu/params.hh"

#include <algorithm>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "cpu/fu_pool.hh"

namespace pubs::cpu
{

const char *
sizeClassName(SizeClass size)
{
    switch (size) {
      case SizeClass::Small: return "small";
      case SizeClass::Medium: return "medium";
      case SizeClass::Large: return "large";
      case SizeClass::Huge: return "huge";
    }
    panic("unknown size class %d", (int)size);
}

CoreParams
CoreParams::scaled(SizeClass size)
{
    CoreParams p;
    switch (size) {
      case SizeClass::Small:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 2;
        p.iqEntries = 32;
        p.robEntries = 64;
        p.lsqEntries = 32;
        p.intPhysRegs = p.fpPhysRegs = 64;
        p.numIntAlu = 1;
        p.numIntMulDiv = 1;
        p.numLdSt = 1;
        p.numFpu = 1;
        break;
      case SizeClass::Medium:
        // Table I defaults.
        break;
      case SizeClass::Large:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 6;
        p.iqEntries = 128;
        p.robEntries = 256;
        p.lsqEntries = 128;
        p.intPhysRegs = p.fpPhysRegs = 256;
        p.numIntAlu = 3;
        p.numIntMulDiv = 2;
        p.numLdSt = 3;
        p.numFpu = 3;
        break;
      case SizeClass::Huge:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 8;
        p.iqEntries = 192;
        p.robEntries = 384;
        p.lsqEntries = 192;
        p.intPhysRegs = p.fpPhysRegs = 384;
        p.numIntAlu = 4;
        p.numIntMulDiv = 2;
        p.numLdSt = 4;
        p.numFpu = 4;
        break;
    }
    return p;
}

std::vector<std::string>
CoreParams::validationErrors() const
{
    std::vector<std::string> errors;
    auto bad = [&errors](const std::string &message) {
        errors.push_back(message);
    };

    if (fetchWidth == 0 || decodeWidth == 0 || issueWidth == 0 ||
        commitWidth == 0) {
        bad("pipeline widths must all be non-zero (fetch=" +
            std::to_string(fetchWidth) + " decode=" +
            std::to_string(decodeWidth) + " issue=" +
            std::to_string(issueWidth) + " commit=" +
            std::to_string(commitWidth) + ")");
    }
    if (robEntries == 0)
        bad("robEntries must be non-zero");
    if (iqEntries == 0)
        bad("iqEntries must be non-zero");
    if (lsqEntries == 0)
        bad("lsqEntries must be non-zero");
    if (frontendDepth == 0)
        bad("frontendDepth must be at least 1 (fetch-to-dispatch takes "
            "a cycle)");
    if (intPhysRegs <= (unsigned)numIntRegs) {
        bad("intPhysRegs=" + std::to_string(intPhysRegs) +
            " leaves no rename headroom; need more than " +
            std::to_string(numIntRegs) + " (the architectural registers)");
    }
    if (fpPhysRegs <= (unsigned)numFpRegs) {
        bad("fpPhysRegs=" + std::to_string(fpPhysRegs) +
            " leaves no rename headroom; need more than " +
            std::to_string(numFpRegs) + " (the architectural registers)");
    }
    if (numIntAlu == 0 || numLdSt == 0) {
        bad("at least one integer ALU and one Ld/St unit are required "
            "(every workload uses both)");
    }

    if (ageMatrix && iqKind != iq::IqKind::Random) {
        bad("ageMatrix=true needs iqKind=random: the age matrix models "
            "select priority on the random queue only");
    }
    if (usePubs && iqKind != iq::IqKind::Random) {
        bad("usePubs=true needs iqKind=random: PUBS partitions the "
            "random queue (use --iq random or disable PUBS)");
    }
    if (usePubs && pubs.priorityEntries >= iqEntries) {
        bad("pubs.priorityEntries=" +
            std::to_string(pubs.priorityEntries) +
            " must leave normal entries in a " +
            std::to_string(iqEntries) +
            "-entry IQ; lower priorityEntries or grow iqEntries");
    }
    if (idealPrioritySelect && !usePubs) {
        bad("idealPrioritySelect=true needs usePubs=true: the ideal "
            "select still classifies via the PUBS slice unit");
    }
    if (usePubs) {
        if (pubs.confCounterBits == 0 || pubs.confCounterBits > 16) {
            bad("pubs.confCounterBits=" +
                std::to_string(pubs.confCounterBits) +
                " is outside the sensible 1..16 range");
        }
        if (pubs.confSets == 0 || pubs.confWays == 0 ||
            pubs.brsliceSets == 0 || pubs.brsliceWays == 0) {
            bad("PUBS table geometry must be non-zero "
                "(confSets/confWays/brsliceSets/brsliceWays)");
        }
        if (pubs.modeSwitch && pubs.modeInterval == 0) {
            bad("pubs.modeInterval must be non-zero when the mode "
                "switch is enabled");
        }
    }

    if (distributedIq) {
        if (iqKind != iq::IqKind::Random)
            bad("distributedIq=true needs iqKind=random sub-queues");
        if (ageMatrix)
            bad("distributedIq=true cannot be combined with the age "
                "matrix (not modelled); disable one of them");
        unsigned perQueue = iqEntries / (unsigned)FuType::NumTypes;
        if (perQueue < 2) {
            bad("distributedIq needs iqEntries >= " +
                std::to_string(2 * (unsigned)FuType::NumTypes) +
                " so each of the " +
                std::to_string((unsigned)FuType::NumTypes) +
                " sub-queues gets at least 2 entries (have " +
                std::to_string(iqEntries) + ")");
        } else if (usePubs && pubs.priorityEntries > 0 &&
                   std::max(1u, pubs.priorityEntries / 2) >= perQueue) {
            bad("distributed priority partition too large: "
                "priorityEntries/2=" +
                std::to_string(std::max(1u, pubs.priorityEntries / 2)) +
                " must be below the " + std::to_string(perQueue) +
                "-entry sub-queues; lower pubs.priorityEntries");
        }
    }

    if (btbSets == 0 || btbWays == 0)
        bad("BTB geometry must be non-zero (btbSets, btbWays)");
    if (!isPowerOf2(btbSets)) {
        bad("btbSets=" + std::to_string(btbSets) +
            " must be a power of two (indexed by PC bits)");
    }

    auto checkCache = [&bad](const mem::CacheParams &c) {
        if (c.sizeBytes == 0 || c.ways == 0 || c.lineBytes == 0) {
            bad(c.name + " cache geometry must be non-zero "
                "(sizeBytes, ways, lineBytes)");
            return;
        }
        if (!isPowerOf2(c.lineBytes))
            bad(c.name + " lineBytes=" + std::to_string(c.lineBytes) +
                " must be a power of two");
        if (c.sizeBytes % ((uint64_t)c.ways * c.lineBytes) != 0) {
            bad(c.name + " sizeBytes=" + std::to_string(c.sizeBytes) +
                " must be a multiple of ways*lineBytes (" +
                std::to_string(c.ways) + "*" +
                std::to_string(c.lineBytes) + ")");
        }
    };
    checkCache(memory.l1i);
    checkCache(memory.l1d);
    checkCache(memory.l2);
    if (memory.memBytesPerCycle == 0)
        bad("memory.memBytesPerCycle must be non-zero");

    if (auditPolicy != CheckPolicy::Off && auditInterval == 0) {
        bad("auditInterval must be non-zero when the structural audit "
            "is enabled");
    }

    return errors;
}

void
CoreParams::validate() const
{
    std::vector<std::string> errors = validationErrors();
    if (errors.empty())
        return;
    std::string message = "invalid core configuration (" +
                          std::to_string(errors.size()) + " problem" +
                          (errors.size() == 1 ? "" : "s") + "):";
    for (const std::string &error : errors)
        message += "\n  - " + error;
    throw ConfigError(message);
}

std::string
CoreParams::describe() const
{
    std::ostringstream out;
    out << "Pipeline width    " << fetchWidth
        << "-wide fetch/decode/issue/commit\n"
        << "Reorder buffer    " << robEntries << " entries\n"
        << "IQ                " << iqEntries << " entries ("
        << iq::iqKindName(iqKind) << (ageMatrix ? ", age matrix" : "")
        << ")\n"
        << "Load/store queue  " << lsqEntries << " entries\n"
        << "Physical regs     " << intPhysRegs << "(int) + " << fpPhysRegs
        << "(fp)\n"
        << "Branch predictor  " << branch::predictorKindName(predictor)
        << ", " << btbSets << "-set " << btbWays << "-way BTB, "
        << recoveryPenalty << "-cycle recovery penalty\n"
        << "Function units    " << numIntAlu << " iALU, " << numIntMulDiv
        << " iMULT/DIV, " << numLdSt << " Ld/St, " << numFpu << " FPU\n"
        << "L1 I-cache        " << memory.l1i.sizeBytes / 1024 << "KB, "
        << memory.l1i.ways << "-way, " << memory.l1i.lineBytes
        << "B line\n"
        << "L1 D-cache        " << memory.l1d.sizeBytes / 1024 << "KB, "
        << memory.l1d.ways << "-way, " << memory.l1d.lineBytes
        << "B line, " << memory.l1d.hitLatency << "-cycle hit\n"
        << "L2 cache          " << memory.l2.sizeBytes / 1024 / 1024
        << "MB, " << memory.l2.ways << "-way, " << memory.l2.hitLatency
        << "-cycle hit\n"
        << "Main memory       " << memory.memLatency
        << "-cycle min. latency, " << memory.memBytesPerCycle
        << "B/cycle bandwidth\n"
        << "Data prefetch     "
        << (memory.prefetch ? "stream-based" : "disabled");
    if (memory.prefetch) {
        out << ": " << memory.prefetcher.streams << "-stream, "
            << memory.prefetcher.distanceLines << "-line distance, "
            << memory.prefetcher.degree << "-line degree, into L2";
    }
    out << "\n";
    if (usePubs) {
        out << "PUBS              " << pubs.priorityEntries
            << " priority entries ("
            << (pubs.stallPolicy ? "stall" : "non-stall") << "), "
            << pubs.confCounterBits << "-bit resetting counters, "
            << "conf_tab " << pubs.confSets << "x" << pubs.confWays
            << " (q=" << pubs.confHashBits << "), brslice_tab "
            << pubs.brsliceSets << "x" << pubs.brsliceWays << " (q="
            << pubs.brsliceHashBits << "), mode switch "
            << (pubs.modeSwitch ? "on" : "off") << " (threshold "
            << pubs.modeMpkiThreshold << " LLC MPKI / "
            << pubs.modeInterval << "-inst interval)\n";
    }
    return out.str();
}

std::string
CoreParams::describeFunctional() const
{
    // One line per functionally-warmed unit, every field explicit, so
    // adding a functional knob later forces a deliberate edit here (and
    // thereby a fingerprint change).
    std::ostringstream out;
    out << "predictor " << branch::predictorKindName(predictor) << "\n"
        << "btb " << btbSets << "x" << btbWays << "\n"
        << "ras " << rasDepth << "\n";
    auto cache = [&](const char *name, const mem::CacheParams &c) {
        out << name << " " << c.sizeBytes << "/" << c.ways << "/"
            << c.lineBytes << "\n";
    };
    cache("l1i", memory.l1i);
    cache("l1d", memory.l1d);
    cache("l2", memory.l2);
    out << "prefetch " << (memory.prefetch ? 1 : 0);
    if (memory.prefetch) {
        out << " " << memory.prefetcher.streams << "/"
            << memory.prefetcher.distanceLines << "/"
            << memory.prefetcher.degree;
    }
    out << "\n";
    out << "pubs " << (usePubs ? 1 : 0) << "\n";
    if (usePubs) {
        out << "conf_tab " << pubs.confSets << "x" << pubs.confWays
            << " q" << pubs.confHashBits << " bits"
            << pubs.confCounterBits << " shape"
            << (pubs.counterShape == pubs::CounterShape::Resetting ? "r"
                                                                   : "d")
            << " use" << (pubs.useConfTab ? 1 : 0) << "\n"
            << "brslice_tab " << pubs.brsliceSets << "x"
            << pubs.brsliceWays << " q" << pubs.brsliceHashBits << "\n"
            << "tags " << (pubs.tagless ? "none"
                                        : pubs.fullTags ? "full" : "hashed")
            << "\n"
            << "mode_switch " << (pubs.modeSwitch ? 1 : 0) << " "
            << pubs.modeInterval << " " << pubs.modeMpkiThreshold << "\n";
    }
    return out.str();
}

} // namespace pubs::cpu
