#include "cpu/params.hh"

#include <sstream>

#include "common/logging.hh"

namespace pubs::cpu
{

const char *
sizeClassName(SizeClass size)
{
    switch (size) {
      case SizeClass::Small: return "small";
      case SizeClass::Medium: return "medium";
      case SizeClass::Large: return "large";
      case SizeClass::Huge: return "huge";
    }
    panic("unknown size class %d", (int)size);
}

CoreParams
CoreParams::scaled(SizeClass size)
{
    CoreParams p;
    switch (size) {
      case SizeClass::Small:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 2;
        p.iqEntries = 32;
        p.robEntries = 64;
        p.lsqEntries = 32;
        p.intPhysRegs = p.fpPhysRegs = 64;
        p.numIntAlu = 1;
        p.numIntMulDiv = 1;
        p.numLdSt = 1;
        p.numFpu = 1;
        break;
      case SizeClass::Medium:
        // Table I defaults.
        break;
      case SizeClass::Large:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 6;
        p.iqEntries = 128;
        p.robEntries = 256;
        p.lsqEntries = 128;
        p.intPhysRegs = p.fpPhysRegs = 256;
        p.numIntAlu = 3;
        p.numIntMulDiv = 2;
        p.numLdSt = 3;
        p.numFpu = 3;
        break;
      case SizeClass::Huge:
        p.fetchWidth = p.decodeWidth = p.issueWidth = p.commitWidth = 8;
        p.iqEntries = 192;
        p.robEntries = 384;
        p.lsqEntries = 192;
        p.intPhysRegs = p.fpPhysRegs = 384;
        p.numIntAlu = 4;
        p.numIntMulDiv = 2;
        p.numLdSt = 4;
        p.numFpu = 4;
        break;
    }
    return p;
}

std::string
CoreParams::describe() const
{
    std::ostringstream out;
    out << "Pipeline width    " << fetchWidth
        << "-wide fetch/decode/issue/commit\n"
        << "Reorder buffer    " << robEntries << " entries\n"
        << "IQ                " << iqEntries << " entries ("
        << iq::iqKindName(iqKind) << (ageMatrix ? ", age matrix" : "")
        << ")\n"
        << "Load/store queue  " << lsqEntries << " entries\n"
        << "Physical regs     " << intPhysRegs << "(int) + " << fpPhysRegs
        << "(fp)\n"
        << "Branch predictor  " << branch::predictorKindName(predictor)
        << ", " << btbSets << "-set " << btbWays << "-way BTB, "
        << recoveryPenalty << "-cycle recovery penalty\n"
        << "Function units    " << numIntAlu << " iALU, " << numIntMulDiv
        << " iMULT/DIV, " << numLdSt << " Ld/St, " << numFpu << " FPU\n"
        << "L1 I-cache        " << memory.l1i.sizeBytes / 1024 << "KB, "
        << memory.l1i.ways << "-way, " << memory.l1i.lineBytes
        << "B line\n"
        << "L1 D-cache        " << memory.l1d.sizeBytes / 1024 << "KB, "
        << memory.l1d.ways << "-way, " << memory.l1d.lineBytes
        << "B line, " << memory.l1d.hitLatency << "-cycle hit\n"
        << "L2 cache          " << memory.l2.sizeBytes / 1024 / 1024
        << "MB, " << memory.l2.ways << "-way, " << memory.l2.hitLatency
        << "-cycle hit\n"
        << "Main memory       " << memory.memLatency
        << "-cycle min. latency, " << memory.memBytesPerCycle
        << "B/cycle bandwidth\n"
        << "Data prefetch     "
        << (memory.prefetch ? "stream-based" : "disabled");
    if (memory.prefetch) {
        out << ": " << memory.prefetcher.streams << "-stream, "
            << memory.prefetcher.distanceLines << "-line distance, "
            << memory.prefetcher.degree << "-line degree, into L2";
    }
    out << "\n";
    if (usePubs) {
        out << "PUBS              " << pubs.priorityEntries
            << " priority entries ("
            << (pubs.stallPolicy ? "stall" : "non-stall") << "), "
            << pubs.confCounterBits << "-bit resetting counters, "
            << "conf_tab " << pubs.confSets << "x" << pubs.confWays
            << " (q=" << pubs.confHashBits << "), brslice_tab "
            << pubs.brsliceSets << "x" << pubs.brsliceWays << " (q="
            << pubs.brsliceHashBits << "), mode switch "
            << (pubs.modeSwitch ? "on" : "off") << " (threshold "
            << pubs.modeMpkiThreshold << " LLC MPKI / "
            << pubs.modeInterval << "-inst interval)\n";
    }
    return out.str();
}

} // namespace pubs::cpu
