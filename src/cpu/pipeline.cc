#include "cpu/pipeline.hh"

#include <algorithm>
#include <sstream>

#include "common/bits.hh"
#include "common/error.hh"
#include "common/hints.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "common/progress.hh"
#include "cpu/audit.hh"
#include "cpu/telemetry.hh"
#include "isa/program.hh"
#include "iq/circular_queue.hh"
#include "iq/random_queue.hh"
#include "iq/shifting_queue.hh"
#include "sim/checker.hh"
#include "trace/pipeview.hh"

namespace pubs::cpu
{

using isa::OpClass;
using isa::Opcode;

Pipeline::Pipeline(const CoreParams &params, trace::InstSource &source)
    : params_(params),
      source_(source),
      rename_(params.intPhysRegs, params.fpPhysRegs),
      rob_(params.robEntries),
      lsq_(params.lsqEntries),
      fuPool_(params.numIntAlu, params.numIntMulDiv, params.numLdSt,
              params.numFpu),
      rng_(params.seed)
{
    // Every structural constraint lives in CoreParams::validate(), which
    // throws a ConfigError listing all problems at once.
    params.validate();

    mem_ = std::make_unique<mem::MemorySystem>(params.memory);
    predictor_ = branch::makePredictor(params.predictor);
    btb_ = std::make_unique<branch::Btb>(params.btbSets, params.btbWays);
    ras_ = std::make_unique<branch::Ras>(params.rasDepth);

    unsigned priorityEntries =
        params.usePubs ? params.pubs.priorityEntries : 0;
    if (params.distributedIq) {
        // Section III-C2: one sub-queue per FU group, each with its own
        // priority partition.
        unsigned perQueue = params.iqEntries / (unsigned)FuType::NumTypes;
        for (unsigned q = 0; q < (unsigned)FuType::NumTypes; ++q) {
            // Branch slices live almost entirely on the iALU and Ld/St
            // queues (compares, address arithmetic, feeding loads), so
            // those get the bulk of the reserved entries; the others
            // keep a single entry so stray FP/mul slice members cannot
            // deadlock the stall policy.
            unsigned perQueuePriority = 0;
            if (priorityEntries > 0) {
                bool sliceHeavy = (FuType)q == FuType::IntAlu ||
                                  (FuType)q == FuType::LdSt;
                perQueuePriority =
                    sliceHeavy ? std::max(1u, priorityEntries / 2) : 1;
            }
            iqs_.push_back(std::make_unique<iq::RandomQueue>(
                perQueue, perQueuePriority, params.seed + 0x51c3 + q));
        }
    } else {
        switch (params.iqKind) {
          case iq::IqKind::Random:
            iqs_.push_back(std::make_unique<iq::RandomQueue>(
                params.iqEntries, priorityEntries, params.seed + 0x51c3));
            break;
          case iq::IqKind::Shifting:
            iqs_.push_back(
                std::make_unique<iq::ShiftingQueue>(params.iqEntries));
            break;
          case iq::IqKind::Circular:
            iqs_.push_back(
                std::make_unique<iq::CircularQueue>(params.iqEntries));
            break;
        }
        if (params.ageMatrix)
            ageMatrix_ = std::make_unique<iq::AgeMatrix>(params.iqEntries);
    }
    if (params.usePubs) {
        sliceUnit_ = std::make_unique<pubs::SliceUnit>(params.pubs);
        modeSwitch_ = std::make_unique<pubs::ModeSwitch>(params.pubs);
    }

    intRegReady_.assign(params.intPhysRegs, 0);
    fpRegReady_.assign(params.fpPhysRegs, 0);
    intRegProducer_.assign(params.intPhysRegs, UINT32_MAX);
    fpRegProducer_.assign(params.fpPhysRegs, UINT32_MAX);
    intRegProducerSeq_.assign(params.intPhysRegs, 0);
    fpRegProducerSeq_.assign(params.fpPhysRegs, 0);

    frontendCapacity_ = (size_t)params.frontendDepth * params.fetchWidth;
    size_t slots = params.robEntries + frontendCapacity_ + 8;
    hot_.assign(slots, InflightHot{});
    deps_.assign(slots, InflightDeps{});
    cold_.assign(slots, InflightCold{});
    freeIds_.reserve(slots);
    for (size_t i = slots; i > 0; --i)
        freeIds_.push_back((uint32_t)(i - 1));
    readyMask_.assign((params.iqEntries + 63) / 64, 0);
    staticProgram_ = source.program();
    if (staticProgram_)
        lastMemAddr_.assign(staticProgram_->size(), 0);

    if (params.telemetry)
        telemetry_ = std::make_unique<CoreTelemetry>(params);

    // PUBS_CHECK in the environment overrides both configured policies.
    checkPolicy_ = checkPolicyFromEnv(params.checkPolicy);
    auditPolicy_ = checkPolicyFromEnv(params.auditPolicy);
    if (checkPolicy_ != CheckPolicy::Off) {
        if (staticProgram_) {
            checker_ = std::make_unique<sim::CommitChecker>(*staticProgram_);
        } else {
            warn_once("lockstep checking requested, but the instruction "
                      "source carries no static program (trace replay); "
                      "commits will run unchecked");
        }
    }
}

Pipeline::~Pipeline() = default;

void
Pipeline::attachPipeView(std::unique_ptr<trace::PipeViewWriter> writer)
{
    pipeview_ = std::move(writer);
}

Cycle
Pipeline::regReadyCycle(isa::RegClass cls, PhysRegId reg) const
{
    return cls == isa::RegClass::Fp ? fpRegReady_[reg] : intRegReady_[reg];
}

void
Pipeline::setRegReady(isa::RegClass cls, PhysRegId reg, Cycle cycle)
{
    if (cls == isa::RegClass::Fp)
        fpRegReady_[reg] = cycle;
    else
        intRegReady_[reg] = cycle;
}

uint32_t &
Pipeline::regProducer(isa::RegClass cls, PhysRegId reg)
{
    return cls == isa::RegClass::Fp ? fpRegProducer_[reg]
                                    : intRegProducer_[reg];
}

SeqNum &
Pipeline::regProducerSeq(isa::RegClass cls, PhysRegId reg)
{
    return cls == isa::RegClass::Fp ? fpRegProducerSeq_[reg]
                                    : intRegProducerSeq_[reg];
}

void
Pipeline::onWheelEvent(EventWheel::Kind kind, uint32_t a, uint64_t b)
{
    if (PUBS_LIKELY(kind == EventWheel::Kind::OperandReady)) {
        // One pending operand of instruction (a, seq b) completed.
        // Stale deliveries — the consumer was squashed, possibly with
        // its id reallocated — are detected by the sequence number.
        InflightHot &hot = hot_[a];
        if (PUBS_UNLIKELY(!hot.valid || hot.seq != b))
            return;
        panic_if(hot.pendingOps == 0 || hot.issued,
                 "operand wakeup for inst %u with no pending operand", a);
        if (--hot.pendingOps == 0 && hot.inIq)
            iqs_[hot.iqIndex]->markReady(a);
        return;
    }

    // LoadRecheck: a store executed last cycle, so loads parked as
    // mem-blocked may have had their dependence resolve to Forward.
    // Re-expose them to select; the per-load dependence check there
    // re-parks any that are still blocked on a different store.
    for (const auto &[id, seq] : memBlockedLoads_) {
        const InflightHot &hot = hot_[id];
        if (!hot.valid || hot.seq != seq || !hot.inIq || hot.issued ||
            hot.pendingOps != 0) {
            continue; // squashed or otherwise no longer eligible
        }
        iqs_[hot.iqIndex]->markReady(id);
    }
    memBlockedLoads_.clear();
}

void
Pipeline::setupScoreboard(uint32_t id)
{
    // Classify each source operand exactly as the per-cycle rescan
    // would over the coming cycles: available now, completing at a
    // known future cycle (producer already issued -> schedule the
    // wakeup directly), or owned by a producer still waiting in the
    // window (register with it; it schedules the wakeup when it
    // issues).
    InflightHot &hot = hot_[id];
    hot.pendingOps = 0;
    auto handleSrc = [&](isa::RegClass cls, PhysRegId reg) {
        if (reg == invalidPhysReg)
            return;
        Cycle ready = regReadyCycle(cls, reg);
        if (ready <= now_)
            return;
        ++hot.pendingOps;
        if (ready == neverCycle) {
            uint32_t producerId = regProducer(cls, reg);
            panic_if(producerId == UINT32_MAX, "unready phys reg %d has "
                     "no in-flight producer", (int)reg);
            const InflightHot &producer = hot_[producerId];
            panic_if(!producer.valid ||
                         producer.seq != regProducerSeq(cls, reg) ||
                         producer.issued,
                     "stale producer %u for phys reg %d", producerId,
                     (int)reg);
            registerDependent(producerId, id, hot.seq);
        } else {
            wheel_.schedule(ready, EventWheel::Kind::OperandReady, id,
                            hot.seq, now_);
        }
    };
    handleSrc(hot.src1Cls, hot.physSrc1);
    handleSrc(hot.src2Cls, hot.physSrc2);
    if (hot.pendingOps == 0)
        iqs_[hot.iqIndex]->markReady(id);
}

void
Pipeline::registerDependent(uint32_t producerId, uint32_t id, SeqNum seq)
{
    InflightDeps &producer = deps_[producerId];
    if (producer.count < InflightDeps::inlineDeps) {
        producer.ids[producer.count] = id;
        producer.seqs[producer.count] = seq;
        ++producer.count;
        return;
    }
    uint32_t node = producer.overflow;
    if (node == SlabPool<DepNode>::npos ||
        depPool_.at(node).n == DepNode::fanout) {
        uint32_t fresh = depPool_.alloc();
        depPool_.at(fresh).next = node;
        producer.overflow = fresh;
        node = fresh;
    }
    DepNode &dn = depPool_.at(node);
    dn.ids[dn.n] = id;
    dn.seqs[dn.n] = seq;
    ++dn.n;
}

void
Pipeline::wakeDependents(uint32_t producerId, Cycle done)
{
    // Every op latency is >= 1 cycle, so the completion is strictly in
    // the future and always schedulable. Dependents are not validated
    // here; the event delivery does that (lazy cancellation).
    InflightDeps &producer = deps_[producerId];
    for (uint8_t i = 0; i < producer.count; ++i) {
        wheel_.schedule(done, EventWheel::Kind::OperandReady,
                        producer.ids[i], producer.seqs[i], now_);
    }
    producer.count = 0;
    uint32_t node = producer.overflow;
    while (node != SlabPool<DepNode>::npos) {
        DepNode &dn = depPool_.at(node);
        for (uint8_t i = 0; i < dn.n; ++i) {
            wheel_.schedule(done, EventWheel::Kind::OperandReady,
                            dn.ids[i], dn.seqs[i], now_);
        }
        uint32_t next = dn.next;
        depPool_.free(node);
        node = next;
    }
    producer.overflow = SlabPool<DepNode>::npos;
}

void
Pipeline::releaseDeps(uint32_t id)
{
    // Free the dependent records of an instruction leaving the window
    // without issuing (squash; or commit, for IQ-bypassing ops). The
    // registrations themselves need no cleanup — they die with the
    // producer, and were only reachable through it.
    InflightDeps &deps = deps_[id];
    deps.count = 0;
    uint32_t node = deps.overflow;
    while (node != SlabPool<DepNode>::npos) {
        uint32_t next = depPool_.at(node).next;
        depPool_.free(node);
        node = next;
    }
    deps.overflow = SlabPool<DepNode>::npos;
}

void
Pipeline::scheduleLoadRecheck()
{
    if (memBlockedLoads_.empty() || loadRecheckCycle_ == now_ + 1)
        return;
    loadRecheckCycle_ = now_ + 1;
    wheel_.schedule(now_ + 1, EventWheel::Kind::LoadRecheck, 0, 0, now_);
}

const iq::IssueQueue &
Pipeline::queueFor(const trace::DynInst &di) const
{
    return const_cast<Pipeline *>(this)->queueFor(di);
}

Pipeline::DispatchBlock
Pipeline::dispatchBlockReason() const
{
    // Mirror of doDispatch()'s head-of-queue blocking checks, in the
    // same order, with no side effects: used to decide whether the next
    // cycle can dispatch and which stall counter an idle cycle charges.
    uint32_t headId = frontendQueue_.front();
    const trace::DynInst &di = cold_[headId].di;
    isa::Inst staticInst{di.op, di.dst, di.src1, di.src2, 0};

    if (rob_.full())
        return DispatchBlock::RobFull;
    if (di.isMem() && lsq_.full())
        return DispatchBlock::LsqFull;
    isa::RegClass dstCls = isa::dstRegClass(staticInst);
    if (di.dst != invalidReg && dstCls != isa::RegClass::None &&
        rename_.freeRegs(dstCls) == 0) {
        return DispatchBlock::RenameFull;
    }
    if (isa::opClass(di.op) == OpClass::Nop)
        return DispatchBlock::None;

    const iq::IssueQueue &queue = queueFor(di);
    bool pubsOn = params_.usePubs && queue.priorityEntries() > 0;
    bool pubsActive = pubsOn && modeSwitch_->pubsEnabled();
    bool wantPriority = pubsActive && hot_[headId].sliceUnconfident;
    if (pubsOn && !pubsActive) {
        return queue.occupancy() >= queue.capacity() ? DispatchBlock::IqFull
                                                     : DispatchBlock::None;
    }
    if (wantPriority) {
        if (queue.canDispatch(true))
            return DispatchBlock::None;
        if (!params_.pubs.stallPolicy && queue.canDispatch(false))
            return DispatchBlock::None;
        return DispatchBlock::PriorityStall;
    }
    return queue.canDispatch(false) ? DispatchBlock::None
                                    : DispatchBlock::IqFull;
}

bool
Pipeline::fetchCanProgress() const
{
    // Would doFetch() reach the i-cache access once any suspension
    // expires? Mirrors its early exits: blocked on an unresolved branch,
    // front end full, idling on an unresolvable wrong path, or source
    // exhausted.
    if (fetchBlockedOnBranch_)
        return false;
    if (frontendQueue_.size() >= frontendCapacity_)
        return false;
    if (wrongPathActive_)
        return wrongPathPc_ != 0;
    return havePending_ || !sourceExhausted_;
}

Cycle
Pipeline::nextWorkCycle() const
{
    // Cheap early-outs first: anything issueable or dispatchable means
    // the next cycle has work.
    for (const auto &queue : iqs_)
        if (queue->hasReady())
            return now_ + 1;
    if (!frontendQueue_.empty()) {
        const InflightHot &head = hot_[frontendQueue_.front()];
        if (head.feReadyCycle <= now_ + 1 &&
            dispatchBlockReason() == DispatchBlock::None)
            return now_ + 1;
    }

    Cycle next = now_ + maxSkipSpan;
    auto consider = [&](Cycle cycle) {
        next = std::min(next, std::max(cycle, now_ + 1));
    };
    if (fetchCanProgress())
        consider(fetchSuspendedUntil_);
    if (!frontendQueue_.empty()) {
        const InflightHot &head = hot_[frontendQueue_.front()];
        if (head.feReadyCycle > now_)
            consider(head.feReadyCycle);
    }
    if (!rob_.empty()) {
        const InflightHot &head = hot_[rob_.head()];
        if (head.issued)
            consider(head.doneCycle); // commit wake
    }
    if (!squashEvents_.empty())
        consider(squashEvents_.top().cycle);
    if (!confEvents_.empty())
        consider(confEvents_.top().cycle);
    if (!wheel_.empty())
        consider(wheel_.nextEventCycle());
    if (telemetry_)
        consider(telemetry_->nextHeartbeat());
    if (auditPolicy_ != CheckPolicy::Off && params_.auditInterval != 0) {
        consider((now_ / params_.auditInterval + 1) *
                 params_.auditInterval);
    }
    return next;
}

void
Pipeline::fastForward(Cycle to)
{
    // Cycles (now_, to] provably change no architectural or stat state
    // except the per-cycle samples and dispatch-stall counters, whose
    // inputs are constant across the span; account them in bulk.
    uint64_t span = to - now_;
    stats_.cycles += span;

    size_t occupancy = 0;
    for (const auto &queue : iqs_)
        occupancy += queue->occupancy();
    stats_.iqOccupancy.sample(occupancy, span);
    if (telemetry_) {
        size_t priorityOccupancy = 0;
        for (const auto &queue : iqs_)
            priorityOccupancy += queue->priorityOccupancy();
        telemetry_->noteCycles(occupancy, priorityOccupancy, span);
    }

    DispatchBlock block = DispatchBlock::None;
    if (!frontendQueue_.empty() &&
        hot_[frontendQueue_.front()].feReadyCycle <= now_) {
        block = dispatchBlockReason();
        switch (block) {
          case DispatchBlock::RobFull:
            stats_.robFullStallCycles += span;
            break;
          case DispatchBlock::IqFull:
            stats_.iqFullStallCycles += span;
            break;
          case DispatchBlock::PriorityStall:
            stats_.priorityStallCycles += span;
            break;
          default:
            break;
        }
    }
    // No dispatch or commit can occur inside the skipped span, so the
    // classification inputs are constant: attribute the whole span to
    // one component in one call.
    stats_.cpi.add(classifyStallCycle(block), span);
    now_ = to;
}

CpiComponent
Pipeline::chaseRobHead(CpiComponent fallback) const
{
    if (rob_.empty())
        return fallback;
    const InflightHot &head = hot_[rob_.head()];
    if (head.issued && head.doneCycle > now_) {
        if (head.missLevel == 2)
            return CpiComponent::MemDram;
        if (head.missLevel == 1)
            return CpiComponent::MemL2;
        if (head.isMispredict)
            return CpiComponent::BranchMisspec;
    }
    return fallback;
}

CpiComponent
Pipeline::classifyStallCycle(DispatchBlock block) const
{
    // The priority-entry stall is the cost the paper's stall policy
    // introduces — the component this repo exists to measure — so it is
    // never reattributed to a deeper cause.
    switch (block) {
      case DispatchBlock::PriorityStall:
        return CpiComponent::PriorityStall;
      case DispatchBlock::RobFull:
        return chaseRobHead(CpiComponent::RobFull);
      case DispatchBlock::IqFull:
        return chaseRobHead(CpiComponent::IqFull);
      case DispatchBlock::LsqFull:
        return chaseRobHead(CpiComponent::LsqFull);
      case DispatchBlock::RenameFull:
        return chaseRobHead(CpiComponent::RenameFull);
      case DispatchBlock::None:
        break;
    }

    // Nothing was dispatchable. A live backend means the ROB head is
    // the critical resource; otherwise the front end is starved, and
    // the starvation cause decides the component.
    if (!rob_.empty())
        return chaseRobHead(CpiComponent::Execute);
    if (wrongPathActive_ || fetchBlockedOnBranch_)
        return CpiComponent::BranchMisspec;
    if (now_ < fetchSuspendedUntil_ &&
        suspendReason_ == SuspendReason::Recovery) {
        return CpiComponent::BranchRecovery;
    }
    return CpiComponent::Frontend;
}

bool
Pipeline::drained() const
{
    return sourceExhausted_ && !havePending_ && frontendQueue_.empty() &&
           rob_.empty();
}

uint64_t
Pipeline::run(uint64_t maxInsts)
{
    uint64_t startCommitted = stats_.committed;
    uint64_t target = startCommitted + maxInsts;
    runTarget_ = target;
    uint64_t lastCommitted = stats_.committed;
    Cycle lastProgress = now_;

    // Progress heartbeats are strided by committed instructions so the
    // per-cycle cost of an enabled sink stays one integer compare; the
    // sink applies its own wall-clock rate limit on top.
    constexpr uint64_t progressStride = 1 << 16;
    uint64_t nextProgressAt = startCommitted + progressStride;

    while (stats_.committed < target && !drained()) {
        // Event-driven advance: when no stage can possibly do work next
        // cycle, jump straight to the next scheduled event, bulk-
        // accounting the skipped cycles' per-cycle stats on the way.
        Cycle next = nextWorkCycle();
        if (next > now_ + 1)
            fastForward(next - 1);
        ++now_;
        ++stats_.cycles;
        cycle();

        if (stats_.committed >= nextProgressAt) {
            progress::tick(stats_.committed - startCommitted);
            nextProgressAt = stats_.committed + progressStride;
        }

        if (stats_.committed != lastCommitted) {
            lastCommitted = stats_.committed;
            lastProgress = now_;
        } else if (now_ - lastProgress > 1000000) {
            panic("pipeline made no progress for 1M cycles "
                  "(committed=%llu rob=%zu iq=%zu)",
                  (unsigned long long)stats_.committed, rob_.occupancy(),
                  iqs_[0]->occupancy());
        }
    }
    return stats_.committed - startCommitted;
}

void
Pipeline::requirePristine(const char *what) const
{
    if (now_ != 0 || fetchCounter_ != 0 || havePending_ ||
        !frontendQueue_.empty() || !rob_.empty()) {
        throw CheckpointError(std::string(what) +
                              " requires a pristine pipeline (nothing "
                              "fetched, cycle 0); run detailed simulation "
                              "only after fast-forward and restore");
    }
}

uint64_t
Pipeline::functionalFastForward(uint64_t insts)
{
    requirePristine("functional fast-forward");

    // Mirrors the training the detailed model performs in its in-order
    // front end (fetchControl) and at commit, minus anything coupled to
    // cycle time. One deliberate difference: confidence training that
    // the detailed path defers to branch completion (confEvents_) is
    // applied immediately here — with no timing there is no completion
    // cycle, and the table sees the same updates in the same order.
    uint64_t consumed = 0;
    trace::DynInst di;
    while (consumed < insts && source_.next(di)) {
        ++consumed;
        mem_->warmFetch(di.pc);

        if (di.isMem()) {
            if (staticProgram_)
                lastMemAddr_[staticProgram_->indexOf(di.pc)] = di.effAddr;
            mem::DataAccess res = mem_->warmData(di.effAddr, di.isStore());
            if (res.llcMiss && modeSwitch_)
                modeSwitch_->noteLlcMiss();
        }

        if (sliceUnit_)
            sliceUnit_->decode(di);

        if (di.isCondBranch()) {
            bool predTaken = predictor_->predict(di.pc);
            predictor_->update(di.pc, di.taken);
            if (di.taken)
                btb_->update(di.pc, di.nextPc);
            if (sliceUnit_)
                sliceUnit_->branchResolved(di.pc, predTaken == di.taken);
        } else if (di.op == Opcode::J || di.op == Opcode::Jal) {
            btb_->update(di.pc, di.nextPc);
            if (di.op == Opcode::Jal)
                ras_->push(di.pc + instBytes);
        } else if (di.op == Opcode::Jr) {
            ras_->pop();
        }

        if (modeSwitch_)
            modeSwitch_->noteCommit();
    }
    return consumed;
}

void
Pipeline::serialize(Serializer &s) const
{
    requirePristine("checkpoint save");
    s.beginObject("pipeline");
    mem_->serialize(s);
    predictor_->serialize(s);
    btb_->serialize(s);
    ras_->serialize(s);
    s.boolean(sliceUnit_ != nullptr);
    if (sliceUnit_)
        sliceUnit_->serialize(s);
    s.boolean(modeSwitch_ != nullptr);
    if (modeSwitch_)
        modeSwitch_->serialize(s);
    writeTable(s, lastMemAddr_);
    s.endObject("pipeline");
}

void
Pipeline::unserialize(Deserializer &d)
{
    requirePristine("checkpoint restore");
    d.beginObject("pipeline");
    mem_->unserialize(d);
    predictor_->unserialize(d);
    btb_->unserialize(d);
    ras_->unserialize(d);
    bool hasSlice = d.boolean();
    if (hasSlice != (sliceUnit_ != nullptr)) {
        throw CheckpointError("checkpoint PUBS slice-unit presence does "
                              "not match this configuration");
    }
    if (sliceUnit_)
        sliceUnit_->unserialize(d);
    bool hasMode = d.boolean();
    if (hasMode != (modeSwitch_ != nullptr)) {
        throw CheckpointError("checkpoint mode-switch presence does not "
                              "match this configuration");
    }
    if (modeSwitch_)
        modeSwitch_->unserialize(d);
    readTable(d, lastMemAddr_, "wrong-path address approximations");
    d.endObject("pipeline");
}

void
Pipeline::resyncChecker(const emu::Emulator &ref)
{
    if (checker_)
        checker_->resyncFrom(ref);
}

void
Pipeline::resetStats()
{
    stats_ = PipelineStats{};
    if (modeSwitch_)
        lastPubsEnabled_ = modeSwitch_->pubsEnabled();
    if (telemetry_)
        telemetry_->resetStats(now_);
}

void
Pipeline::cycle()
{
    // Host-phase profiling is sampled: most cycles pay one predictable
    // branch, and every sampleInterval()-th cycle times each stage.
    // The lambda indirection inlines; the timed and untimed paths run
    // the same stage code, so profiling cannot perturb simulation.
    const bool sampled = prof::sampleCycle(now_);
    auto stage = [sampled](const char *name, auto &&body) {
        if (sampled) {
            prof::Scope span(name);
            body();
        } else {
            body();
        }
    };

    // The cycle is unattributed until the end-of-cycle CPI-stack
    // classification below; the auditor accounts for the gap when it
    // runs mid-cycle (post-squash).
    midCycle_ = true;
    cycleDispatched_ = false;
    cycleDispatchedCorrect_ = false;
    cycleBlock_ = DispatchBlock::None;

    // Deliver this cycle's wakeup events before any stage runs, so the
    // ready bitmaps the select logic reads match what a full rescan of
    // regReadyCycle would conclude at this cycle.
    stage("sim/wakeup", [&] {
        wheel_.drain(now_, [this](const EventWheel::Event &event) {
            onWheelEvent(event.kind, event.a, event.b);
        });
        applyConfEvents();
        processSquashes();
    });
    stage("sim/commit", [&] { doCommit(); });
    stage("sim/select", [&] { doIssue(); });
    stage("sim/rename", [&] { doDispatch(); });
    stage("sim/fetch", [&] { doFetch(); });

    // Top-down attribution: a correct-path dispatch makes the cycle
    // useful; wrong-path-only dispatch is misspeculation work; anything
    // else is a stall whose component the blocking reason decides.
    CpiComponent component;
    if (cycleDispatchedCorrect_)
        component = CpiComponent::Base;
    else if (cycleDispatched_)
        component = CpiComponent::BranchMisspec;
    else
        component = classifyStallCycle(cycleBlock_);
    stats_.cpi.add(component);
    midCycle_ = false;

    if (telemetry_ && modeSwitch_ &&
        modeSwitch_->pubsEnabled() != lastPubsEnabled_) {
        lastPubsEnabled_ = modeSwitch_->pubsEnabled();
        telemetry_->noteModeTransition(now_, lastPubsEnabled_,
                                       stats_.cpi);
    }

    size_t occupancy = 0;
    for (const auto &queue : iqs_)
        occupancy += queue->occupancy();
    stats_.iqOccupancy.sample(occupancy);

    if (telemetry_) {
        size_t priorityOccupancy = 0;
        for (const auto &queue : iqs_)
            priorityOccupancy += queue->priorityOccupancy();
        telemetry_->noteCycle(occupancy, priorityOccupancy);
        if (now_ >= telemetry_->nextHeartbeat())
            telemetry_->heartbeat(now_, stats_);
    }

    if (auditPolicy_ != CheckPolicy::Off && params_.auditInterval != 0 &&
        now_ % params_.auditInterval == 0) {
        runAudit("periodic");
    }
}

void
Pipeline::runAudit(const char *context)
{
    AuditReport report = Auditor::audit(*this);
    ++stats_.auditsRun;
    if (report.ok())
        return;
    stats_.auditViolations += report.violations.size();
    std::string when = std::string(context) + ", cycle " +
                       std::to_string(now_);
    reportViolation(auditPolicy_, SimError::Kind::Audit,
                    report.format(when) + debugSnapshot());
}

void
Pipeline::applyConfEvents()
{
    while (!confEvents_.empty() && confEvents_.top().cycle <= now_) {
        const ConfEvent &event = confEvents_.top();
        sliceUnit_->branchResolved(event.pc, event.correct);
        confEvents_.pop();
    }
}

void
Pipeline::processSquashes()
{
    while (!squashEvents_.empty() && squashEvents_.top().cycle <= now_) {
        uint32_t branchId = squashEvents_.top().branchId;
        squashEvents_.pop();
        squashYoungerThan(branchId);
        // State recovery: fetch resumes on the correct path after the
        // recovery penalty (Table I: 10 cycles).
        wrongPathActive_ = false;
        wrongPathPc_ = 0;
        fetchBlockedOnBranch_ = false;
        if (now_ + params_.recoveryPenalty >= fetchSuspendedUntil_) {
            fetchSuspendedUntil_ = now_ + params_.recoveryPenalty;
            suspendReason_ = SuspendReason::Recovery;
        }
        // Squash recovery rewrites the rename map, free lists, and every
        // queue at once — audit the aftermath, where bugs concentrate.
        if (auditPolicy_ != CheckPolicy::Off)
            runAudit("post-squash");
    }
}

void
Pipeline::recordSquashed(uint32_t id)
{
    InflightCold &cold = cold_[id];
    cold.di.stamps.squashed = true;
    pipeview_->record(cold.di);
}

void
Pipeline::assertHotColdAgree([[maybe_unused]] uint32_t id) const
{
#ifndef NDEBUG
    const InflightHot &hot = hot_[id];
    const InflightCold &cold = cold_[id];
    panic_if(hot.seq != cold.di.seq,
             "hot/cold seq mismatch for slot %u: %llu vs %llu", id,
             (unsigned long long)hot.seq,
             (unsigned long long)cold.di.seq);
    panic_if(hot.op != cold.di.op,
             "hot/cold opcode mismatch for slot %u", id);
    panic_if(hot.sliceUnconfident != cold.slice.unconfident,
             "hot/cold PUBS priority bit mismatch for slot %u", id);
#endif
}

void
Pipeline::squashYoungerThan(uint32_t branchId)
{
    // Drop not-yet-dispatched wrong-path instructions.
    for (uint32_t id : frontendQueue_) {
        if (PUBS_UNLIKELY(pipeview_ != nullptr))
            recordSquashed(id);
        hot_[id].valid = false;
        freeIds_.push_back(id);
        ++stats_.squashed;
    }
    frontendQueue_.clear();

    // Walk the ROB from the tail, undoing dispatch effects in reverse
    // program order until the mispredicted branch is the youngest.
    while (!rob_.empty() && rob_.tail() != branchId) {
        uint32_t id = rob_.tail();
        InflightHot &hot = hot_[id];
        panic_if(!hot.wrongPath, "squashing a correct-path instruction");
        if (hot.inIq) {
            iq::IssueQueue &queue = *iqs_[hot.iqIndex];
            if (ageMatrix_ && hot.iqIndex == 0) {
                uint32_t slot = queue.slotOf(id);
                panic_if(slot == iq::IssueQueue::noSlot,
                         "squashed inst %u not resident in its queue", id);
                ageMatrix_->remove(slot);
            }
            queue.remove(id);
            hot.inIq = false;
        }
        if (hot.inLsq)
            lsq_.removeYoungest(id);
        if (hot.physDst != invalidPhysReg) {
            rename_.rollback(hot.dstCls, cold_[id].di.dst, hot.physDst,
                             hot.prevPhysDst);
        }
        if (PUBS_UNLIKELY(pipeview_ != nullptr))
            recordSquashed(id);
        releaseDeps(id);
        hot.valid = false;
        freeIds_.push_back(id);
        rob_.popTail();
        ++stats_.squashed;
    }
}

void
Pipeline::doCommit()
{
    unsigned committed = 0;
    while (committed < params_.commitWidth && !rob_.empty() &&
           stats_.committed < runTarget_) {
        uint32_t id = rob_.head();
        InflightHot &hot = hot_[id];
        if (!hot.issued || hot.doneCycle > now_)
            break;

        assertHotColdAgree(id);
        InflightCold &cold = cold_[id];

        if (hot.physDst != invalidPhysReg)
            rename_.freeReg(hot.dstCls, hot.prevPhysDst);
        if (hot.inLsq) {
            lsq_.remove(id);
            if (isa::isStore(hot.op)) {
                recentStores_.insert(cold.di.effAddr, cold.di.memSize,
                                     hot.doneCycle);
            }
        }
        if (modeSwitch_)
            modeSwitch_->noteCommit();
        panic_if(hot.wrongPath, "committing a wrong-path instruction");
        if (PUBS_UNLIKELY(checker_ != nullptr)) {
            ++stats_.checkerCommits;
            std::string diag = checker_->check(cold.di, now_);
            if (!diag.empty()) {
                ++stats_.checkerDivergences;
                reportViolation(checkPolicy_, SimError::Kind::Check,
                                diag + debugSnapshot());
            }
        }
        if (PUBS_UNLIKELY(hot.op == Opcode::Halt))
            haltCommitted_ = true;

        if (PUBS_UNLIKELY(telemetry_ != nullptr)) {
            telemetry_->noteCommit(hot.sliceUnconfident, hot.trueSlice);
            if (cold.di.isCondBranch()) {
                telemetry_->noteBranchCommit(cold.di.pc,
                                             hot.sliceUnconfident,
                                             hot.condPredictionCorrect);
            }
        }
        if (PUBS_UNLIKELY(pipeview_ != nullptr)) {
            cold.di.stamps.retire = now_;
            pipeview_->record(cold.di);
        }

        releaseDeps(id);
        hot.valid = false;
        freeIds_.push_back(id);
        rob_.popHead();
        ++stats_.committed;
        ++committed;
    }
}

bool
Pipeline::srcsReady(const InflightHot &hot, Cycle &readyAt) const
{
    readyAt = 0;
    if (hot.physSrc1 != invalidPhysReg) {
        Cycle r = regReadyCycle(hot.src1Cls, hot.physSrc1);
        if (r > now_)
            return false;
        readyAt = std::max(readyAt, r);
    }
    if (hot.physSrc2 != invalidPhysReg) {
        Cycle r = regReadyCycle(hot.src2Cls, hot.physSrc2);
        if (r > now_)
            return false;
        readyAt = std::max(readyAt, r);
    }
    return true;
}

void
Pipeline::issueInst(uint32_t id)
{
    InflightHot &hot = hot_[id];
    const isa::OpInfo &info = isa::opInfo(hot.op);

    hot.issued = true;
    stats_.iqWaitSum += now_ - hot.dispatchCycle;
    stats_.iqWait.sample(now_ - hot.dispatchCycle);
    ++stats_.issued;
    if (PUBS_UNLIKELY(telemetry_ != nullptr) && hot.sliceUnconfident) {
        telemetry_->noteSliceIssue(hot.priorityEntry,
                                   now_ - hot.feReadyCycle);
    }

    Cycle done;
    if (isa::isLoad(hot.op)) {
        const trace::DynInst &di = cold_[id].di;
        Lsq::Dep dep =
            lsq_.olderStoreDependenceAt(hot.lsqPos, di.effAddr, di.memSize);
        panic_if(dep.kind == Lsq::Dep::Wait,
                 "load issued with unresolved older store");
        Cycle aguDone = now_ + 1;
        bool sbForward = false;
        Cycle sbReady = 0;
        if (dep.kind == Lsq::Dep::None) {
            // Post-commit store buffer: the youngest covering store
            // forwards (newest-first search over live entries).
            Cycle sbDone = 0;
            sbForward =
                recentStores_.coveringStore(di.effAddr, di.memSize, sbDone);
#ifndef NDEBUG
            Cycle refDone = 0;
            bool refForward = recentStores_.coveringStoreReference(
                di.effAddr, di.memSize, refDone);
            panic_if(refForward != sbForward ||
                         (sbForward && refDone != sbDone),
                     "store buffer live-entry lookup diverges from "
                     "full-depth scan");
#endif
            if (sbForward)
                sbReady = sbDone + Lsq::forwardLatency;
        }
        if (dep.kind == Lsq::Dep::Forward) {
            done = std::max(aguDone, dep.readyCycle);
        } else if (sbForward) {
            done = std::max(aguDone, sbReady);
        } else if (hot.wrongPath && di.effAddr == 0) {
            // Wrong-path load with no address approximation: charge an
            // L1 hit without touching the cache.
            done = aguDone + params_.memory.l1d.hitLatency;
        } else {
            mem::DataAccess res = mem_->dataAccess(di.effAddr, false,
                                                   aguDone);
            ++stats_.l1dAccesses;
            if (!res.l1Hit)
                ++stats_.l1dMisses;
            if (res.llcMiss) {
                ++stats_.llcMisses;
                if (modeSwitch_)
                    modeSwitch_->noteLlcMiss();
            }
            hot.missLevel = res.llcMiss ? 2 : (res.l1Hit ? 0 : 1);
            done = res.readyCycle;
        }
        lsq_.markDoneAt(hot.lsqPos, id, done);
    } else if (isa::isStore(hot.op)) {
        Cycle aguDone = now_ + 1;
        if (!hot.wrongPath) {
            // Wrong-path stores never reach the cache (they would only
            // write at commit); correct-path stores probe it when they
            // issue, modelling an eagerly draining store buffer.
            const trace::DynInst &di = cold_[id].di;
            mem::DataAccess res = mem_->dataAccess(di.effAddr, true,
                                                   aguDone);
            ++stats_.l1dAccesses;
            if (!res.l1Hit)
                ++stats_.l1dMisses;
            if (res.llcMiss) {
                ++stats_.llcMisses;
                if (modeSwitch_)
                    modeSwitch_->noteLlcMiss();
            }
        }
        done = aguDone;
        lsq_.markDoneAt(hot.lsqPos, id, done);
        // The store's data is visible to the dependence check from the
        // next select snapshot on: give parked loads another look.
        scheduleLoadRecheck();
    } else {
        done = now_ + info.latency;
    }
    hot.doneCycle = done;
    if (PUBS_UNLIKELY(pipeview_ != nullptr)) {
        cold_[id].di.stamps.issue = now_;
        cold_[id].di.stamps.complete = done;
    }

    if (hot.physDst != invalidPhysReg)
        setRegReady(hot.dstCls, hot.physDst, done);
    wakeDependents(id, done);

    // Branch resolution: train the confidence table with the outcome,
    // and schedule the misprediction squash for the completion cycle.
    if (isa::isCondBranch(hot.op) && sliceUnit_ && !hot.wrongPath)
        confEvents_.push({done, cold_[id].di.pc,
                          hot.condPredictionCorrect});
    if (PUBS_UNLIKELY(hot.isMispredict)) {
        Cycle fetchCycle = cold_[id].fetchCycle;
        stats_.misspecPenaltySum += done - fetchCycle;
        ++stats_.misspecPenaltyCount;
        stats_.misspecPenalty.sample(done - fetchCycle);
        squashEvents_.push({done, id});
        if (telemetry_) {
            telemetry_->noteMispredictResolved(cold_[id].di.pc,
                                               done - fetchCycle);
            traceTrueSlice(id);
        }
    }
}

void
Pipeline::traceTrueSlice(uint32_t branchId)
{
    const InflightHot &branch = hot_[branchId];
    // Snapshot the ROB in program order and locate the branch.
    static thread_local std::vector<uint32_t> ids;
    ids.clear();
    rob_.forEach([](uint32_t id) { ids.push_back(id); });
    size_t branchPos = SIZE_MAX;
    for (size_t i = ids.size(); i-- > 0;) {
        if (ids[i] == branchId) {
            branchPos = i;
            break;
        }
    }
    if (branchPos == SIZE_MAX)
        return; // resolved after leaving the window

    // Physical registers whose producers belong to the slice. Renaming
    // guarantees at most one in-flight producer per physical register.
    static thread_local std::vector<bool> wantInt, wantFp;
    wantInt.assign(params_.intPhysRegs, false);
    wantFp.assign(params_.fpPhysRegs, false);
    auto want = [&](isa::RegClass cls, PhysRegId reg) {
        if (reg == invalidPhysReg || cls == isa::RegClass::None)
            return;
        (cls == isa::RegClass::Fp ? wantFp : wantInt)[(size_t)reg] = true;
    };
    auto wanted = [&](isa::RegClass cls, PhysRegId reg) {
        if (reg == invalidPhysReg || cls == isa::RegClass::None)
            return false;
        return (bool)(cls == isa::RegClass::Fp ? wantFp
                                               : wantInt)[(size_t)reg];
    };

    want(branch.src1Cls, branch.physSrc1);
    want(branch.src2Cls, branch.physSrc2);

    // Walk older instructions youngest-first, growing the register set
    // transitively: the true dynamic backward slice within the window.
    Pc branchPc = cold_[branchId].di.pc;
    for (size_t i = branchPos; i-- > 0;) {
        InflightHot &hot = hot_[ids[i]];
        if (!hot.valid || hot.physDst == invalidPhysReg)
            continue;
        if (!wanted(hot.dstCls, hot.physDst))
            continue;
        if (!hot.trueSlice) {
            hot.trueSlice = true;
            telemetry_->noteTrueSliceInst(branchPc, hot.sliceUnconfident);
        }
        want(hot.src1Cls, hot.physSrc1);
        want(hot.src2Cls, hot.physSrc2);
    }
}

iq::IssueQueue &
Pipeline::queueFor(const trace::DynInst &di)
{
    if (iqs_.size() == 1)
        return *iqs_[0];
    return *iqs_[(size_t)fuTypeOf(isa::opClass(di.op))];
}

void
Pipeline::doIssue()
{
    unsigned grants = 0;
    for (size_t q = 0; q < iqs_.size(); ++q) {
        if (grants >= params_.issueWidth)
            break;
        bool useAge = ageMatrix_ != nullptr && q == 0;
        issueFromQueue(*iqs_[q], useAge, grants);
    }
}

void
Pipeline::issueFromQueue(iq::IssueQueue &queue, bool useAgeMatrix,
                         unsigned &grants)
{
    if (!queue.hasReady())
        return;

    const auto &slots = queue.prioritySlots();
    const auto &words = queue.readyWords();

    // Wakeup: the scoreboard already marked operand-complete entries in
    // the queue's ready bitmap; snapshot them in positional order.
    // Loads additionally clear the store-dependence hurdle here — a
    // blocked load is parked off the bitmap until a store issue
    // schedules a recheck, so idle queues are recognised in O(1).
    std::fill(readyMask_.begin(), readyMask_.end(), 0);
    static thread_local std::vector<uint32_t> readySlots;
    readySlots.clear();
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
            uint32_t s = (uint32_t)(w * 64) + countTrailingZeros(word);
            word &= word - 1;
            const iq::IqSlot &slot = slots[s];
            const InflightHot &hot = hot_[slot.clientId];
#ifndef NDEBUG
            Cycle debugReadyAt;
            panic_if(!slot.valid || !srcsReady(hot, debugReadyAt),
                     "ready bit set for unready slot %u", s);
#endif
            if (isa::isLoad(hot.op)) {
                const trace::DynInst &di = cold_[slot.clientId].di;
                Lsq::Dep dep = lsq_.olderStoreDependenceAt(
                    hot.lsqPos, di.effAddr, di.memSize);
#ifndef NDEBUG
                Lsq::Dep ref = lsq_.olderStoreDependence(
                    slot.clientId, di.effAddr, di.memSize);
                panic_if(ref.kind != dep.kind ||
                             (dep.kind == Lsq::Dep::Forward &&
                              ref.readyCycle != dep.readyCycle),
                         "indexed LSQ dependence diverges from scan");
#endif
                if (dep.kind == Lsq::Dep::Wait) {
                    queue.clearReadySlot(s);
                    memBlockedLoads_.push_back({slot.clientId, hot.seq});
                    continue;
                }
            }
            readySlots.push_back(s);
            readyMask_[s / 64] |= (uint64_t)1 << (s % 64);
        }
    }

    static thread_local std::vector<uint32_t> grantedIds;
    static thread_local std::vector<bool> granted;
    grantedIds.clear();
    granted.assign(slots.size(), false);

    auto tryGrant = [&](uint32_t s) {
        if (granted[s] || grants >= params_.issueWidth)
            return;
        const isa::OpInfo &info = isa::opInfo(hot_[slots[s].clientId].op);
        FuType fu = fuTypeOf(info.cls);
        unsigned busy = info.unpipelined ? info.latency : 1;
        if (!fuPool_.acquire(fu, now_, busy))
            return;
        granted[s] = true;
        grantedIds.push_back(slots[s].clientId);
        ++grants;
        issueInst(slots[s].clientId);
    };

    // The age matrix promotes the single oldest ready instruction ahead
    // of the positional scan (Section V-G1).
    if (useAgeMatrix) {
        int oldest = ageMatrix_->oldestReady(readyMask_);
        if (oldest >= 0)
            tryGrant((uint32_t)oldest);
    }

    // Section III-C1's idealised flexible-priority select: a first
    // positional pass restricted to ready unconfident-slice
    // instructions, regardless of where they sit in the queue.
    if (params_.idealPrioritySelect) {
        for (uint32_t s : readySlots) {
            if (hot_[slots[s].clientId].sliceUnconfident)
                tryGrant(s);
        }
    }

    // Positional (head-first) select.
    for (uint32_t s : readySlots)
        tryGrant(s);

    if (grantedIds.size() < readySlots.size())
        ++stats_.issueConflictCycles;

    // Physically vacate granted entries after the scan (keeps slot
    // indices stable during selection, as in the real two-phase
    // select/payload pipeline).
    for (uint32_t id : grantedIds) {
        if (useAgeMatrix) {
            uint32_t s = queue.slotOf(id);
            panic_if(s == iq::IssueQueue::noSlot,
                     "granted inst %u not resident in its queue", id);
            ageMatrix_->remove(s);
        }
        queue.remove(id);
        hot_[id].inIq = false;
    }
}

void
Pipeline::doDispatch()
{
    unsigned dispatched = 0;
    while (dispatched < params_.decodeWidth && !frontendQueue_.empty()) {
        uint32_t id = frontendQueue_.front();
        InflightHot &hot = hot_[id];
        if (hot.feReadyCycle > now_)
            break;

        assertHotColdAgree(id);
        InflightCold &cold = cold_[id];
        const trace::DynInst &di = cold.di;
        isa::Inst staticInst{di.op, di.dst, di.src1, di.src2, 0};

        if (rob_.full()) {
            ++stats_.robFullStallCycles;
            cycleBlock_ = DispatchBlock::RobFull;
            break;
        }
        if (di.isMem() && lsq_.full()) {
            cycleBlock_ = DispatchBlock::LsqFull;
            break;
        }

        isa::RegClass dstCls = isa::dstRegClass(staticInst);
        if (di.dst != invalidReg && dstCls != isa::RegClass::None &&
            rename_.freeRegs(dstCls) == 0) {
            cycleBlock_ = DispatchBlock::RenameFull;
            break;
        }

        bool isNop = isa::opClass(di.op) == OpClass::Nop;
        if (!isNop) {
            iq::IssueQueue &queue = queueFor(di);
            hot.iqIndex = iqs_.size() == 1
                              ? 0
                              : (uint8_t)fuTypeOf(isa::opClass(di.op));

            bool pubsOn = params_.usePubs && queue.priorityEntries() > 0;
            bool pubsActive = pubsOn && modeSwitch_->pubsEnabled();
            bool wantPriority = pubsActive && hot.sliceUnconfident;

            if (pubsOn && !pubsActive) {
                // Mode switch disabled PUBS: the whole IQ is used
                // uniformly via weighted random free-list choice.
                if (queue.occupancy() >= queue.capacity()) {
                    ++stats_.iqFullStallCycles;
                    cycleBlock_ = DispatchBlock::IqFull;
                    break;
                }
                queue.dispatchUniform(id, hot.seq, rng_);
            } else if (wantPriority) {
                if (queue.canDispatch(true)) {
                    queue.dispatch(id, hot.seq, true);
                    hot.priorityEntry = true;
                } else if (!params_.pubs.stallPolicy &&
                           queue.canDispatch(false)) {
                    // Non-stall policy: fall back to a normal entry.
                    queue.dispatch(id, hot.seq, false);
                } else {
                    ++stats_.priorityStallCycles;
                    cycleBlock_ = DispatchBlock::PriorityStall;
                    break;
                }
            } else {
                if (!queue.canDispatch(false)) {
                    ++stats_.iqFullStallCycles;
                    cycleBlock_ = DispatchBlock::IqFull;
                    break;
                }
                queue.dispatch(id, hot.seq, false);
            }

            if (hot.priorityEntry)
                ++stats_.priorityDispatches;
            else
                ++stats_.normalDispatches;

            if (ageMatrix_ && hot.iqIndex == 0) {
                uint32_t s = queue.slotOf(id);
                panic_if(s == iq::IssueQueue::noSlot,
                         "dispatched inst %u not resident in its queue",
                         id);
                ageMatrix_->dispatch(s);
            }
            hot.inIq = true;
        }

        // Rename.
        if (di.src1 != invalidReg) {
            hot.src1Cls = isa::srcRegClass(staticInst, 0);
            hot.physSrc1 = rename_.mapOf(hot.src1Cls, di.src1);
        }
        if (di.src2 != invalidReg) {
            hot.src2Cls = isa::srcRegClass(staticInst, 1);
            hot.physSrc2 = rename_.mapOf(hot.src2Cls, di.src2);
        }
        if (di.dst != invalidReg && dstCls != isa::RegClass::None) {
            hot.dstCls = dstCls;
            hot.physDst =
                rename_.renameDst(dstCls, di.dst, hot.prevPhysDst);
            setRegReady(dstCls, hot.physDst, neverCycle);
            regProducer(dstCls, hot.physDst) = id;
            regProducerSeq(dstCls, hot.physDst) = hot.seq;
        }

        if (di.isMem()) {
            hot.lsqPos = lsq_.push(id, di.isStore(), di.effAddr,
                                   di.memSize);
            hot.inLsq = true;
        }

        if (!isNop)
            setupScoreboard(id);

        rob_.push(id);
        hot.dispatched = true;
        hot.dispatchCycle = now_;
        cycleDispatched_ = true;
        if (!hot.wrongPath)
            cycleDispatchedCorrect_ = true;
        if (PUBS_UNLIKELY(pipeview_ != nullptr)) {
            cold.di.stamps.rename = now_;
            cold.di.stamps.dispatch = now_;
        }

        if (isNop) {
            // Nops bypass the IQ: complete immediately.
            hot.issued = true;
            hot.doneCycle = now_ + 1;
            if (PUBS_UNLIKELY(pipeview_ != nullptr)) {
                cold.di.stamps.issue = now_;
                cold.di.stamps.complete = now_ + 1;
            }
        }

        frontendQueue_.pop_front();
        ++dispatched;
    }
}

void
Pipeline::doFetch()
{
    if (fetchBlockedOnBranch_ || now_ < fetchSuspendedUntil_)
        return;

    unsigned fetched = 0;
    while (fetched < params_.fetchWidth) {
        if (frontendQueue_.size() >= frontendCapacity_)
            break;

        // Determine the next PC without consuming anything yet.
        Pc fetchPc;
        if (wrongPathActive_) {
            if (wrongPathPc_ == 0)
                break; // wrong path ran off a resolvable edge: idle
            fetchPc = wrongPathPc_;
        } else {
            if (!havePending_) {
                if (sourceExhausted_ || !source_.next(pending_)) {
                    sourceExhausted_ = true;
                    break;
                }
                havePending_ = true;
            }
            fetchPc = pending_.pc;
        }

        // Instruction cache.
        uint64_t llcBefore = mem_->llcMisses();
        Cycle icReady = mem_->fetchAccess(fetchPc, now_);
        stats_.llcMisses += mem_->llcMisses() - llcBefore;
        if (icReady > now_ + params_.memory.l1i.hitLatency) {
            // I-cache miss: fetch resumes when the line arrives.
            fetchSuspendedUntil_ = icReady;
            suspendReason_ = SuspendReason::ICache;
            break;
        }

        bool wpEndGroup = false;
        trace::DynInst di;
        bool onWrongPath = wrongPathActive_;
        if (onWrongPath) {
            if (!makeWrongPathInst(di)) {
                break;
            }
            wpEndGroup = di.isBranch() && di.taken;
        } else {
            di = pending_;
            havePending_ = false;
        }
        di.seq = fetchSeq_++;

        // Allocate the in-flight record: reset all three SoA slices,
        // then stamp the hot copies (seq, opcode, priority bit) that
        // the scheduler reads without touching the cold record.
        panic_if(freeIds_.empty(), "in-flight ring exhausted");
        uint32_t id = freeIds_.back();
        freeIds_.pop_back();
        ++fetchCounter_;
        InflightHot &hot = hot_[id];
        panic_if(hot.valid, "in-flight slot %u still live", id);
        hot = InflightHot{};
        deps_[id] = InflightDeps{};
        InflightCold &cold = cold_[id];
        cold.di = di;
        cold.slice = pubs::SliceDecision{};
        cold.fetchCycle = now_;
        hot.valid = true;
        hot.seq = di.seq;
        hot.op = di.op;
        hot.wrongPath = onWrongPath;
        hot.feReadyCycle = now_ + params_.frontendDepth;
        if (PUBS_UNLIKELY(pipeview_ != nullptr)) {
            cold.di.stamps.fetch = now_;
            cold.di.stamps.decode = now_ + 1;
        }

        // PUBS slice classification happens in the in-order front end —
        // including on the wrong path, exactly as the hardware would.
        if (sliceUnit_) {
            cold.slice = sliceUnit_->decode(cold.di);
            hot.sliceUnconfident = cold.slice.unconfident;
        }

        bool endGroup = false;
        bool blockFetch = false;
        bool btbBubble = false;
        if (!onWrongPath) {
            // Remember data addresses so wrong-path replays of this
            // static instruction can approximate their accesses.
            if (di.isMem() && staticProgram_)
                lastMemAddr_[staticProgram_->indexOf(di.pc)] = di.effAddr;
            fetchControl(hot, cold.di, endGroup, blockFetch, btbBubble);
        } else {
            endGroup = wpEndGroup;
            ++stats_.wrongPathFetched;
        }

        frontendQueue_.push_back(id);
        ++fetched;
        ++stats_.fetched;

        if (blockFetch) {
            // No static program available: degrade to redirect-stall
            // modelling (fetch idles until the branch resolves).
            fetchBlockedOnBranch_ = true;
            break;
        }
        if (btbBubble) {
            ++stats_.btbMissBubbles;
            fetchSuspendedUntil_ = now_ + params_.btbMissPenalty;
            suspendReason_ = SuspendReason::Btb;
            break;
        }
        if (endGroup)
            break;
        if (!onWrongPath && wrongPathActive_)
            break; // just switched onto the wrong path
    }
}

void
Pipeline::fetchControl(InflightHot &hot, const trace::DynInst &di,
                       bool &endGroup, bool &blockFetch, bool &btbBubble)
{
    auto enterWrongPath = [this, &blockFetch](Pc wrongPc) {
        if (staticProgram_) {
            wrongPathActive_ = true;
            wrongPathPc_ =
                staticProgram_->contains(wrongPc) ? wrongPc : 0;
        } else {
            blockFetch = true;
        }
    };

    if (di.isCondBranch()) {
        ++stats_.condBranches;
        bool predTaken = predictor_->predict(di.pc);
        predictor_->update(di.pc, di.taken);
        hot.condPredictionCorrect = predTaken == di.taken;
        hot.isMispredict = !hot.condPredictionCorrect;
        if (predTaken && !btb_->lookup(di.pc))
            btbBubble = true;
        if (di.taken)
            btb_->update(di.pc, di.nextPc);
        if (hot.isMispredict) {
            ++stats_.condMispredicts;
            // The wrong path is the direction the predictor chose.
            Pc wrongPc;
            if (predTaken) {
                // Predicted taken, actually fell through: the machine
                // fetches from the branch target.
                size_t index = staticProgram_
                                   ? staticProgram_->indexOf(di.pc)
                                   : 0;
                wrongPc = staticProgram_
                              ? staticProgram_->pcOf(
                                    (size_t)staticProgram_->at(index).imm)
                              : 0;
            } else {
                wrongPc = di.fallthroughPc();
            }
            enterWrongPath(wrongPc);
        } else if (di.taken) {
            endGroup = true;
        }
    } else if (di.op == Opcode::J || di.op == Opcode::Jal) {
        if (!btb_->lookup(di.pc))
            btbBubble = true;
        btb_->update(di.pc, di.nextPc);
        if (di.op == Opcode::Jal)
            ras_->push(di.pc + instBytes);
        endGroup = true;
    } else if (di.op == Opcode::Jr) {
        ++stats_.indirectJumps;
        Pc predTarget = ras_->pop();
        if (predTarget != di.nextPc) {
            ++stats_.indirectMispredicts;
            hot.isMispredict = true;
            if (predTarget != 0) {
                enterWrongPath(predTarget);
            } else {
                // No predicted target at all: the front end idles.
                if (staticProgram_) {
                    wrongPathActive_ = true;
                    wrongPathPc_ = 0;
                } else {
                    blockFetch = true;
                }
            }
        } else {
            endGroup = true;
        }
    }
}

bool
Pipeline::makeWrongPathInst(trace::DynInst &out)
{
    panic_if(!staticProgram_, "wrong-path fetch without a program");
    if (wrongPathPc_ == 0 || !staticProgram_->contains(wrongPathPc_)) {
        wrongPathPc_ = 0;
        return false;
    }
    Pc pc = wrongPathPc_;
    size_t index = staticProgram_->indexOf(pc);
    const isa::Inst &si = staticProgram_->at(index);

    out = trace::DynInst{};
    out.pc = pc;
    out.op = si.op;
    out.dst = si.dst;
    out.src1 = si.src1;
    out.src2 = si.src2;
    out.nextPc = pc + instBytes;

    if (isa::isMem(si.op)) {
        out.effAddr = lastMemAddr_[index];
        out.memSize =
            (si.op == Opcode::Lw || si.op == Opcode::Sw) ? 4 : 8;
    } else if (isa::isCondBranch(si.op)) {
        // Follow the predictor (without training it: outcomes of
        // wrong-path branches are unknown and never update state).
        bool predTaken = predictor_->predict(pc);
        out.taken = predTaken;
        out.nextPc = predTaken
                         ? staticProgram_->pcOf((size_t)si.imm)
                         : pc + instBytes;
    } else if (si.op == Opcode::J || si.op == Opcode::Jal) {
        out.taken = true;
        out.nextPc = staticProgram_->pcOf((size_t)si.imm);
    } else if (si.op == Opcode::Jr) {
        // Unpredictable indirect target on the wrong path: emit the jump
        // and stop fetching until the squash.
        out.taken = true;
        wrongPathPc_ = 0;
        return true;
    } else if (si.op == Opcode::Halt) {
        // A wrong-path halt never commits; stop fetching junk.
        wrongPathPc_ = 0;
        return true;
    }

    wrongPathPc_ = staticProgram_->contains(out.nextPc) ? out.nextPc : 0;
    return true;
}

std::string
Pipeline::debugSnapshot() const
{
    std::ostringstream out;
    out << "pipeline state (cycle " << now_ << "):\n"
        << "  committed " << stats_.committed << ", fetched "
        << stats_.fetched << " (" << stats_.wrongPathFetched
        << " wrong-path)\n"
        << "  ROB " << rob_.occupancy() << "/" << rob_.capacity()
        << ", LSQ " << lsq_.occupancy() << "/" << params_.lsqEntries
        << ", front end " << frontendQueue_.size() << "/"
        << frontendCapacity_ << "\n";
    out << "  IQ";
    for (size_t q = 0; q < iqs_.size(); ++q) {
        out << (q ? " |" : "") << " " << iqs_[q]->occupancy() << "/"
            << iqs_[q]->capacity();
        if (unsigned pe = iqs_[q]->priorityEntries())
            out << " (" << pe << " priority)";
    }
    out << "\n  rename free " << rename_.freeRegs(isa::RegClass::Int)
        << " int, " << rename_.freeRegs(isa::RegClass::Fp) << " fp\n"
        << "  fetch "
        << (fetchBlockedOnBranch_
                ? "blocked on branch"
                : now_ < fetchSuspendedUntil_ ? "suspended" : "running")
        << (wrongPathActive_ ? ", on the wrong path" : "");
    if (havePending_) {
        out << ", next pc 0x" << std::hex << pending_.pc << std::dec;
    }
    out << "\n";
    return out.str();
}

void
Pipeline::fillStats(StatGroup &group) const
{
    const PipelineStats &s = stats_;
    group.add("cycles", (double)s.cycles, "simulated clock cycles");
    group.add("committed", (double)s.committed, "instructions committed");
    group.add("ipc", s.ipc(), "committed instructions per cycle");
    group.add("cond_branches", (double)s.condBranches);
    group.add("cond_mispredicts", (double)s.condMispredicts);
    group.add("branch_mpki", s.branchMpki(),
              "mispredictions per kilo instructions");
    group.add("llc_misses", (double)s.llcMisses);
    group.add("llc_mpki", s.llcMpki(), "LLC misses per kilo instructions");
    group.add("l1d_accesses", (double)s.l1dAccesses);
    group.add("l1d_misses", (double)s.l1dMisses);
    group.add("btb_miss_bubbles", (double)s.btbMissBubbles);
    group.add("issued", (double)s.issued);
    group.add("issue_conflict_cycles", (double)s.issueConflictCycles,
              "cycles a ready instruction was left unissued");
    group.add("avg_iq_wait",
              s.issued ? (double)s.iqWaitSum / (double)s.issued : 0.0,
              "mean cycles between dispatch and issue");
    group.add("avg_misspec_penalty", s.avgMisspecPenalty(),
              "mean fetch-to-resolution cycles of mispredicted branches");
    group.add("p50_misspec_penalty",
              (double)s.misspecPenalty.percentile(0.5));
    group.add("p90_misspec_penalty",
              (double)s.misspecPenalty.percentile(0.9));
    group.add("avg_iq_occupancy", s.iqOccupancy.mean(),
              "mean occupied IQ entries per cycle");
    group.add("wrong_path_fetched", (double)s.wrongPathFetched);
    group.add("squashed", (double)s.squashed);
    group.add("priority_dispatches", (double)s.priorityDispatches);
    group.add("priority_stall_cycles", (double)s.priorityStallCycles);
    group.add("iq_full_stall_cycles", (double)s.iqFullStallCycles);
    group.add("rob_full_stall_cycles", (double)s.robFullStallCycles);
    if (sliceUnit_) {
        group.add("unconfident_branch_rate",
                  sliceUnit_->unconfidentBranchRate(),
                  "unconfident / dynamic conditional branches");
        group.add("slice_insts", (double)sliceUnit_->sliceInsts());
        group.add("unconfident_slice_insts",
                  (double)sliceUnit_->unconfidentSliceInsts());
    }
    if (modeSwitch_) {
        group.add("pubs_enabled_fraction", modeSwitch_->enabledFraction(),
                  "fraction of mode-switch intervals with PUBS on");
    }
    if (checker_) {
        group.add("checker_commits", (double)s.checkerCommits,
                  "commits cross-validated by the lockstep checker");
        group.add("checker_divergences", (double)s.checkerDivergences);
    }
    if (auditPolicy_ != CheckPolicy::Off) {
        group.add("audits_run", (double)s.auditsRun,
                  "structural invariant audit passes");
        group.add("audit_violations", (double)s.auditViolations);
    }
}

void
Pipeline::fillRegistry(StatRegistry &registry) const
{
    StatGroup &pipeline = registry.group("pipeline");
    fillStats(pipeline);
    pipeline.addHistogram(
        "misspec_penalty", stats_.misspecPenalty,
        "fetch-to-resolution cycles of mispredicted branches");

    stats_.cpi.fill(registry.group("cpi_stack"), stats_.committed);

    StatGroup &iq = registry.group("iq");
    size_t capacity = 0;
    unsigned priorityEntries = 0;
    for (const auto &queue : iqs_) {
        capacity += queue->capacity();
        priorityEntries += queue->priorityEntries();
    }
    iq.add("queues", (double)iqs_.size());
    iq.add("capacity", (double)capacity);
    iq.add("priority_entries", (double)priorityEntries,
           "entries reserved for unconfident-slice instructions");
    iq.addHistogram("occupancy", stats_.iqOccupancy,
                    "occupied entries per cycle");
    iq.addHistogram("wait", stats_.iqWait,
                    "dispatch-to-issue cycles of issued instructions");

    StatGroup &mem = registry.group("mem");
    for (const mem::Cache *cache :
         {&mem_->l1i(), &mem_->l1d(), &mem_->l2()}) {
        std::string prefix = cache->params().name;
        mem.add(prefix + "_accesses", (double)cache->demandAccesses());
        mem.add(prefix + "_misses", (double)cache->demandMisses());
        mem.add(prefix + "_miss_rate", cache->missRate());
        mem.add(prefix + "_prefetch_fills",
                (double)cache->prefetchFills());
        mem.add(prefix + "_useful_prefetches",
                (double)cache->usefulPrefetches());
    }
    mem.add("llc_misses", (double)mem_->llcMisses());

    if (sliceUnit_) {
        StatGroup &pubs = registry.group("pubs");
        pubs.add("dynamic_branches",
                 (double)sliceUnit_->dynamicBranches());
        pubs.add("unconfident_branches",
                 (double)sliceUnit_->unconfidentBranches());
        pubs.add("unconfident_branch_rate",
                 sliceUnit_->unconfidentBranchRate(),
                 "unconfident / dynamic conditional branches");
        pubs.add("slice_insts", (double)sliceUnit_->sliceInsts(),
                 "decoded insts predicted inside some branch slice");
        pubs.add("unconfident_slice_insts",
                 (double)sliceUnit_->unconfidentSliceInsts(),
                 "... inside an unconfident branch slice");
        if (modeSwitch_) {
            pubs.add("mode_intervals", (double)modeSwitch_->intervals());
            pubs.add("mode_enabled_intervals",
                     (double)modeSwitch_->enabledIntervals());
            pubs.add("mode_enabled_fraction",
                     modeSwitch_->enabledFraction(),
                     "fraction of mode-switch intervals with PUBS on");
        }
        sliceUnit_->confTab().fillStats(registry.group("pubs.conf_tab"));
    }

    if (telemetry_) {
        telemetry_->fillSliceStats(registry.group("pubs.telemetry"));
        telemetry_->fillBranchProfile(registry.group("branch_profile"));
        telemetry_->fillHeartbeats(registry.group("heartbeat"));
        if (modeSwitch_) {
            telemetry_->fillModeTransitions(
                registry.group("mode_transitions"));
        }
    }
}

} // namespace pubs::cpu
