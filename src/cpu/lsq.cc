#include "cpu/lsq.hh"

#include "common/logging.hh"

namespace pubs::cpu
{

Lsq::Lsq(unsigned entries) : capacity_(entries)
{
    fatal_if(entries == 0, "LSQ needs at least one entry");
}

void
Lsq::push(uint32_t id, bool isStore, Addr addr, unsigned size)
{
    panic_if(full(), "push to full LSQ");
    entries_.push_back({id, isStore, addr, size, false, 0});
}

void
Lsq::markDone(uint32_t id, Cycle doneCycle)
{
    for (auto &entry : entries_) {
        if (entry.id == id) {
            entry.done = true;
            entry.doneCycle = doneCycle;
            return;
        }
    }
    panic("markDone of id %u not in LSQ", id);
}

void
Lsq::remove(uint32_t id)
{
    panic_if(entries_.empty(), "remove from empty LSQ");
    panic_if(entries_.front().id != id,
             "LSQ remove of %u out of order (head is %u)", id,
             entries_.front().id);
    entries_.pop_front();
}

void
Lsq::removeYoungest(uint32_t id)
{
    panic_if(entries_.empty(), "removeYoungest from empty LSQ");
    panic_if(entries_.back().id != id,
             "LSQ removeYoungest of %u but tail is %u", id,
             entries_.back().id);
    entries_.pop_back();
}

Lsq::Dep
Lsq::olderStoreDependence(uint32_t loadId, Addr addr, unsigned size) const
{
    Dep dep;
    for (const auto &entry : entries_) {
        if (entry.id == loadId)
            break; // everything after is younger
        if (!entry.isStore)
            continue;
        bool overlap = entry.addr < addr + size &&
                       addr < entry.addr + entry.size;
        if (!overlap)
            continue;
        if (!entry.done) {
            // Must wait for the store to execute; the youngest matching
            // store wins, so keep scanning.
            dep.kind = Dep::Wait;
            dep.readyCycle = 0;
        } else if (entry.addr == addr && entry.size == size) {
            dep.kind = Dep::Forward;
            dep.readyCycle = entry.doneCycle + forwardLatency;
        } else {
            // Partial overlap with a completed store: conservatively
            // treat like a forward from its completion time (the cache
            // line holds the merged data by then).
            dep.kind = Dep::Forward;
            dep.readyCycle = entry.doneCycle + forwardLatency;
        }
    }
    return dep;
}

std::vector<uint32_t>
Lsq::residentIds() const
{
    std::vector<uint32_t> ids;
    ids.reserve(entries_.size());
    for (const Entry &entry : entries_)
        ids.push_back(entry.id);
    return ids;
}

} // namespace pubs::cpu
