#include "cpu/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pubs::cpu
{

Lsq::Lsq(unsigned entries) : capacity_(entries)
{
    fatal_if(entries == 0, "LSQ needs at least one entry");
}

const Lsq::Entry &
Lsq::entryAt(uint64_t pos) const
{
    panic_if(pos < basePos_ || pos >= nextPos_,
             "LSQ position %llu outside [%llu, %llu)",
             (unsigned long long)pos, (unsigned long long)basePos_,
             (unsigned long long)nextPos_);
    return entries_[pos - basePos_];
}

Lsq::Entry &
Lsq::entryAt(uint64_t pos)
{
    return const_cast<Entry &>(
        static_cast<const Lsq *>(this)->entryAt(pos));
}

uint64_t
Lsq::push(uint32_t id, bool isStore, Addr addr, unsigned size)
{
    panic_if(full(), "push to full LSQ");
    entries_.push_back({id, isStore, addr, size, false, 0});
    uint64_t pos = nextPos_++;
    if (isStore)
        storePos_.push_back(pos);
    return pos;
}

void
Lsq::markDone(uint32_t id, Cycle doneCycle)
{
    for (auto &entry : entries_) {
        if (entry.id == id) {
            entry.done = true;
            entry.doneCycle = doneCycle;
            return;
        }
    }
    panic("markDone of id %u not in LSQ", id);
}

void
Lsq::markDoneAt(uint64_t pos, uint32_t id, Cycle doneCycle)
{
    Entry &entry = entryAt(pos);
    panic_if(entry.id != id, "LSQ position %llu holds id %u, not %u",
             (unsigned long long)pos, entry.id, id);
    entry.done = true;
    entry.doneCycle = doneCycle;
}

void
Lsq::remove(uint32_t id)
{
    panic_if(entries_.empty(), "remove from empty LSQ");
    panic_if(entries_.front().id != id,
             "LSQ remove of %u out of order (head is %u)", id,
             entries_.front().id);
    if (entries_.front().isStore) {
        panic_if(storePos_.empty() || storePos_.front() != basePos_,
                 "LSQ store index out of sync at head removal");
        storePos_.pop_front();
    }
    entries_.pop_front();
    ++basePos_;
}

void
Lsq::removeYoungest(uint32_t id)
{
    panic_if(entries_.empty(), "removeYoungest from empty LSQ");
    panic_if(entries_.back().id != id,
             "LSQ removeYoungest of %u but tail is %u", id,
             entries_.back().id);
    if (entries_.back().isStore) {
        panic_if(storePos_.empty() || storePos_.back() != nextPos_ - 1,
                 "LSQ store index out of sync at tail removal");
        storePos_.pop_back();
    }
    entries_.pop_back();
    --nextPos_;
}

Lsq::Dep
Lsq::olderStoreDependence(uint32_t loadId, Addr addr, unsigned size) const
{
    Dep dep;
    for (const auto &entry : entries_) {
        if (entry.id == loadId)
            break; // everything after is younger
        if (!entry.isStore)
            continue;
        bool overlap = entry.addr < addr + size &&
                       addr < entry.addr + entry.size;
        if (!overlap)
            continue;
        if (!entry.done) {
            // Must wait for the store to execute; the youngest matching
            // store wins, so keep scanning.
            dep.kind = Dep::Wait;
            dep.readyCycle = 0;
        } else if (entry.addr == addr && entry.size == size) {
            dep.kind = Dep::Forward;
            dep.readyCycle = entry.doneCycle + forwardLatency;
        } else {
            // Partial overlap with a completed store: conservatively
            // treat like a forward from its completion time (the cache
            // line holds the merged data by then).
            dep.kind = Dep::Forward;
            dep.readyCycle = entry.doneCycle + forwardLatency;
        }
    }
    return dep;
}

Lsq::Dep
Lsq::olderStoreDependenceAt(uint64_t loadPos, Addr addr,
                            unsigned size) const
{
    Dep dep;
    // Stores older than the load are the index entries below loadPos;
    // the youngest overlapping one decides, so walk newest-first and
    // stop at the first overlap.
    auto end = std::lower_bound(storePos_.begin(), storePos_.end(),
                                loadPos);
    for (auto it = end; it != storePos_.begin();) {
        --it;
        const Entry &entry = entries_[*it - basePos_];
        bool overlap = entry.addr < addr + size &&
                       addr < entry.addr + entry.size;
        if (!overlap)
            continue;
        if (!entry.done) {
            dep.kind = Dep::Wait;
            dep.readyCycle = 0;
        } else {
            dep.kind = Dep::Forward;
            dep.readyCycle = entry.doneCycle + forwardLatency;
        }
        break;
    }
    return dep;
}

std::vector<uint32_t>
Lsq::residentIds() const
{
    std::vector<uint32_t> ids;
    ids.reserve(entries_.size());
    for (const Entry &entry : entries_)
        ids.push_back(entry.id);
    return ids;
}

} // namespace pubs::cpu
