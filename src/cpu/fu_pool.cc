#include "cpu/fu_pool.hh"

#include "common/logging.hh"

namespace pubs::cpu
{

FuType
fuTypeOf(isa::OpClass cls)
{
    using enum isa::OpClass;
    switch (cls) {
      case IntAlu:
      case Branch:
      case Nop:
        return FuType::IntAlu;
      case IntMul:
      case IntDiv:
        return FuType::IntMulDiv;
      case Load:
      case Store:
        return FuType::LdSt;
      case FpAlu:
      case FpMul:
      case FpDiv:
        return FuType::Fpu;
      default:
        panic("no FU mapping for op class %d", (int)cls);
    }
}

const char *
fuTypeName(FuType type)
{
    switch (type) {
      case FuType::IntAlu: return "iALU";
      case FuType::IntMulDiv: return "iMULT/DIV";
      case FuType::LdSt: return "Ld/St";
      case FuType::Fpu: return "FPU";
      default: panic("bad FU type %d", (int)type);
    }
}

FuPool::FuPool(unsigned intAlu, unsigned intMulDiv, unsigned ldSt,
               unsigned fpu)
    : intAlu_(intAlu, 0), intMulDiv_(intMulDiv, 0), ldSt_(ldSt, 0),
      fpu_(fpu, 0)
{
    fatal_if(intAlu == 0 || intMulDiv == 0 || ldSt == 0 || fpu == 0,
             "every FU group needs at least one unit");
}

std::vector<Cycle> &
FuPool::unitsOf(FuType type)
{
    switch (type) {
      case FuType::IntAlu: return intAlu_;
      case FuType::IntMulDiv: return intMulDiv_;
      case FuType::LdSt: return ldSt_;
      case FuType::Fpu: return fpu_;
      default: panic("bad FU type %d", (int)type);
    }
}

const std::vector<Cycle> &
FuPool::unitsOf(FuType type) const
{
    return const_cast<FuPool *>(this)->unitsOf(type);
}

bool
FuPool::acquire(FuType type, Cycle now, unsigned busyCycles)
{
    panic_if(busyCycles == 0, "FU occupancy must be at least one cycle");
    for (Cycle &freeAt : unitsOf(type)) {
        if (freeAt <= now) {
            freeAt = now + busyCycles;
            return true;
        }
    }
    return false;
}

bool
FuPool::available(FuType type, Cycle now) const
{
    for (Cycle freeAt : unitsOf(type))
        if (freeAt <= now)
            return true;
    return false;
}

unsigned
FuPool::count(FuType type) const
{
    return (unsigned)unitsOf(type).size();
}

} // namespace pubs::cpu
