#include "cpu/rename.hh"

#include "common/logging.hh"

namespace pubs::cpu
{

RenameUnit::RenameUnit(unsigned intPhysRegs, unsigned fpPhysRegs)
{
    fatal_if(intPhysRegs <= numIntRegs,
             "need more than %d int physical registers", numIntRegs);
    fatal_if(fpPhysRegs <= numFpRegs,
             "need more than %d fp physical registers", numFpRegs);

    auto init = [](File &file, unsigned total, unsigned archRegs) {
        file.total = total;
        // Architectural registers start mapped to phys [0, archRegs).
        for (unsigned i = 0; i < archRegs; ++i)
            file.map[i] = (PhysRegId)i;
        for (unsigned i = archRegs; i < total; ++i)
            file.freeList.push_back((PhysRegId)i);
    };
    init(int_, intPhysRegs, numIntRegs);
    init(fp_, fpPhysRegs, numFpRegs);
}

RenameUnit::File &
RenameUnit::fileOf(isa::RegClass cls)
{
    panic_if(cls == isa::RegClass::None, "rename of class None");
    return cls == isa::RegClass::Fp ? fp_ : int_;
}

const RenameUnit::File &
RenameUnit::fileOf(isa::RegClass cls) const
{
    return const_cast<RenameUnit *>(this)->fileOf(cls);
}

size_t
RenameUnit::freeRegs(isa::RegClass cls) const
{
    return fileOf(cls).freeList.size();
}

PhysRegId
RenameUnit::mapOf(isa::RegClass cls, RegId reg) const
{
    const File &file = fileOf(cls);
    panic_if(reg < 0 || (size_t)reg >= file.map.size(),
             "rename map index %d out of range", (int)reg);
    return file.map[reg];
}

PhysRegId
RenameUnit::renameDst(isa::RegClass cls, RegId reg, PhysRegId &prevOut)
{
    File &file = fileOf(cls);
    panic_if(file.freeList.empty(), "rename with empty free list");
    prevOut = file.map[reg];
    PhysRegId next = file.freeList.back();
    file.freeList.pop_back();
    file.map[reg] = next;
    return next;
}

void
RenameUnit::rollback(isa::RegClass cls, RegId reg,
                     PhysRegId squashedMapping, PhysRegId prevMapping)
{
    File &file = fileOf(cls);
    panic_if(file.map[reg] != squashedMapping,
             "rollback of r%d expected mapping %d, found %d", (int)reg,
             (int)squashedMapping, (int)file.map[reg]);
    file.map[reg] = prevMapping;
    file.freeList.push_back(squashedMapping);
}

void
RenameUnit::freeReg(isa::RegClass cls, PhysRegId reg)
{
    File &file = fileOf(cls);
    panic_if(reg < 0 || (unsigned)reg >= file.total,
             "freeing bad physical register %d", (int)reg);
    file.freeList.push_back(reg);
}

unsigned
RenameUnit::totalRegs(isa::RegClass cls) const
{
    return fileOf(cls).total;
}

const std::vector<PhysRegId> &
RenameUnit::freeListContents(isa::RegClass cls) const
{
    return fileOf(cls).freeList;
}

unsigned
RenameUnit::archRegs(isa::RegClass cls) const
{
    return cls == isa::RegClass::Fp ? numFpRegs : numIntRegs;
}

} // namespace pubs::cpu
