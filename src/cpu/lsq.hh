/**
 * @file
 * Load/store queue with store-to-load forwarding. Memory operations are
 * tracked in program order; a load that overlaps an older, not-yet-done
 * store waits for it, and an exact-match completed store forwards with a
 * one-cycle bypass. Addresses are known at dispatch (trace-driven), which
 * models perfect memory disambiguation.
 *
 * Entries are addressed two ways: by instruction id (the original,
 * linear-scan interface, kept for tests and auditing) and by *position*
 * — a monotonic program-order index returned by push() that gives O(1)
 * entry access and, through a sorted side index of store positions, a
 * newest-first dependence walk that touches only the stores older than
 * the load instead of the whole queue.
 */

#ifndef PUBS_CPU_LSQ_HH
#define PUBS_CPU_LSQ_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace pubs::cpu
{

class Lsq
{
  public:
    explicit Lsq(unsigned entries);

    bool full() const { return entries_.size() >= capacity_; }
    size_t occupancy() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Allocate (at dispatch, in program order). @return the entry's
     * position handle, valid until the entry is removed.
     */
    uint64_t push(uint32_t id, bool isStore, Addr addr, unsigned size);

    /** The op finished executing at @p doneCycle (id-based scan). */
    void markDone(uint32_t id, Cycle doneCycle);

    /** markDone by position handle: O(1). @p id cross-checks. */
    void markDoneAt(uint64_t pos, uint32_t id, Cycle doneCycle);

    /** Deallocate (at commit). Must be the oldest entry. */
    void remove(uint32_t id);

    /** Deallocate the youngest entry (squash). Must match @p id. */
    void removeYoungest(uint32_t id);

    /** Dependence of a load on older stores. */
    struct Dep
    {
        enum Kind
        {
            None,     ///< no overlapping older store
            Forward,  ///< exact-match older store done: forward
            Wait,     ///< overlapping older store not yet done
        } kind = None;
        /** For Forward: cycle the forwarded data is available. */
        Cycle readyCycle = 0;
    };

    /**
     * Check the load @p loadId (already in the queue) against all older
     * stores overlapping [addr, addr + size) (id-based scan).
     */
    Dep olderStoreDependence(uint32_t loadId, Addr addr,
                             unsigned size) const;

    /**
     * Position-indexed dependence check: binary-search the store index
     * for stores older than @p loadPos and walk them newest-first — the
     * youngest overlapping store decides, so the walk stops at the
     * first overlap. Result-identical to olderStoreDependence().
     */
    Dep olderStoreDependenceAt(uint64_t loadPos, Addr addr,
                               unsigned size) const;

    /** Store-to-load forwarding bypass latency in cycles. */
    static constexpr unsigned forwardLatency = 1;

    /** Ids of all resident ops, oldest first (structural auditor). */
    std::vector<uint32_t> residentIds() const;

  private:
    struct Entry
    {
        uint32_t id;
        bool isStore;
        Addr addr;
        unsigned size;
        bool done = false;
        Cycle doneCycle = 0;
    };

    const Entry &entryAt(uint64_t pos) const;
    Entry &entryAt(uint64_t pos);

    unsigned capacity_;
    std::deque<Entry> entries_; ///< program order, oldest first
    uint64_t basePos_ = 0;      ///< position of entries_.front()
    uint64_t nextPos_ = 0;      ///< position the next push() gets
    std::deque<uint64_t> storePos_; ///< positions of stores, ascending
};

/**
 * Post-commit store buffer: a fixed-depth ring of committed stores
 * whose data can still forward to younger loads while the cache write
 * drains. Lookup walks only the live entries newest-first and stops at
 * the first covering store — the youngest, since insertion is in
 * commit order.
 */
class StoreBuffer
{
  public:
    explicit StoreBuffer(size_t depth) : slots_(depth) {}

    void
    insert(Addr addr, uint8_t size, Cycle done)
    {
        slots_[head_] = {addr, done, size};
        head_ = (head_ + 1) % slots_.size();
        if (live_ < slots_.size())
            ++live_;
    }

    /**
     * Completion cycle of the youngest store covering
     * [addr, addr + size), or false if none does.
     */
    bool
    coveringStore(Addr addr, unsigned size, Cycle &done) const
    {
        for (size_t i = 0; i < live_; ++i) {
            size_t slot = (head_ + slots_.size() - 1 - i) % slots_.size();
            const Slot &st = slots_[slot];
            if (st.size != 0 && st.addr <= addr &&
                st.addr + st.size >= addr + size) {
                done = st.done;
                return true;
            }
        }
        return false;
    }

    /**
     * Reference lookup scanning every slot, live or not — the original
     * pipeline code path, kept to assert equivalence in debug builds.
     */
    bool
    coveringStoreReference(Addr addr, unsigned size, Cycle &done) const
    {
        bool found = false;
        for (size_t i = 0; i < slots_.size() && !found; ++i) {
            size_t slot = (head_ + slots_.size() - 1 - i) % slots_.size();
            const Slot &st = slots_[slot];
            if (st.size != 0 && st.addr <= addr &&
                st.addr + st.size >= addr + size) {
                found = true;
                done = st.done;
            }
        }
        return found;
    }

    size_t depth() const { return slots_.size(); }
    size_t liveEntries() const { return live_; }

  private:
    struct Slot
    {
        Addr addr = 0;
        Cycle done = 0;
        uint8_t size = 0;
    };

    std::vector<Slot> slots_;
    size_t head_ = 0;
    size_t live_ = 0;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_LSQ_HH
