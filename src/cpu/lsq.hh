/**
 * @file
 * Load/store queue with store-to-load forwarding. Memory operations are
 * tracked in program order; a load that overlaps an older, not-yet-done
 * store waits for it, and an exact-match completed store forwards with a
 * one-cycle bypass. Addresses are known at dispatch (trace-driven), which
 * models perfect memory disambiguation.
 */

#ifndef PUBS_CPU_LSQ_HH
#define PUBS_CPU_LSQ_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace pubs::cpu
{

class Lsq
{
  public:
    explicit Lsq(unsigned entries);

    bool full() const { return entries_.size() >= capacity_; }
    size_t occupancy() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }

    /** Allocate (at dispatch, in program order). */
    void push(uint32_t id, bool isStore, Addr addr, unsigned size);

    /** The op finished executing at @p doneCycle. */
    void markDone(uint32_t id, Cycle doneCycle);

    /** Deallocate (at commit). Must be the oldest entry. */
    void remove(uint32_t id);

    /** Deallocate the youngest entry (squash). Must match @p id. */
    void removeYoungest(uint32_t id);

    /** Dependence of a load on older stores. */
    struct Dep
    {
        enum Kind
        {
            None,     ///< no overlapping older store
            Forward,  ///< exact-match older store done: forward
            Wait,     ///< overlapping older store not yet done
        } kind = None;
        /** For Forward: cycle the forwarded data is available. */
        Cycle readyCycle = 0;
    };

    /**
     * Check the load @p loadId (already in the queue) against all older
     * stores overlapping [addr, addr + size).
     */
    Dep olderStoreDependence(uint32_t loadId, Addr addr,
                             unsigned size) const;

    /** Store-to-load forwarding bypass latency in cycles. */
    static constexpr unsigned forwardLatency = 1;

    /** Ids of all resident ops, oldest first (structural auditor). */
    std::vector<uint32_t> residentIds() const;

  private:
    struct Entry
    {
        uint32_t id;
        bool isStore;
        Addr addr;
        unsigned size;
        bool done = false;
        Cycle doneCycle = 0;
    };

    unsigned capacity_;
    std::deque<Entry> entries_; ///< program order, oldest first
};

} // namespace pubs::cpu

#endif // PUBS_CPU_LSQ_HH
