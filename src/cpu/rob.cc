// Rob is header-only; kept as a translation unit for future extension
// (e.g. checkpointed ROB state for wrong-path modelling).
#include "cpu/rob.hh"
