#include "cpu/cpi_stack.hh"

#include <cstdio>
#include <sstream>

#include "common/stats.hh"

namespace pubs::cpu
{

const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base:
        return "base";
      case CpiComponent::Frontend:
        return "frontend";
      case CpiComponent::BranchRecovery:
        return "branch_recovery";
      case CpiComponent::BranchMisspec:
        return "branch_misspec";
      case CpiComponent::MemL2:
        return "mem_l2";
      case CpiComponent::MemDram:
        return "mem_dram";
      case CpiComponent::RobFull:
        return "rob_full";
      case CpiComponent::IqFull:
        return "iq_full";
      case CpiComponent::LsqFull:
        return "lsq_full";
      case CpiComponent::RenameFull:
        return "rename_full";
      case CpiComponent::PriorityStall:
        return "priority_stall";
      case CpiComponent::Execute:
        return "execute";
      case CpiComponent::NumComponents:
        break;
    }
    return "?";
}

uint64_t
CpiStack::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : cycles)
        sum += c;
    return sum;
}

void
CpiStack::merge(const CpiStack &other)
{
    for (size_t i = 0; i < numCpiComponents; ++i)
        cycles[i] += other.cycles[i];
}

CpiStack
CpiStack::deltaSince(const CpiStack &since) const
{
    CpiStack delta;
    for (size_t i = 0; i < numCpiComponents; ++i)
        delta.cycles[i] = cycles[i] - since.cycles[i];
    return delta;
}

void
CpiStack::fill(StatGroup &group, uint64_t committed) const
{
    group.add("total_cycles", (double)total(),
              "sum over components; equals pipeline cycles");
    for (size_t i = 0; i < numCpiComponents; ++i) {
        std::string name = cpiComponentName((CpiComponent)i);
        group.add(name + "_cycles", (double)cycles[i]);
    }
    for (size_t i = 0; i < numCpiComponents; ++i) {
        std::string name = cpiComponentName((CpiComponent)i);
        group.add("cpi_" + name,
                  committed ? (double)cycles[i] / (double)committed : 0.0);
    }
}

std::string
CpiStack::format(uint64_t committed) const
{
    uint64_t sum = total();
    std::ostringstream out;
    out << "CPI stack (" << sum << " cycles, " << committed
        << " committed):\n";
    char line[96];
    std::snprintf(line, sizeof(line), "  %-16s %14s %8s %8s\n",
                  "component", "cycles", "frac", "cpi");
    out << line;
    for (size_t i = 0; i < numCpiComponents; ++i) {
        std::snprintf(line, sizeof(line), "  %-16s %14llu %7.1f%% %8.3f\n",
                      cpiComponentName((CpiComponent)i),
                      (unsigned long long)cycles[i],
                      sum ? 100.0 * (double)cycles[i] / (double)sum : 0.0,
                      committed ? (double)cycles[i] / (double)committed
                                : 0.0);
        out << line;
    }
    return out.str();
}

} // namespace pubs::cpu
