#include "cpu/telemetry.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "cpu/params.hh"
#include "cpu/pipeline.hh"

namespace pubs::cpu
{

CoreTelemetry::CoreTelemetry(const CoreParams &params)
    : heartbeatInterval_(params.heartbeatInterval),
      heartbeatToStderr_(params.heartbeatToStderr),
      nextHeartbeat_(params.heartbeatInterval == 0
                         ? neverCycle
                         : (Cycle)params.heartbeatInterval)
{
}

void
CoreTelemetry::resetStats(Cycle now)
{
    trueSliceInsts_ = 0;
    trueSliceCovered_ = 0;
    committedInsts_ = 0;
    committedUnconfident_ = 0;
    committedUnconfidentTrue_ = 0;
    priorityOccupancy_.reset();
    prioritySliceLatency_.reset();
    normalSliceLatency_.reset();
    sites_.clear();
    heartbeats_.clear();
    transitions_.clear();
    lastCommitted_ = 0;
    lastMispredicts_ = 0;
    lastCycle_ = now;
    intervalOccupancySum_ = 0;
    intervalCycles_ = 0;
    lastCpi_ = CpiStack{};
    lastTransitionCpi_ = CpiStack{};
    modeTransitionCount_ = 0;
    nextHeartbeat_ =
        heartbeatInterval_ == 0 ? neverCycle : now + heartbeatInterval_;
}

void
CoreTelemetry::heartbeat(Cycle now, const PipelineStats &stats)
{
    uint64_t committed = stats.committed - lastCommitted_;
    uint64_t mispredicts = (stats.condMispredicts +
                            stats.indirectMispredicts) -
                           lastMispredicts_;
    Cycle cycles = now - lastCycle_;

    HeartbeatSample sample;
    sample.cycle = now;
    sample.intervalIpc = cycles ? (double)committed / (double)cycles : 0.0;
    sample.intervalMpki =
        committed ? (double)mispredicts * 1000.0 / (double)committed : 0.0;
    sample.intervalIqOccupancy =
        intervalCycles_
            ? (double)intervalOccupancySum_ / (double)intervalCycles_
            : 0.0;
    sample.cpiDelta = stats.cpi.deltaSince(lastCpi_);
    lastCpi_ = stats.cpi;
    heartbeats_.push_back(sample);

    if (heartbeatToStderr_) {
        inform("heartbeat cycle=%llu committed=%llu ipc=%.3f mpki=%.2f "
               "iq_occ=%.1f",
               (unsigned long long)now,
               (unsigned long long)stats.committed, sample.intervalIpc,
               sample.intervalMpki, sample.intervalIqOccupancy);
    }

    lastCommitted_ = stats.committed;
    lastMispredicts_ = stats.condMispredicts + stats.indirectMispredicts;
    lastCycle_ = now;
    intervalOccupancySum_ = 0;
    intervalCycles_ = 0;
    nextHeartbeat_ = now + heartbeatInterval_;
}

std::vector<std::pair<Pc, BranchSiteStats>>
CoreTelemetry::topBranchSites(size_t topN) const
{
    std::vector<std::pair<Pc, BranchSiteStats>> sites(sites_.begin(),
                                                      sites_.end());
    std::sort(sites.begin(), sites.end(), [](const auto &a, const auto &b) {
        if (a.second.mispredicts != b.second.mispredicts)
            return a.second.mispredicts > b.second.mispredicts;
        if (a.second.penaltySum != b.second.penaltySum)
            return a.second.penaltySum > b.second.penaltySum;
        return a.first < b.first; // deterministic tie-break
    });
    if (sites.size() > topN)
        sites.resize(topN);
    return sites;
}

void
CoreTelemetry::fillSliceStats(StatGroup &group) const
{
    group.add("true_slice_insts", (double)trueSliceInsts_,
              "insts found in true backward slices of mispredictions");
    group.add("true_slice_covered", (double)trueSliceCovered_,
              "... that PUBS had classified unconfident-slice");
    group.add("slice_coverage", sliceCoverage(),
              "covered / true-slice (recall of the slice predictor)");
    group.add("committed_insts", (double)committedInsts_);
    group.add("committed_unconfident", (double)committedUnconfident_,
              "committed insts classified unconfident-slice");
    group.add("committed_unconfident_true",
              (double)committedUnconfidentTrue_,
              "... that really fed a mispredicted branch");
    group.add("slice_accuracy", sliceAccuracy(),
              "true / classified (precision of the slice predictor)");
    group.addHistogram("priority_occupancy", priorityOccupancy_,
                       "occupied priority IQ entries per cycle");
    group.addHistogram("priority_slice_latency", prioritySliceLatency_,
                       "decode-to-issue cycles of unconfident-slice "
                       "insts issued from priority entries");
    group.addHistogram("normal_slice_latency", normalSliceLatency_,
                       "decode-to-issue cycles of unconfident-slice "
                       "insts issued from normal entries");
}

void
CoreTelemetry::fillBranchProfile(StatGroup &group, size_t topN) const
{
    group.add("static_branches", (double)sites_.size(),
              "distinct conditional-branch PCs seen at commit/resolve");
    auto top = topBranchSites(topN);
    for (const auto &[pc, site] : top) {
        char key[48];
        std::snprintf(key, sizeof(key), "pc_0x%llx",
                      (unsigned long long)pc);
        std::string prefix = key;
        group.add(prefix + "_commits", (double)site.commits);
        group.add(prefix + "_mispredicts", (double)site.mispredicts);
        group.add(prefix + "_penalty_cycles", (double)site.penaltySum);
        group.add(prefix + "_avg_penalty",
                  site.mispredicts ? (double)site.penaltySum /
                                         (double)site.mispredicts
                                   : 0.0);
        group.add(prefix + "_conf_correct", (double)site.confidentCorrect);
        group.add(prefix + "_conf_wrong", (double)site.confidentWrong);
        group.add(prefix + "_unconf_correct",
                  (double)site.unconfidentCorrect);
        group.add(prefix + "_unconf_wrong", (double)site.unconfidentWrong);
        group.add(prefix + "_slice_insts", (double)site.sliceInsts,
                  "true-backward-slice insts of this branch's "
                  "mispredictions");
        group.add(prefix + "_slice_covered", (double)site.sliceCovered,
                  "... classified unconfident-slice at decode");
    }
}

void
CoreTelemetry::fillHeartbeats(StatGroup &group) const
{
    group.add("interval_cycles", (double)heartbeatInterval_);
    group.add("samples", (double)heartbeats_.size());
    std::vector<double> cycles, ipc, mpki, occupancy;
    cycles.reserve(heartbeats_.size());
    ipc.reserve(heartbeats_.size());
    mpki.reserve(heartbeats_.size());
    occupancy.reserve(heartbeats_.size());
    for (const HeartbeatSample &sample : heartbeats_) {
        cycles.push_back((double)sample.cycle);
        ipc.push_back(sample.intervalIpc);
        mpki.push_back(sample.intervalMpki);
        occupancy.push_back(sample.intervalIqOccupancy);
    }
    group.addVector("cycle", std::move(cycles), "sample times");
    group.addVector("ipc", std::move(ipc), "per-interval IPC");
    group.addVector("mpki", std::move(mpki), "per-interval branch MPKI");
    group.addVector("iq_occupancy", std::move(occupancy),
                    "per-interval mean IQ occupancy");
    for (size_t c = 0; c < numCpiComponents; ++c) {
        std::vector<double> component;
        component.reserve(heartbeats_.size());
        for (const HeartbeatSample &sample : heartbeats_)
            component.push_back((double)sample.cpiDelta.cycles[c]);
        group.addVector(
            std::string("cpi_") + cpiComponentName((CpiComponent)c),
            std::move(component), "per-interval CPI-stack cycles");
    }
}

void
CoreTelemetry::fillModeTransitions(StatGroup &group) const
{
    group.add("count", (double)modeTransitionCount_,
              "PUBS mode-switch flips observed during measurement");
    group.add("recorded", (double)transitions_.size(),
              "flips with a CPI-stack delta record (bounded)");
    std::vector<double> cycles, enabled;
    cycles.reserve(transitions_.size());
    enabled.reserve(transitions_.size());
    for (const ModeTransition &t : transitions_) {
        cycles.push_back((double)t.cycle);
        enabled.push_back(t.enabled ? 1.0 : 0.0);
    }
    group.addVector("cycle", std::move(cycles), "flip times");
    group.addVector("enabled", std::move(enabled),
                    "new mode after each flip (1 = PUBS on)");
    for (size_t c = 0; c < numCpiComponents; ++c) {
        std::vector<double> component;
        component.reserve(transitions_.size());
        for (const ModeTransition &t : transitions_)
            component.push_back((double)t.cpiDelta.cycles[c]);
        group.addVector(
            std::string("cpi_") + cpiComponentName((CpiComponent)c),
            std::move(component),
            "CPI-stack cycles accumulated since the previous flip");
    }
}

std::string
CoreTelemetry::formatBranchProfile(size_t topN) const
{
    auto top = topBranchSites(topN);
    std::ostringstream out;
    out << "top branch sites by mispredictions ("
        << sites_.size() << " static branches):\n";
    char line[176];
    std::snprintf(line, sizeof(line),
                  "  %-12s %10s %12s %14s %12s %8s %9s\n",
                  "pc", "commits", "mispredicts", "penalty(cyc)",
                  "avg_penalty", "unconf%", "slice_cov");
    out << line;
    for (const auto &[pc, site] : top) {
        uint64_t unconfident =
            site.unconfidentCorrect + site.unconfidentWrong;
        std::snprintf(line, sizeof(line),
                      "  0x%-10llx %10llu %12llu %14llu %12.1f %7.1f%% "
                      "%9.2f\n",
                      (unsigned long long)pc,
                      (unsigned long long)site.commits,
                      (unsigned long long)site.mispredicts,
                      (unsigned long long)site.penaltySum,
                      site.mispredicts ? (double)site.penaltySum /
                                             (double)site.mispredicts
                                       : 0.0,
                      site.commits ? 100.0 * (double)unconfident /
                                         (double)site.commits
                                   : 0.0,
                      site.sliceInsts ? (double)site.sliceCovered /
                                            (double)site.sliceInsts
                                      : 0.0);
        out << line;
    }
    return out.str();
}

} // namespace pubs::cpu
