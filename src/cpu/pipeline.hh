/**
 * @file
 * The cycle-level out-of-order core model.
 *
 * Stages: fetch -> (frontendDepth-cycle in-order front end, where branch
 * prediction and the PUBS slice unit operate) -> rename/dispatch ->
 * wakeup/select issue from the IQ -> execute -> commit.
 *
 * Misprediction modelling (see DESIGN.md): a mispredicted branch stalls
 * further fetch until the branch completes execution, then fetch resumes
 * on the correct path after the state-recovery penalty. The interval from
 * the branch's fetch to its execution completion is exactly the paper's
 * *misspeculation penalty*; PUBS shortens the IQ-waiting portion of it by
 * dispatching unconfident-branch-slice instructions into the reserved
 * priority entries at the head of the IQ.
 */

#ifndef PUBS_CPU_PIPELINE_HH
#define PUBS_CPU_PIPELINE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/btb.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "cpu/fu_pool.hh"
#include "cpu/lsq.hh"
#include "cpu/params.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "iq/age_matrix.hh"
#include "iq/issue_queue.hh"
#include "mem/memory_system.hh"
#include "pubs/mode_switch.hh"
#include "pubs/slice_unit.hh"
#include "trace/dyninst.hh"

namespace pubs::sim
{
class CommitChecker;
} // namespace pubs::sim

namespace pubs::trace
{
class PipeViewWriter;
} // namespace pubs::trace

namespace pubs::cpu
{

class CoreTelemetry;

/** Counters the benches and tests read out. */
struct PipelineStats
{
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t fetched = 0;

    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t indirectJumps = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t btbMissBubbles = 0;

    uint64_t llcMisses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;

    uint64_t priorityDispatches = 0;
    uint64_t normalDispatches = 0;
    uint64_t priorityStallCycles = 0; ///< dispatch blocked on priority entry
    uint64_t iqFullStallCycles = 0;
    uint64_t robFullStallCycles = 0;

    uint64_t issueConflictCycles = 0; ///< ready inst left unissued
    uint64_t issued = 0;

    /** Sum/count of fetch-to-execution-completion cycles of mispredicted
     *  branches: the misspeculation penalty. */
    uint64_t misspecPenaltySum = 0;
    uint64_t misspecPenaltyCount = 0;

    uint64_t wrongPathFetched = 0; ///< wrong-path instructions fetched
    uint64_t squashed = 0;         ///< wrong-path instructions squashed

    /** Sum of IQ waiting cycles of issued instructions. */
    uint64_t iqWaitSum = 0;

    // Lockstep checker / structural audit results (cpu/audit.hh,
    // sim/checker.hh); all zero when the checks are off.
    uint64_t checkerCommits = 0;
    uint64_t checkerDivergences = 0;
    uint64_t auditsRun = 0;
    uint64_t auditViolations = 0;

    /** Distribution of misspeculation penalties (4-cycle buckets, so
     *  long LLC-miss-bound penalties keep resolution). */
    Histogram misspecPenalty{128, 4};
    /** Per-cycle IQ occupancy distribution (entry buckets). */
    Histogram iqOccupancy{256};
    /** Dispatch-to-issue wait of issued instructions (2-cycle buckets). */
    Histogram iqWait{96, 2};

    double ipc() const
    {
        return cycles ? (double)committed / (double)cycles : 0.0;
    }

    double
    branchMpki() const
    {
        uint64_t mispredicts = condMispredicts + indirectMispredicts;
        return committed ? (double)mispredicts * 1000.0 / (double)committed
                         : 0.0;
    }

    double
    llcMpki() const
    {
        return committed ? (double)llcMisses * 1000.0 / (double)committed
                         : 0.0;
    }

    double
    avgMisspecPenalty() const
    {
        return misspecPenaltyCount
                   ? (double)misspecPenaltySum / (double)misspecPenaltyCount
                   : 0.0;
    }
};

class Pipeline
{
  public:
    Pipeline(const CoreParams &params, trace::InstSource &source);
    ~Pipeline();

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    /**
     * Run until @p maxInsts more instructions commit or the source is
     * exhausted (and the pipeline drains).
     * @return instructions committed by this call.
     */
    uint64_t run(uint64_t maxInsts);

    /** Zero the measurement counters (tables stay trained): warmup. */
    void resetStats();

    const PipelineStats &stats() const { return stats_; }
    Cycle now() const { return now_; }
    bool drained() const;

    const CoreParams &params() const { return params_; }
    const mem::MemorySystem &memory() const { return *mem_; }
    const pubs::SliceUnit *sliceUnit() const { return sliceUnit_.get(); }
    const pubs::ModeSwitch *modeSwitch() const { return modeSwitch_.get(); }
    const iq::IssueQueue &issueQueue() const { return *iqs_[0]; }
    size_t issueQueueCount() const { return iqs_.size(); }
    const branch::BranchPredictor &predictor() const { return *predictor_; }

    /** Summarise into a stat group for reporting. */
    void fillStats(StatGroup &group) const;

    /**
     * Publish the full observability picture into @p registry: the
     * "pipeline" group (fillStats plus histograms), plus "iq", "mem",
     * "pubs" / "pubs.conf_tab", and — when telemetry is enabled —
     * "pubs.telemetry", "branch_profile" and "heartbeat".
     */
    void fillRegistry(StatRegistry &registry) const;

    /**
     * Attach an O3PipeView trace writer: every instruction's stage
     * cycles are stamped and written at retire/squash. Pass before
     * running; null detaches.
     */
    void attachPipeView(std::unique_ptr<trace::PipeViewWriter> writer);

    /** The attached pipeview writer, if any. */
    const trace::PipeViewWriter *pipeView() const { return pipeview_.get(); }

    /** Telemetry collector (null unless CoreParams::telemetry). */
    const CoreTelemetry *telemetry() const { return telemetry_.get(); }

    /** The lockstep checker, if one is attached (null otherwise). */
    const sim::CommitChecker *checker() const { return checker_.get(); }

    /**
     * Human-readable snapshot of the machine state (ROB/IQ/LSQ
     * occupancy, rename headroom, fetch state) appended to checker and
     * audit diagnostics.
     */
    std::string debugSnapshot() const;

  private:
    friend class Auditor;
    struct Inflight
    {
        trace::DynInst di{};
        bool valid = false;

        // Rename.
        PhysRegId physSrc1 = invalidPhysReg;
        PhysRegId physSrc2 = invalidPhysReg;
        PhysRegId physDst = invalidPhysReg;
        PhysRegId prevPhysDst = invalidPhysReg;
        isa::RegClass src1Cls = isa::RegClass::None;
        isa::RegClass src2Cls = isa::RegClass::None;
        isa::RegClass dstCls = isa::RegClass::None;

        // Timing state.
        Cycle fetchCycle = 0;
        Cycle feReadyCycle = 0; ///< earliest dispatch cycle
        Cycle dispatchCycle = 0;
        Cycle issueCycle = 0;
        Cycle doneCycle = 0;
        bool dispatched = false;
        bool inIq = false;
        bool issued = false;
        bool done = false;
        bool inLsq = false;
        bool priorityEntry = false;
        uint8_t iqIndex = 0; ///< which queue holds it (distributed IQ)

        // Branch bookkeeping.
        bool isMispredict = false;
        bool condPredictionCorrect = false;
        bool wrongPath = false; ///< fetched past an unresolved mispredict
        /** Found in the true backward slice of a resolved misprediction
         *  (telemetry ground truth for the PUBS slice predictor). */
        bool trueSlice = false;

        pubs::SliceDecision slice{};
    };

    /** Scheduled conf_tab training at branch-resolution time. */
    struct ConfEvent
    {
        Cycle cycle;
        Pc pc;
        bool correct;

        bool operator>(const ConfEvent &o) const { return cycle > o.cycle; }
    };

    void cycle();
    void runAudit(const char *context);
    void doCommit();
    void applyConfEvents();
    void processSquashes();
    void doIssue();
    void doDispatch();
    void doFetch();

    /** Handle control flow of a just-fetched correct-path instruction. */
    void fetchControl(Inflight &inst, bool &endGroup, bool &blockFetch,
                      bool &btbBubble);

    /** Synthesise the next wrong-path instruction from the static
     *  program; returns false when wrong-path fetch must stop. */
    bool makeWrongPathInst(trace::DynInst &out);

    /** Squash everything younger than @p branchId (ROB tail walk). */
    void squashYoungerThan(uint32_t branchId);

    bool srcsReady(const Inflight &inst, Cycle &readyAt) const;
    void issueInst(uint32_t id, Inflight &inst);

    /**
     * Telemetry: walk the true dynamic backward slice of the resolved
     * mispredicted branch @p branchId through the older ROB entries,
     * marking members and scoring the PUBS slice prediction against
     * them.
     */
    void traceTrueSlice(uint32_t branchId, const Inflight &branch);

    /** Emit a squashed instruction's pipeview record and mark it. */
    void recordSquashed(Inflight &inst);
    void issueFromQueue(iq::IssueQueue &queue, bool useAgeMatrix,
                        unsigned &grants);
    iq::IssueQueue &queueFor(const trace::DynInst &di);
    Cycle regReadyCycle(isa::RegClass cls, PhysRegId reg) const;
    void setRegReady(isa::RegClass cls, PhysRegId reg, Cycle cycle);

    Inflight &at(uint32_t id) { return ring_[id]; }
    const Inflight &at(uint32_t id) const { return ring_[id]; }

    CoreParams params_;
    trace::InstSource &source_;

    std::unique_ptr<mem::MemorySystem> mem_;
    std::unique_ptr<branch::BranchPredictor> predictor_;
    std::unique_ptr<branch::Btb> btb_;
    std::unique_ptr<branch::Ras> ras_;
    /** One queue (unified) or one per FU group (distributed). */
    std::vector<std::unique_ptr<iq::IssueQueue>> iqs_;
    std::unique_ptr<iq::AgeMatrix> ageMatrix_;
    std::unique_ptr<pubs::SliceUnit> sliceUnit_;
    std::unique_ptr<pubs::ModeSwitch> modeSwitch_;
    std::unique_ptr<sim::CommitChecker> checker_;
    std::unique_ptr<CoreTelemetry> telemetry_;
    std::unique_ptr<trace::PipeViewWriter> pipeview_;
    CheckPolicy checkPolicy_ = CheckPolicy::Off;
    CheckPolicy auditPolicy_ = CheckPolicy::Off;
    RenameUnit rename_;
    Rob rob_;
    Lsq lsq_;
    FuPool fuPool_;
    Rng rng_;

    // Physical register ready cycles.
    std::vector<Cycle> intRegReady_;
    std::vector<Cycle> fpRegReady_;

    // In-flight instructions, indexed by clientId; free slots are
    // recycled through freeIds_.
    std::vector<Inflight> ring_;
    std::vector<uint32_t> freeIds_;

    // In-order front-end queue of clientIds awaiting dispatch.
    std::deque<uint32_t> frontendQueue_;
    size_t frontendCapacity_;

    // Fetch state.
    Cycle now_ = 0;
    Cycle fetchSuspendedUntil_ = 0;
    bool fetchBlockedOnBranch_ = false;
    bool sourceExhausted_ = false;
    bool haltCommitted_ = false;
    bool havePending_ = false;
    trace::DynInst pending_{};
    uint64_t fetchCounter_ = 0;
    uint64_t fetchSeq_ = 0;
    uint64_t runTarget_ = UINT64_MAX;

    // Wrong-path fetch state (active between the fetch of a mispredicted
    // branch and its resolution).
    const isa::Program *staticProgram_ = nullptr;
    bool wrongPathActive_ = false;
    Pc wrongPathPc_ = 0;

    /** Last effective address seen per static memory instruction, used
     *  to approximate wrong-path load/store addresses. */
    std::unordered_map<Pc, Addr> lastMemAddr_;

    /** Scheduled squashes: (resolution cycle, mispredicted branch id). */
    struct SquashEvent
    {
        Cycle cycle;
        uint32_t branchId;
        bool operator>(const SquashEvent &o) const
            { return cycle > o.cycle; }
    };
    std::priority_queue<SquashEvent, std::vector<SquashEvent>,
                        std::greater<SquashEvent>>
        squashEvents_;

    /**
     * Post-commit store buffer: committed stores whose data can still
     * forward to younger loads while the cache write drains.
     */
    struct RecentStore
    {
        Addr addr = 0;
        uint8_t size = 0;
        Cycle done = 0;
    };
    static constexpr size_t recentStoreDepth = 32;
    std::array<RecentStore, recentStoreDepth> recentStores_{};
    size_t recentStoreHead_ = 0;

    std::priority_queue<ConfEvent, std::vector<ConfEvent>,
                        std::greater<ConfEvent>>
        confEvents_;

    // Scratch for the age matrix ready mask.
    std::vector<uint64_t> readyMask_;

    PipelineStats stats_;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_PIPELINE_HH
