/**
 * @file
 * The cycle-level out-of-order core model.
 *
 * Stages: fetch -> (frontendDepth-cycle in-order front end, where branch
 * prediction and the PUBS slice unit operate) -> rename/dispatch ->
 * wakeup/select issue from the IQ -> execute -> commit.
 *
 * Misprediction modelling (see DESIGN.md): a mispredicted branch stalls
 * further fetch until the branch completes execution, then fetch resumes
 * on the correct path after the state-recovery penalty. The interval from
 * the branch's fetch to its execution completion is exactly the paper's
 * *misspeculation penalty*; PUBS shortens the IQ-waiting portion of it by
 * dispatching unconfident-branch-slice instructions into the reserved
 * priority entries at the head of the IQ.
 */

#ifndef PUBS_CPU_PIPELINE_HH
#define PUBS_CPU_PIPELINE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "branch/btb.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/slab.hh"
#include "common/stats.hh"
#include "cpu/cpi_stack.hh"
#include "cpu/event_wheel.hh"
#include "cpu/fu_pool.hh"
#include "cpu/lsq.hh"
#include "cpu/params.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "iq/age_matrix.hh"
#include "iq/issue_queue.hh"
#include "mem/memory_system.hh"
#include "pubs/mode_switch.hh"
#include "pubs/slice_unit.hh"
#include "trace/dyninst.hh"

namespace pubs::sim
{
class CommitChecker;
} // namespace pubs::sim

namespace pubs::emu
{
class Emulator;
} // namespace pubs::emu

namespace pubs::trace
{
class PipeViewWriter;
} // namespace pubs::trace

namespace pubs::cpu
{

class CoreTelemetry;

/** Counters the benches and tests read out. */
struct PipelineStats
{
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t fetched = 0;

    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t indirectJumps = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t btbMissBubbles = 0;

    uint64_t llcMisses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;

    uint64_t priorityDispatches = 0;
    uint64_t normalDispatches = 0;
    uint64_t priorityStallCycles = 0; ///< dispatch blocked on priority entry
    uint64_t iqFullStallCycles = 0;
    uint64_t robFullStallCycles = 0;

    uint64_t issueConflictCycles = 0; ///< ready inst left unissued
    uint64_t issued = 0;

    /** Sum/count of fetch-to-execution-completion cycles of mispredicted
     *  branches: the misspeculation penalty. */
    uint64_t misspecPenaltySum = 0;
    uint64_t misspecPenaltyCount = 0;

    uint64_t wrongPathFetched = 0; ///< wrong-path instructions fetched
    uint64_t squashed = 0;         ///< wrong-path instructions squashed

    /** Sum of IQ waiting cycles of issued instructions. */
    uint64_t iqWaitSum = 0;

    // Lockstep checker / structural audit results (cpu/audit.hh,
    // sim/checker.hh); all zero when the checks are off.
    uint64_t checkerCommits = 0;
    uint64_t checkerDivergences = 0;
    uint64_t auditsRun = 0;
    uint64_t auditViolations = 0;

    /**
     * Top-down cycle accounting: every cycle charged to exactly one
     * exclusive component (cpu/cpi_stack.hh). cpi.total() == cycles is
     * a structural invariant enforced by the auditor.
     */
    CpiStack cpi;

    /** Distribution of misspeculation penalties (4-cycle buckets, so
     *  long LLC-miss-bound penalties keep resolution). */
    Histogram misspecPenalty{128, 4};
    /** Per-cycle IQ occupancy distribution (entry buckets). */
    Histogram iqOccupancy{256};
    /** Dispatch-to-issue wait of issued instructions (2-cycle buckets). */
    Histogram iqWait{96, 2};

    double ipc() const
    {
        return cycles ? (double)committed / (double)cycles : 0.0;
    }

    double
    branchMpki() const
    {
        uint64_t mispredicts = condMispredicts + indirectMispredicts;
        return committed ? (double)mispredicts * 1000.0 / (double)committed
                         : 0.0;
    }

    double
    llcMpki() const
    {
        return committed ? (double)llcMisses * 1000.0 / (double)committed
                         : 0.0;
    }

    double
    avgMisspecPenalty() const
    {
        return misspecPenaltyCount
                   ? (double)misspecPenaltySum / (double)misspecPenaltyCount
                   : 0.0;
    }
};

class Pipeline
{
  public:
    Pipeline(const CoreParams &params, trace::InstSource &source);
    ~Pipeline();

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    /**
     * Run until @p maxInsts more instructions commit or the source is
     * exhausted (and the pipeline drains).
     * @return instructions committed by this call.
     */
    uint64_t run(uint64_t maxInsts);

    /**
     * Consume up to @p insts instructions from the source without
     * simulating any timing, while functionally warming the
     * microarchitectural state the detailed model trains in its in-order
     * front end: caches (via the cycle-free warm-access path), the
     * branch predictor, BTB, RAS, and — when PUBS is configured — the
     * slice unit tables and the mode switch.
     *
     * Only legal on a pristine pipeline (nothing fetched, cycle 0):
     * the warm path deliberately creates no cycle-coupled state, so
     * fast-forwarding a+b instructions is byte-identical to
     * fast-forwarding a, checkpointing, restoring, and fast-forwarding
     * b. Throws CheckpointError if the pipeline has already run.
     *
     * @return instructions consumed (less than @p insts only when the
     *         source is exhausted).
     */
    uint64_t functionalFastForward(uint64_t insts);

    /**
     * Serialize the warm microarchitectural state (memory hierarchy,
     * predictor, BTB, RAS, PUBS tables, wrong-path address
     * approximations). Architectural state lives in the emulator and is
     * serialized by the checkpoint container, not here. Only legal on a
     * pristine pipeline — see functionalFastForward.
     */
    void serialize(Serializer &s) const;

    /** Restore state captured by serialize(). Same pristine rule. */
    void unserialize(Deserializer &d);

    /**
     * Re-seed the lockstep checker's private emulator from @p ref after
     * a fast-forward or checkpoint restore, so commit checking resumes
     * from the restored architectural state. No-op without a checker.
     */
    void resyncChecker(const emu::Emulator &ref);

    /** Zero the measurement counters (tables stay trained): warmup. */
    void resetStats();

    const PipelineStats &stats() const { return stats_; }
    Cycle now() const { return now_; }
    bool drained() const;

    const CoreParams &params() const { return params_; }
    const mem::MemorySystem &memory() const { return *mem_; }
    const pubs::SliceUnit *sliceUnit() const { return sliceUnit_.get(); }
    const pubs::ModeSwitch *modeSwitch() const { return modeSwitch_.get(); }
    const iq::IssueQueue &issueQueue() const { return *iqs_[0]; }
    size_t issueQueueCount() const { return iqs_.size(); }
    const branch::BranchPredictor &predictor() const { return *predictor_; }

    /** Summarise into a stat group for reporting. */
    void fillStats(StatGroup &group) const;

    /**
     * Publish the full observability picture into @p registry: the
     * "pipeline" group (fillStats plus histograms), plus "iq", "mem",
     * "pubs" / "pubs.conf_tab", and — when telemetry is enabled —
     * "pubs.telemetry", "branch_profile" and "heartbeat".
     */
    void fillRegistry(StatRegistry &registry) const;

    /**
     * Attach an O3PipeView trace writer: every instruction's stage
     * cycles are stamped and written at retire/squash. Pass before
     * running; null detaches.
     */
    void attachPipeView(std::unique_ptr<trace::PipeViewWriter> writer);

    /** The attached pipeview writer, if any. */
    const trace::PipeViewWriter *pipeView() const { return pipeview_.get(); }

    /** Telemetry collector (null unless CoreParams::telemetry). */
    const CoreTelemetry *telemetry() const { return telemetry_.get(); }

    /** The lockstep checker, if one is attached (null otherwise). */
    const sim::CommitChecker *checker() const { return checker_.get(); }

    /**
     * Human-readable snapshot of the machine state (ROB/IQ/LSQ
     * occupancy, rename headroom, fetch state) appended to checker and
     * audit diagnostics.
     */
    std::string debugSnapshot() const;

  private:
    friend class Auditor;

    /**
     * Data-oriented in-flight layout (DESIGN.md §13). Per-instruction
     * state is split into three dense per-slot arrays indexed by
     * clientId, so the fields wakeup/select/issue/commit touch every
     * cycle share one cache line per instruction instead of dragging
     * the whole trace payload through the LLC:
     *
     *  - hot_  (InflightHot, one 64-byte slot): sequence number, stage
     *    flags, renamed registers, FU class, PUBS priority bit and the
     *    cycle fields the scheduler reads;
     *  - deps_ (InflightDeps): the wakeup scoreboard's registered
     *    consumers, touched only at register/wake time;
     *  - cold_ (InflightCold): the trace payload, slice decision and
     *    telemetry stamps, read at most a handful of times per
     *    instruction (dispatch, issue, commit).
     *
     * hot_.seq/op and the PUBS priority bit deliberately duplicate
     * cold state; the structural auditor and debug asserts at dispatch
     * and commit check the copies agree.
     */
    struct InflightHot
    {
        SeqNum seq = 0;
        Cycle feReadyCycle = 0; ///< earliest dispatch cycle
        Cycle dispatchCycle = 0;
        Cycle doneCycle = 0;
        uint64_t lsqPos = 0; ///< LSQ position handle (when inLsq)

        // Rename.
        PhysRegId physSrc1 = invalidPhysReg;
        PhysRegId physSrc2 = invalidPhysReg;
        PhysRegId physDst = invalidPhysReg;
        PhysRegId prevPhysDst = invalidPhysReg;
        isa::RegClass src1Cls = isa::RegClass::None;
        isa::RegClass src2Cls = isa::RegClass::None;
        isa::RegClass dstCls = isa::RegClass::None;

        /** Opcode copy (cold_[id].di.op): FU class and load/store
         *  tests on the select path without a cold-array read. */
        isa::Opcode op = isa::Opcode::Nop;

        uint8_t iqIndex = 0; ///< which queue holds it (distributed IQ)
        /** Deepest miss level of an issued load: 0 = L1 hit / forward,
         *  1 = L1 miss filled by the L2, 2 = LLC miss (DRAM). Drives the
         *  memory split of the CPI stack. */
        uint8_t missLevel = 0;
        /** Source operands still outstanding (wakeup scoreboard). */
        uint8_t pendingOps = 0;

        bool valid : 1 = false;
        bool dispatched : 1 = false;
        bool inIq : 1 = false;
        bool issued : 1 = false;
        bool inLsq : 1 = false;
        bool priorityEntry : 1 = false;
        bool isMispredict : 1 = false;
        bool condPredictionCorrect : 1 = false;
        bool wrongPath : 1 = false; ///< fetched past an unresolved mispredict
        /** Found in the true backward slice of a resolved misprediction
         *  (telemetry ground truth for the PUBS slice predictor). */
        bool trueSlice : 1 = false;
        /** PUBS priority bit (cold_[id].slice.unconfident). */
        bool sliceUnconfident : 1 = false;
    };

    /**
     * Wakeup-scoreboard dependent records (see DESIGN.md
     * "Host-performance architecture"): the registered consumers to
     * wake when this instruction's result is scheduled. Overflow
     * dependents chain through the slab pool; entries are (id, seq)
     * pairs validated lazily, so squashes never search these lists.
     */
    struct InflightDeps
    {
        static constexpr size_t inlineDeps = 4;
        std::array<uint32_t, inlineDeps> ids{};
        std::array<SeqNum, inlineDeps> seqs{};
        uint8_t count = 0; ///< dependents in the inline array
        uint32_t overflow = UINT32_MAX; ///< slab chain head
    };

    /** Everything read at most a few times per instruction. */
    struct InflightCold
    {
        trace::DynInst di{};
        pubs::SliceDecision slice{};
        Cycle fetchCycle = 0;
    };

    /** Why dispatch would stall this cycle (stat accounting). The
     *  legacy stall counters only increment for the first three; the
     *  LSQ/rename reasons exist for CPI-stack attribution. */
    enum class DispatchBlock : uint8_t
    {
        None,          ///< head can dispatch
        RobFull,
        IqFull,
        PriorityStall,
        LsqFull,       ///< blocked, but no stall counter increments
        RenameFull,    ///< blocked, but no stall counter increments
    };

    /** What last suspended fetch (fetchSuspendedUntil_); classification
     *  only, never consulted by the timing model. */
    enum class SuspendReason : uint8_t
    {
        None,
        ICache,   ///< i-cache miss refill
        Btb,      ///< BTB-miss bubble
        Recovery, ///< post-squash state-recovery penalty
    };

    /** Scheduled conf_tab training at branch-resolution time. */
    struct ConfEvent
    {
        Cycle cycle;
        Pc pc;
        bool correct;

        bool operator>(const ConfEvent &o) const { return cycle > o.cycle; }
    };

    void cycle();
    void runAudit(const char *context);
    void doCommit();
    void applyConfEvents();
    void processSquashes();
    void doIssue();
    void doDispatch();
    void doFetch();

    /** Handle control flow of a just-fetched correct-path instruction. */
    void fetchControl(InflightHot &hot, const trace::DynInst &di,
                      bool &endGroup, bool &blockFetch, bool &btbBubble);

    /** Synthesise the next wrong-path instruction from the static
     *  program; returns false when wrong-path fetch must stop. */
    bool makeWrongPathInst(trace::DynInst &out);

    /** Squash everything younger than @p branchId (ROB tail walk). */
    void squashYoungerThan(uint32_t branchId);

    bool srcsReady(const InflightHot &hot, Cycle &readyAt) const;
    void issueInst(uint32_t id);

    /**
     * Telemetry: walk the true dynamic backward slice of the resolved
     * mispredicted branch @p branchId through the older ROB entries,
     * marking members and scoring the PUBS slice prediction against
     * them.
     */
    void traceTrueSlice(uint32_t branchId);

    /** Emit a squashed instruction's pipeview record and mark it. */
    void recordSquashed(uint32_t id);
    void issueFromQueue(iq::IssueQueue &queue, bool useAgeMatrix,
                        unsigned &grants);
    iq::IssueQueue &queueFor(const trace::DynInst &di);
    Cycle regReadyCycle(isa::RegClass cls, PhysRegId reg) const;
    void setRegReady(isa::RegClass cls, PhysRegId reg, Cycle cycle);

    /** Debug-only hot/cold agreement check (dispatch and commit). */
    void assertHotColdAgree(uint32_t id) const;

    CoreParams params_;
    trace::InstSource &source_;

    std::unique_ptr<mem::MemorySystem> mem_;
    std::unique_ptr<branch::BranchPredictor> predictor_;
    std::unique_ptr<branch::Btb> btb_;
    std::unique_ptr<branch::Ras> ras_;
    /** One queue (unified) or one per FU group (distributed). */
    std::vector<std::unique_ptr<iq::IssueQueue>> iqs_;
    std::unique_ptr<iq::AgeMatrix> ageMatrix_;
    std::unique_ptr<pubs::SliceUnit> sliceUnit_;
    std::unique_ptr<pubs::ModeSwitch> modeSwitch_;
    std::unique_ptr<sim::CommitChecker> checker_;
    std::unique_ptr<CoreTelemetry> telemetry_;
    std::unique_ptr<trace::PipeViewWriter> pipeview_;
    CheckPolicy checkPolicy_ = CheckPolicy::Off;
    CheckPolicy auditPolicy_ = CheckPolicy::Off;
    RenameUnit rename_;
    Rob rob_;
    Lsq lsq_;
    FuPool fuPool_;
    Rng rng_;

    // Physical register ready cycles.
    std::vector<Cycle> intRegReady_;
    std::vector<Cycle> fpRegReady_;

    // In-flight instructions, indexed by clientId; free slots are
    // recycled through freeIds_. Parallel SoA slices — see the layout
    // comment above InflightHot.
    std::vector<InflightHot> hot_;
    std::vector<InflightDeps> deps_;
    std::vector<InflightCold> cold_;
    std::vector<uint32_t> freeIds_;

    // In-order front-end queue of clientIds awaiting dispatch.
    std::deque<uint32_t> frontendQueue_;
    size_t frontendCapacity_;

    // Fetch state.
    Cycle now_ = 0;
    Cycle fetchSuspendedUntil_ = 0;
    SuspendReason suspendReason_ = SuspendReason::None;
    bool fetchBlockedOnBranch_ = false;
    bool sourceExhausted_ = false;
    bool haltCommitted_ = false;
    bool havePending_ = false;
    trace::DynInst pending_{};
    uint64_t fetchCounter_ = 0;
    uint64_t fetchSeq_ = 0;
    uint64_t runTarget_ = UINT64_MAX;

    // Wrong-path fetch state (active between the fetch of a mispredicted
    // branch and its resolution).
    const isa::Program *staticProgram_ = nullptr;
    bool wrongPathActive_ = false;
    Pc wrongPathPc_ = 0;

    /** Last effective address seen per static memory instruction, used
     *  to approximate wrong-path load/store addresses. Indexed by the
     *  instruction's program index (programs are dense from basePc);
     *  0 means "never seen", which the wrong-path replay already treats
     *  the same as an absent entry. Empty without a static program —
     *  wrong-path replay is impossible then, so nothing reads it. */
    std::vector<Addr> lastMemAddr_;

    /** Scheduled squashes: (resolution cycle, mispredicted branch id). */
    struct SquashEvent
    {
        Cycle cycle;
        uint32_t branchId;
        bool operator>(const SquashEvent &o) const
            { return cycle > o.cycle; }
    };
    std::priority_queue<SquashEvent, std::vector<SquashEvent>,
                        std::greater<SquashEvent>>
        squashEvents_;

    /**
     * Post-commit store buffer: committed stores whose data can still
     * forward to younger loads while the cache write drains.
     */
    static constexpr size_t recentStoreDepth = 32;
    StoreBuffer recentStores_{recentStoreDepth};

    std::priority_queue<ConfEvent, std::vector<ConfEvent>,
                        std::greater<ConfEvent>>
        confEvents_;

    // Scratch for the age matrix ready mask.
    std::vector<uint64_t> readyMask_;

    // Per-cycle CPI-stack classification signals, reset at the top of
    // cycle() and captured by doDispatch(); midCycle_ marks the span
    // between cycle-count increment and classification so the auditor
    // knows whether the current cycle has been attributed yet.
    bool cycleDispatched_ = false;
    bool cycleDispatchedCorrect_ = false;
    DispatchBlock cycleBlock_ = DispatchBlock::None;
    bool midCycle_ = false;
    /** Mode-switch state last cycle, for transition detection. */
    bool lastPubsEnabled_ = true;

    // --- Event-driven scheduling state ---

    /** Overflow block for a producer's dependent list. */
    struct DepNode
    {
        static constexpr size_t fanout = 6;
        std::array<uint32_t, fanout> ids{};
        std::array<SeqNum, fanout> seqs{};
        uint8_t n = 0;
        uint32_t next = UINT32_MAX;
    };

    /** Cycle-bucketed schedule of operand-ready / load-recheck events. */
    EventWheel wheel_;
    SlabPool<DepNode> depPool_;

    /** Producing instruction id per physical register (UINT32_MAX when
     *  the value is not owned by an in-flight producer). Paired with
     *  the producer's seq so stale entries are ignored. */
    std::vector<uint32_t> intRegProducer_, fpRegProducer_;
    std::vector<SeqNum> intRegProducerSeq_, fpRegProducerSeq_;

    /** Loads excluded from the ready bitmap because an older overlapping
     *  store has not executed; re-checked when a store issues. */
    std::vector<std::pair<uint32_t, SeqNum>> memBlockedLoads_;
    Cycle loadRecheckCycle_ = 0; ///< cycle of the pending recheck event

    static constexpr Cycle maxSkipSpan = 4096;

    /**
     * CPI-stack attribution of a cycle in which no correct-path
     * instruction dispatched; @p block is why dispatch stopped (None
     * when the front end simply had nothing ready). Shared between the
     * executed-cycle path and the bulk fast-forward path, whose
     * classification inputs are constant over the skipped span.
     */
    CpiComponent classifyStallCycle(DispatchBlock block) const;

    /** Root-cause chase for a backend stall: reattribute to the ROB
     *  head's outstanding miss / unresolved mispredict, else keep
     *  @p fallback. */
    CpiComponent chaseRobHead(CpiComponent fallback) const;

    void onWheelEvent(EventWheel::Kind kind, uint32_t a, uint64_t b);
    void setupScoreboard(uint32_t id);
    void registerDependent(uint32_t producerId, uint32_t id, SeqNum seq);
    void wakeDependents(uint32_t producerId, Cycle done);
    void releaseDeps(uint32_t id);
    void scheduleLoadRecheck();
    DispatchBlock dispatchBlockReason() const;
    bool fetchCanProgress() const;
    Cycle nextWorkCycle() const;
    void fastForward(Cycle to);
    void requirePristine(const char *what) const;
    const iq::IssueQueue &queueFor(const trace::DynInst &di) const;
    uint32_t &regProducer(isa::RegClass cls, PhysRegId reg);
    SeqNum &regProducerSeq(isa::RegClass cls, PhysRegId reg);

    PipelineStats stats_;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_PIPELINE_HH
