/**
 * @file
 * Reorder buffer: a bounded FIFO of in-flight instruction handles.
 * Program order is the push order; commit pops from the head.
 */

#ifndef PUBS_CPU_ROB_HH
#define PUBS_CPU_ROB_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pubs::cpu
{

class Rob
{
  public:
    explicit Rob(unsigned entries) : ring_(entries)
    {
        fatal_if(entries == 0, "ROB needs at least one entry");
    }

    bool full() const { return count_ == ring_.size(); }
    bool empty() const { return count_ == 0; }
    size_t occupancy() const { return count_; }
    size_t capacity() const { return ring_.size(); }

    void
    push(uint32_t id)
    {
        panic_if(full(), "push to full ROB");
        ring_[tail_] = id;
        tail_ = wrapInc(tail_);
        ++count_;
    }

    uint32_t
    head() const
    {
        panic_if(empty(), "head of empty ROB");
        return ring_[head_];
    }

    void
    popHead()
    {
        panic_if(empty(), "pop of empty ROB");
        head_ = wrapInc(head_);
        --count_;
    }

    /** Youngest entry (for squash walks). */
    uint32_t
    tail() const
    {
        panic_if(empty(), "tail of empty ROB");
        return ring_[wrapDec(tail_)];
    }

    /** Remove the youngest entry (misprediction squash). */
    void
    popTail()
    {
        panic_if(empty(), "popTail of empty ROB");
        tail_ = wrapDec(tail_);
        --count_;
    }

    /** Visit every entry in program order (for the structural auditor). */
    template <typename F>
    void
    forEach(F &&visit) const
    {
        size_t pos = head_;
        for (size_t i = 0; i < count_; ++i) {
            visit(ring_[pos]);
            pos = wrapInc(pos);
        }
    }

  private:
    // ROB sizes are rarely powers of two, so the compiler cannot turn
    // the textbook `% size()` into a mask; wrap-compare avoids the
    // integer divide on every push/pop of the commit hot loop.
    size_t
    wrapInc(size_t pos) const
    {
        ++pos;
        return pos == ring_.size() ? 0 : pos;
    }

    size_t
    wrapDec(size_t pos) const
    {
        return (pos == 0 ? ring_.size() : pos) - 1;
    }

    std::vector<uint32_t> ring_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t count_ = 0;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_ROB_HH
