/**
 * @file
 * Register rename: architectural-to-physical map tables plus physical
 * free lists for the integer and FP register files. Commit frees the
 * previous mapping of the destination (the standard merged-file scheme).
 */

#ifndef PUBS_CPU_RENAME_HH
#define PUBS_CPU_RENAME_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace pubs::cpu
{

class RenameUnit
{
  public:
    RenameUnit(unsigned intPhysRegs, unsigned fpPhysRegs);

    /** Free physical registers available in @p cls right now. */
    size_t freeRegs(isa::RegClass cls) const;

    /** Current mapping of logical @p reg in @p cls. */
    PhysRegId mapOf(isa::RegClass cls, RegId reg) const;

    /**
     * Rename a destination: allocates a new physical register and
     * returns it; @p prevOut receives the previous mapping (to be freed
     * when the instruction commits).
     */
    PhysRegId renameDst(isa::RegClass cls, RegId reg, PhysRegId &prevOut);

    /** Release @p reg of @p cls back to the free list (at commit). */
    void freeReg(isa::RegClass cls, PhysRegId reg);

    /**
     * Undo a rename during a misprediction squash (must be applied in
     * reverse program order): restores the map of @p reg to
     * @p prevMapping and frees @p squashedMapping.
     */
    void rollback(isa::RegClass cls, RegId reg, PhysRegId squashedMapping,
                  PhysRegId prevMapping);

    unsigned totalRegs(isa::RegClass cls) const;

    /** Free-list contents, for the structural auditor (cpu/audit.hh). */
    const std::vector<PhysRegId> &freeListContents(isa::RegClass cls) const;

    /** Architectural registers mapped in @p cls (map table rows). */
    unsigned archRegs(isa::RegClass cls) const;

  private:
    struct File
    {
        std::array<PhysRegId, numIntRegs> map{};
        std::vector<PhysRegId> freeList;
        unsigned total = 0;
    };

    File &fileOf(isa::RegClass cls);
    const File &fileOf(isa::RegClass cls) const;

    File int_;
    File fp_;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_RENAME_HH
