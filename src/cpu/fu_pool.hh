/**
 * @file
 * Function-unit pool (Table I: 2 iALU, 1 iMULT/DIV, 2 Ld/St, 2 FPU).
 * Each unit accepts one instruction per cycle; unpipelined operations
 * (integer and FP divide) occupy their unit for the full latency.
 */

#ifndef PUBS_CPU_FU_POOL_HH
#define PUBS_CPU_FU_POOL_HH

#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace pubs::cpu
{

/** Physical FU groups instructions arbitrate for. */
enum class FuType : uint8_t
{
    IntAlu,    ///< also executes branches
    IntMulDiv,
    LdSt,
    Fpu,

    NumTypes,
};

/** Which FU group executes @p cls. */
FuType fuTypeOf(isa::OpClass cls);

const char *fuTypeName(FuType type);

class FuPool
{
  public:
    FuPool(unsigned intAlu, unsigned intMulDiv, unsigned ldSt,
           unsigned fpu);

    /**
     * Try to claim a unit of @p type at cycle @p now.
     * @param busyCycles 1 for pipelined ops; full latency for
     *        unpipelined ops.
     * @return true if a unit was claimed.
     */
    bool acquire(FuType type, Cycle now, unsigned busyCycles);

    /** Would acquire() succeed (without claiming)? */
    bool available(FuType type, Cycle now) const;

    unsigned count(FuType type) const;

  private:
    std::vector<Cycle> &unitsOf(FuType type);
    const std::vector<Cycle> &unitsOf(FuType type) const;

    /** Per unit: first cycle it can accept a new instruction. */
    std::vector<Cycle> intAlu_;
    std::vector<Cycle> intMulDiv_;
    std::vector<Cycle> ldSt_;
    std::vector<Cycle> fpu_;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_FU_POOL_HH
