/**
 * @file
 * Top-down CPI stack: every simulated cycle is attributed to exactly one
 * exclusive component, so the per-component cycle counts sum to the total
 * cycle count — an invariant the structural auditor enforces.
 *
 * The taxonomy follows interval analysis (Eyerman et al.), adapted to
 * this pipeline's dispatch-centric view and to the paper's vocabulary
 * (see DESIGN.md section 11):
 *
 *  - Base: at least one correct-path instruction dispatched — the cycle
 *    did useful work.
 *  - Frontend: nothing to dispatch and the backend is drained; fetch is
 *    starved by an i-cache miss, a BTB-miss bubble, front-end latency,
 *    or source exhaustion.
 *  - BranchRecovery: fetch suspended by the fixed state-recovery penalty
 *    after a misprediction squash (Table I's 10 cycles).
 *  - BranchMisspec: the machine did only wrong-path work, or progress
 *    waits on an unresolved mispredicted branch — the remainder of the
 *    paper's misspeculation penalty.
 *  - MemL2 / MemDram: dispatch (or the drained backend) waits while the
 *    ROB head is a load outstanding at the L2 / in DRAM; structural
 *    backpressure under a miss is charged to the miss, not the queue.
 *  - RobFull / IqFull / LsqFull / RenameFull: dispatch blocked on the
 *    structure itself with no miss to blame.
 *  - PriorityStall: dispatch blocked by the PUBS stall policy waiting
 *    for a free priority IQ entry — the cost the paper's mechanism
 *    introduces; never reattributed.
 *  - Execute: the backend holds work but the ROB head is still moving
 *    through select/execute (FU latency, issue conflicts).
 */

#ifndef PUBS_CPU_CPI_STACK_HH
#define PUBS_CPU_CPI_STACK_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pubs
{
class StatGroup;
} // namespace pubs

namespace pubs::cpu
{

enum class CpiComponent : uint8_t
{
    Base,
    Frontend,
    BranchRecovery,
    BranchMisspec,
    MemL2,
    MemDram,
    RobFull,
    IqFull,
    LsqFull,
    RenameFull,
    PriorityStall,
    Execute,
    NumComponents,
};

constexpr size_t numCpiComponents = (size_t)CpiComponent::NumComponents;

/** Stable lowercase identifier ("base", "mem_dram", ...). */
const char *cpiComponentName(CpiComponent c);

/** Per-component exclusive cycle counts. */
struct CpiStack
{
    std::array<uint64_t, numCpiComponents> cycles{};

    void
    add(CpiComponent c, uint64_t n = 1)
    {
        cycles[(size_t)c] += n;
    }

    uint64_t operator[](CpiComponent c) const { return cycles[(size_t)c]; }

    /** Sum over all components; equals total simulated cycles. */
    uint64_t total() const;

    /** Accumulate @p other (SMARTS window pooling). */
    void merge(const CpiStack &other);

    /** Component counts of this minus @p since (interval deltas). */
    CpiStack deltaSince(const CpiStack &since) const;

    /**
     * Publish into @p group: per-component cycle counts
     * ("<name>_cycles"), per-component CPI contributions ("cpi_<name>" =
     * cycles / @p committed), and the totals.
     */
    void fill(StatGroup &group, uint64_t committed) const;

    /** Aligned text table (CLI output). */
    std::string format(uint64_t committed) const;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_CPI_STACK_HH
