/**
 * @file
 * Core configuration. Defaults reproduce Table I (an ARM Cortex-A72-like
 * 4-wide mobile core); scaled() reproduces the four processor sizes of
 * Table IV used in the Fig. 16 sensitivity study.
 */

#ifndef PUBS_CPU_PARAMS_HH
#define PUBS_CPU_PARAMS_HH

#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "common/error.hh"
#include "iq/issue_queue.hh"
#include "mem/memory_system.hh"
#include "pubs/params.hh"

namespace pubs::cpu
{

/** Table IV processor size classes. */
enum class SizeClass
{
    Small,
    Medium, ///< the default (Table I)
    Large,
    Huge,
};

const char *sizeClassName(SizeClass size);

struct CoreParams
{
    // --- widths (Table I: 4-wide fetch/decode/issue/commit) ---
    unsigned fetchWidth = 4;
    unsigned decodeWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;

    // --- window (Table I) ---
    unsigned robEntries = 128;
    unsigned iqEntries = 64;
    unsigned lsqEntries = 64;
    unsigned intPhysRegs = 128;
    unsigned fpPhysRegs = 128;

    // --- pipeline ---
    /** Fetch-to-dispatch latency in cycles (front-end depth). */
    unsigned frontendDepth = 5;
    /** State-recovery penalty after a misprediction (Table I: 10). */
    unsigned recoveryPenalty = 10;
    /** Fetch bubble when a taken branch misses in the BTB. */
    unsigned btbMissPenalty = 2;

    // --- function units (Table I / Cortex-A72) ---
    unsigned numIntAlu = 2;
    unsigned numIntMulDiv = 1;
    unsigned numLdSt = 2;
    unsigned numFpu = 2;

    // --- branch prediction ---
    branch::PredictorKind predictor = branch::PredictorKind::Perceptron;
    unsigned btbSets = 2048;
    unsigned btbWays = 4;
    unsigned rasDepth = 16;

    // --- issue-queue organisation ---
    iq::IqKind iqKind = iq::IqKind::Random;
    bool ageMatrix = false;

    /**
     * Section III-C2: distribute the IQ among the four FU groups (AMD
     * Zen style), each sub-queue getting iqEntries/4 entries and its
     * own PUBS priority partition.
     */
    bool distributedIq = false;

    /**
     * Section III-C1: the idealised flexible-priority select logic —
     * ready unconfident-slice instructions win arbitration regardless
     * of their queue position, with no reserved entries. The paper
     * argues this circuit is impractical (huge MUX fan-in); we model it
     * as an upper bound on what PUBS's partitioning approximates.
     */
    bool idealPrioritySelect = false;

    // --- PUBS ---
    bool usePubs = false;
    pubs::PubsParams pubs{};

    // --- memory hierarchy ---
    mem::MemoryParams memory{};

    /** Seed for all model-internal randomness. */
    uint64_t seed = 1;

    // --- observability (cpu/telemetry.hh) ---
    /**
     * Collect cycle-level telemetry: per-branch-PC misprediction
     * profiles, PUBS slice-prediction coverage/accuracy against true
     * backward slices, the priority-entry occupancy histogram, and the
     * interval heartbeat. Off by default: the hot paths then pay only a
     * null-pointer check per event.
     */
    bool telemetry = false;
    /** Cycles between heartbeat samples (0 disables the heartbeat). */
    unsigned heartbeatInterval = 100000;
    /** Print each heartbeat sample to stderr as it is taken. */
    bool heartbeatToStderr = true;

    // --- verification (see sim/checker.hh and cpu/audit.hh) ---
    /**
     * Lockstep commit checker: an independent functional emulator
     * cross-validates PC / next-PC / destination value / effective
     * address at every commit. Needs a program-backed source; trace
     * replays warn once and run unchecked. Overridable via PUBS_CHECK.
     */
    CheckPolicy checkPolicy = CheckPolicy::Off;
    /**
     * Structural invariant audit (free-list bijection, ROB-IQ-LSQ
     * cross-consistency, PUBS partition bounds, age-matrix acyclicity),
     * run every auditInterval cycles and after every squash.
     * Overridable via PUBS_CHECK.
     */
    CheckPolicy auditPolicy = CheckPolicy::Off;
    /** Cycles between periodic structural audits. */
    unsigned auditInterval = 1024;

    /** The Table IV configuration for @p size (other params default). */
    static CoreParams scaled(SizeClass size);

    /**
     * Reject impossible configurations with one actionable message per
     * problem. Throws pubs::ConfigError listing every violation; a
     * clean configuration returns normally. The Pipeline constructor
     * calls this, but sweep drivers can call it early to skip a bad
     * configuration before building anything.
     */
    void validate() const;

    /** All validation problems, empty when the configuration is sound. */
    std::vector<std::string> validationErrors() const;

    /** Render Table I / Table II style configuration text. */
    std::string describe() const;

    /**
     * Stable rendering of the *functional* parameter subset: the fields
     * that shape the warm microarchitectural state a checkpoint
     * serializes (cache/prefetcher geometry, predictor/BTB/RAS
     * configuration, PUBS table geometry and mode-switch training).
     * Timing-only fields — pipeline widths, window sizes, FU counts,
     * latencies, IQ organisation, PUBS dispatch policy, the seed — are
     * deliberately excluded: changing them cannot change checkpoint
     * content, so checkpoints stay shareable across timing sweeps.
     * sim::paramsFingerprint() hashes this text.
     */
    std::string describeFunctional() const;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_PARAMS_HH
