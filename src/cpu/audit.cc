#include "cpu/audit.hh"

#include <sstream>

#include "cpu/pipeline.hh"
#include "cpu/rename.hh"
#include "iq/age_matrix.hh"
#include "iq/issue_queue.hh"
#include "iq/random_queue.hh"

namespace pubs::cpu
{

std::string
AuditReport::format(const std::string &context) const
{
    std::ostringstream out;
    out << "structural audit (" << context << "): " << violations.size()
        << " invariant violation" << (violations.size() == 1 ? "" : "s")
        << "\n";
    for (const std::string &violation : violations)
        out << "  - " << violation << "\n";
    return out.str();
}

void
Auditor::checkRenameBijection(const RenameUnit &rename, isa::RegClass cls,
                              const std::vector<PhysRegId> &pendingFree,
                              AuditReport &report)
{
    ++report.checksRun;
    const char *className = cls == isa::RegClass::Fp ? "fp" : "int";
    unsigned total = rename.totalRegs(cls);
    std::vector<int> refs(total, 0);
    std::vector<std::string> where(total);

    auto note = [&](PhysRegId reg, const std::string &holder) {
        if (reg < 0 || (unsigned)reg >= total) {
            report.add(std::string(className) + " phys reg " +
                       std::to_string(reg) + " held by " + holder +
                       " is outside [0, " + std::to_string(total) + ")");
            return;
        }
        if (++refs[reg] == 1) {
            where[reg] = holder;
        } else {
            report.add(std::string(className) + " phys reg " +
                       std::to_string(reg) + " double-held: " +
                       where[reg] + " and " + holder +
                       " (double allocation or double free)");
        }
    };

    for (unsigned arch = 0; arch < rename.archRegs(cls); ++arch) {
        note(rename.mapOf(cls, (RegId)arch),
             "rename map r" + std::to_string(arch));
    }
    for (PhysRegId reg : rename.freeListContents(cls))
        note(reg, "free list");
    for (PhysRegId reg : pendingFree)
        note(reg, "in-flight pending free");

    for (unsigned reg = 0; reg < total; ++reg) {
        if (refs[reg] == 0) {
            report.add(std::string(className) + " phys reg " +
                       std::to_string(reg) +
                       " leaked: neither mapped, free, nor pending "
                       "free");
        }
    }
}

void
Auditor::checkIqPartition(const iq::IssueQueue &queue, AuditReport &report)
{
    ++report.checksRun;
    const std::vector<iq::IqSlot> &slots = queue.prioritySlots();

    size_t validSlots = 0;
    for (const iq::IqSlot &slot : slots)
        validSlots += slot.valid ? 1 : 0;
    if (validSlots != queue.occupancy()) {
        report.add(std::string(queue.kindName()) + " IQ occupancy " +
                   std::to_string(queue.occupancy()) + " != " +
                   std::to_string(validSlots) + " valid slots");
    }

    const auto *random = dynamic_cast<const iq::RandomQueue *>(&queue);
    if (!random)
        return;

    // PUBS priority-partition occupancy bounds (Section III-B2): the
    // reserved entries are exactly slots [0, priorityEntries); their
    // free-list accounting must agree with slot occupancy.
    unsigned priorityEntries = random->priorityEntries();
    size_t occupiedPriority = 0;
    for (unsigned s = 0; s < priorityEntries && s < slots.size(); ++s)
        occupiedPriority += slots[s].valid ? 1 : 0;
    size_t occupiedNormal = validSlots - occupiedPriority;

    if (occupiedPriority + random->freePriority() != priorityEntries) {
        report.add("priority partition accounting broken: " +
                   std::to_string(occupiedPriority) + " occupied + " +
                   std::to_string(random->freePriority()) +
                   " free != " + std::to_string(priorityEntries) +
                   " reserved entries");
    }
    size_t normalEntries = slots.size() - priorityEntries;
    if (occupiedNormal + random->freeNormal() != normalEntries) {
        report.add("normal partition accounting broken: " +
                   std::to_string(occupiedNormal) + " occupied + " +
                   std::to_string(random->freeNormal()) + " free != " +
                   std::to_string(normalEntries) + " normal entries");
    }

    auto checkFreeList = [&](const iq::FreeList &list, const char *name,
                             uint32_t lo, uint32_t hi) {
        std::vector<char> seen(slots.size(), 0);
        for (uint32_t index : list.contents()) {
            if (index < lo || index >= hi) {
                report.add(std::string(name) + " free index " +
                           std::to_string(index) + " outside its "
                           "partition [" + std::to_string(lo) + ", " +
                           std::to_string(hi) + ")");
                continue;
            }
            if (seen[index]) {
                report.add(std::string(name) + " free index " +
                           std::to_string(index) +
                           " listed twice (double free)");
            }
            seen[index] = 1;
            if (slots[index].valid) {
                report.add(std::string(name) + " free index " +
                           std::to_string(index) +
                           " still holds a valid instruction");
            }
        }
    };
    checkFreeList(random->priorityFreeList(), "priority", 0,
                  priorityEntries);
    checkFreeList(random->normalFreeList(), "normal", priorityEntries,
                  (uint32_t)slots.size());
}

void
Auditor::checkAgeMatrix(const iq::AgeMatrix &matrix,
                        const iq::IssueQueue &queue, AuditReport &report)
{
    ++report.checksRun;
    const std::vector<iq::IqSlot> &slots = queue.prioritySlots();
    if (matrix.size() != slots.size()) {
        report.add("age matrix size " + std::to_string(matrix.size()) +
                   " != IQ capacity " + std::to_string(slots.size()));
        return;
    }

    std::vector<unsigned> occupied;
    for (unsigned s = 0; s < slots.size(); ++s) {
        if (matrix.valid(s) != slots[s].valid) {
            report.add("age matrix valid bit of slot " +
                       std::to_string(s) + " is " +
                       (matrix.valid(s) ? "set" : "clear") +
                       " but the slot is " +
                       (slots[s].valid ? "occupied" : "free"));
        }
        if (slots[s].valid)
            occupied.push_back(s);
    }

    // The relation must agree with ground-truth dispatch age and be a
    // strict total order: exactly one of older(a,b) / older(b,a) for
    // distinct occupied slots.
    for (size_t i = 0; i < occupied.size(); ++i) {
        for (size_t j = i + 1; j < occupied.size(); ++j) {
            unsigned a = occupied[i], b = occupied[j];
            bool ab = matrix.older(a, b);
            bool ba = matrix.older(b, a);
            if (ab == ba) {
                report.add("age matrix not a strict total order: slots " +
                           std::to_string(a) + " and " +
                           std::to_string(b) +
                           (ab ? " are each older than the other"
                               : " are unordered"));
            }
            bool wantAb = slots[a].seq < slots[b].seq;
            if (ab != wantAb || ba == wantAb) {
                report.add("age matrix disagrees with dispatch order: "
                           "slot " + std::to_string(a) + " (seq " +
                           std::to_string(slots[a].seq) + ") vs slot " +
                           std::to_string(b) + " (seq " +
                           std::to_string(slots[b].seq) + ")");
            }
        }
    }

    // Acyclicity via Kahn's algorithm over edges older(a) -> b.
    std::vector<unsigned> indegree(slots.size(), 0);
    for (unsigned a : occupied)
        for (unsigned b : occupied)
            if (a != b && matrix.older(a, b))
                ++indegree[b];
    std::vector<unsigned> frontier;
    for (unsigned s : occupied)
        if (indegree[s] == 0)
            frontier.push_back(s);
    size_t removed = 0;
    while (!frontier.empty()) {
        unsigned a = frontier.back();
        frontier.pop_back();
        ++removed;
        for (unsigned b : occupied) {
            if (b != a && matrix.older(a, b) && --indegree[b] == 0)
                frontier.push_back(b);
        }
    }
    if (removed != occupied.size()) {
        report.add("age matrix contains a cycle among " +
                   std::to_string(occupied.size() - removed) +
                   " occupied slots (no unique oldest instruction)");
    }
}

AuditReport
Auditor::audit(const Pipeline &pipe)
{
    AuditReport report;

    // --- in-flight slot accounting (SoA slices) ---
    ++report.checksRun;
    const auto &hot = pipe.hot_;
    std::vector<char> onFreeList(hot.size(), 0);
    for (uint32_t id : pipe.freeIds_) {
        if (id >= hot.size()) {
            report.add("free id " + std::to_string(id) +
                       " outside the in-flight slot arrays");
            continue;
        }
        if (onFreeList[id])
            report.add("in-flight id " + std::to_string(id) +
                       " on the free list twice");
        onFreeList[id] = 1;
        if (hot[id].valid)
            report.add("in-flight id " + std::to_string(id) +
                       " is both free and valid");
    }
    size_t validCount = 0;
    for (const auto &inst : hot)
        validCount += inst.valid ? 1 : 0;
    if (validCount + pipe.freeIds_.size() != hot.size()) {
        report.add("in-flight slot leak: " + std::to_string(validCount) +
                   " valid + " + std::to_string(pipe.freeIds_.size()) +
                   " free != " + std::to_string(hot.size()) +
                   " total slots");
    }

    // --- hot/cold slice agreement ---
    // hot_.seq/op and the PUBS priority bit are copies of cold record
    // fields (pipeline.hh layout comment); a divergence means some path
    // updated one array and not the other.
    ++report.checksRun;
    for (uint32_t id = 0; id < hot.size(); ++id) {
        if (!hot[id].valid)
            continue;
        const auto &cold = pipe.cold_[id];
        if (hot[id].seq != cold.di.seq)
            report.add("hot/cold seq mismatch at id " +
                       std::to_string(id) + ": hot " +
                       std::to_string(hot[id].seq) + " vs cold " +
                       std::to_string(cold.di.seq));
        if (hot[id].op != cold.di.op)
            report.add("hot/cold opcode mismatch at id " +
                       std::to_string(id));
        if (hot[id].sliceUnconfident != cold.slice.unconfident)
            report.add("hot/cold PUBS priority bit mismatch at id " +
                       std::to_string(id));
    }

    // --- every valid instruction is in the front end xor the ROB ---
    ++report.checksRun;
    std::vector<char> located(hot.size(), 0);
    for (uint32_t id : pipe.frontendQueue_) {
        if (id >= hot.size() || !hot[id].valid) {
            report.add("front-end queue holds dead id " +
                       std::to_string(id));
            continue;
        }
        if (hot[id].dispatched)
            report.add("front-end queue id " + std::to_string(id) +
                       " already dispatched");
        if (located[id])
            report.add("id " + std::to_string(id) +
                       " queued in the front end twice");
        located[id] = 1;
    }
    size_t robCount = 0;
    pipe.rob_.forEach([&](uint32_t id) {
        ++robCount;
        if (id >= hot.size() || !hot[id].valid) {
            report.add("ROB holds dead id " + std::to_string(id));
            return;
        }
        if (!hot[id].dispatched)
            report.add("ROB id " + std::to_string(id) +
                       " was never dispatched");
        if (located[id])
            report.add("id " + std::to_string(id) +
                       " in both front end and ROB (or in the ROB "
                       "twice)");
        located[id] = 1;
    });
    if (robCount != pipe.rob_.occupancy()) {
        report.add("ROB iteration count " + std::to_string(robCount) +
                   " != occupancy " +
                   std::to_string(pipe.rob_.occupancy()));
    }
    for (uint32_t id = 0; id < hot.size(); ++id) {
        if (hot[id].valid && !located[id]) {
            report.add("orphaned in-flight id " + std::to_string(id) +
                       ": valid but in neither front end nor ROB");
        }
    }

    // --- IQ cross-consistency ---
    ++report.checksRun;
    size_t inIqFlagged = 0;
    for (const auto &inst : hot)
        inIqFlagged += (inst.valid && inst.inIq) ? 1 : 0;
    size_t iqResident = 0;
    for (size_t q = 0; q < pipe.iqs_.size(); ++q) {
        const iq::IssueQueue &queue = *pipe.iqs_[q];
        for (const iq::IqSlot &slot : queue.prioritySlots()) {
            if (!slot.valid)
                continue;
            ++iqResident;
            uint32_t id = slot.clientId;
            if (id >= hot.size() || !hot[id].valid) {
                report.add("IQ " + std::to_string(q) +
                           " slot holds dead id " + std::to_string(id));
                continue;
            }
            const auto &inst = hot[id];
            if (!inst.inIq)
                report.add("IQ " + std::to_string(q) + " holds id " +
                           std::to_string(id) +
                           " whose inIq flag is clear");
            if (inst.iqIndex != q)
                report.add("id " + std::to_string(id) +
                           " sits in IQ " + std::to_string(q) +
                           " but is flagged for IQ " +
                           std::to_string(inst.iqIndex));
            if (!inst.dispatched || inst.issued)
                report.add("IQ " + std::to_string(q) + " id " +
                           std::to_string(id) +
                           " in an impossible stage (dispatched=" +
                           std::to_string(inst.dispatched) +
                           " issued=" + std::to_string(inst.issued) +
                           ")");
            if (slot.seq != inst.seq)
                report.add("IQ " + std::to_string(q) + " id " +
                           std::to_string(id) + " slot seq " +
                           std::to_string(slot.seq) +
                           " != instruction seq " +
                           std::to_string(inst.seq));
        }
        checkIqPartition(queue, report);
    }
    if (inIqFlagged != iqResident) {
        report.add(std::to_string(inIqFlagged) +
                   " instructions flagged inIq but " +
                   std::to_string(iqResident) + " resident in queues");
    }

    // --- wakeup scoreboard vs from-scratch dataflow recomputation ---
    //
    // The event-driven core never rescans operands, so its pending
    // counters and ready bitmaps must always agree with what a rescan
    // of the register ready cycles would conclude right now.
    ++report.checksRun;
    for (size_t q = 0; q < pipe.iqs_.size(); ++q) {
        const iq::IssueQueue &queue = *pipe.iqs_[q];
        const std::vector<iq::IqSlot> &slots = queue.prioritySlots();
        size_t readyBits = 0;
        for (uint32_t s = 0; s < slots.size(); ++s) {
            if (!slots[s].valid) {
                if (queue.readyAt(s))
                    report.add("IQ " + std::to_string(q) + " slot " +
                               std::to_string(s) +
                               " is free but its ready bit is set");
                continue;
            }
            readyBits += queue.readyAt(s) ? 1 : 0;
            uint32_t id = slots[s].clientId;
            if (id >= hot.size() || !hot[id].valid)
                continue; // already reported above
            const auto &inst = hot[id];
            if (queue.slotOf(id) != s) {
                report.add("IQ " + std::to_string(q) + " slot index of id " +
                           std::to_string(id) + " points at slot " +
                           std::to_string(queue.slotOf(id)) + ", not " +
                           std::to_string(s));
            }
            unsigned pending = 0;
            if (inst.physSrc1 != invalidPhysReg &&
                pipe.regReadyCycle(inst.src1Cls, inst.physSrc1) > pipe.now_)
                ++pending;
            if (inst.physSrc2 != invalidPhysReg &&
                pipe.regReadyCycle(inst.src2Cls, inst.physSrc2) > pipe.now_)
                ++pending;
            if (inst.pendingOps != pending) {
                report.add("scoreboard pending-operand count of id " +
                           std::to_string(id) + " is " +
                           std::to_string(inst.pendingOps) +
                           ", dataflow recomputation says " +
                           std::to_string(pending));
            }
            if (queue.readyAt(s) && pending != 0) {
                report.add("IQ " + std::to_string(q) + " id " +
                           std::to_string(id) +
                           " marked ready with " + std::to_string(pending) +
                           " operands outstanding");
            }
            if (!queue.readyAt(s) && pending == 0 &&
                !isa::isLoad(inst.op)) {
                report.add("IQ " + std::to_string(q) + " non-load id " +
                           std::to_string(id) +
                           " has no pending operands but no ready bit");
            }
        }
        if (readyBits != queue.readyCount()) {
            report.add("IQ " + std::to_string(q) + " ready-bit count " +
                       std::to_string(queue.readyCount()) + " != " +
                       std::to_string(readyBits) + " set bits");
        }
    }

    // Dependent-record slab accounting: every live overflow node must be
    // reachable from exactly one valid, not-yet-issued producer.
    ++report.checksRun;
    size_t reachableNodes = 0;
    for (uint32_t id = 0; id < hot.size(); ++id) {
        if (!hot[id].valid)
            continue;
        uint32_t node = pipe.deps_[id].overflow;
        while (node != SlabPool<Pipeline::DepNode>::npos) {
            ++reachableNodes;
            node = pipe.depPool_.at(node).next;
        }
    }
    if (reachableNodes != pipe.depPool_.live()) {
        report.add("dependent slab pool holds " +
                   std::to_string(pipe.depPool_.live()) +
                   " live nodes but " + std::to_string(reachableNodes) +
                   " are reachable from in-flight producers");
    }

    // --- LSQ cross-consistency ---
    ++report.checksRun;
    std::vector<uint32_t> lsqIds = pipe.lsq_.residentIds();
    if (lsqIds.size() != pipe.lsq_.occupancy()) {
        report.add("LSQ resident count " +
                   std::to_string(lsqIds.size()) + " != occupancy " +
                   std::to_string(pipe.lsq_.occupancy()));
    }
    size_t inLsqFlagged = 0;
    for (const auto &inst : hot)
        inLsqFlagged += (inst.valid && inst.inLsq) ? 1 : 0;
    if (inLsqFlagged != lsqIds.size()) {
        report.add(std::to_string(inLsqFlagged) +
                   " instructions flagged inLsq but " +
                   std::to_string(lsqIds.size()) + " resident in LSQ");
    }
    SeqNum lastSeq = 0;
    bool haveLast = false;
    for (uint32_t id : lsqIds) {
        if (id >= hot.size() || !hot[id].valid) {
            report.add("LSQ holds dead id " + std::to_string(id));
            continue;
        }
        const auto &inst = hot[id];
        if (!inst.inLsq)
            report.add("LSQ holds id " + std::to_string(id) +
                       " whose inLsq flag is clear");
        if (!isa::isMem(inst.op))
            report.add("LSQ holds non-memory id " + std::to_string(id));
        if (haveLast && inst.seq <= lastSeq)
            report.add("LSQ not in program order at id " +
                       std::to_string(id));
        lastSeq = inst.seq;
        haveLast = true;
    }

    // --- free-list / rename-map bijection ---
    for (isa::RegClass cls : {isa::RegClass::Int, isa::RegClass::Fp}) {
        std::vector<PhysRegId> pendingFree;
        pipe.rob_.forEach([&](uint32_t id) {
            if (id >= hot.size() || !hot[id].valid)
                return;
            const auto &inst = hot[id];
            if (inst.physDst != invalidPhysReg && inst.dstCls == cls)
                pendingFree.push_back(inst.prevPhysDst);
        });
        checkRenameBijection(pipe.rename_, cls, pendingFree, report);
    }

    // --- age matrix ---
    if (pipe.ageMatrix_)
        checkAgeMatrix(*pipe.ageMatrix_, *pipe.iqs_[0], report);

    // --- CPI-stack adds-up invariant ---
    // Every cycle must be attributed to exactly one component. When the
    // audit runs mid-cycle (post-squash), the current cycle's count has
    // been incremented but its classification happens at end of cycle,
    // so exactly one cycle is legitimately unattributed.
    ++report.checksRun;
    uint64_t attributed = pipe.stats_.cpi.total();
    uint64_t expected = pipe.stats_.cycles - (pipe.midCycle_ ? 1 : 0);
    if (attributed != expected) {
        report.add("CPI stack attributes " + std::to_string(attributed) +
                   " cycles but " + std::to_string(expected) +
                   " have elapsed" +
                   (pipe.midCycle_ ? " (mid-cycle)" : ""));
    }

    return report;
}

} // namespace pubs::cpu
