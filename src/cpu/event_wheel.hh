/**
 * @file
 * Cycle-bucketed event wheel for the event-driven pipeline core.
 *
 * Events carry an absolute fire cycle and land in bucket
 * (cycle & mask); each simulated cycle drains only its own bucket,
 * firing entries whose stored cycle matches and keeping the rest (an
 * event scheduled more than one wheel revolution ahead simply waits in
 * its bucket across wrap-arounds). Within a cycle, events fire in
 * schedule order (FIFO), which the determinism contract (DESIGN.md)
 * depends on.
 *
 * Cancellation is lazy: the wheel always delivers what was scheduled,
 * and consumers validate the payload (instruction id + sequence number)
 * against live state, so a squash never has to search the wheel.
 */

#ifndef PUBS_CPU_EVENT_WHEEL_HH
#define PUBS_CPU_EVENT_WHEEL_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pubs::cpu
{

class EventWheel
{
  public:
    enum class Kind : uint8_t
    {
        OperandReady, ///< wake a consumer: one pending operand completed
        LoadRecheck,  ///< a store executed: re-test mem-blocked loads
    };

    struct Event
    {
        Cycle cycle;  ///< absolute fire cycle
        uint64_t b;   ///< payload (sequence number)
        uint32_t a;   ///< payload (instruction id)
        Kind kind;
    };

    /** @param buckets wheel size; rounded up to a power of two. */
    explicit EventWheel(unsigned buckets = 1024)
    {
        unsigned size = 1;
        while (size < buckets)
            size *= 2;
        buckets_.resize(size);
        mask_ = size - 1;
    }

    /** Schedule an event strictly in the future (@p cycle > @p now). */
    void
    schedule(Cycle cycle, Kind kind, uint32_t a, uint64_t b, Cycle now)
    {
        panic_if(cycle <= now,
                 "event wheel schedule at cycle %llu not after now %llu",
                 (unsigned long long)cycle, (unsigned long long)now);
        buckets_[cycle & mask_].push_back({cycle, b, a, kind});
        cycleHeap_.push(cycle);
        ++pending_;
    }

    /**
     * Fire every event due at @p now, in schedule order. Visitors may
     * schedule new events (they land in later cycles by construction).
     */
    template <typename Visitor>
    void
    drain(Cycle now, Visitor &&visit)
    {
        if (pending_ == 0)
            return;
        drained_ = now;
        // Index (not reference) the bucket on every access: a visitor
        // scheduling exactly one wheel revolution ahead would push into
        // this same bucket and may reallocate it.
        const size_t slot = now & mask_;
        size_t keep = 0;
        for (size_t i = 0; i < buckets_[slot].size(); ++i) {
            Event event = buckets_[slot][i];
            if (event.cycle == now) {
                --pending_;
                visit(event);
            } else {
                buckets_[slot][keep++] = event;
            }
        }
        buckets_[slot].resize(keep);
        // Retire this cycle's heap entries now. Busy pipelines rarely
        // ask for nextEventCycle(), so without eager pruning the heap
        // would grow with one stale entry per event ever scheduled.
        while (!cycleHeap_.empty() && cycleHeap_.top() <= now)
            cycleHeap_.pop();
    }

    /**
     * Earliest pending fire cycle, or neverCycle when the wheel is
     * empty. Served from a lazy min-heap of scheduled cycles (entries
     * whose cycle has already drained are discarded on access), so the
     * per-cycle idle-scheduling path pays O(log events) amortised, not
     * a scan of every pending event.
     */
    Cycle
    nextEventCycle() const
    {
        if (pending_ == 0) {
            if (!cycleHeap_.empty())
                cycleHeap_ = MinHeap();
            return neverCycle;
        }
        while (!cycleHeap_.empty() && cycleHeap_.top() <= drained_)
            cycleHeap_.pop();
        panic_if(cycleHeap_.empty(),
                 "event wheel: %zu events pending but none after "
                 "cycle %llu",
                 pending_, (unsigned long long)drained_);
        return cycleHeap_.top();
    }

    size_t pending() const { return pending_; }
    bool empty() const { return pending_ == 0; }

  private:
    using MinHeap = std::priority_queue<Cycle, std::vector<Cycle>,
                                        std::greater<Cycle>>;

    std::vector<std::vector<Event>> buckets_;
    uint64_t mask_ = 0;
    size_t pending_ = 0;
    Cycle drained_ = 0; ///< latest cycle drain() has processed
    /** Cycles of scheduled events; stale entries removed lazily. */
    mutable MinHeap cycleHeap_;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_EVENT_WHEEL_HH
