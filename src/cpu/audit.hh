/**
 * @file
 * Structural invariant auditor for the out-of-order pipeline. Run every
 * K cycles and after every squash, it cross-checks the bookkeeping that
 * the timing results silently depend on:
 *
 *  - free-list / rename-map bijection: every physical register is in
 *    exactly one of {rename map, free list, pending-free of an
 *    in-flight instruction} — a double allocation or leak here corrupts
 *    dataflow timing without crashing;
 *  - ROB-IQ-LSQ cross-consistency: every queue entry points at a live
 *    in-flight instruction whose flags agree with where it sits;
 *  - PUBS priority-partition occupancy bounds: reserved-entry
 *    accounting must match slot occupancy, or the mechanism under
 *    measurement is not the mechanism described;
 *  - age-matrix acyclicity: the "older than" relation must be a strict
 *    total order over occupied slots.
 *
 * Violations are collected into an AuditReport; the pipeline applies
 * the configured CheckPolicy (warn / throw AuditError / abort). The
 * individual checks are also callable standalone so tests can seed
 * corruption into a lone RenameUnit or IssueQueue and assert detection.
 */

#ifndef PUBS_CPU_AUDIT_HH
#define PUBS_CPU_AUDIT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace pubs::iq
{
class IssueQueue;
class AgeMatrix;
} // namespace pubs::iq

namespace pubs::cpu
{

class Pipeline;
class RenameUnit;

/** The outcome of one audit pass. */
struct AuditReport
{
    std::vector<std::string> violations;
    uint64_t checksRun = 0;

    bool ok() const { return violations.empty(); }

    void
    add(const std::string &violation)
    {
        violations.push_back(violation);
    }

    /** Multi-line summary, prefixed with @p context (e.g. "cycle 1234"). */
    std::string format(const std::string &context) const;
};

class Auditor
{
  public:
    /** Full structural audit of a live pipeline. */
    static AuditReport audit(const Pipeline &pipe);

    /**
     * Free-list / rename-map bijection for one register class.
     * @param pendingFree previous mappings held by in-flight
     *        instructions, to be freed at their commit.
     */
    static void checkRenameBijection(const RenameUnit &rename,
                                     isa::RegClass cls,
                                     const std::vector<PhysRegId> &pendingFree,
                                     AuditReport &report);

    /** Partition accounting of one issue queue (slots vs free lists). */
    static void checkIqPartition(const iq::IssueQueue &queue,
                                 AuditReport &report);

    /**
     * The age matrix's "older" relation must be a strict total order
     * (antisymmetric, total, acyclic) over the occupied slots of
     * @p queue, and its valid bits must match slot occupancy.
     */
    static void checkAgeMatrix(const iq::AgeMatrix &matrix,
                               const iq::IssueQueue &queue,
                               AuditReport &report);
};

} // namespace pubs::cpu

#endif // PUBS_CPU_AUDIT_HH
