/**
 * @file
 * Cycle-level core telemetry (CoreParams::telemetry):
 *
 *  - a per-branch-PC misprediction / misspeculation-penalty profile, the
 *    analysis of Lin & Tarsa ("Branch Prediction Is Not a Solved
 *    Problem"): a handful of static branches dominate misprediction cost;
 *  - ground truth for the PUBS slice predictor: at every resolved
 *    misprediction the pipeline walks the true dynamic backward slice of
 *    the branch through the ROB and compares it against what the
 *    conf_tab / brslice_tab predicted (coverage), while commit counts how
 *    many predicted-unconfident-slice instructions really fed a
 *    mispredicted branch (accuracy) — the paper's Fig. 9 correlation made
 *    measurable;
 *  - a per-cycle priority-entry occupancy histogram (are the reserved
 *    entries earning their area?);
 *  - an interval heartbeat (IPC / MPKI / IQ occupancy per interval) so
 *    long runs are debuggable mid-flight.
 *
 * The Pipeline owns one instance only when telemetry is enabled; every
 * hot-path hook is gated behind a single null-pointer check.
 */

#ifndef PUBS_CPU_TELEMETRY_HH
#define PUBS_CPU_TELEMETRY_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/cpi_stack.hh"

namespace pubs::cpu
{

struct CoreParams;
struct PipelineStats;

/**
 * Accumulated cost of one static conditional branch: the misprediction
 * profile plus the confidence×outcome quadrant (how often the conf_tab
 * called this branch unconfident, and how often it was right to) and
 * the true-backward-slice coverage attributed to the branch — the
 * per-branch view of which PCs PUBS actually helps.
 */
struct BranchSiteStats
{
    uint64_t commits = 0;     ///< committed executions
    uint64_t mispredicts = 0; ///< resolved mispredictions
    uint64_t penaltySum = 0;  ///< summed misspeculation penalty cycles

    // Confidence×outcome quadrant at commit.
    uint64_t confidentCorrect = 0;
    uint64_t confidentWrong = 0;
    uint64_t unconfidentCorrect = 0;
    uint64_t unconfidentWrong = 0;

    // True-backward-slice instructions of this branch's resolved
    // mispredictions, and how many the slice predictor had covered.
    uint64_t sliceInsts = 0;
    uint64_t sliceCovered = 0;
};

/** One heartbeat interval's headline numbers. */
struct HeartbeatSample
{
    Cycle cycle;               ///< sample time
    double intervalIpc;        ///< IPC over the interval just ended
    double intervalMpki;       ///< branch MPKI over the interval
    double intervalIqOccupancy; ///< mean IQ occupancy over the interval
    CpiStack cpiDelta;         ///< CPI-stack cycles of this interval
};

/** One PUBS mode-switch flip, with the CPI stack accumulated since the
 *  previous flip (or measurement start) — the "why it fired" record. */
struct ModeTransition
{
    Cycle cycle;       ///< cycle the flip was observed
    bool enabled;      ///< new mode
    CpiStack cpiDelta; ///< component cycles since the previous flip
};

class CoreTelemetry
{
  public:
    explicit CoreTelemetry(const CoreParams &params);

    /** Zero measurement state at a warmup boundary; @p now re-anchors
     *  the heartbeat intervals. */
    void resetStats(Cycle now);

    // --- per-cycle sampling ---

    /** Called once per cycle with the occupied priority-entry count. */
    void
    noteCycle(size_t iqOccupancy, size_t priorityOccupancy)
    {
        priorityOccupancy_.sample(priorityOccupancy);
        intervalOccupancySum_ += iqOccupancy;
        ++intervalCycles_;
    }

    /**
     * Account @p span consecutive idle cycles with constant occupancy
     * in one call (the event-driven pipeline's fast-forward path);
     * bit-identical to @p span noteCycle() calls.
     */
    void
    noteCycles(size_t iqOccupancy, size_t priorityOccupancy,
               uint64_t span)
    {
        priorityOccupancy_.sample(priorityOccupancy, span);
        intervalOccupancySum_ += (uint64_t)iqOccupancy * span;
        intervalCycles_ += span;
    }

    // --- slice ground truth (filled by the pipeline's ROB walk) ---

    /** An instruction was found in the true backward slice of a resolved
     *  misprediction of the branch at @p branchPc; @p predictedUnconfident
     *  is its decode-time PUBS classification. */
    void
    noteTrueSliceInst(Pc branchPc, bool predictedUnconfident)
    {
        ++trueSliceInsts_;
        BranchSiteStats &site = sites_[branchPc];
        ++site.sliceInsts;
        if (predictedUnconfident) {
            ++trueSliceCovered_;
            ++site.sliceCovered;
        }
    }

    /** A correct-path instruction committed. */
    void
    noteCommit(bool predictedUnconfident, bool inTrueSlice)
    {
        ++committedInsts_;
        if (predictedUnconfident) {
            ++committedUnconfident_;
            if (inTrueSlice)
                ++committedUnconfidentTrue_;
        }
    }

    /** A conditional branch at @p pc committed; @p unconfident is its
     *  decode-time confidence, @p correct its prediction outcome. */
    void
    noteBranchCommit(Pc pc, bool unconfident, bool correct)
    {
        BranchSiteStats &site = sites_[pc];
        ++site.commits;
        if (unconfident)
            ++(correct ? site.unconfidentCorrect : site.unconfidentWrong);
        else
            ++(correct ? site.confidentCorrect : site.confidentWrong);
    }

    /** An unconfident-slice instruction issued @p latency cycles after
     *  leaving decode, from a priority or normal IQ entry. */
    void
    noteSliceIssue(bool priorityEntry, uint64_t latency)
    {
        (priorityEntry ? prioritySliceLatency_ : normalSliceLatency_)
            .sample(latency);
    }

    /** The LLC-MPKI mode switch flipped to @p enabled at @p now;
     *  @p cpi is the cumulative CPI stack at the flip. */
    void
    noteModeTransition(Cycle now, bool enabled, const CpiStack &cpi)
    {
        ++modeTransitionCount_;
        if (transitions_.size() < maxRecordedTransitions) {
            transitions_.push_back(
                {now, enabled, cpi.deltaSince(lastTransitionCpi_)});
        }
        lastTransitionCpi_ = cpi;
    }

    /** A misprediction at @p pc resolved with @p penalty cycles. */
    void
    noteMispredictResolved(Pc pc, Cycle penalty)
    {
        BranchSiteStats &site = sites_[pc];
        ++site.mispredicts;
        site.penaltySum += penalty;
    }

    // --- heartbeat ---

    /** First cycle at/after which a heartbeat sample is due
     *  (neverCycle when the heartbeat is disabled). */
    Cycle nextHeartbeat() const { return nextHeartbeat_; }

    /** Take a heartbeat sample at @p now from the live counters. */
    void heartbeat(Cycle now, const PipelineStats &stats);

    // --- reporting ---

    /**
     * Fraction of true-backward-slice instructions of mispredicted
     * branches that the slice predictor had marked unconfident-slice.
     */
    double
    sliceCoverage() const
    {
        return trueSliceInsts_
                   ? (double)trueSliceCovered_ / (double)trueSliceInsts_
                   : 0.0;
    }

    /**
     * Fraction of committed predicted-unconfident-slice instructions
     * that really were in a mispredicted branch's backward slice.
     */
    double
    sliceAccuracy() const
    {
        return committedUnconfident_
                   ? (double)committedUnconfidentTrue_ /
                         (double)committedUnconfident_
                   : 0.0;
    }

    uint64_t trueSliceInsts() const { return trueSliceInsts_; }
    uint64_t trueSliceCovered() const { return trueSliceCovered_; }
    uint64_t committedUnconfident() const { return committedUnconfident_; }
    uint64_t committedUnconfidentTrue() const
        { return committedUnconfidentTrue_; }

    const Histogram &priorityOccupancy() const { return priorityOccupancy_; }
    const Histogram &prioritySliceLatency() const
        { return prioritySliceLatency_; }
    const Histogram &normalSliceLatency() const
        { return normalSliceLatency_; }
    const std::vector<HeartbeatSample> &heartbeats() const
        { return heartbeats_; }
    const std::vector<ModeTransition> &modeTransitions() const
        { return transitions_; }
    uint64_t modeTransitionCount() const { return modeTransitionCount_; }
    const std::unordered_map<Pc, BranchSiteStats> &branchSites() const
        { return sites_; }

    /** The @p topN sites by misprediction count, most costly first. */
    std::vector<std::pair<Pc, BranchSiteStats>> topBranchSites(
        size_t topN) const;

    /** Publish slice / priority-occupancy stats into @p group. */
    void fillSliceStats(StatGroup &group) const;

    /** Publish the top-@p topN branch profile into @p group. */
    void fillBranchProfile(StatGroup &group, size_t topN = 20) const;

    /** Publish the heartbeat series into @p group. */
    void fillHeartbeats(StatGroup &group) const;

    /** Publish the mode-switch transition records into @p group. */
    void fillModeTransitions(StatGroup &group) const;

    /** The branch profile as an aligned text table (CLI output). */
    std::string formatBranchProfile(size_t topN = 10) const;

  private:
    unsigned heartbeatInterval_;
    bool heartbeatToStderr_;
    Cycle nextHeartbeat_;

    uint64_t trueSliceInsts_ = 0;
    uint64_t trueSliceCovered_ = 0;
    uint64_t committedInsts_ = 0;
    uint64_t committedUnconfident_ = 0;
    uint64_t committedUnconfidentTrue_ = 0;

    Histogram priorityOccupancy_{32};
    /** Decode-to-issue latency of issued unconfident-slice instructions,
     *  split by the IQ partition they issued from (2-cycle buckets). */
    Histogram prioritySliceLatency_{96, 2};
    Histogram normalSliceLatency_{96, 2};
    std::unordered_map<Pc, BranchSiteStats> sites_;

    // Interval deltas for the heartbeat.
    uint64_t lastCommitted_ = 0;
    uint64_t lastMispredicts_ = 0;
    Cycle lastCycle_ = 0;
    uint64_t intervalOccupancySum_ = 0;
    uint64_t intervalCycles_ = 0;
    CpiStack lastCpi_{};
    std::vector<HeartbeatSample> heartbeats_;

    // Mode-switch transition records (bounded; thrashing configurations
    // keep counting past the cap without growing the vector).
    static constexpr size_t maxRecordedTransitions = 1024;
    std::vector<ModeTransition> transitions_;
    CpiStack lastTransitionCpi_{};
    uint64_t modeTransitionCount_ = 0;
};

} // namespace pubs::cpu

#endif // PUBS_CPU_TELEMETRY_HH
