#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>

#include "common/atomic_file.hh"
#include "common/checksum.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace pubs::sim
{

namespace
{

constexpr size_t headerBytes = 28;

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

uint32_t
getU32(const std::string &bytes, size_t at)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)(uint8_t)bytes[at + i] << (8 * i);
    return v;
}

uint64_t
getU64(const std::string &bytes, size_t at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)(uint8_t)bytes[at + i] << (8 * i);
    return v;
}

void
writeMeta(Serializer &s, const CheckpointMeta &meta)
{
    s.beginObject("meta");
    s.str(meta.workload);
    s.str(meta.machine);
    s.u64(meta.skipInsts);
    s.u32(meta.programCrc);
    s.u32(meta.paramsFp);
    s.endObject("meta");
}

CheckpointMeta
readMeta(Deserializer &d)
{
    CheckpointMeta meta;
    d.beginObject("meta");
    meta.workload = d.str();
    meta.machine = d.str();
    meta.skipInsts = d.u64();
    meta.programCrc = d.u32();
    meta.paramsFp = d.u32();
    d.endObject("meta");
    return meta;
}

/**
 * Validate the container framing (magic, version, lengths, both CRCs)
 * and return the payload slice. Every failure is a CheckpointError.
 */
std::string
validatedPayload(const std::string &bytes)
{
    if (bytes.size() < headerBytes)
        throw CheckpointError("checkpoint shorter than its header");
    if (std::memcmp(bytes.data(), checkpointMagic,
                    sizeof(checkpointMagic)) != 0) {
        throw CheckpointError("not a checkpoint file (bad magic)");
    }
    uint32_t version = getU32(bytes, 8);
    if (version != checkpointFormatVersion) {
        throw CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(checkpointFormatVersion) + ")");
    }
    uint32_t storedHeaderCrc = getU32(bytes, 24);
    if (crc32(bytes.data(), 24) != storedHeaderCrc)
        throw CheckpointError("checkpoint header fails its CRC");
    uint64_t payloadLen = getU64(bytes, 12);
    if (bytes.size() - headerBytes != payloadLen)
        throw CheckpointError("checkpoint payload length mismatch");
    uint32_t storedPayloadCrc = getU32(bytes, 20);
    if (crc32(bytes.data() + headerBytes, payloadLen) != storedPayloadCrc)
        throw CheckpointError("checkpoint payload fails its CRC");
    return bytes.substr(headerBytes);
}

void
checkIdentity(const CheckpointMeta &stored, const emu::Emulator &emu,
              const cpu::Pipeline &pipeline)
{
    uint32_t liveProgram = programFingerprint(*emu.program());
    if (stored.programCrc != liveProgram) {
        throw CheckpointError("checkpoint was taken on a different "
                              "program (workload '" +
                              stored.workload + "')");
    }
    uint32_t liveParams = paramsFingerprint(pipeline.params());
    if (stored.paramsFp != liveParams) {
        throw CheckpointError("checkpoint was taken on a different "
                              "machine configuration (label '" +
                              stored.machine + "')");
    }
}

} // namespace

uint32_t
programFingerprint(const isa::Program &program)
{
    uint32_t crc = crc32(program.listing());
    for (const isa::DataInit &init : program.dataInits()) {
        crc = crc32(&init.addr, sizeof(init.addr), crc);
        crc = crc32(init.bytes.data(), init.bytes.size(), crc);
    }
    return crc;
}

uint32_t
paramsFingerprint(const cpu::CoreParams &params)
{
    // Only the functional subset: a checkpoint holds functionally-warmed
    // state, so a timing-only parameter change (widths, window sizes,
    // latencies, PUBS dispatch policy) must neither invalidate cached
    // artifacts nor reject a restore.
    return crc32(params.describeFunctional());
}

std::string
encodeCheckpoint(const CheckpointMeta &meta, const emu::Emulator &emu,
                 const cpu::Pipeline &pipeline)
{
    Serializer payload;
    payload.beginObject("checkpoint");
    writeMeta(payload, meta);
    emu.serialize(payload);
    pipeline.serialize(payload);
    payload.endObject("checkpoint");

    std::string out;
    out.reserve(headerBytes + payload.size());
    out.append(checkpointMagic, sizeof(checkpointMagic));
    putU32(out, checkpointFormatVersion);
    putU64(out, payload.size());
    putU32(out, crc32(payload.data()));
    putU32(out, crc32(out.data(), 24));
    out += payload.data();
    return out;
}

CheckpointMeta
decodeCheckpoint(const std::string &bytes, emu::Emulator &emu,
                 cpu::Pipeline &pipeline)
{
    std::string payload = validatedPayload(bytes);
    Deserializer d(payload);
    d.beginObject("checkpoint");
    CheckpointMeta meta = readMeta(d);
    // Reject a wrong-program / wrong-machine restore before touching any
    // live state: identity failures must leave the target untouched.
    checkIdentity(meta, emu, pipeline);
    emu.unserialize(d);
    pipeline.unserialize(d);
    d.endObject("checkpoint");
    d.expectEnd();
    return meta;
}

CheckpointMeta
readCheckpointMeta(const std::string &bytes)
{
    std::string payload = validatedPayload(bytes);
    Deserializer d(payload);
    d.beginObject("checkpoint");
    return readMeta(d);
}

void
saveCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                   const emu::Emulator &emu, const cpu::Pipeline &pipeline)
{
    std::string bytes = encodeCheckpoint(meta, emu, pipeline);
    std::string error = atomicWriteFile(path, bytes);
    if (!error.empty())
        throw CheckpointError("cannot write checkpoint: " + error);
}

CheckpointMeta
loadCheckpointFile(const std::string &path, emu::Emulator &emu,
                   cpu::Pipeline &pipeline)
{
    std::string bytes;
    if (!readWholeFile(path, bytes))
        throw CheckpointError("cannot read checkpoint '" + path + "'");
    return decodeCheckpoint(bytes, emu, pipeline);
}

std::string
CheckpointStore::pathFor(const CheckpointMeta &meta) const
{
    // Same dual-CRC32 idiom as the sweep journal's spec key: two
    // independently seeded CRC32 streams over the identity text give a
    // 64-bit content address with no new hash machinery.
    uint32_t lo = 0, hi = 0x50554253u;
    auto mix = [&](const std::string &text) {
        lo = crc32(text, lo);
        hi = crc32(text, hi ^ 0x9e3779b9u);
    };
    mix(meta.workload);
    mix(std::to_string(meta.programCrc));
    mix(std::to_string(meta.paramsFp));
    mix(std::to_string(meta.skipInsts));
    mix(std::to_string(checkpointFormatVersion));
    char name[96];
    std::snprintf(name, sizeof(name), "ckpt-%08x%08x.pubsckpt", hi, lo);
    return dir_ + "/" + name;
}

bool
CheckpointStore::contains(const CheckpointMeta &meta) const
{
    std::string bytes;
    return readWholeFile(pathFor(meta), bytes);
}

void
CheckpointStore::save(const CheckpointMeta &meta,
                      const std::string &bytes) const
{
    // Create the cache directory (and parents) on first use; races with
    // other sweep workers are benign (EEXIST).
    for (size_t at = 0; at != std::string::npos;) {
        at = dir_.find('/', at + 1);
        std::string prefix = dir_.substr(0, at);
        if (!prefix.empty())
            ::mkdir(prefix.c_str(), 0777);
    }
    std::string error = atomicWriteFile(pathFor(meta), bytes);
    // A full disk must not sink the run: the store is an accelerator,
    // the simulation can always recompute.
    if (!error.empty())
        warn("cannot cache checkpoint: %s", error.c_str());
}

bool
CheckpointStore::load(const CheckpointMeta &meta, std::string &bytes) const
{
    std::string path = pathFor(meta);
    if (!readWholeFile(path, bytes))
        return false;
    try {
        (void)readCheckpointMeta(bytes);
        return true;
    } catch (const SimError &error) {
        warn("ignoring corrupt cached checkpoint %s: %s", path.c_str(),
             error.what());
        bytes.clear();
        return false;
    }
}

} // namespace pubs::sim
