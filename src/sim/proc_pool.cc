#include "sim/proc_pool.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "sim/run_pool.hh"

namespace pubs::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0') {
        warn_once("ignoring malformed %s value '%s'", name, value);
        return fallback;
    }
    return parsed;
}

/** Write all of @p data to @p fd, tolerating EINTR and short writes. */
void
writeAll(int fd, const char *data, size_t len)
{
    size_t written = 0;
    while (written < len) {
        ssize_t n = ::write(fd, data + written, len - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // parent gone (EPIPE) or pipe broken: nothing to do
        }
        written += (size_t)n;
    }
}

/** A task waiting to (re)start. */
struct Ready
{
    size_t index;
    unsigned attempt; ///< attempt number this launch will be (from 1)
    Clock::time_point notBefore;
};

/** A live worker. */
struct Running
{
    proc::Child child;
    size_t index;
    unsigned attempt;
    Clock::time_point start;
    Clock::time_point deadline;
    bool hasDeadline;
    std::string buffer; ///< frame bytes read so far
    // Typed-frame (progressFrames) stream state:
    Clock::time_point lastByte;  ///< heartbeat for staleness
    bool sawBytes = false;       ///< heartbeat only arms after 1st byte
    std::string result;          ///< decoded 'R' payload, if any
    bool haveResult = false;
    bool corrupt = false;        ///< stream had an untrustworthy frame
};

} // namespace

ProcPool::Config
ProcPool::configFromEnv(Config base)
{
    double timeout = envDouble("PUBS_PROC_TIMEOUT", base.timeoutSeconds);
    base.timeoutSeconds = timeout;
    double retries = envDouble("PUBS_PROC_RETRIES", base.maxAttempts);
    if (retries >= 1.0)
        base.maxAttempts = (unsigned)retries;
    double backoff = envDouble("PUBS_PROC_BACKOFF_MS", base.backoffBaseMs);
    if (backoff >= 0.0)
        base.backoffBaseMs = (unsigned)backoff;
    base.staleSeconds = envDouble("PUBS_PROC_STALE", base.staleSeconds);
    return base;
}

ProcPool::ProcPool() : ProcPool(Config()) {}

ProcPool::ProcPool(Config config) : config_(std::move(config))
{
    procs_ = config_.procs ? config_.procs : RunPool::hardwareThreads();
    if (config_.faultsFromEnv)
        config_.faults = proc::faultPlanFromEnv();
}

std::vector<ProcResult>
ProcPool::run(size_t n, const ChildFn &fn, const ResultHook &onResult)
{
    stats_ = ProcPoolStats{};
    std::vector<ProcResult> results(n);
    if (n == 0)
        return results;

    Clock::time_point runStart = Clock::now();
    const proc::FaultPlan &faults = config_.faults;

    std::deque<Ready> ready;
    for (size_t i = 0; i < n; ++i)
        ready.push_back({i, 1, runStart});
    std::vector<Running> running;
    size_t outstanding = n; ///< tasks without a final outcome yet

    const bool typed = config_.progressFrames;
    auto launch = [&](const Ready &task) {
        prof::Scope span("sweep/launch");
        proc::Child child = proc::spawnChild([&, task](int wfd) {
            // --- worker process ---
            if (faults.injectCrash(task.index, task.attempt)) {
                // Restore the default handler so sanitizer runtimes
                // don't turn the injected segfault into a report; the
                // parent only sees "killed by signal 11" either way.
                ::signal(SIGSEGV, SIG_DFL);
                ::raise(SIGSEGV);
            }
            if (faults.injectHang(task.index, task.attempt)) {
                for (;;)
                    ::pause();
            }
            if (typed) {
                progress::setFrameSink(wfd,
                                       config_.progressIntervalMs);
            }
            std::string payload = fn(task.index, task.attempt);
            if (typed) {
                // Stop heartbeats before the result frame so nothing
                // interleaves after it.
                progress::clearSink();
                payload.insert(payload.begin(), 'R');
            }
            std::string frame = proc::encodeFrame(payload);
            if (faults.injectCorrupt(task.index, task.attempt) &&
                frame.size() > proc::frameHeaderBytes) {
                size_t victim = proc::frameHeaderBytes +
                                (task.index + task.attempt) %
                                    (frame.size() - proc::frameHeaderBytes);
                frame[victim] = (char)(frame[victim] ^ 0x20);
            }
            writeAll(wfd, frame.data(), frame.size());
            ::close(wfd);
        });
        Running r;
        r.child = child;
        r.index = task.index;
        r.attempt = task.attempt;
        r.start = Clock::now();
        r.lastByte = r.start;
        r.hasDeadline = config_.timeoutSeconds > 0.0;
        if (r.hasDeadline) {
            r.deadline =
                r.start + std::chrono::microseconds((int64_t)(
                              config_.timeoutSeconds * 1e6));
        }
        running.push_back(std::move(r));
        ++stats_.launches;
    };

    auto finish = [&](size_t slot, ProcResult outcome) {
        results[slot] = std::move(outcome);
        --outstanding;
        if (onResult)
            onResult(slot, results[slot]);
    };

    auto fail = [&](const Running &r, const std::string &why) {
        if (config_.verbose) {
            std::fprintf(stderr,
                         "  proc: task %zu attempt %u/%u failed (%s)%s\n",
                         r.index, r.attempt, config_.maxAttempts,
                         why.c_str(),
                         r.attempt < config_.maxAttempts
                             ? ", retrying"
                             : ", skipping");
        }
        if (r.attempt < config_.maxAttempts) {
            ++stats_.retries;
            auto delay = std::chrono::milliseconds(
                (uint64_t)config_.backoffBaseMs
                << std::min(r.attempt - 1, 10u));
            ready.push_back({r.index, r.attempt + 1, Clock::now() + delay});
        } else {
            ++stats_.permanentFailures;
            ProcResult outcome;
            outcome.ok = false;
            outcome.attempts = r.attempt;
            outcome.error = "worker process failed after " +
                            std::to_string(r.attempt) + " attempt" +
                            (r.attempt == 1 ? "" : "s") +
                            "; last failure: " + why;
            finish(r.index, std::move(outcome));
        }
    };

    /**
     * Typed mode: drain complete frames out of r.buffer, dispatching
     * progress samples and capturing the result. A bad frame or an
     * unknown type byte poisons the whole stream (r.corrupt) — retry is
     * the only safe answer once framing is lost.
     */
    auto drainFrames = [&](Running &r) {
        std::string payload;
        while (!r.corrupt) {
            proc::FrameStatus status = proc::nextFrame(r.buffer, payload);
            if (status == proc::FrameStatus::Truncated)
                return;
            if (status == proc::FrameStatus::Corrupt) {
                r.corrupt = true;
                return;
            }
            if (payload.empty()) {
                r.corrupt = true;
                return;
            }
            char type = payload[0];
            payload.erase(0, 1);
            if (type == 'R') {
                r.result = std::move(payload);
                r.haveResult = true;
            } else if (type == 'P') {
                progress::Sample sample;
                if (!progress::decodeSample(payload, sample)) {
                    r.corrupt = true;
                    return;
                }
                if (config_.onProgress)
                    config_.onProgress(sample);
            } else {
                r.corrupt = true;
                return;
            }
        }
    };

    /** Reap a finished worker and judge its frame(s). */
    auto reap = [&](Running &r) {
        prof::Scope span("sweep/reap");
        int status = 0;
        pid_t waited;
        do {
            waited = ::waitpid(r.child.pid, &status, 0);
        } while (waited < 0 && errno == EINTR);
        ::close(r.child.fd);
        stats_.busySeconds +=
            std::chrono::duration<double>(Clock::now() - r.start).count();

        bool cleanExit = waited == r.child.pid && WIFEXITED(status) &&
                         WEXITSTATUS(status) == 0;
        if (typed) {
            drainFrames(r);
            // Leftover bytes after EOF are a partial frame the worker
            // never finished: treat like a truncated legacy frame.
            if (cleanExit && !r.corrupt && r.haveResult &&
                r.buffer.empty()) {
                ProcResult outcome;
                outcome.ok = true;
                outcome.attempts = r.attempt;
                outcome.payload = std::move(r.result);
                finish(r.index, std::move(outcome));
                return;
            }
            if (!cleanExit) {
                ++stats_.crashes;
                fail(r, proc::describeStatus(status));
            } else {
                ++stats_.corruptFrames;
                fail(r, r.corrupt
                            ? "corrupt frame in worker stream "
                              "(CRC/framing mismatch)"
                            : !r.haveResult
                                  ? "worker stream ended without a "
                                    "result frame"
                                  : "trailing partial frame after the "
                                    "result");
            }
            return;
        }
        std::string payload;
        proc::FrameStatus frame = proc::decodeFrame(r.buffer, payload);
        if (cleanExit && frame == proc::FrameStatus::Ok) {
            ProcResult outcome;
            outcome.ok = true;
            outcome.attempts = r.attempt;
            outcome.payload = std::move(payload);
            finish(r.index, std::move(outcome));
            return;
        }
        if (!cleanExit) {
            ++stats_.crashes;
            fail(r, proc::describeStatus(status));
        } else {
            ++stats_.corruptFrames;
            fail(r, frame == proc::FrameStatus::Corrupt
                        ? "corrupt result frame (CRC/framing mismatch)"
                        : "truncated result frame (" +
                              std::to_string(r.buffer.size()) + " bytes)");
        }
    };

    while (outstanding > 0) {
        Clock::time_point now = Clock::now();

        // Launch every eligible task while worker slots are free.
        bool launched = true;
        while (launched && running.size() < procs_ && !ready.empty()) {
            launched = false;
            for (size_t i = 0; i < ready.size(); ++i) {
                if (ready[i].notBefore <= now) {
                    Ready task = ready[i];
                    ready.erase(ready.begin() + (long)i);
                    launch(task);
                    launched = true;
                    break;
                }
            }
        }

        if (running.empty()) {
            if (ready.empty())
                break; // defensive: nothing running, nothing to run
            // Everything is in backoff: sleep until the earliest retry.
            Clock::time_point earliest = ready.front().notBefore;
            for (const Ready &task : ready)
                earliest = std::min(earliest, task.notBefore);
            std::this_thread::sleep_until(earliest);
            continue;
        }

        // Wait for output, exit, or the nearest deadline/retry tick.
        Clock::time_point wake = now + std::chrono::milliseconds(200);
        for (const Running &r : running)
            if (r.hasDeadline)
                wake = std::min(wake, r.deadline);
        for (const Ready &task : ready)
            wake = std::min(wake, task.notBefore);
        int timeoutMs = (int)std::max<int64_t>(
            0, std::chrono::duration_cast<std::chrono::milliseconds>(
                   wake - now)
                   .count());

        std::vector<struct pollfd> fds(running.size());
        for (size_t i = 0; i < running.size(); ++i)
            fds[i] = {running[i].child.fd, POLLIN, 0};
        int rc = ::poll(fds.data(), (nfds_t)fds.size(), timeoutMs);
        if (rc < 0 && errno != EINTR) {
            panic("proc pool poll failed: %s", std::strerror(errno));
        }

        now = Clock::now();
        for (size_t i = running.size(); i-- > 0;) {
            Running &r = running[i];
            bool done = false;
            if (rc > 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
                char chunk[4096];
                ssize_t got = ::read(r.child.fd, chunk, sizeof(chunk));
                if (got > 0) {
                    r.buffer.append(chunk, (size_t)got);
                    r.lastByte = now;
                    r.sawBytes = true;
                    if (typed)
                        drainFrames(r); // deliver progress as it lands
                } else if (got == 0 ||
                           (got < 0 && errno != EINTR &&
                            errno != EAGAIN)) {
                    done = true; // EOF: worker closed its pipe end
                }
            }
            if (!done && typed && config_.staleSeconds > 0.0 &&
                r.sawBytes &&
                std::chrono::duration<double>(now - r.lastByte).count() >
                    config_.staleSeconds) {
                // The heartbeat stream went quiet: presume the worker is
                // wedged and recycle it through the retry machinery.
                ::kill(r.child.pid, SIGKILL);
                ++stats_.staleKills;
                int status = 0;
                pid_t waited;
                do {
                    waited = ::waitpid(r.child.pid, &status, 0);
                } while (waited < 0 && errno == EINTR);
                (void)waited;
                ::close(r.child.fd);
                stats_.busySeconds +=
                    std::chrono::duration<double>(now - r.start).count();
                char why[80];
                std::snprintf(why, sizeof(why),
                              "stale heartbeat: no pipe bytes for %.1f s "
                              "(SIGKILL)",
                              config_.staleSeconds);
                fail(r, why);
                running.erase(running.begin() + (long)i);
                continue;
            }
            if (!done && r.hasDeadline && now >= r.deadline) {
                ::kill(r.child.pid, SIGKILL);
                ++stats_.timeouts;
                int status = 0;
                pid_t waited;
                do {
                    waited = ::waitpid(r.child.pid, &status, 0);
                } while (waited < 0 && errno == EINTR);
                (void)waited;
                ::close(r.child.fd);
                stats_.busySeconds +=
                    std::chrono::duration<double>(now - r.start).count();
                char why[64];
                std::snprintf(why, sizeof(why),
                              "timed out after %.1f s (SIGKILL)",
                              config_.timeoutSeconds);
                fail(r, why);
                running.erase(running.begin() + (long)i);
                continue;
            }
            if (done) {
                reap(r);
                running.erase(running.begin() + (long)i);
            }
        }
    }

    stats_.wallSeconds =
        std::chrono::duration<double>(Clock::now() - runStart).count();
    return results;
}

} // namespace pubs::sim
