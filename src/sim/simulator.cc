#include "sim/simulator.hh"

#include <chrono>

#include "common/logging.hh"
#include "common/profiler.hh"
#include "common/progress.hh"

namespace pubs::sim
{

Simulator::Simulator(const cpu::CoreParams &params,
                     const isa::Program &program)
{
    auto emulator = std::make_unique<emu::Emulator>(program);
    owned_ = std::move(emulator);
    pipeline_ = std::make_unique<cpu::Pipeline>(params, *owned_);
}

Simulator::Simulator(const cpu::CoreParams &params,
                     std::unique_ptr<trace::InstSource> source)
    : owned_(std::move(source))
{
    fatal_if(!owned_, "simulator needs an instruction source");
    pipeline_ = std::make_unique<cpu::Pipeline>(params, *owned_);
}

Simulator::~Simulator() = default;

RunResult
Simulator::run(uint64_t warmupInsts, uint64_t measureInsts)
{
    if (warmupInsts > 0) {
        prof::Scope span("sim/warmup");
        pipeline_->run(warmupInsts);
        pipeline_->resetStats();
        progress::phaseDone();
    }
    auto wallStart = std::chrono::steady_clock::now();
    {
        prof::Scope span("sim/measure");
        pipeline_->run(measureInsts);
    }
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wallStart;
    progress::phaseDone();

    const cpu::PipelineStats &s = pipeline_->stats();
    RunResult result;
    result.instructions = s.committed;
    result.cycles = s.cycles;
    result.ipc = s.ipc();
    result.branchMpki = s.branchMpki();
    result.llcMpki = s.llcMpki();
    result.avgMisspecPenalty = s.avgMisspecPenalty();
    result.avgIqWait =
        s.issued ? (double)s.iqWaitSum / (double)s.issued : 0.0;
    result.priorityStallCycles = s.priorityStallCycles;
    result.simSeconds = wall.count();
    if (const pubs::SliceUnit *unit = pipeline_->sliceUnit())
        result.unconfidentBranchRate = unit->unconfidentBranchRate();
    if (const pubs::ModeSwitch *ms = pipeline_->modeSwitch())
        result.pubsEnabledFraction = ms->enabledFraction();
    result.pipeline = s;
    return result;
}

RunResult
simulate(const cpu::CoreParams &params, const isa::Program &program,
         uint64_t warmupInsts, uint64_t measureInsts)
{
    Simulator simulator(params, program);
    RunResult result = simulator.run(warmupInsts, measureInsts);
    result.workload = program.name();
    return result;
}

} // namespace pubs::sim
