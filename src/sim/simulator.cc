#include "sim/simulator.hh"

#include <chrono>
#include <exception>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "common/progress.hh"
#include "cpu/telemetry.hh"
#include "sim/checkpoint.hh"

namespace pubs::sim
{

namespace
{

thread_local SimPhase currentPhase = SimPhase::None;
thread_local SimPhase failedPhase = SimPhase::None;

} // namespace

const char *
simPhaseName(SimPhase phase)
{
    switch (phase) {
      case SimPhase::None:
        return "";
      case SimPhase::FastForward:
        return "fastforward";
      case SimPhase::Warmup:
        return "warmup";
      case SimPhase::Measure:
        return "measure";
      case SimPhase::CheckpointIo:
        return "checkpoint_io";
    }
    return "";
}

SimPhase
lastFailedPhase()
{
    return failedPhase;
}

void
clearFailedPhase()
{
    failedPhase = SimPhase::None;
}

PhaseScope::PhaseScope(SimPhase phase)
    : prev_(currentPhase), exceptionsAtEntry_(std::uncaught_exceptions())
{
    currentPhase = phase;
}

PhaseScope::~PhaseScope()
{
    // Unwinding through this scope: remember the innermost phase that
    // was live when the exception was thrown (outer scopes must not
    // overwrite it).
    if (std::uncaught_exceptions() > exceptionsAtEntry_ &&
        failedPhase == SimPhase::None) {
        failedPhase = currentPhase;
    }
    currentPhase = prev_;
}

Simulator::Simulator(const cpu::CoreParams &params,
                     const isa::Program &program)
{
    auto emulator = std::make_unique<emu::Emulator>(program);
    owned_ = std::move(emulator);
    pipeline_ = std::make_unique<cpu::Pipeline>(params, *owned_);
}

Simulator::Simulator(const cpu::CoreParams &params,
                     std::unique_ptr<trace::InstSource> source)
    : owned_(std::move(source))
{
    fatal_if(!owned_, "simulator needs an instruction source");
    pipeline_ = std::make_unique<cpu::Pipeline>(params, *owned_);
}

Simulator::~Simulator() = default;

RunResult
Simulator::run(uint64_t warmupInsts, uint64_t measureInsts)
{
    if (warmupInsts > 0) {
        prof::Scope span("sim/warmup");
        PhaseScope phase(SimPhase::Warmup);
        pipeline_->run(warmupInsts);
        pipeline_->resetStats();
        progress::phaseDone();
    }
    auto wallStart = std::chrono::steady_clock::now();
    {
        prof::Scope span("sim/measure");
        PhaseScope phase(SimPhase::Measure);
        pipeline_->run(measureInsts);
    }
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wallStart;
    progress::phaseDone();

    const cpu::PipelineStats &s = pipeline_->stats();
    RunResult result;
    result.instructions = s.committed;
    result.cycles = s.cycles;
    result.ipc = s.ipc();
    result.branchMpki = s.branchMpki();
    result.llcMpki = s.llcMpki();
    result.avgMisspecPenalty = s.avgMisspecPenalty();
    result.avgIqWait =
        s.issued ? (double)s.iqWaitSum / (double)s.issued : 0.0;
    result.priorityStallCycles = s.priorityStallCycles;
    result.simSeconds = wall.count();
    if (const pubs::SliceUnit *unit = pipeline_->sliceUnit())
        result.unconfidentBranchRate = unit->unconfidentBranchRate();
    if (const pubs::ModeSwitch *ms = pipeline_->modeSwitch())
        result.pubsEnabledFraction = ms->enabledFraction();
    result.pipeline = s;
    if (const cpu::CoreTelemetry *tel = pipeline_->telemetry()) {
        auto top = tel->topBranchSites(maxBranchProfileRows);
        result.branchProfile.reserve(top.size());
        for (const auto &[pc, site] : top) {
            BranchProfileRow row;
            row.pc = pc;
            row.commits = site.commits;
            row.mispredicts = site.mispredicts;
            row.penaltyCycles = site.penaltySum;
            row.confCorrect = site.confidentCorrect;
            row.confWrong = site.confidentWrong;
            row.unconfCorrect = site.unconfidentCorrect;
            row.unconfWrong = site.unconfidentWrong;
            row.sliceInsts = site.sliceInsts;
            row.sliceCovered = site.sliceCovered;
            result.branchProfile.push_back(row);
        }
    }
    result.skippedInsts = fastForwarded_;
    return result;
}

uint64_t
Simulator::fastForward(uint64_t insts)
{
    prof::Scope span("sim/fastforward");
    PhaseScope phase(SimPhase::FastForward);
    uint64_t consumed = pipeline_->functionalFastForward(insts);
    fastForwarded_ += consumed;
    // The lockstep checker's private emulator does not see the
    // fast-forwarded instructions; realign it with the source.
    if (const emu::Emulator *emu = emulator())
        pipeline_->resyncChecker(*emu);
    return consumed;
}

const emu::Emulator *
Simulator::emulator() const
{
    return dynamic_cast<const emu::Emulator *>(owned_.get());
}

emu::Emulator &
Simulator::requireEmulator() const
{
    auto *emu = dynamic_cast<emu::Emulator *>(owned_.get());
    if (!emu) {
        throw CheckpointError(
            "checkpointing requires a program-backed (emulator) "
            "instruction source; trace replay cannot be checkpointed");
    }
    return *emu;
}

std::string
Simulator::saveCheckpoint(const std::string &machineLabel) const
{
    PhaseScope phase(SimPhase::CheckpointIo);
    emu::Emulator &emu = requireEmulator();
    CheckpointMeta meta;
    meta.workload = emu.program()->name();
    meta.machine = machineLabel;
    meta.skipInsts = fastForwarded_;
    meta.programCrc = programFingerprint(*emu.program());
    meta.paramsFp = paramsFingerprint(pipeline_->params());
    return encodeCheckpoint(meta, emu, *pipeline_);
}

void
Simulator::saveCheckpointFile(const std::string &path,
                              const std::string &machineLabel) const
{
    PhaseScope phase(SimPhase::CheckpointIo);
    std::string bytes = saveCheckpoint(machineLabel);
    std::string error = atomicWriteFile(path, bytes);
    if (!error.empty())
        throw CheckpointError("cannot write checkpoint: " + error);
}

void
Simulator::restoreCheckpoint(const std::string &bytes)
{
    PhaseScope phase(SimPhase::CheckpointIo);
    emu::Emulator &emu = requireEmulator();
    CheckpointMeta meta = decodeCheckpoint(bytes, emu, *pipeline_);
    pipeline_->resyncChecker(emu);
    fastForwarded_ = meta.skipInsts;
}

void
Simulator::restoreCheckpointFile(const std::string &path)
{
    std::string bytes;
    if (!readWholeFile(path, bytes))
        throw CheckpointError("cannot read checkpoint '" + path + "'");
    restoreCheckpoint(bytes);
}

RunResult
simulate(const cpu::CoreParams &params, const isa::Program &program,
         uint64_t warmupInsts, uint64_t measureInsts)
{
    Simulator simulator(params, program);
    RunResult result = simulator.run(warmupInsts, measureInsts);
    result.workload = program.name();
    return result;
}

} // namespace pubs::sim
