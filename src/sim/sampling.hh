/**
 * @file
 * SMARTS-style sampled simulation: functionally fast-forward between
 * evenly spaced sampling units, run a detailed warmup then a detailed
 * measurement window at each, and stitch the per-window stats into a
 * whole-run estimate with 95% confidence intervals.
 *
 * Functional warming makes this sound: the fast-forward path trains the
 * caches, branch predictor, BTB, RAS, and PUBS tables exactly as the
 * detailed front end would (minus timing), so each window starts from
 * warm state. Detailed windows run in a throwaway Simulator restored
 * from an in-memory checkpoint of the warming context, so one window's
 * detailed execution never perturbs the next — every window's start
 * state is exactly "fast-forward k*period from reset", which is also
 * what a cached checkpoint artifact at that distance holds.
 */

#ifndef PUBS_SIM_SAMPLING_HH
#define PUBS_SIM_SAMPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/simulator.hh"

namespace pubs::sim
{

/** Shape of one sampled run. */
struct SamplePlan
{
    uint32_t windows = 0;      ///< measurement windows; 0 = disabled
    uint64_t periodInsts = 0;  ///< distance between window starts
    uint64_t warmupInsts = 0;  ///< detailed warmup per window
    uint64_t measureInsts = 0; ///< measured instructions per window

    bool enabled() const { return windows > 0; }

    /** Validate (positive windows need positive period and measure). */
    void validate() const;

    /** Canonical text form, mixed into sweep-journal keys. */
    std::string describe() const;
};

/** Sample mean with a (Student-t) 95% confidence half-width. */
struct MeanCi
{
    uint32_t n = 0;
    double mean = 0.0;
    double halfWidth = 0.0; ///< 0 when n < 2 or the variance is zero
};

/**
 * Closed-form mean + 95% CI of @p xs: mean = sum/n, halfWidth =
 * t_{0.975,n-1} * sqrt(s^2/n) with the unbiased sample variance s^2.
 * Degenerate cases: empty -> all zero; a single window -> no CI
 * (halfWidth 0); zero variance -> halfWidth exactly 0.
 */
MeanCi meanCi(const std::vector<double> &xs);

/**
 * Run @p plan against @p program on @p params and stitch the windows
 * into one RunResult (result.sampled = true, CI fields filled in).
 * When @p store is non-null, each window's fast-forward state is served
 * from / saved to the content-addressed checkpoint store, so repeated
 * sweeps (and --resume reruns) skip the fast-forward work.
 * @p machineLabel tags checkpoints and the result.
 */
RunResult simulateSampled(const cpu::CoreParams &params,
                          const isa::Program &program,
                          const SamplePlan &plan,
                          const CheckpointStore *store = nullptr,
                          const std::string &machineLabel = "");

} // namespace pubs::sim

#endif // PUBS_SIM_SAMPLING_HH
