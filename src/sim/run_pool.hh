/**
 * @file
 * Work-stealing thread pool for batch simulation.
 *
 * Every paper figure is a sweep of independent (workload, machine) runs,
 * so the natural scaling axis is run-level parallelism: each Simulator
 * owns its pipeline, emulator, RNG streams, and stats, and never shares
 * mutable state with a sibling run. RunPool schedules such independent
 * tasks across hardware threads with per-worker deques (LIFO pop for
 * cache locality, FIFO steal to spread the oldest work), which keeps a
 * heterogeneous sweep — some configs simulate 10x slower than others —
 * load-balanced without any central queue contention.
 *
 * Guarantees:
 *  - A task that throws never takes down a worker or the pool: the
 *    exception is caught, counted, and its first message retained
 *    (batch layers above record per-run errors themselves; this is the
 *    backstop for non-SimError escapes).
 *  - wait() blocks until every task submitted so far has finished.
 *  - The destructor drains all pending work before joining, so
 *    destruction-while-draining is safe: no task is abandoned and no
 *    worker is cancelled mid-run.
 *  - Determinism is the submitter's job: the pool promises nothing
 *    about execution order, so batch results must be written into
 *    pre-assigned slots (see bench_util's runSweep), never appended in
 *    completion order.
 */

#ifndef PUBS_SIM_RUN_POOL_HH
#define PUBS_SIM_RUN_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pubs::sim
{

/** Utilization counters of one pool (sampled via RunPool::stats()). */
struct PoolStats
{
    unsigned threads = 0;
    uint64_t tasksRun = 0;    ///< tasks completed (including failed)
    uint64_t tasksStolen = 0; ///< tasks taken from another worker's deque
    uint64_t tasksFailed = 0; ///< tasks that threw
    double busySeconds = 0.0; ///< summed per-worker task execution time
    double wallSeconds = 0.0; ///< wall clock since pool construction

    /** Fraction of thread-seconds spent executing tasks. */
    double
    utilization() const
    {
        double capacity = wallSeconds * (double)threads;
        return capacity > 0.0 ? busySeconds / capacity : 0.0;
    }
};

class RunPool
{
  public:
    /**
     * @param threads worker count; 0 means hardwareThreads().
     */
    explicit RunPool(unsigned threads = 0);

    /** Drains all pending work, then joins the workers. */
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    unsigned threads() const { return (unsigned)workers_.size(); }

    /** Enqueue @p task; runs on some worker, in no promised order. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has completed. */
    void wait();

    /** Counters so far (callable at any time, including mid-drain). */
    PoolStats stats() const;

    /** Message of the first task that threw, or "" if none did. */
    std::string firstError() const;

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

  private:
    struct Worker
    {
        mutable std::mutex mutex;
        std::deque<std::function<void()>> deque;
        std::thread thread;
    };

    void workerLoop(unsigned self);
    bool takeTask(unsigned self, std::function<void()> &task);
    void runTask(std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers_;

    /** Guards queued_/pending_/stop_ and backs both condvars. */
    mutable std::mutex signal_;
    std::condition_variable workCv_; ///< queued_ > 0 or stop_
    std::condition_variable idleCv_; ///< pending_ == 0
    uint64_t queued_ = 0;  ///< submitted, not yet picked up
    uint64_t pending_ = 0; ///< submitted, not yet completed
    bool stop_ = false;

    std::atomic<uint64_t> nextWorker_{0};
    std::atomic<uint64_t> tasksRun_{0};
    std::atomic<uint64_t> tasksStolen_{0};
    std::atomic<uint64_t> tasksFailed_{0};
    std::atomic<uint64_t> busyNanos_{0};
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex errorMutex_;
    std::string firstError_;
};

/**
 * Run fn(0) .. fn(n-1) on @p pool and block until all have finished.
 * Exceptions are absorbed per the pool contract (check pool.stats()).
 */
void parallelFor(RunPool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace pubs::sim

#endif // PUBS_SIM_RUN_POOL_HH
