/**
 * @file
 * Lockstep commit checker, after gem5's CheckerCPU: an independent
 * functional emulator re-executes the program architecturally, one
 * instruction per timing-pipeline commit, and cross-validates PC,
 * next-PC, destination register value, and effective address. Any
 * mismatch means the timing model committed the wrong instruction
 * stream — a squash bug, a wrong-path leak, a reordered commit — which
 * would silently fabricate or hide the misspeculation-penalty effects
 * this reproduction measures.
 *
 * The checker never influences timing; it is a pure observer. A
 * divergence produces a structured diagnostic carrying the disagreeing
 * fields and the last N committed instructions; the pipeline appends its
 * own state snapshot (ROB/IQ/LSQ occupancy, rename state, fetch PC) and
 * applies the configured CheckPolicy (warn / throw CheckError / abort).
 */

#ifndef PUBS_SIM_CHECKER_HH
#define PUBS_SIM_CHECKER_HH

#include <deque>
#include <string>

#include "common/error.hh"
#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "trace/dyninst.hh"

namespace pubs::sim
{

/** One committed instruction as remembered by the history ring. */
struct CommitRecord
{
    SeqNum seq = 0;
    Cycle cycle = 0;
    Pc pc = 0;
    Pc nextPc = 0;
    Addr effAddr = 0;
    isa::Opcode op = isa::Opcode::Nop;
    RegId dst = invalidReg;
    uint64_t dstValue = 0;
    bool hasDstValue = false;
};

class CommitChecker
{
  public:
    /**
     * @param program the static program the reference emulator replays.
     * @param historyDepth committed instructions kept for diagnostics.
     */
    explicit CommitChecker(const isa::Program &program,
                           size_t historyDepth = 16);

    /**
     * Validate one committed instruction against the reference
     * emulator.
     * @return an empty string if the commit matches; otherwise a
     *         multi-line diagnostic (disagreeing fields + recent commit
     *         history). The caller decides what to do with it (see
     *         reportViolation()).
     */
    std::string check(const trace::DynInst &committed, Cycle commitCycle);

    uint64_t commitsChecked() const { return commitsChecked_; }
    uint64_t divergences() const { return divergences_; }

    /**
     * Re-seed the reference emulator from @p ref (registers, PC,
     * sequence number, memory). Used after a functional fast-forward or
     * checkpoint restore, where the pipeline's source has advanced past
     * the program's reset state without any commits being checked.
     */
    void resyncFrom(const emu::Emulator &ref) { emu_.copyArchState(ref); }

    /** Formatted dump of the last N committed instructions. */
    std::string historyDump() const;

  private:
    void remember(const trace::DynInst &di, Cycle cycle);

    emu::Emulator emu_;
    size_t historyDepth_;
    std::deque<CommitRecord> history_;
    uint64_t commitsChecked_ = 0;
    uint64_t divergences_ = 0;
};

} // namespace pubs::sim

#endif // PUBS_SIM_CHECKER_HH
