#include "sim/sampling.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::sim
{

namespace
{

/** Two-sided 95% Student-t quantiles (t_{0.975,df}); df > 30 ~ normal. */
constexpr double tTable975[31] = {
    0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
    2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
    2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
    2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
};

double
tQuantile975(uint32_t df)
{
    if (df == 0)
        return 0.0;
    return df <= 30 ? tTable975[df] : 1.96;
}

/** Bucket-wise histogram merge; both sides share one geometry. */
void
mergeHistogram(Histogram &into, const Histogram &from)
{
    std::vector<uint64_t> counts(into.numBuckets());
    for (size_t i = 0; i < into.numBuckets(); ++i)
        counts[i] = into.bucket(i) + from.bucket(i);
    into.restore(into.bucketWidth(), into.scale(), std::move(counts),
                 into.sum() + from.sum(),
                 into.samples() + from.samples());
}

/** Sum @p from's counters (and histograms) into @p into. */
void
accumulateStats(cpu::PipelineStats &into, const cpu::PipelineStats &from)
{
    into.cycles += from.cycles;
    into.committed += from.committed;
    into.fetched += from.fetched;
    into.condBranches += from.condBranches;
    into.condMispredicts += from.condMispredicts;
    into.indirectJumps += from.indirectJumps;
    into.indirectMispredicts += from.indirectMispredicts;
    into.btbMissBubbles += from.btbMissBubbles;
    into.llcMisses += from.llcMisses;
    into.l1dAccesses += from.l1dAccesses;
    into.l1dMisses += from.l1dMisses;
    into.priorityDispatches += from.priorityDispatches;
    into.normalDispatches += from.normalDispatches;
    into.priorityStallCycles += from.priorityStallCycles;
    into.iqFullStallCycles += from.iqFullStallCycles;
    into.robFullStallCycles += from.robFullStallCycles;
    into.issueConflictCycles += from.issueConflictCycles;
    into.issued += from.issued;
    into.misspecPenaltySum += from.misspecPenaltySum;
    into.misspecPenaltyCount += from.misspecPenaltyCount;
    into.wrongPathFetched += from.wrongPathFetched;
    into.squashed += from.squashed;
    into.iqWaitSum += from.iqWaitSum;
    into.checkerCommits += from.checkerCommits;
    into.checkerDivergences += from.checkerDivergences;
    into.auditsRun += from.auditsRun;
    into.auditViolations += from.auditViolations;
    into.cpi.merge(from.cpi);
    mergeHistogram(into.misspecPenalty, from.misspecPenalty);
    mergeHistogram(into.iqOccupancy, from.iqOccupancy);
    mergeHistogram(into.iqWait, from.iqWait);
}

/**
 * Pool @p from's per-branch profile rows into @p into by pc, re-sort
 * by the canonical order (mispredicts, penalty, pc) and re-cap. Each
 * window only exports its own top rows, so a branch hot in one window
 * and just-below-cap in another is slightly undercounted — acceptable
 * for a profile whose purpose is ranking the dominant sites.
 */
void
mergeBranchProfile(std::vector<BranchProfileRow> &into,
                   const std::vector<BranchProfileRow> &from)
{
    for (const BranchProfileRow &row : from) {
        auto it = std::find_if(
            into.begin(), into.end(),
            [&](const BranchProfileRow &r) { return r.pc == row.pc; });
        if (it == into.end()) {
            into.push_back(row);
            continue;
        }
        it->commits += row.commits;
        it->mispredicts += row.mispredicts;
        it->penaltyCycles += row.penaltyCycles;
        it->confCorrect += row.confCorrect;
        it->confWrong += row.confWrong;
        it->unconfCorrect += row.unconfCorrect;
        it->unconfWrong += row.unconfWrong;
        it->sliceInsts += row.sliceInsts;
        it->sliceCovered += row.sliceCovered;
    }
    std::sort(into.begin(), into.end(),
              [](const BranchProfileRow &a, const BranchProfileRow &b) {
                  if (a.mispredicts != b.mispredicts)
                      return a.mispredicts > b.mispredicts;
                  if (a.penaltyCycles != b.penaltyCycles)
                      return a.penaltyCycles > b.penaltyCycles;
                  return a.pc < b.pc;
              });
    if (into.size() > maxBranchProfileRows)
        into.resize(maxBranchProfileRows);
}

} // namespace

void
SamplePlan::validate() const
{
    if (!enabled())
        return;
    if (measureInsts == 0) {
        throw ConfigError("sampling plan needs a positive per-window "
                          "measurement budget");
    }
    if (windows > 1 && periodInsts == 0) {
        throw ConfigError("multi-window sampling needs a positive "
                          "sampling period");
    }
}

std::string
SamplePlan::describe() const
{
    std::ostringstream out;
    out << "windows=" << windows << " period=" << periodInsts
        << " warmup=" << warmupInsts << " measure=" << measureInsts;
    return out.str();
}

MeanCi
meanCi(const std::vector<double> &xs)
{
    MeanCi ci;
    ci.n = (uint32_t)xs.size();
    if (ci.n == 0)
        return ci;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    ci.mean = sum / (double)ci.n;
    if (ci.n < 2)
        return ci; // a single window carries no spread information
    double ss = 0.0;
    for (double x : xs)
        ss += (x - ci.mean) * (x - ci.mean);
    double variance = ss / (double)(ci.n - 1);
    ci.halfWidth =
        tQuantile975(ci.n - 1) * std::sqrt(variance / (double)ci.n);
    return ci;
}

RunResult
simulateSampled(const cpu::CoreParams &params, const isa::Program &program,
                const SamplePlan &plan, const CheckpointStore *store,
                const std::string &machineLabel)
{
    plan.validate();
    if (!plan.enabled()) {
        throw ConfigError(
            "simulateSampled called with sampling disabled");
    }

    // The warming context only ever fast-forwards; detailed windows run
    // in throwaway Simulators restored from its checkpoints, so their
    // execution never perturbs later windows' start state.
    Simulator warming(params, program);

    CheckpointMeta meta;
    meta.workload = program.name();
    meta.machine = machineLabel;
    meta.programCrc = programFingerprint(program);
    meta.paramsFp = paramsFingerprint(params);

    RunResult total;
    total.workload = program.name();
    total.machine = machineLabel;
    std::vector<double> ipcs, branchMpkis, llcMpkis;

    for (uint32_t w = 0; w < plan.windows; ++w) {
        uint64_t target = (uint64_t)w * plan.periodInsts;
        meta.skipInsts = target;

        Simulator window(params, program);
        if (target > 0) {
            std::string bytes;
            bool hit = store && store->load(meta, bytes);
            if (!hit) {
                uint64_t need = target - warming.fastForwarded();
                if (warming.fastForward(need) < need) {
                    // The program ended before this window's start;
                    // later windows are beyond it too.
                    warn("sampling: program ended %llu insts before "
                         "window %u; stitching %zu windows",
                         (unsigned long long)(target -
                             warming.fastForwarded()),
                         w, ipcs.size());
                    break;
                }
                bytes = warming.saveCheckpoint(machineLabel);
                if (store)
                    store->save(meta, bytes);
            }
            window.restoreCheckpoint(bytes);
        }

        RunResult wr = window.run(plan.warmupInsts, plan.measureInsts);
        if (wr.instructions == 0)
            break; // nothing measurable left (halt inside warmup)

        accumulateStats(total.pipeline, wr.pipeline);
        mergeBranchProfile(total.branchProfile, wr.branchProfile);
        total.simSeconds += wr.simSeconds;
        // The slice unit and mode switch are cumulative from reset
        // (fast-forward trains them too), so the last window's rates
        // cover the longest instruction prefix: use them.
        total.unconfidentBranchRate = wr.unconfidentBranchRate;
        total.pubsEnabledFraction = wr.pubsEnabledFraction;
        total.skippedInsts = target;
        ipcs.push_back(wr.ipc);
        branchMpkis.push_back(wr.branchMpki);
        llcMpkis.push_back(wr.llcMpki);
    }

    // Point estimates come from the pooled counters (the union of the
    // measured windows); the confidence intervals from the per-window
    // spread. See DESIGN.md section 10 for the methodology.
    const cpu::PipelineStats &p = total.pipeline;
    total.instructions = p.committed;
    total.cycles = p.cycles;
    total.ipc = p.ipc();
    total.branchMpki = p.branchMpki();
    total.llcMpki = p.llcMpki();
    total.avgMisspecPenalty = p.avgMisspecPenalty();
    total.avgIqWait =
        p.issued ? (double)p.iqWaitSum / (double)p.issued : 0.0;
    total.priorityStallCycles = p.priorityStallCycles;
    total.sampled = true;
    total.windows = (uint32_t)ipcs.size();
    total.ipcCi95 = meanCi(ipcs).halfWidth;
    total.branchMpkiCi95 = meanCi(branchMpkis).halfWidth;
    total.llcMpkiCi95 = meanCi(llcMpkis).halfWidth;
    return total;
}

} // namespace pubs::sim
