/**
 * @file
 * Top-level run controller: wires a Program (through the functional
 * emulator) or a trace file into the timing pipeline, runs warmup +
 * measurement, and returns the headline metrics the figures use.
 */

#ifndef PUBS_SIM_SIMULATOR_HH
#define PUBS_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/pipeline.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "sim/config.hh"

namespace pubs::sim
{

/**
 * Which part of a (possibly sampled) run is executing, tracked
 * per-thread so a SimError escaping a sweep run can be attributed to
 * fast-forward vs warmup vs measurement in the skip row.
 */
enum class SimPhase
{
    None,
    FastForward,
    Warmup,
    Measure,
    CheckpointIo,
};

/** Stable lowercase name ("fastforward", "warmup", ...; "" for None). */
const char *simPhaseName(SimPhase phase);

/**
 * The innermost phase that was active when a SimError last unwound
 * through a PhaseScope on this thread (None if none since the last
 * clearFailedPhase()).
 */
SimPhase lastFailedPhase();
void clearFailedPhase();

/** RAII marker for the current thread's simulation phase. */
class PhaseScope
{
  public:
    explicit PhaseScope(SimPhase phase);
    ~PhaseScope();

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    SimPhase prev_;
    int exceptionsAtEntry_;
};

/**
 * One static conditional branch's accumulated cost profile, exported
 * from cpu::CoreTelemetry into the run result so sweeps/CSV emitters
 * can consume it without reaching into the pipeline. Field meanings
 * match cpu::BranchSiteStats.
 */
struct BranchProfileRow
{
    Pc pc = 0;
    uint64_t commits = 0;
    uint64_t mispredicts = 0;
    uint64_t penaltyCycles = 0;
    uint64_t confCorrect = 0;
    uint64_t confWrong = 0;
    uint64_t unconfCorrect = 0;
    uint64_t unconfWrong = 0;
    uint64_t sliceInsts = 0;
    uint64_t sliceCovered = 0;
};

/** Rows kept per run: the tail beyond the top-N costliest branches is
 *  noise for the profile's purpose (and bloats sweep-row payloads). */
constexpr size_t maxBranchProfileRows = 64;

/** Headline metrics of one simulation. */
struct RunResult
{
    std::string workload;
    std::string machine;

    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    double branchMpki = 0.0;
    double llcMpki = 0.0;
    double avgMisspecPenalty = 0.0;
    double avgIqWait = 0.0;
    double unconfidentBranchRate = 0.0;
    double pubsEnabledFraction = 1.0;
    uint64_t priorityStallCycles = 0;

    /** Host wall-clock seconds of the measurement phase. */
    double simSeconds = 0.0;

    // Sampled-simulation fields (sim/sampling.hh). All zero/false for a
    // straight-through run, and excluded from statsJson() then, so
    // non-sampled output is byte-identical to pre-sampling builds.
    bool sampled = false;           ///< stitched from measurement windows
    uint32_t windows = 0;           ///< measurement windows aggregated
    uint64_t skippedInsts = 0;      ///< functionally fast-forwarded insts
    double ipcCi95 = 0.0;           ///< 95% CI half-width on ipc
    double branchMpkiCi95 = 0.0;    ///< 95% CI half-width on branchMpki
    double llcMpkiCi95 = 0.0;       ///< 95% CI half-width on llcMpki

    /** Full pipeline counters for detailed analysis. */
    cpu::PipelineStats pipeline{};

    /**
     * Top-misprediction-cost static branches (empty unless the run had
     * telemetry enabled), sorted by mispredicts, then summed penalty,
     * then pc — the deterministic order of
     * cpu::CoreTelemetry::topBranchSites().
     */
    std::vector<BranchProfileRow> branchProfile;

    /** Speedup of this run's IPC over @p baseline (same cycle time). */
    double
    speedupOver(const RunResult &other) const
    {
        return other.ipc > 0.0 ? ipc / other.ipc : 0.0;
    }

    /** Simulation speed: kilo-instructions committed per host second. */
    double
    kips() const
    {
        return simSeconds > 0.0
                   ? (double)instructions / simSeconds / 1000.0
                   : 0.0;
    }
};

class Simulator
{
  public:
    /** Simulate @p program on a core configured by @p params. */
    Simulator(const cpu::CoreParams &params, const isa::Program &program);

    /** Simulate a pre-recorded instruction stream. */
    Simulator(const cpu::CoreParams &params,
              std::unique_ptr<trace::InstSource> source);

    ~Simulator();

    /**
     * Run @p warmupInsts to warm predictors/caches/tables (stats are then
     * reset), then @p measureInsts under measurement.
     */
    RunResult run(uint64_t warmupInsts, uint64_t measureInsts);

    /**
     * Functionally fast-forward @p insts instructions (no timing; warm
     * state only — see cpu::Pipeline::functionalFastForward). Only legal
     * before run(). @return instructions actually consumed.
     */
    uint64_t fastForward(uint64_t insts);

    /** Instructions fast-forwarded (or restored past) so far. */
    uint64_t fastForwarded() const { return fastForwarded_; }

    /**
     * Serialize the current state as checkpoint container bytes under
     * @p machineLabel. Requires a program-backed (emulator) source and a
     * pristine pipeline; throws CheckpointError otherwise.
     */
    std::string saveCheckpoint(const std::string &machineLabel = "") const;

    /** saveCheckpoint() + atomic write to @p path. */
    void saveCheckpointFile(const std::string &path,
                            const std::string &machineLabel = "") const;

    /**
     * Restore state from checkpoint container bytes (and resync the
     * lockstep checker). Same requirements as saveCheckpoint(); throws
     * CheckpointError on corruption or identity mismatch.
     */
    void restoreCheckpoint(const std::string &bytes);

    /** Read @p path and restoreCheckpoint(). */
    void restoreCheckpointFile(const std::string &path);

    /** The owned emulator, or null for a trace-replay source. */
    const emu::Emulator *emulator() const;

    cpu::Pipeline &pipeline() { return *pipeline_; }

  private:
    emu::Emulator &requireEmulator() const;

    std::unique_ptr<trace::InstSource> owned_;
    std::unique_ptr<cpu::Pipeline> pipeline_;
    uint64_t fastForwarded_ = 0;
};

/** One-call convenience used by the benches. */
RunResult simulate(const cpu::CoreParams &params,
                   const isa::Program &program, uint64_t warmupInsts,
                   uint64_t measureInsts);

} // namespace pubs::sim

#endif // PUBS_SIM_SIMULATOR_HH
