/**
 * @file
 * Top-level run controller: wires a Program (through the functional
 * emulator) or a trace file into the timing pipeline, runs warmup +
 * measurement, and returns the headline metrics the figures use.
 */

#ifndef PUBS_SIM_SIMULATOR_HH
#define PUBS_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "cpu/pipeline.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "sim/config.hh"

namespace pubs::sim
{

/** Headline metrics of one simulation. */
struct RunResult
{
    std::string workload;
    std::string machine;

    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    double branchMpki = 0.0;
    double llcMpki = 0.0;
    double avgMisspecPenalty = 0.0;
    double avgIqWait = 0.0;
    double unconfidentBranchRate = 0.0;
    double pubsEnabledFraction = 1.0;
    uint64_t priorityStallCycles = 0;

    /** Host wall-clock seconds of the measurement phase. */
    double simSeconds = 0.0;

    /** Full pipeline counters for detailed analysis. */
    cpu::PipelineStats pipeline{};

    /** Speedup of this run's IPC over @p baseline (same cycle time). */
    double
    speedupOver(const RunResult &other) const
    {
        return other.ipc > 0.0 ? ipc / other.ipc : 0.0;
    }

    /** Simulation speed: kilo-instructions committed per host second. */
    double
    kips() const
    {
        return simSeconds > 0.0
                   ? (double)instructions / simSeconds / 1000.0
                   : 0.0;
    }
};

class Simulator
{
  public:
    /** Simulate @p program on a core configured by @p params. */
    Simulator(const cpu::CoreParams &params, const isa::Program &program);

    /** Simulate a pre-recorded instruction stream. */
    Simulator(const cpu::CoreParams &params,
              std::unique_ptr<trace::InstSource> source);

    ~Simulator();

    /**
     * Run @p warmupInsts to warm predictors/caches/tables (stats are then
     * reset), then @p measureInsts under measurement.
     */
    RunResult run(uint64_t warmupInsts, uint64_t measureInsts);

    cpu::Pipeline &pipeline() { return *pipeline_; }

  private:
    std::unique_ptr<trace::InstSource> owned_;
    std::unique_ptr<cpu::Pipeline> pipeline_;
};

/** One-call convenience used by the benches. */
RunResult simulate(const cpu::CoreParams &params,
                   const isa::Program &program, uint64_t warmupInsts,
                   uint64_t measureInsts);

} // namespace pubs::sim

#endif // PUBS_SIM_SIMULATOR_HH
