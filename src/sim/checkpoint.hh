/**
 * @file
 * Versioned, CRC-guarded architectural checkpoints.
 *
 * v1 (current) container: 28-byte header — 8-byte magic "PUBSCKP1",
 * u32 format version, u64 payload length, u32 payload CRC32, u32 header
 * CRC32 — followed by the payload, a common/serialize.hh stream holding
 * the checkpoint metadata, the emulator's architectural state, and the
 * pipeline's warm microarchitectural state. Like the trace format, the
 * header is designed to evolve: readers reject unknown versions with a
 * typed CheckpointError instead of misdecoding.
 *
 * Every corruption mode — truncated tail, bit flip, stale version,
 * mismatched machine geometry — surfaces as CheckpointError; a loader
 * never crashes and never silently restores wrong state.
 *
 * The core contract (pinned by tests/test_checkpoint.cc): fast-forward,
 * save, restore in a fresh process, run detailed simulation — and the
 * result is byte-identical to the same run without the save/restore.
 */

#ifndef PUBS_SIM_CHECKPOINT_HH
#define PUBS_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "cpu/pipeline.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"

namespace pubs::sim
{

/** Magic bytes at the start of every v1 checkpoint. */
constexpr char checkpointMagic[8] = {'P', 'U', 'B', 'S', 'C', 'K', 'P',
                                     '1'};

/** Container format version written by encodeCheckpoint(). */
constexpr uint32_t checkpointFormatVersion = 1;

/**
 * Identity of a checkpoint: what was running, where it was cut, and
 * fingerprints that reject restores into a different program or machine
 * configuration (both of which would silently corrupt results).
 */
struct CheckpointMeta
{
    std::string workload; ///< program name
    std::string machine;  ///< human-readable machine label ("" is fine)
    uint64_t skipInsts = 0; ///< instructions fast-forwarded from reset
    uint32_t programCrc = 0; ///< programFingerprint() of the workload
    uint32_t paramsFp = 0;   ///< paramsFingerprint() of the machine
};

/** CRC32 over the program listing + initial-data directives. */
uint32_t programFingerprint(const isa::Program &program);

/**
 * CRC32 of CoreParams::describeFunctional(): covers exactly the fields
 * that shape a checkpoint's serialized warm state. Two machines that
 * differ only in timing parameters share a fingerprint — and therefore
 * share CheckpointStore artifacts and restore each other's checkpoints.
 */
uint32_t paramsFingerprint(const cpu::CoreParams &params);

/**
 * Serialize @p emu (architectural state) + @p pipeline (warm
 * microarchitectural state) under @p meta into v1 container bytes.
 * Throws CheckpointError unless the pipeline is pristine (see
 * Pipeline::functionalFastForward).
 */
std::string encodeCheckpoint(const CheckpointMeta &meta,
                             const emu::Emulator &emu,
                             const cpu::Pipeline &pipeline);

/**
 * Validate @p bytes (magic, version, CRCs) and restore into @p emu and
 * @p pipeline. The stored program and machine fingerprints must match
 * the live ones. Throws CheckpointError on any mismatch or corruption.
 * @return the stored metadata.
 */
CheckpointMeta decodeCheckpoint(const std::string &bytes,
                                emu::Emulator &emu,
                                cpu::Pipeline &pipeline);

/** Validate the container and return the metadata without restoring. */
CheckpointMeta readCheckpointMeta(const std::string &bytes);

/** encodeCheckpoint() + atomic temp-then-rename write to @p path. */
void saveCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                        const emu::Emulator &emu,
                        const cpu::Pipeline &pipeline);

/** Read @p path and decodeCheckpoint(). Throws CheckpointError. */
CheckpointMeta loadCheckpointFile(const std::string &path,
                                  emu::Emulator &emu,
                                  cpu::Pipeline &pipeline);

/**
 * Content-addressed checkpoint artifacts in one directory, keyed on
 * workload x machine configuration x skip distance x container format
 * version, so sweep workers (and --resume reruns) reuse each other's
 * fast-forward work instead of repeating it. Artifacts are written
 * atomically; a corrupt cached artifact is treated as a miss (with a
 * warning) rather than sinking the run — the cache recomputes and
 * overwrites it.
 */
class CheckpointStore
{
  public:
    explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

    const std::string &dir() const { return dir_; }

    /** Content-address filename (inside dir()) for @p meta's identity. */
    std::string pathFor(const CheckpointMeta &meta) const;

    /** Is a (readable) artifact present for @p meta's identity? */
    bool contains(const CheckpointMeta &meta) const;

    /** Cache container @p bytes for @p meta (atomic; warns on error). */
    void save(const CheckpointMeta &meta, const std::string &bytes) const;

    /**
     * Fetch the cached container bytes for @p meta's identity if one
     * exists and its framing validates.
     * @return true on a hit; false when absent or corrupt (corrupt
     * artifacts warn and count as a miss, never as an error).
     */
    bool load(const CheckpointMeta &meta, std::string &bytes) const;

  private:
    std::string dir_;
};

} // namespace pubs::sim

#endif // PUBS_SIM_CHECKPOINT_HH
