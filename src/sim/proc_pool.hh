/**
 * @file
 * Fault-isolated process pool for batch simulation.
 *
 * RunPool (run_pool.hh) parallelises a sweep across threads, which is
 * fast but shares one address space: a segfault, a runaway allocation,
 * or a hang in any single run takes down the whole batch. ProcPool
 * keeps RunPool's contract — tasks are independent, results land in
 * pre-assigned slots, nothing about scheduling leaks into the output —
 * but runs every task in a forked worker process that returns its
 * result over a length-prefixed, CRC-checked pipe frame
 * (common/subprocess.hh).
 *
 * Recovery policy, per task:
 *  - a worker that exits nonzero, dies on a signal, or returns a
 *    truncated/corrupt frame is retried with exponential backoff;
 *  - a worker that exceeds the per-run timeout is SIGKILLed and retried;
 *  - after maxAttempts failures the task is reported as a failed
 *    ProcResult (the caller records a machine-readable skip row) and
 *    the batch continues.
 *
 * Fault injection: the PUBS_FAULT environment variable (see
 * subprocess.hh) makes workers crash, hang, or corrupt their frames
 * with a seeded per-(task, attempt) coin, so tests and CI can exercise
 * every recovery path deterministically.
 */

#ifndef PUBS_SIM_PROC_POOL_HH
#define PUBS_SIM_PROC_POOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/progress.hh"
#include "common/subprocess.hh"

namespace pubs::sim
{

/** Outcome of one task after all attempts (slot-indexed). */
struct ProcResult
{
    std::string payload;  ///< the worker's frame payload when ok
    bool ok = false;
    std::string error;    ///< last failure description when !ok
    unsigned attempts = 0;
};

/** Aggregate counters of one ProcPool::run() call. */
struct ProcPoolStats
{
    uint64_t launches = 0;
    uint64_t crashes = 0;       ///< workers that exited abnormally
    uint64_t timeouts = 0;      ///< workers SIGKILLed past the deadline
    uint64_t corruptFrames = 0; ///< frames rejected by CRC/framing
    uint64_t retries = 0;
    uint64_t permanentFailures = 0; ///< tasks skipped after maxAttempts
    uint64_t staleKills = 0;    ///< workers SIGKILLed for a silent pipe
    double busySeconds = 0.0;   ///< summed worker wall time
    double wallSeconds = 0.0;
};

class ProcPool
{
  public:
    struct Config
    {
        unsigned procs = 0;         ///< worker processes; 0 = hw threads
        unsigned maxAttempts = 5;   ///< per task, including the first
        double timeoutSeconds = 900.0; ///< per attempt; <=0 disables
        unsigned backoffBaseMs = 100;  ///< retry delay: base << (attempt-1)
        bool verbose = false;       ///< report failures/retries on stderr
        /** Injected faults; defaults to faultPlanFromEnv() in run(). */
        proc::FaultPlan faults;
        bool faultsFromEnv = true;  ///< overwrite `faults` from PUBS_FAULT

        /**
         * Typed-frame protocol v2: workers get a progress frame sink on
         * their result pipe (common/progress.hh) and prefix every frame
         * payload with a type byte — 'P' carries a progress sample, 'R'
         * the final result. Off by default: legacy workers write one
         * untyped result frame, and both sides must agree.
         */
        bool progressFrames = false;
        unsigned progressIntervalMs = 250; ///< per-worker sample period

        /**
         * With progressFrames: a worker whose pipe stays silent this
         * long (after its first byte, so slow starts don't count) is
         * presumed wedged — SIGKILLed and retried like a timeout. The
         * heartbeat stream makes "alive" observable, so this can be far
         * tighter than timeoutSeconds. <=0 disables.
         */
        double staleSeconds = 0.0;

        /**
         * Parent-side callback for each decoded progress sample, called
         * from the run() poll loop (single-threaded). Feed a
         * progress::Meter here.
         */
        std::function<void(const progress::Sample &)> onProgress;
    };

    /**
     * Apply the PUBS_PROC_TIMEOUT (seconds), PUBS_PROC_RETRIES
     * (attempts), PUBS_PROC_BACKOFF_MS and PUBS_PROC_STALE (seconds)
     * environment overrides to @p base.
     */
    static Config configFromEnv(Config base);

    ProcPool();
    explicit ProcPool(Config config);

    unsigned procs() const { return procs_; }

    /**
     * Runs in the forked worker: produce the result payload for task
     * @p index (attempt numbers start at 1). Throwing SimError out of
     * the function marks the attempt failed (exit 3) and retries —
     * encode expected failures into the payload instead.
     */
    using ChildFn = std::function<std::string(size_t index,
                                              unsigned attempt)>;

    /**
     * Called in the parent as each task reaches its final outcome
     * (success or failure-beyond-retry), in completion order. This is
     * the write-ahead hook: journal the result here and a later kill
     * cannot lose it.
     */
    using ResultHook = std::function<void(size_t index,
                                          const ProcResult &result)>;

    /**
     * Run fn(0..n-1) across the worker processes; blocks until every
     * task has succeeded or permanently failed. Results are
     * slot-indexed, independent of scheduling.
     */
    std::vector<ProcResult> run(size_t n, const ChildFn &fn,
                                const ResultHook &onResult = {});

    /** Counters of the most recent run(). */
    const ProcPoolStats &stats() const { return stats_; }

  private:
    Config config_;
    unsigned procs_;
    ProcPoolStats stats_;
};

} // namespace pubs::sim

#endif // PUBS_SIM_PROC_POOL_HH
