#include "sim/checker.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "isa/isa.hh"

namespace pubs::sim
{

CommitChecker::CommitChecker(const isa::Program &program,
                             size_t historyDepth)
    : emu_(program), historyDepth_(historyDepth == 0 ? 1 : historyDepth)
{
}

void
CommitChecker::remember(const trace::DynInst &di, Cycle cycle)
{
    CommitRecord rec;
    rec.seq = commitsChecked_;
    rec.cycle = cycle;
    rec.pc = di.pc;
    rec.nextPc = di.nextPc;
    rec.effAddr = di.effAddr;
    rec.op = di.op;
    rec.dst = di.dst;
    rec.dstValue = di.dstValue;
    rec.hasDstValue = di.hasDstValue;
    history_.push_back(rec);
    if (history_.size() > historyDepth_)
        history_.pop_front();
}

std::string
CommitChecker::check(const trace::DynInst &committed, Cycle commitCycle)
{
    remember(committed, commitCycle);
    ++commitsChecked_;

    std::ostringstream diag;
    auto mismatch = [&diag](const char *field, uint64_t want,
                            uint64_t got) {
        diag << "  " << field << ": reference 0x" << std::hex << want
             << ", pipeline committed 0x" << got << std::dec << "\n";
    };

    trace::DynInst ref;
    if (!emu_.step(ref)) {
        diag << "  reference emulator already halted after "
             << (commitsChecked_ - 1)
             << " instructions, but the pipeline committed more\n";
    } else {
        if (ref.pc != committed.pc)
            mismatch("pc", ref.pc, committed.pc);
        if (ref.nextPc != committed.nextPc)
            mismatch("next-pc", ref.nextPc, committed.nextPc);
        if (ref.op != committed.op)
            mismatch("opcode", (uint64_t)ref.op, (uint64_t)committed.op);
        if (ref.dst != committed.dst)
            mismatch("dst reg", (uint64_t)(int64_t)ref.dst,
                     (uint64_t)(int64_t)committed.dst);
        if (ref.isMem() && ref.effAddr != committed.effAddr)
            mismatch("effective address", ref.effAddr, committed.effAddr);
        if (ref.isMem() && ref.memSize != committed.memSize)
            mismatch("access size", ref.memSize, committed.memSize);
        if (ref.isCondBranch() && ref.taken != committed.taken)
            mismatch("branch direction", ref.taken, committed.taken);
        // Architectural destination value: only comparable when the
        // committed stream carries one (v0 traces do not).
        if (ref.hasDstValue && committed.hasDstValue &&
            ref.dstValue != committed.dstValue) {
            mismatch("dst value", ref.dstValue, committed.dstValue);
        }
    }

    std::string fields = diag.str();
    if (fields.empty())
        return "";

    ++divergences_;
    std::ostringstream out;
    out << "lockstep checker divergence at commit #"
        << (commitsChecked_ - 1) << " (cycle " << commitCycle << ", "
        << isa::mnemonic(committed.op) << " @ pc 0x" << std::hex
        << committed.pc << std::dec << "):\n"
        << fields << historyDump();
    return out.str();
}

std::string
CommitChecker::historyDump() const
{
    std::ostringstream out;
    out << "last " << history_.size() << " committed instructions "
        << "(oldest first):\n";
    for (const CommitRecord &rec : history_) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  #%-8" PRIu64 " cyc %-8" PRIu64
                      " pc 0x%-10" PRIx64 " %-5s next 0x%-10" PRIx64,
                      (uint64_t)rec.seq, (uint64_t)rec.cycle,
                      (uint64_t)rec.pc, isa::mnemonic(rec.op),
                      (uint64_t)rec.nextPc);
        out << line;
        if (rec.dst != invalidReg && rec.hasDstValue) {
            std::snprintf(line, sizeof(line), " r%d=0x%" PRIx64,
                          (int)rec.dst, rec.dstValue);
            out << line;
        }
        if (rec.effAddr != 0) {
            std::snprintf(line, sizeof(line), " ea 0x%" PRIx64,
                          rec.effAddr);
            out << line;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace pubs::sim
