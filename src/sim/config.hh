/**
 * @file
 * Named machine configurations used throughout the evaluation:
 * base (random-queue IQ), PUBS, AGE (random queue + age matrix) and
 * PUBS+AGE, each at the four Table IV size classes.
 */

#ifndef PUBS_SIM_CONFIG_HH
#define PUBS_SIM_CONFIG_HH

#include "cpu/params.hh"

namespace pubs::sim
{

/** The four machine models compared in Section V. */
enum class Machine
{
    Base,    ///< random queue, no PUBS, no age matrix
    Pubs,    ///< PUBS (Section III) on the random queue
    Age,     ///< random queue + age matrix (Section V-G)
    PubsAge, ///< both
};

const char *machineName(Machine machine);

/** Build the CoreParams for @p machine at @p size. */
cpu::CoreParams makeConfig(Machine machine,
                           cpu::SizeClass size = cpu::SizeClass::Medium);

} // namespace pubs::sim

#endif // PUBS_SIM_CONFIG_HH
