#include "sim/config.hh"

#include "common/logging.hh"

namespace pubs::sim
{

const char *
machineName(Machine machine)
{
    switch (machine) {
      case Machine::Base: return "base";
      case Machine::Pubs: return "pubs";
      case Machine::Age: return "age";
      case Machine::PubsAge: return "pubs+age";
    }
    panic("unknown machine %d", (int)machine);
}

cpu::CoreParams
makeConfig(Machine machine, cpu::SizeClass size)
{
    cpu::CoreParams params = cpu::CoreParams::scaled(size);
    switch (machine) {
      case Machine::Base:
        break;
      case Machine::Pubs:
        params.usePubs = true;
        break;
      case Machine::Age:
        params.ageMatrix = true;
        break;
      case Machine::PubsAge:
        params.usePubs = true;
        params.ageMatrix = true;
        break;
    }
    return params;
}

} // namespace pubs::sim
