#include "sim/run_pool.hh"

#include <exception>

namespace pubs::sim
{

unsigned
RunPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

RunPool::RunPool(unsigned threads)
    : start_(std::chrono::steady_clock::now())
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < threads; ++i)
        workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
}

RunPool::~RunPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(signal_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker->thread.join();
}

void
RunPool::submit(std::function<void()> task)
{
    // Round-robin placement spreads the initial batch evenly; stealing
    // rebalances once run times diverge.
    unsigned home = (unsigned)(nextWorker_.fetch_add(
                        1, std::memory_order_relaxed) %
                    workers_.size());
    {
        std::lock_guard<std::mutex> lock(workers_[home]->mutex);
        workers_[home]->deque.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(signal_);
        ++queued_;
        ++pending_;
    }
    workCv_.notify_one();
}

bool
RunPool::takeTask(unsigned self, std::function<void()> &task)
{
    // Own deque first, newest task (LIFO: best locality).
    {
        Worker &mine = *workers_[self];
        std::lock_guard<std::mutex> lock(mine.mutex);
        if (!mine.deque.empty()) {
            task = std::move(mine.deque.back());
            mine.deque.pop_back();
            return true;
        }
    }
    // Steal the oldest task of the busiest sibling (FIFO steal).
    for (size_t k = 1; k < workers_.size(); ++k) {
        Worker &victim = *workers_[(self + k) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.deque.empty()) {
            task = std::move(victim.deque.front());
            victim.deque.pop_front();
            tasksStolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
RunPool::runTask(std::function<void()> &task)
{
    auto begin = std::chrono::steady_clock::now();
    try {
        task();
    } catch (const std::exception &error) {
        tasksFailed_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (firstError_.empty())
            firstError_ = error.what();
    } catch (...) {
        tasksFailed_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (firstError_.empty())
            firstError_ = "unknown exception in pool task";
    }
    auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - begin);
    busyNanos_.fetch_add((uint64_t)nanos.count(),
                         std::memory_order_relaxed);
    tasksRun_.fetch_add(1, std::memory_order_relaxed);
}

void
RunPool::workerLoop(unsigned self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(signal_);
            workCv_.wait(lock, [this] { return stop_ || queued_ > 0; });
            if (queued_ == 0) // stop_ and fully drained
                return;
            --queued_; // reserve one task; it is guaranteed to exist
        }
        std::function<void()> task;
        // takeTask can only fail transiently (submit publishes the
        // queued_ count after pushing the task), so a retry always
        // terminates; in practice the first probe succeeds.
        while (!takeTask(self, task))
            std::this_thread::yield();
        runTask(task);
        {
            std::lock_guard<std::mutex> lock(signal_);
            if (--pending_ == 0)
                idleCv_.notify_all();
        }
    }
}

void
RunPool::wait()
{
    std::unique_lock<std::mutex> lock(signal_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
}

PoolStats
RunPool::stats() const
{
    PoolStats s;
    s.threads = threads();
    s.tasksRun = tasksRun_.load(std::memory_order_relaxed);
    s.tasksStolen = tasksStolen_.load(std::memory_order_relaxed);
    s.tasksFailed = tasksFailed_.load(std::memory_order_relaxed);
    s.busySeconds =
        (double)busyNanos_.load(std::memory_order_relaxed) * 1e-9;
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start_;
    s.wallSeconds = wall.count();
    return s;
}

std::string
RunPool::firstError() const
{
    std::lock_guard<std::mutex> lock(errorMutex_);
    return firstError_;
}

void
parallelFor(RunPool &pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace pubs::sim
