/**
 * @file
 * Branch-prediction confidence estimation counters
 * [Jacobsen, Rotenberg & Smith, MICRO'96].
 *
 * The paper uses *resetting* counters: increment on a correct prediction
 * (saturating), reset to zero on a misprediction; confidence is asserted
 * only at the maximum count. An up/down (saturating both ways) variant is
 * provided for the ablation bench.
 */

#ifndef PUBS_BRANCH_CONFIDENCE_HH
#define PUBS_BRANCH_CONFIDENCE_HH

#include <cstdint>

#include "common/logging.hh"

namespace pubs::branch
{

/** The JRS saturating resetting counter. */
class ResettingCounter
{
  public:
    explicit ResettingCounter(unsigned bits = 6)
        : max_((1u << bits) - 1)
    {
        panic_if(bits == 0 || bits > 16, "bad confidence counter width");
    }

    /** Initialise per the paper: max if first outcome correct, else 0. */
    void
    initialise(bool correct)
    {
        value_ = correct ? max_ : 0;
    }

    void
    update(bool correct)
    {
        if (correct) {
            if (value_ < max_)
                ++value_;
        } else {
            value_ = 0;
        }
    }

    /** Confident only when saturated at the maximum. */
    bool confident() const { return value_ == max_; }

    uint32_t value() const { return value_; }
    uint32_t max() const { return max_; }

  private:
    uint32_t max_;
    uint32_t value_ = 0;
};

/** Up/down saturating counter variant (ablation). */
class UpDownCounter
{
  public:
    explicit UpDownCounter(unsigned bits = 6) : max_((1u << bits) - 1) {}

    void initialise(bool correct) { value_ = correct ? max_ : 0; }

    void
    update(bool correct)
    {
        if (correct && value_ < max_)
            ++value_;
        else if (!correct && value_ > 0)
            --value_;
    }

    bool confident() const { return value_ == max_; }
    uint32_t value() const { return value_; }

  private:
    uint32_t max_;
    uint32_t value_ = 0;
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_CONFIDENCE_HH
