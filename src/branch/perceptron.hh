/**
 * @file
 * The perceptron branch predictor [Jiménez & Lin, HPCA'01], which the
 * paper adopts because AMD Zen disclosed using one. Default configuration
 * matches Table I: 34-bit global history, 256-entry weight table. The
 * enlarged configuration of Fig. 13 uses 36-bit history and 512 entries.
 */

#ifndef PUBS_BRANCH_PERCEPTRON_HH
#define PUBS_BRANCH_PERCEPTRON_HH

#include <vector>

#include "branch/predictor.hh"

namespace pubs::branch
{

class Perceptron : public BranchPredictor
{
  public:
    /**
     * @param historyBits length of the global history (number of inputs).
     * @param tableEntries number of perceptrons (power of two).
     */
    Perceptron(unsigned historyBits, unsigned tableEntries);

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    uint64_t costBits() const override;
    const char *name() const override { return "perceptron"; }

    /** The predict/update memo is a pure cache and is not serialized. */
    void serialize(Serializer &s) const override;
    void unserialize(Deserializer &d) override;

    unsigned historyBits() const { return historyBits_; }
    unsigned tableEntries() const { return tableEntries_; }

    /** Training threshold theta = floor(1.93 h + 14) per the HPCA paper. */
    int threshold() const { return threshold_; }

  private:
    using Weight = int16_t; // stored 8-bit semantics, wider for safety

    static constexpr int weightBits = 8;
    static constexpr int weightMax = 127;
    static constexpr int weightMin = -128;

    size_t indexOf(Pc pc) const;
    int dot(size_t index) const;

    unsigned historyBits_;
    unsigned tableEntries_;
    int threshold_;
    uint64_t history_ = 0; ///< bit i = outcome of the i-th most recent
    std::vector<Weight> weights_; ///< tableEntries x (historyBits + 1)

    /**
     * Memo of the last dot() evaluation. The pipeline calls predict(pc)
     * immediately followed by update(pc, taken); as long as neither the
     * history nor any weight changed in between, update() can reuse the
     * sum instead of recomputing the identical product.
     */
    size_t memoIndex_ = 0;
    uint64_t memoHistory_ = 0;
    int memoY_ = 0;
    bool memoValid_ = false;
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_PERCEPTRON_HH
