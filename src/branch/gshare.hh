/**
 * @file
 * Classic gshare predictor: 2-bit saturating counters indexed by
 * PC xor global-history. Used by the paper's footnote as a cross-check
 * predictor; also a handy fast baseline for tests.
 */

#ifndef PUBS_BRANCH_GSHARE_HH
#define PUBS_BRANCH_GSHARE_HH

#include <vector>

#include "branch/predictor.hh"

namespace pubs::branch
{

class Gshare : public BranchPredictor
{
  public:
    /** @param indexBits log2 of the counter-table size. */
    explicit Gshare(unsigned indexBits);

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    uint64_t costBits() const override;
    const char *name() const override { return "gshare"; }

    void serialize(Serializer &s) const override;
    void unserialize(Deserializer &d) override;

  private:
    size_t indexOf(Pc pc) const;

    unsigned indexBits_;
    uint64_t history_ = 0;
    std::vector<uint8_t> counters_; ///< 2-bit, initialised weakly taken
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_GSHARE_HH
