#include "branch/btb.hh"

#include "common/bits.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::branch
{

Btb::Btb(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_((size_t)sets * ways)
{
    fatal_if(!isPowerOf2(sets), "BTB sets must be a power of two");
    fatal_if(ways == 0, "BTB needs at least one way");
}

size_t
Btb::setOf(Pc pc) const
{
    return (pc / instBytes) & (sets_ - 1);
}

uint64_t
Btb::tagOf(Pc pc) const
{
    return (pc / instBytes) / sets_;
}

std::optional<Pc>
Btb::lookup(Pc pc)
{
    size_t base = setOf(pc) * ways_;
    uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == tag) {
            e.lastUse = ++useClock_;
            ++hits_;
            return e.target;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Btb::update(Pc pc, Pc target)
{
    size_t base = setOf(pc) * ways_;
    uint64_t tag = tagOf(pc);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = ++useClock_;
            return;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lastUse < victim->lastUse)) {
            if (!victim || victim->valid)
                victim = &e;
        }
    }
    *victim = {true, tag, target, ++useClock_};
}

uint64_t
Btb::costBits() const
{
    // Per entry: valid + tag (model 20 bits) + target (48 bits).
    return (uint64_t)sets_ * ways_ * (1 + 20 + 48);
}

void
Btb::serialize(Serializer &s) const
{
    s.beginObject("btb");
    s.u32(sets_);
    s.u32(ways_);
    s.u64(useClock_);
    s.u64(hits_);
    s.u64(misses_);
    for (const Entry &e : entries_) {
        s.boolean(e.valid);
        s.u64(e.tag);
        s.u64(e.target);
        s.u64(e.lastUse);
    }
    s.endObject("btb");
}

void
Btb::unserialize(Deserializer &d)
{
    d.beginObject("btb");
    uint32_t sets = d.u32(), ways = d.u32();
    if (sets != sets_ || ways != ways_) {
        throw CheckpointError("checkpoint BTB is " + std::to_string(sets) +
                              "x" + std::to_string(ways) + ", expected " +
                              std::to_string(sets_) + "x" +
                              std::to_string(ways_));
    }
    useClock_ = d.u64();
    hits_ = d.u64();
    misses_ = d.u64();
    for (Entry &e : entries_) {
        e.valid = d.boolean();
        e.tag = d.u64();
        e.target = d.u64();
        e.lastUse = d.u64();
    }
    d.endObject("btb");
}

} // namespace pubs::branch
