#include "branch/tournament.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace pubs::branch
{

Tournament::Tournament(unsigned localHistBits, unsigned localEntries,
                       unsigned globalBits)
    : localHistBits_(localHistBits),
      localEntriesLog2_(localEntries),
      globalBits_(globalBits),
      localHistory_((size_t)1 << localEntries, 0),
      localCounters_((size_t)1 << localHistBits, 4),
      globalCounters_((size_t)1 << globalBits, 2),
      chooser_((size_t)1 << globalBits, 2)
{
    fatal_if(localHistBits > 16, "local history too long");
}

bool
Tournament::predict(Pc pc)
{
    size_t lhIdx = (pc / instBytes) & mask(localEntriesLog2_);
    uint16_t lh = localHistory_[lhIdx] & (uint16_t)mask(localHistBits_);
    bool localPred = localCounters_[lh] >= 4;
    size_t gIdx = globalHistory_ & mask(globalBits_);
    bool globalPred = globalCounters_[gIdx] >= 2;
    bool useGlobal = chooser_[gIdx] >= 2;
    return useGlobal ? globalPred : localPred;
}

void
Tournament::update(Pc pc, bool taken)
{
    size_t lhIdx = (pc / instBytes) & mask(localEntriesLog2_);
    uint16_t lh = localHistory_[lhIdx] & (uint16_t)mask(localHistBits_);
    size_t gIdx = globalHistory_ & mask(globalBits_);

    bool localPred = localCounters_[lh] >= 4;
    bool globalPred = globalCounters_[gIdx] >= 2;

    // Chooser trains toward whichever component was right (if they
    // disagreed).
    if (localPred != globalPred) {
        uint8_t &ch = chooser_[gIdx];
        if (globalPred == taken && ch < 3)
            ++ch;
        else if (localPred == taken && ch > 0)
            --ch;
    }

    // Local counters are 3-bit.
    uint8_t &lc = localCounters_[lh];
    if (taken && lc < 7)
        ++lc;
    else if (!taken && lc > 0)
        --lc;

    uint8_t &gc = globalCounters_[gIdx];
    if (taken && gc < 3)
        ++gc;
    else if (!taken && gc > 0)
        --gc;

    localHistory_[lhIdx] =
        (uint16_t)(((lh << 1) | (taken ? 1 : 0)) & mask(localHistBits_));
    globalHistory_ =
        ((globalHistory_ << 1) | (taken ? 1 : 0)) & mask(globalBits_);
}

uint64_t
Tournament::costBits() const
{
    return localHistory_.size() * localHistBits_ +
           localCounters_.size() * 3 + globalCounters_.size() * 2 +
           chooser_.size() * 2 + globalBits_;
}

void
Tournament::serialize(Serializer &s) const
{
    s.beginObject("tournament");
    s.u64(globalHistory_);
    writeTable(s, localHistory_);
    writeTable(s, localCounters_);
    writeTable(s, globalCounters_);
    writeTable(s, chooser_);
    s.endObject("tournament");
}

void
Tournament::unserialize(Deserializer &d)
{
    d.beginObject("tournament");
    globalHistory_ = d.u64();
    readTable(d, localHistory_, "tournament local history");
    readTable(d, localCounters_, "tournament local counters");
    readTable(d, globalCounters_, "tournament global counters");
    readTable(d, chooser_, "tournament chooser");
    d.endObject("tournament");
}

} // namespace pubs::branch
