#include "branch/predictor.hh"

#include "branch/bimode.hh"
#include "branch/gshare.hh"
#include "branch/perceptron.hh"
#include "branch/tournament.hh"
#include "common/logging.hh"

namespace pubs::branch
{

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Perceptron:
        // Table I: 34-bit history, 256-entry weight table.
        return std::make_unique<Perceptron>(34, 256);
      case PredictorKind::PerceptronLarge:
        // Section V-F: 36-bit history, 512-entry weight table.
        return std::make_unique<Perceptron>(36, 512);
      case PredictorKind::Gshare:
        return std::make_unique<Gshare>(14);
      case PredictorKind::Bimode:
        return std::make_unique<Bimode>(12, 13);
      case PredictorKind::Tournament:
        return std::make_unique<Tournament>(10, 10, 13);
      case PredictorKind::AlwaysTaken:
        return std::make_unique<StaticPredictor>(true);
    }
    panic("unknown predictor kind %d", (int)kind);
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Perceptron: return "perceptron";
      case PredictorKind::PerceptronLarge: return "perceptron-large";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::Bimode: return "bimode";
      case PredictorKind::Tournament: return "tournament";
      case PredictorKind::AlwaysTaken: return "always-taken";
    }
    panic("unknown predictor kind %d", (int)kind);
}

} // namespace pubs::branch
