// confidence.hh is header-only; this translation unit exists so the build
// exposes a place for future out-of-line confidence estimators.
#include "branch/confidence.hh"
