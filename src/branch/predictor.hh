/**
 * @file
 * Conditional-branch direction predictors. All predictors share a simple
 * trace-driven protocol: predict(pc) then update(pc, taken). History is
 * updated with the actual outcome inside update(), which models perfect
 * history repair after a misprediction (the standard trace-driven
 * simplification; fetch resumes on the correct path in our redirect
 * model, so the repaired history is what the hardware would hold).
 */

#ifndef PUBS_BRANCH_PREDICTOR_HH
#define PUBS_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::branch
{

class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction of the conditional branch at @p pc. */
    virtual bool predict(Pc pc) = 0;

    /** Train with the actual outcome (also advances global history). */
    virtual void update(Pc pc, bool taken) = 0;

    /** Storage cost in bits (for Table III-style accounting). */
    virtual uint64_t costBits() const = 0;

    virtual const char *name() const = 0;

    /**
     * Checkpoint the warm tables and history. Default: stateless
     * (StaticPredictor). Implementations must guard their geometry so
     * restoring into a differently-sized predictor fails loudly.
     */
    virtual void serialize(Serializer &) const {}
    virtual void unserialize(Deserializer &) {}

    /** Cost in kilobytes. */
    double costKB() const { return (double)costBits() / 8.0 / 1024.0; }
};

/** Always-taken / always-not-taken (baseline for tests). */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(bool taken) : taken_(taken) {}

    bool predict(Pc) override { return taken_; }
    void update(Pc, bool) override {}
    uint64_t costBits() const override { return 0; }
    const char *name() const override { return "static"; }

  private:
    bool taken_;
};

/** Named predictor kinds understood by makePredictor(). */
enum class PredictorKind
{
    Perceptron,       ///< paper default: 34-bit history, 256 weights
    PerceptronLarge,  ///< Fig. 13: 36-bit history, 512 weights
    Gshare,
    Bimode,
    Tournament,
    AlwaysTaken,
};

/** Factory for the predictor configurations used in the evaluation. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind);

const char *predictorKindName(PredictorKind kind);

} // namespace pubs::branch

#endif // PUBS_BRANCH_PREDICTOR_HH
