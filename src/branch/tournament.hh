/**
 * @file
 * Alpha 21264-style tournament predictor: per-branch local history feeding
 * a local table, a global-history table, and a chooser trained on which
 * component was right.
 */

#ifndef PUBS_BRANCH_TOURNAMENT_HH
#define PUBS_BRANCH_TOURNAMENT_HH

#include <vector>

#include "branch/predictor.hh"

namespace pubs::branch
{

class Tournament : public BranchPredictor
{
  public:
    /**
     * @param localHistBits bits of per-branch local history.
     * @param localEntries log2 of the local-history and local-counter
     *        table sizes.
     * @param globalBits log2 of the global and chooser table sizes.
     */
    Tournament(unsigned localHistBits, unsigned localEntries,
               unsigned globalBits);

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    uint64_t costBits() const override;
    const char *name() const override { return "tournament"; }

    void serialize(Serializer &s) const override;
    void unserialize(Deserializer &d) override;

  private:
    unsigned localHistBits_;
    unsigned localEntriesLog2_;
    unsigned globalBits_;
    uint64_t globalHistory_ = 0;
    std::vector<uint16_t> localHistory_;
    std::vector<uint8_t> localCounters_;  ///< 3-bit
    std::vector<uint8_t> globalCounters_; ///< 2-bit
    std::vector<uint8_t> chooser_;        ///< 2-bit: >=2 prefers global
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_TOURNAMENT_HH
