#include "branch/ras.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::branch
{

Ras::Ras(unsigned depth) : stack_(depth, 0)
{
    fatal_if(depth == 0, "RAS needs at least one entry");
}

void
Ras::push(Pc returnPc)
{
    stack_[top_] = returnPc;
    top_ = (top_ + 1) % stack_.size();
    if (size_ < stack_.size())
        ++size_;
}

Pc
Ras::pop()
{
    if (size_ == 0)
        return 0;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --size_;
    return stack_[top_];
}

void
Ras::serialize(Serializer &s) const
{
    s.beginObject("ras");
    s.u32(top_);
    s.u32(size_);
    writeTable(s, stack_);
    s.endObject("ras");
}

void
Ras::unserialize(Deserializer &d)
{
    d.beginObject("ras");
    top_ = d.u32();
    size_ = d.u32();
    if (top_ >= stack_.size() || size_ > stack_.size())
        throw CheckpointError("checkpoint RAS indices out of range");
    readTable(d, stack_, "ras stack");
    d.endObject("ras");
}

} // namespace pubs::branch
