/**
 * @file
 * Bi-mode predictor [Lee, Chen, Mudge, MICRO'97]: a choice table selects
 * between a taken-biased and a not-taken-biased direction table, reducing
 * destructive aliasing.
 */

#ifndef PUBS_BRANCH_BIMODE_HH
#define PUBS_BRANCH_BIMODE_HH

#include <vector>

#include "branch/predictor.hh"

namespace pubs::branch
{

class Bimode : public BranchPredictor
{
  public:
    /**
     * @param choiceBits log2 size of the PC-indexed choice table.
     * @param directionBits log2 size of each gshare-indexed direction
     *        table.
     */
    Bimode(unsigned choiceBits, unsigned directionBits);

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    uint64_t costBits() const override;
    const char *name() const override { return "bimode"; }

    void serialize(Serializer &s) const override;
    void unserialize(Deserializer &d) override;

  private:
    size_t choiceIndex(Pc pc) const;
    size_t directionIndex(Pc pc) const;

    unsigned choiceBits_;
    unsigned directionBits_;
    uint64_t history_ = 0;
    std::vector<uint8_t> choice_;   ///< 2-bit: selects bank
    std::vector<uint8_t> takenBank_;
    std::vector<uint8_t> notTakenBank_;
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_BIMODE_HH
