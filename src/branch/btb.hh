/**
 * @file
 * Branch target buffer: set-associative, LRU, tagged with the upper PC
 * bits. Table I: 2K sets, 4 ways.
 */

#ifndef PUBS_BRANCH_BTB_HH
#define PUBS_BRANCH_BTB_HH

#include <optional>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::branch
{

class Btb
{
  public:
    Btb(unsigned sets, unsigned ways);

    /** Predicted target of the branch at @p pc, if present. */
    std::optional<Pc> lookup(Pc pc);

    /** Install / refresh the mapping pc -> target. */
    void update(Pc pc, Pc target);

    uint64_t costBits() const;

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        Pc target = 0;
        uint64_t lastUse = 0;
    };

    size_t setOf(Pc pc) const;
    uint64_t tagOf(Pc pc) const;

    unsigned sets_;
    unsigned ways_;
    uint64_t useClock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    std::vector<Entry> entries_; ///< sets x ways, row-major
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_BTB_HH
