#include "branch/gshare.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace pubs::branch
{

Gshare::Gshare(unsigned indexBits)
    : indexBits_(indexBits), counters_((size_t)1 << indexBits, 2)
{
    fatal_if(indexBits == 0 || indexBits > 30, "bad gshare index bits");
}

size_t
Gshare::indexOf(Pc pc) const
{
    return ((pc / instBytes) ^ history_) & mask(indexBits_);
}

bool
Gshare::predict(Pc pc)
{
    return counters_[indexOf(pc)] >= 2;
}

void
Gshare::update(Pc pc, bool taken)
{
    uint8_t &ctr = counters_[indexOf(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask(indexBits_);
}

uint64_t
Gshare::costBits() const
{
    return counters_.size() * 2 + indexBits_;
}

void
Gshare::serialize(Serializer &s) const
{
    s.beginObject("gshare");
    s.u64(history_);
    writeTable(s, counters_);
    s.endObject("gshare");
}

void
Gshare::unserialize(Deserializer &d)
{
    d.beginObject("gshare");
    history_ = d.u64();
    readTable(d, counters_, "gshare counters");
    d.endObject("gshare");
}

} // namespace pubs::branch
