#include "branch/perceptron.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace pubs::branch
{

Perceptron::Perceptron(unsigned historyBits, unsigned tableEntries)
    : historyBits_(historyBits),
      tableEntries_(tableEntries),
      threshold_((int)std::floor(1.93 * historyBits + 14)),
      weights_((size_t)tableEntries * (historyBits + 1), 0)
{
    fatal_if(historyBits == 0 || historyBits > 63,
             "perceptron history must be 1..63 bits");
    fatal_if(!isPowerOf2(tableEntries),
             "perceptron table size must be a power of two");
}

size_t
Perceptron::indexOf(Pc pc) const
{
    return (pc / instBytes) & (tableEntries_ - 1);
}

int
Perceptron::dot(size_t index) const
{
    // The history kernel lives in common/simd.hh (vectorised when
    // PUBS_SIMD is on, bit-identical scalar fallback otherwise);
    // weights are clamped to [-128, 127] and historyBits_ <= 63, the
    // kernel's no-overflow precondition.
    const Weight *w = &weights_[index * (historyBits_ + 1)];
    return (int)w[0] + simd::perceptronDot(w + 1, historyBits_, history_);
}

bool
Perceptron::predict(Pc pc)
{
    size_t index = indexOf(pc);
    int y = dot(index);
    memoIndex_ = index;
    memoHistory_ = history_;
    memoY_ = y;
    memoValid_ = true;
    return y >= 0;
}

void
Perceptron::update(Pc pc, bool taken)
{
    size_t index = indexOf(pc);
    int y = memoValid_ && memoIndex_ == index && memoHistory_ == history_
                ? memoY_
                : dot(index);
    memoValid_ = false; // the weights or history change below
    bool predicted = y >= 0;

    if (predicted != taken || std::abs(y) <= threshold_) {
        Weight *w = &weights_[index * (historyBits_ + 1)];
        int t = taken ? 1 : -1;
        auto clamp = [](int v) {
            return (Weight)std::min(weightMax, std::max(weightMin, v));
        };
        w[0] = clamp(w[0] + t);
        for (unsigned i = 0; i < historyBits_; ++i) {
            bool h = (history_ >> i) & 1;
            int x = h ? 1 : -1;
            w[i + 1] = clamp(w[i + 1] + t * x);
        }
    }

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask(historyBits_);
}

uint64_t
Perceptron::costBits() const
{
    return (uint64_t)tableEntries_ * (historyBits_ + 1) * weightBits +
           historyBits_;
}

void
Perceptron::serialize(Serializer &s) const
{
    s.beginObject("perceptron");
    s.u64(history_);
    writeTable(s, weights_);
    s.endObject("perceptron");
}

void
Perceptron::unserialize(Deserializer &d)
{
    d.beginObject("perceptron");
    history_ = d.u64();
    readTable(d, weights_, "perceptron weights");
    memoValid_ = false;
    d.endObject("perceptron");
}

} // namespace pubs::branch
