#include "branch/bimode.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace pubs::branch
{

Bimode::Bimode(unsigned choiceBits, unsigned directionBits)
    : choiceBits_(choiceBits),
      directionBits_(directionBits),
      choice_((size_t)1 << choiceBits, 2),
      takenBank_((size_t)1 << directionBits, 2),
      notTakenBank_((size_t)1 << directionBits, 1)
{
    fatal_if(choiceBits == 0 || directionBits == 0, "bad bimode sizes");
}

size_t
Bimode::choiceIndex(Pc pc) const
{
    return (pc / instBytes) & mask(choiceBits_);
}

size_t
Bimode::directionIndex(Pc pc) const
{
    return ((pc / instBytes) ^ history_) & mask(directionBits_);
}

bool
Bimode::predict(Pc pc)
{
    bool useTakenBank = choice_[choiceIndex(pc)] >= 2;
    const auto &bank = useTakenBank ? takenBank_ : notTakenBank_;
    return bank[directionIndex(pc)] >= 2;
}

void
Bimode::update(Pc pc, bool taken)
{
    size_t ci = choiceIndex(pc);
    size_t di = directionIndex(pc);
    bool useTakenBank = choice_[ci] >= 2;
    auto &bank = useTakenBank ? takenBank_ : notTakenBank_;
    bool banksPrediction = bank[di] >= 2;

    // Direction bank: always trained with the outcome.
    uint8_t &ctr = bank[di];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    // Choice table: trained unless the selected bank was correct while
    // the choice "disagreed" with the outcome (the classic partial-update
    // rule).
    if (!(banksPrediction == taken && useTakenBank != taken)) {
        uint8_t &ch = choice_[ci];
        if (taken && ch < 3)
            ++ch;
        else if (!taken && ch > 0)
            --ch;
    }

    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask(directionBits_);
}

uint64_t
Bimode::costBits() const
{
    return choice_.size() * 2 + takenBank_.size() * 2 +
           notTakenBank_.size() * 2 + directionBits_;
}

void
Bimode::serialize(Serializer &s) const
{
    s.beginObject("bimode");
    s.u64(history_);
    writeTable(s, choice_);
    writeTable(s, takenBank_);
    writeTable(s, notTakenBank_);
    s.endObject("bimode");
}

void
Bimode::unserialize(Deserializer &d)
{
    d.beginObject("bimode");
    history_ = d.u64();
    readTable(d, choice_, "bimode choice");
    readTable(d, takenBank_, "bimode taken bank");
    readTable(d, notTakenBank_, "bimode not-taken bank");
    d.endObject("bimode");
}

} // namespace pubs::branch
