/**
 * @file
 * Return-address stack. Calls (jal) push the return PC; indirect jumps
 * (jr) pop a predicted return target.
 */

#ifndef PUBS_BRANCH_RAS_HH
#define PUBS_BRANCH_RAS_HH

#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace pubs::branch
{

class Ras
{
  public:
    explicit Ras(unsigned depth);

    void push(Pc returnPc);

    /** Pop a prediction; returns 0 when empty. */
    Pc pop();

    bool empty() const { return size_ == 0; }
    unsigned size() const { return size_; }
    unsigned depth() const { return (unsigned)stack_.size(); }

    void serialize(Serializer &s) const;
    void unserialize(Deserializer &d);

  private:
    std::vector<Pc> stack_;
    unsigned top_ = 0;  ///< index of the next free slot (circular)
    unsigned size_ = 0;
};

} // namespace pubs::branch

#endif // PUBS_BRANCH_RAS_HH
