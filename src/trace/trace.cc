#include "trace/trace.hh"

#include <cerrno>
#include <cstring>

#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::trace
{

namespace
{

// On-disk record layouts (little-endian, packed by hand for portability).
// v1 extends v0's 40 bytes with the 8-byte architectural destination
// value; byte 33 holds a flags byte (bit 0 = dstValue present), bytes
// 34..39 stay reserved and must be zero in both formats.
constexpr size_t recordBytesV0 = 40;
constexpr size_t recordBytesV1 = 48;
constexpr size_t headerBytesV0 = 16;
constexpr size_t headerBytesV1 = 32;
constexpr uint8_t flagHasDstValue = 0x01;

void
pack64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

uint64_t
unpack64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)in[i] << (8 * i);
    return v;
}

void
pack32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

uint32_t
unpack32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)in[i] << (8 * i);
    return v;
}

void
pack16(uint8_t *out, uint16_t v)
{
    out[0] = v & 0xff;
    out[1] = (v >> 8) & 0xff;
}

uint16_t
unpack16(const uint8_t *in)
{
    return (uint16_t)(in[0] | (in[1] << 8));
}

[[noreturn]] void
traceFail(const std::string &path, const std::string &what)
{
    throw TraceError("trace file '" + path + "': " + what);
}

/** Size of @p file in bytes via seek-to-end (position is restored). */
long
fileSize(std::FILE *file)
{
    long pos = std::ftell(file);
    if (pos < 0 || std::fseek(file, 0, SEEK_END) != 0)
        return -1;
    long size = std::ftell(file);
    if (std::fseek(file, pos, SEEK_SET) != 0)
        return -1;
    return size;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        traceFail(path_, std::string("cannot open for writing: ") +
                             std::strerror(errno));
    // v1 header: magic + version + record size + count placeholder +
    // reserved. The count is patched in close().
    uint8_t header[headerBytesV1] = {};
    std::memcpy(header, traceMagic, sizeof(traceMagic));
    pack32(header + 8, traceFormatVersion);
    pack32(header + 12, (uint32_t)recordBytesV1);
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
        std::fclose(file_);
        file_ = nullptr;
        traceFail(path_, "short write of trace header");
    }
}

TraceWriter::~TraceWriter()
{
    if (!file_)
        return;
    // Destructors must not throw; a failing implicit close degrades to a
    // warning. Call close() explicitly to get the error.
    try {
        close();
    } catch (const SimError &e) {
        warn("%s", e.what());
    }
}

void
TraceWriter::write(const DynInst &inst)
{
    panic_if(!file_, "write after close");
    uint8_t rec[recordBytesV1] = {};
    pack64(rec + 0, inst.pc);
    pack64(rec + 8, inst.nextPc);
    pack64(rec + 16, inst.effAddr);
    rec[24] = (uint8_t)inst.op;
    pack16(rec + 25, (uint16_t)inst.dst);
    pack16(rec + 27, (uint16_t)inst.src1);
    pack16(rec + 29, (uint16_t)inst.src2);
    rec[31] = inst.memSize;
    rec[32] = inst.taken ? 1 : 0;
    rec[33] = inst.hasDstValue ? flagHasDstValue : 0;
    // Bytes 34..39 reserved (zero).
    pack64(rec + 40, inst.dstValue);
    size_t n = std::fwrite(rec, 1, recordBytesV1, file_);
    if (n != recordBytesV1)
        traceFail(path_, "short write of trace record (disk full?)");
    ++count_;
}

void
TraceWriter::close()
{
    panic_if(!file_, "double close");
    std::FILE *file = file_;
    file_ = nullptr; // never retry a failing close

    // Patch the record count into the header.
    uint8_t countBytes[8];
    pack64(countBytes, count_);
    if (std::fseek(file, 16, SEEK_SET) != 0) {
        std::fclose(file);
        traceFail(path_, std::string("cannot seek to header: ") +
                             std::strerror(errno));
    }
    if (std::fwrite(countBytes, 1, sizeof(countBytes), file) !=
        sizeof(countBytes)) {
        std::fclose(file);
        traceFail(path_, "cannot patch record count into header "
                         "(disk full?)");
    }
    if (std::fclose(file) != 0) {
        traceFail(path_, std::string("close failed, contents not "
                                     "durable: ") +
                             std::strerror(errno));
    }
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        traceFail(path_,
                  std::string("cannot open: ") + std::strerror(errno));

    char magic[sizeof(traceMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic))
        traceFail(path_, "too short to hold a trace header");

    size_t headerBytes;
    if (std::memcmp(magic, traceMagic, sizeof(magic)) == 0) {
        // Current format: version, record size, count, reserved.
        uint8_t rest[headerBytesV1 - sizeof(traceMagic)];
        if (std::fread(rest, 1, sizeof(rest), file_) != sizeof(rest))
            traceFail(path_, "truncated v1 trace header");
        version_ = unpack32(rest + 0);
        if (version_ != traceFormatVersion)
            traceFail(path_, "unsupported trace format version " +
                                 std::to_string(version_) +
                                 " (this build reads versions 0 and " +
                                 std::to_string(traceFormatVersion) + ")");
        recordBytes_ = unpack32(rest + 4);
        if (recordBytes_ != recordBytesV1)
            traceFail(path_, "v1 header declares " +
                                 std::to_string(recordBytes_) +
                                 "-byte records, expected " +
                                 std::to_string(recordBytesV1));
        total_ = unpack64(rest + 8);
        if (unpack64(rest + 16) != 0)
            traceFail(path_, "nonzero reserved bytes in header "
                             "(corrupt or written by a newer tool)");
        headerBytes = headerBytesV1;
    } else if (std::memcmp(magic, traceMagicV0, sizeof(magic)) == 0) {
        // Legacy format: just the record count.
        uint8_t countBytes[8];
        if (std::fread(countBytes, 1, 8, file_) != 8)
            traceFail(path_, "truncated v0 trace header");
        version_ = 0;
        recordBytes_ = recordBytesV0;
        total_ = unpack64(countBytes);
        headerBytes = headerBytesV0;
    } else {
        traceFail(path_, "not a PUBS trace file (bad magic)");
    }

    // A bit-flipped count could make total_ * recordBytes_ wrap and
    // collide with the real file size; reject it before the multiply.
    if (total_ > (UINT64_MAX - headerBytes) / recordBytes_)
        traceFail(path_, "implausible record count " +
                             std::to_string(total_) + " (corrupt header)");

    // The header's record count must agree with what is actually on
    // disk; a mismatch means a truncated copy or an unfinalised writer.
    long size = fileSize(file_);
    if (size >= 0) {
        uint64_t expected = headerBytes + total_ * recordBytes_;
        if ((uint64_t)size != expected)
            traceFail(path_, "header promises " + std::to_string(total_) +
                                 " records (" + std::to_string(expected) +
                                 " bytes) but the file holds " +
                                 std::to_string(size) + " bytes");
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynInst &out)
{
    if (read_ >= total_)
        return false;
    uint8_t rec[recordBytesV1] = {};
    size_t n = std::fread(rec, 1, recordBytes_, file_);
    if (n != recordBytes_)
        traceFail(path_, "truncated record " + std::to_string(read_) +
                             " of " + std::to_string(total_));
    if (rec[24] >= (uint8_t)isa::Opcode::NumOpcodes)
        traceFail(path_, "corrupt opcode " + std::to_string(rec[24]) +
                             " in record " + std::to_string(read_));
    // Byte 33 is the v1 flags byte; in v0 it is reserved like 34..39.
    for (size_t i = version_ >= 1 ? 34 : 33; i < 40; ++i) {
        if (rec[i] != 0)
            traceFail(path_, "nonzero reserved byte " + std::to_string(i) +
                                 " in record " + std::to_string(read_) +
                                 " (corrupt or written by a newer tool)");
    }
    out = DynInst{};
    out.seq = read_;
    out.pc = unpack64(rec + 0);
    out.nextPc = unpack64(rec + 8);
    out.effAddr = unpack64(rec + 16);
    out.op = (isa::Opcode)rec[24];
    out.dst = (RegId)unpack16(rec + 25);
    out.src1 = (RegId)unpack16(rec + 27);
    out.src2 = (RegId)unpack16(rec + 29);
    out.memSize = rec[31];
    out.taken = rec[32] != 0;
    if (version_ >= 1) {
        out.hasDstValue = (rec[33] & flagHasDstValue) != 0;
        out.dstValue = unpack64(rec + 40);
        if ((rec[33] & ~flagHasDstValue) != 0)
            traceFail(path_, "unknown flag bits 0x" +
                                 std::to_string(rec[33]) + " in record " +
                                 std::to_string(read_));
    }
    ++read_;
    return true;
}

} // namespace pubs::trace
