#include "trace/trace.hh"

#include <cstring>

#include "common/logging.hh"

namespace pubs::trace
{

namespace
{

// On-disk record layout (little-endian, packed by hand for portability).
constexpr size_t recordBytes = 40;

void
pack64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = (v >> (8 * i)) & 0xff;
}

uint64_t
unpack64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)in[i] << (8 * i);
    return v;
}

void
pack16(uint8_t *out, uint16_t v)
{
    out[0] = v & 0xff;
    out[1] = (v >> 8) & 0xff;
}

uint16_t
unpack16(const uint8_t *in)
{
    return (uint16_t)(in[0] | (in[1] << 8));
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    // Header: magic + count placeholder.
    std::fwrite(traceMagic, 1, sizeof(traceMagic), file_);
    uint8_t zero[8] = {};
    std::fwrite(zero, 1, sizeof(zero), file_);
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::write(const DynInst &inst)
{
    panic_if(!file_, "write after close");
    uint8_t rec[recordBytes] = {};
    pack64(rec + 0, inst.pc);
    pack64(rec + 8, inst.nextPc);
    pack64(rec + 16, inst.effAddr);
    rec[24] = (uint8_t)inst.op;
    pack16(rec + 25, (uint16_t)inst.dst);
    pack16(rec + 27, (uint16_t)inst.src1);
    pack16(rec + 29, (uint16_t)inst.src2);
    rec[31] = inst.memSize;
    rec[32] = inst.taken ? 1 : 0;
    // Bytes 33..39 reserved (zero).
    size_t n = std::fwrite(rec, 1, recordBytes, file_);
    fatal_if(n != recordBytes, "short write to trace file");
    ++count_;
}

void
TraceWriter::close()
{
    panic_if(!file_, "double close");
    // Patch the record count into the header.
    std::fseek(file_, sizeof(traceMagic), SEEK_SET);
    uint8_t countBytes[8];
    pack64(countBytes, count_);
    std::fwrite(countBytes, 1, sizeof(countBytes), file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());
    char magic[sizeof(traceMagic)];
    uint8_t countBytes[8];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        fatal("'%s' is not a PUBS trace file", path.c_str());
    }
    fatal_if(std::fread(countBytes, 1, 8, file_) != 8,
             "truncated trace header in '%s'", path.c_str());
    total_ = unpack64(countBytes);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynInst &out)
{
    if (read_ >= total_)
        return false;
    uint8_t rec[recordBytes];
    size_t n = std::fread(rec, 1, recordBytes, file_);
    fatal_if(n != recordBytes, "truncated trace record");
    out.seq = read_;
    out.pc = unpack64(rec + 0);
    out.nextPc = unpack64(rec + 8);
    out.effAddr = unpack64(rec + 16);
    out.op = (isa::Opcode)rec[24];
    fatal_if(rec[24] >= (uint8_t)isa::Opcode::NumOpcodes,
             "corrupt opcode %u in trace", rec[24]);
    out.dst = (RegId)unpack16(rec + 25);
    out.src1 = (RegId)unpack16(rec + 27);
    out.src2 = (RegId)unpack16(rec + 29);
    out.memSize = rec[31];
    out.taken = rec[32] != 0;
    ++read_;
    return true;
}

} // namespace pubs::trace
