/**
 * @file
 * Per-instruction pipeline event trace in gem5's O3PipeView text format,
 * which Konata (https://github.com/shioyadan/Konata) renders as a cycle
 * diagram. The pipeline stamps stage cycles onto DynInst::stamps and
 * calls record() once per instruction at retire or squash; with no writer
 * attached nothing is stamped and nothing is written.
 */

#ifndef PUBS_TRACE_PIPEVIEW_HH
#define PUBS_TRACE_PIPEVIEW_HH

#include <cstdio>
#include <string>

#include "trace/dyninst.hh"

namespace pubs::trace
{

class PipeViewWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit PipeViewWriter(const std::string &path);
    ~PipeViewWriter();

    PipeViewWriter(const PipeViewWriter &) = delete;
    PipeViewWriter &operator=(const PipeViewWriter &) = delete;

    /**
     * Emit one instruction's record from @p inst's stage stamps. Ticks
     * are simulated cycles (Konata infers the period); a squashed
     * instruction retires at tick 0, which Konata draws as a flush.
     */
    void record(const DynInst &inst);

    /** Records written so far. */
    uint64_t records() const { return records_; }

    const std::string &path() const { return path_; }

    void flush();

  private:
    std::string path_;
    std::FILE *file_;
    uint64_t records_ = 0;
};

} // namespace pubs::trace

#endif // PUBS_TRACE_PIPEVIEW_HH
