/**
 * @file
 * The dynamic-instruction record that flows from the functional emulator
 * (or a trace file) into the timing model. It carries exactly what timing
 * needs: static identity, logical operands, the resolved memory address,
 * and the actual control-flow outcome.
 */

#ifndef PUBS_TRACE_DYNINST_HH
#define PUBS_TRACE_DYNINST_HH

#include "common/types.hh"
#include "isa/isa.hh"

namespace pubs::isa
{
class Program;
}

namespace pubs::trace
{

/**
 * Cycle stamps of every pipeline stage one dynamic instruction visited,
 * captured by the timing pipeline when a pipeview trace is attached
 * (trace/pipeview.hh). A stage the instruction never reached stays 0; a
 * squashed instruction is marked instead of retired, matching gem5's
 * O3PipeView semantics.
 */
struct StageStamps
{
    Cycle fetch = 0;
    Cycle decode = 0;
    Cycle rename = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle retire = 0;
    bool squashed = false;
};

struct DynInst
{
    SeqNum seq = 0;
    Pc pc = 0;
    Pc nextPc = 0;          ///< actual next PC (resolves branches)
    isa::Opcode op = isa::Opcode::Nop;
    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;
    Addr effAddr = 0;       ///< effective address of memory ops
    uint8_t memSize = 0;    ///< access size in bytes (0 for non-memory)
    bool taken = false;     ///< conditional branches: actual direction

    /**
     * Architectural value written to dst (raw bits; FP values are the
     * IEEE-754 bit pattern). 0 when there is no destination. The
     * lockstep commit checker (sim/checker.hh) cross-validates it
     * against an independent reference emulator at every commit; v0
     * trace files predate it and replay with hasDstValue = false.
     */
    uint64_t dstValue = 0;
    bool hasDstValue = false;

    /**
     * Pipeline stage timing, filled only while a pipeview trace is being
     * written (never serialised into trace files).
     */
    StageStamps stamps{};

    isa::OpClass cls() const { return isa::opClass(op); }
    bool isBranch() const { return isa::isBranch(op); }
    bool isCondBranch() const { return isa::isCondBranch(op); }
    bool isLoad() const { return isa::isLoad(op); }
    bool isStore() const { return isa::isStore(op); }
    bool isMem() const { return isa::isMem(op); }

    /** Fall-through PC. */
    Pc fallthroughPc() const { return pc + instBytes; }
};

/** Anything that produces a dynamic instruction stream. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /**
     * Produce the next dynamic instruction.
     * @return false when the stream is exhausted (@p out untouched).
     */
    virtual bool next(DynInst &out) = 0;

    /**
     * The static program this stream was produced from, if available.
     * The timing model uses it to synthesise wrong-path instructions
     * after a misprediction; sources without one (e.g. trace files)
     * degrade to redirect-stall modelling.
     */
    virtual const isa::Program *program() const { return nullptr; }
};

} // namespace pubs::trace

#endif // PUBS_TRACE_DYNINST_HH
