#include "trace/pipeview.hh"

#include "common/logging.hh"
#include "isa/isa.hh"

namespace pubs::trace
{

PipeViewWriter::PipeViewWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    fatal_if(!file_, "cannot open pipeview trace '%s'", path.c_str());
}

PipeViewWriter::~PipeViewWriter()
{
    if (file_)
        std::fclose(file_);
}

void
PipeViewWriter::record(const DynInst &inst)
{
    const StageStamps &t = inst.stamps;
    // The immediate is not part of the dynamic record; disassemble the
    // operand form only (targets/offsets print as 0).
    isa::Inst staticInst{inst.op, inst.dst, inst.src1, inst.src2, 0};
    std::string disasm = isa::disassemble(staticInst);

    std::fprintf(file_, "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n",
                 (unsigned long long)t.fetch, (unsigned long long)inst.pc,
                 (unsigned long long)inst.seq, disasm.c_str());
    std::fprintf(file_, "O3PipeView:decode:%llu\n",
                 (unsigned long long)t.decode);
    std::fprintf(file_, "O3PipeView:rename:%llu\n",
                 (unsigned long long)t.rename);
    std::fprintf(file_, "O3PipeView:dispatch:%llu\n",
                 (unsigned long long)t.dispatch);
    std::fprintf(file_, "O3PipeView:issue:%llu\n",
                 (unsigned long long)t.issue);
    std::fprintf(file_, "O3PipeView:complete:%llu\n",
                 (unsigned long long)t.complete);
    // gem5 semantics: a squashed instruction retires at tick 0; the
    // trailing store field is the store-completion tick.
    unsigned long long retire = t.squashed ? 0 : (unsigned long long)t.retire;
    unsigned long long store =
        !t.squashed && inst.isStore() ? (unsigned long long)t.complete : 0;
    std::fprintf(file_, "O3PipeView:retire:%llu:store:%llu\n", retire,
                 store);
    ++records_;
}

void
PipeViewWriter::flush()
{
    if (file_)
        std::fflush(file_);
}

} // namespace pubs::trace
