/**
 * @file
 * Binary trace file format so externally captured (open) traces can be
 * replayed through the timing model, substituting for the paper's SPEC2006
 * runs. Format: 16-byte header (magic, version, record count), then one
 * packed 40-byte record per dynamic instruction.
 */

#ifndef PUBS_TRACE_TRACE_HH
#define PUBS_TRACE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/dyninst.hh"

namespace pubs::trace
{

/** Magic bytes at the start of every trace file. */
constexpr char traceMagic[8] = {'P', 'U', 'B', 'S', 'T', 'R', 'C', '1'};

/** Streams DynInst records to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(const DynInst &inst);

    /** Finalise the header (record count) and close. */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
};

/** Replays a trace file as an InstSource. */
class TraceReader : public InstSource
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynInst &out) override;

    uint64_t recordCount() const { return total_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t total_ = 0;
    uint64_t read_ = 0;
};

/** Buffers an in-memory sequence of records as an InstSource (tests). */
class VectorSource : public InstSource
{
  public:
    explicit VectorSource(std::vector<DynInst> insts)
        : insts_(std::move(insts))
    {}

    bool
    next(DynInst &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }

  private:
    std::vector<DynInst> insts_;
    size_t pos_ = 0;
};

} // namespace pubs::trace

#endif // PUBS_TRACE_TRACE_HH
