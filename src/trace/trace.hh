/**
 * @file
 * Binary trace file format so externally captured (open) traces can be
 * replayed through the timing model, substituting for the paper's SPEC2006
 * runs.
 *
 * v1 (current): 32-byte header — 8-byte magic "PUBSTRC2", u32 format
 * version, u32 record size, u64 record count, 8 reserved (zero) bytes —
 * then one packed 48-byte little-endian record per dynamic instruction,
 * carrying the architectural destination value for the lockstep commit
 * checker.
 *
 * v0 (legacy, still read): 16-byte header — magic "PUBSTRC1" + u64
 * record count — and 40-byte records without the destination value.
 *
 * The reader validates everything it can at open: magic, version,
 * record size, header record count against the actual file size, and
 * reserved bytes (which must be zero). All failures throw
 * pubs::TraceError naming the file, so a batch sweep can skip a corrupt
 * trace instead of dying.
 */

#ifndef PUBS_TRACE_TRACE_HH
#define PUBS_TRACE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/dyninst.hh"

namespace pubs::trace
{

/** Magic bytes at the start of every v1 (current) trace file. */
constexpr char traceMagic[8] = {'P', 'U', 'B', 'S', 'T', 'R', 'C', '2'};

/** Magic bytes of legacy v0 traces (accepted by TraceReader). */
constexpr char traceMagicV0[8] = {'P', 'U', 'B', 'S', 'T', 'R', 'C', '1'};

/** On-disk format version written by TraceWriter. */
constexpr uint32_t traceFormatVersion = 1;

/** Streams DynInst records to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(const DynInst &inst);

    /**
     * Finalise the header (record count) and close. Throws TraceError
     * naming the file if any I/O step fails (e.g. a full disk), so a
     * silently corrupt trace is never left looking valid.
     */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
};

/** Replays a trace file as an InstSource. */
class TraceReader : public InstSource
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynInst &out) override;

    uint64_t recordCount() const { return total_; }

    /** Format version of the open file (0 = legacy). */
    uint32_t formatVersion() const { return version_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t total_ = 0;
    uint64_t read_ = 0;
    uint32_t version_ = traceFormatVersion;
    size_t recordBytes_ = 0;
};

/** Buffers an in-memory sequence of records as an InstSource (tests). */
class VectorSource : public InstSource
{
  public:
    explicit VectorSource(std::vector<DynInst> insts)
        : insts_(std::move(insts))
    {}

    bool
    next(DynInst &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }

  private:
    std::vector<DynInst> insts_;
    size_t pos_ = 0;
};

} // namespace pubs::trace

#endif // PUBS_TRACE_TRACE_HH
