/**
 * @file
 * Portable SIMD kernels for the two measured hot loops (DESIGN.md §13):
 * the perceptron dot product and the cache-set tag probe. Both kernels
 * are pure integer arithmetic whose vector forms are bit-identical to
 * the scalar references:
 *
 *  - the dot product accumulates int16 partial sums per lane (bounded
 *    by 64 terms x |w| <= 128 = 8192, far from int16 overflow) and
 *    reduces them in int32 — integer addition is associative, so the
 *    lane-major order cannot change the sum;
 *  - a tag can match at most one way per set (tags are unique within a
 *    set), so the probe's compare order cannot change which way is
 *    found.
 *
 * Gating is two-level. Compile time: the PUBS_SIMD CMake option defines
 * PUBS_SIMD_ENABLED; without it (or on targets without SSE2) only the
 * scalar paths are compiled. Run time: setting PUBS_FORCE_SCALAR=1 in
 * the environment routes a SIMD-enabled build through the scalar
 * fallbacks, which is how the bit-exactness regression test and the
 * scalar-vs-SIMD microbenchmark columns A/B one binary against itself.
 */

#ifndef PUBS_COMMON_SIMD_HH
#define PUBS_COMMON_SIMD_HH

#include <cstdint>
#include <cstdlib>

#if defined(PUBS_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(_M_X64)) && defined(__SSE2__)
#define PUBS_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define PUBS_SIMD_COMPILED 0
#endif

namespace pubs::simd
{

/** Compile-time answer: were the vector paths built at all? */
constexpr bool
compiled()
{
    return PUBS_SIMD_COMPILED != 0;
}

/**
 * Runtime kill-switch flag: initialised once from PUBS_FORCE_SCALAR=1
 * in the environment, then writable (the bit-exactness regression test
 * flips it to A/B one process against itself). Hot paths read a single
 * cached bool.
 */
inline bool &
scalarForced()
{
    static bool forced = [] {
        const char *env = std::getenv("PUBS_FORCE_SCALAR");
        return env && env[0] == '1' && env[1] == '\0';
    }();
    return forced;
}

/** Do the dispatchers take the vector paths right now? */
inline bool
enabled()
{
#if PUBS_SIMD_COMPILED
    return !scalarForced();
#else
    return false;
#endif
}

/**
 * Scalar reference for the perceptron dot product over @p n history
 * bits: sum of (+w[i] if history bit i set else -w[i]). The branchless
 * form matches the original predictor loop exactly.
 */
inline int
perceptronDotScalar(const int16_t *w, unsigned n, uint64_t history)
{
    int y = 0;
    for (unsigned i = 0; i < n; ++i) {
        int m = -(int)((history >> i) & 1);
        y += ((int)w[i] ^ ~m) + (m + 1);
    }
    return y;
}

#if PUBS_SIMD_COMPILED

/**
 * SSE2 (and optionally AVX2) dot product. Each lane holds the signed
 * contribution of one weight; lanes accumulate in int16 (|sum| <=
 * ceil(64/8) x 128 per lane) and reduce via _mm_madd_epi16 into int32.
 */
inline int
perceptronDotSimd(const int16_t *w, unsigned n, uint64_t history)
{
    unsigned i = 0;
    int y = 0;
#if defined(__AVX2__)
    if (n >= 16) {
        const __m256i bitsel = _mm256_set_epi16(
            (short)0x8000, 0x4000, 0x2000, 0x1000, 0x0800, 0x0400, 0x0200,
            0x0100, 0x0080, 0x0040, 0x0020, 0x0010, 0x0008, 0x0004, 0x0002,
            0x0001);
        __m256i acc = _mm256_setzero_si256();
        for (; i + 16 <= n; i += 16) {
            __m256i wv = _mm256_loadu_si256((const __m256i *)(w + i));
            __m256i h =
                _mm256_set1_epi16((short)((history >> i) & 0xffff));
            // Lane mask: all-ones where the lane's history bit is set.
            __m256i m = _mm256_cmpeq_epi16(_mm256_and_si256(h, bitsel),
                                           bitsel);
            // +w where taken, -w where not: (w & m) - (w & ~m).
            __m256i pos = _mm256_and_si256(wv, m);
            __m256i neg = _mm256_andnot_si256(m, wv);
            acc = _mm256_add_epi16(acc, _mm256_sub_epi16(pos, neg));
        }
        __m256i ones = _mm256_set1_epi16(1);
        __m256i sums = _mm256_madd_epi16(acc, ones); // 8 x int32
        __m128i lo = _mm256_castsi256_si128(sums);
        __m128i hi = _mm256_extracti128_si256(sums, 1);
        __m128i s = _mm_add_epi32(lo, hi);
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
        y += _mm_cvtsi128_si32(s);
    }
#endif
    if (i + 8 <= n) {
        const __m128i bitsel = _mm_set_epi16((short)0x0080, 0x0040, 0x0020,
                                             0x0010, 0x0008, 0x0004, 0x0002,
                                             0x0001);
        __m128i acc = _mm_setzero_si128();
        for (; i + 8 <= n; i += 8) {
            __m128i wv = _mm_loadu_si128((const __m128i *)(w + i));
            __m128i h = _mm_set1_epi16((short)((history >> i) & 0xff));
            __m128i m = _mm_cmpeq_epi16(_mm_and_si128(h, bitsel), bitsel);
            __m128i pos = _mm_and_si128(wv, m);
            __m128i neg = _mm_andnot_si128(m, wv);
            acc = _mm_add_epi16(acc, _mm_sub_epi16(pos, neg));
        }
        __m128i sums = _mm_madd_epi16(acc, _mm_set1_epi16(1)); // 4 x int32
        sums = _mm_add_epi32(
            sums, _mm_shuffle_epi32(sums, _MM_SHUFFLE(1, 0, 3, 2)));
        sums = _mm_add_epi32(
            sums, _mm_shuffle_epi32(sums, _MM_SHUFFLE(2, 3, 0, 1)));
        y += _mm_cvtsi128_si32(sums);
    }
    for (; i < n; ++i) {
        int m = -(int)((history >> i) & 1);
        y += ((int)w[i] ^ ~m) + (m + 1);
    }
    return y;
}

#endif // PUBS_SIMD_COMPILED

/** Dispatching perceptron dot product (see the scalar reference). */
inline int
perceptronDot(const int16_t *w, unsigned n, uint64_t history)
{
#if PUBS_SIMD_COMPILED
    if (enabled())
        return perceptronDotSimd(w, n, history);
#endif
    return perceptronDotScalar(w, n, history);
}

/**
 * Scalar reference for the set probe: index of the first way in
 * [0, ways) whose tag matches and whose valid bit is set, or -1.
 * At most one way can match (tags are unique within a set), so
 * "first" is just "the" match.
 */
inline int
tagProbeScalar(const uint64_t *tags, uint32_t validMask, unsigned ways,
               uint64_t tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        if ((validMask >> w) & 1u) {
            if (tags[w] == tag)
                return (int)w;
        }
    }
    return -1;
}

#if PUBS_SIMD_COMPILED

/** Vector set probe over the dense per-set tag array. */
inline int
tagProbeSimd(const uint64_t *tags, uint32_t validMask, unsigned ways,
             uint64_t tag)
{
    unsigned w = 0;
#if defined(__AVX2__)
    const __m256i key4 = _mm256_set1_epi64x((long long)tag);
    for (; w + 4 <= ways; w += 4) {
        __m256i tv = _mm256_loadu_si256((const __m256i *)(tags + w));
        __m256i eq = _mm256_cmpeq_epi64(tv, key4);
        unsigned hits =
            (unsigned)_mm256_movemask_pd(_mm256_castsi256_pd(eq));
        hits &= (validMask >> w) & 0xfu;
        if (hits)
            return (int)(w + (unsigned)__builtin_ctz(hits));
    }
#endif
    const __m128i key2 = _mm_set1_epi64x((long long)tag);
    for (; w + 2 <= ways; w += 2) {
        __m128i tv = _mm_loadu_si128((const __m128i *)(tags + w));
        // SSE2 has no 64-bit compare: compare 32-bit halves and AND
        // them pairwise via a half-swapped shuffle.
        __m128i eq32 = _mm_cmpeq_epi32(tv, key2);
        __m128i eqsw = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
        __m128i eq64 = _mm_and_si128(eq32, eqsw);
        unsigned hits = (unsigned)_mm_movemask_pd(_mm_castsi128_pd(eq64));
        hits &= (validMask >> w) & 0x3u;
        if (hits)
            return (int)(w + (unsigned)__builtin_ctz(hits));
    }
    for (; w < ways; ++w) {
        if (((validMask >> w) & 1u) && tags[w] == tag)
            return (int)w;
    }
    return -1;
}

#endif // PUBS_SIMD_COMPILED

/** Dispatching set probe (see the scalar reference). */
inline int
tagProbe(const uint64_t *tags, uint32_t validMask, unsigned ways,
         uint64_t tag)
{
#if PUBS_SIMD_COMPILED
    if (enabled())
        return tagProbeSimd(tags, validMask, ways, tag);
#endif
    return tagProbeScalar(tags, validMask, ways, tag);
}

} // namespace pubs::simd

#endif // PUBS_COMMON_SIMD_HH
