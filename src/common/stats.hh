/**
 * @file
 * Statistics package: named counters, averages, histograms and derived
 * ratios collected into StatGroups, a hierarchical StatRegistry with text
 * and JSON renderers, and the geometric-mean helpers the paper's figures
 * use.
 */

#ifndef PUBS_COMMON_STATS_HH
#define PUBS_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pubs
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Record @p v as if sampled @p n times (bulk idle-cycle account). */
    void
    sample(double v, uint64_t n)
    {
        sum_ += v * (double)n;
        count_ += n;
    }

    void reset() { sum_ = 0; count_ = 0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0;
    uint64_t count_ = 0;
};

/** How a Histogram maps sample values to buckets. */
enum class BucketScale
{
    Linear, ///< bucket i covers [i*width, (i+1)*width)
    Log2,   ///< bucket 0 is {0}, bucket i covers [2^(i-1), 2^i)
};

/**
 * Fixed-bucket histogram with an overflow bucket. Buckets are unit-width
 * by default; a wider linear bucket width or log2 scaling keeps long-tail
 * samples (misspeculation penalties, IQ waits) from collapsing into the
 * overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param buckets number of in-range buckets before overflow.
     * @param bucketWidth value range covered by each linear bucket
     *        (ignored under BucketScale::Log2).
     */
    explicit Histogram(size_t buckets = 64, uint64_t bucketWidth = 1,
                       BucketScale scale = BucketScale::Linear);

    void
    sample(uint64_t v)
    {
        ++counts_[bucketOf(v)];
        sum_ += v;
        ++total_;
    }

    /**
     * Record @p v as if sampled @p n times. The event-driven pipeline
     * uses this to account a span of fast-forwarded idle cycles in one
     * call; the resulting counts are bit-identical to sampling each
     * cycle individually.
     */
    void
    sample(uint64_t v, uint64_t n)
    {
        counts_[bucketOf(v)] += n;
        sum_ += v * n;
        total_ += n;
    }

    void reset();

    uint64_t bucket(size_t i) const { return counts_.at(i); }
    size_t numBuckets() const { return counts_.size(); }
    uint64_t samples() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }
    uint64_t bucketWidth() const { return width_; }
    BucketScale scale() const { return scale_; }
    uint64_t sum() const { return sum_; }

    /**
     * Replace the whole state from serialized raw form, bit-identical
     * to the histogram it was captured from (proc-pool result frames
     * and the sweep journal round-trip histograms this way).
     */
    void restore(uint64_t width, BucketScale scale,
                 std::vector<uint64_t> counts, uint64_t sum,
                 uint64_t total);

    /** Bucket index a value of @p v lands in. */
    size_t bucketOf(uint64_t v) const;

    /** Smallest sample value that maps to bucket @p i. */
    uint64_t bucketLow(size_t i) const;

    /**
     * Value below which @p fraction of samples fall, reported in sample
     * value units (the lower bound of the containing bucket).
     */
    uint64_t percentile(double fraction) const;

  private:
    uint64_t width_;
    BucketScale scale_;
    std::vector<uint64_t> counts_;
    uint64_t sum_ = 0;
    uint64_t total_ = 0;
};

/**
 * A named, ordered collection of statistics for reporting: scalars,
 * strings (run metadata) and vectors (histogram buckets, heartbeat
 * series).
 *
 * Subsystems register values at dump time; StatGroup is a passive
 * formatting container, not a live registry, so there is no global state.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &key, double value,
             const std::string &desc = "");

    /** Attach a string-valued stat (workload names, machine labels). */
    void addString(const std::string &key, const std::string &value,
                   const std::string &desc = "");

    /** Attach a vector-valued stat (bucket counts, interval series). */
    void addVector(const std::string &key, std::vector<double> values,
                   const std::string &desc = "");

    /**
     * Attach @p h under @p key: summary scalars (<key>_samples,
     * <key>_mean, <key>_p50/_p90/_p99), the bucket layout
     * (<key>_bucket_width) and the raw counts (<key>_buckets).
     */
    void addHistogram(const std::string &key, const Histogram &h,
                      const std::string &desc = "");

    bool has(const std::string &key) const;

    /** Value for @p key; panics if missing. */
    double get(const std::string &key) const;

    /** Value for @p key or @p fallback if missing. */
    double getOr(const std::string &key, double fallback) const;

    /** Render as aligned "name  value  # desc" lines. */
    std::string format() const;

    const std::string &name() const { return name_; }

    struct Entry
    {
        std::string key;
        double value;
        std::string desc;
    };

    struct StringEntry
    {
        std::string key;
        std::string value;
        std::string desc;
    };

    struct VectorEntry
    {
        std::string key;
        std::vector<double> values;
        std::string desc;
    };

    const std::vector<Entry> &entries() const { return entries_; }
    const std::vector<StringEntry> &stringEntries() const
        { return strings_; }
    const std::vector<VectorEntry> &vectorEntries() const
        { return vectors_; }

  private:
    std::string name_;
    std::vector<Entry> entries_;
    std::vector<StringEntry> strings_;
    std::vector<VectorEntry> vectors_;
    std::map<std::string, size_t> index_;
};

/**
 * Hierarchical, ordered collection of StatGroups that subsystems publish
 * into at dump time. Dots in group names nest in the JSON rendering:
 * groups "pubs" and "pubs.conf_tab" become {"pubs": {..., "conf_tab":
 * {...}}}, so one file carries the whole machine-readable run record.
 */
class StatRegistry
{
  public:
    /** Group named @p name, created (in order) on first use. */
    StatGroup &group(const std::string &name);

    /** Existing group, or nullptr. */
    const StatGroup *find(const std::string &name) const;

    bool empty() const { return groups_.empty(); }
    size_t size() const { return groups_.size(); }
    const std::vector<std::unique_ptr<StatGroup>> &groups() const
        { return groups_; }

    /** All groups rendered as aligned text, in registration order. */
    std::string renderText() const;

    /** The whole registry as a single JSON object. */
    std::string renderJson() const;

    /** Write renderJson() to @p path; fatal on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
    std::map<std::string, size_t> index_;
};

/** Escape @p s for inclusion in a double-quoted JSON string. */
std::string jsonEscape(const std::string &s);

/** Render a double as a JSON number ("null" for non-finite values). */
std::string jsonNumber(double v);

/** Geometric mean of @p values (all must be > 0). */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &values);

} // namespace pubs

#endif // PUBS_COMMON_STATS_HH
