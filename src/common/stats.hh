/**
 * @file
 * Lightweight statistics package: named counters, averages, histograms and
 * derived ratios collected into a StatGroup, plus report formatting and the
 * geometric-mean helpers the paper's figures use.
 */

#ifndef PUBS_COMMON_STATS_HH
#define PUBS_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pubs
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    void reset() { sum_ = 0; count_ = 0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0;
    uint64_t count_ = 0;
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /** @param buckets number of unit-width buckets before overflow. */
    explicit Histogram(size_t buckets = 64) : counts_(buckets + 1, 0) {}

    void
    sample(uint64_t v)
    {
        size_t idx = v < counts_.size() - 1 ? v : counts_.size() - 1;
        ++counts_[idx];
        sum_ += v;
        ++total_;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        sum_ = 0;
        total_ = 0;
    }

    uint64_t bucket(size_t i) const { return counts_.at(i); }
    size_t numBuckets() const { return counts_.size(); }
    uint64_t samples() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    /** Value below which @p fraction of samples fall (bucket granularity). */
    uint64_t percentile(double fraction) const;

  private:
    std::vector<uint64_t> counts_;
    uint64_t sum_ = 0;
    uint64_t total_ = 0;
};

/**
 * A named, ordered collection of scalar statistics for reporting.
 *
 * Subsystems register values at dump time; StatGroup is a passive
 * formatting container, not a live registry, so there is no global state.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &key, double value,
             const std::string &desc = "");

    bool has(const std::string &key) const;

    /** Value for @p key; panics if missing. */
    double get(const std::string &key) const;

    /** Value for @p key or @p fallback if missing. */
    double getOr(const std::string &key, double fallback) const;

    /** Render as aligned "name  value  # desc" lines. */
    std::string format() const;

    const std::string &name() const { return name_; }

    struct Entry
    {
        std::string key;
        double value;
        std::string desc;
    };

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::string name_;
    std::vector<Entry> entries_;
    std::map<std::string, size_t> index_;
};

/** Geometric mean of @p values (all must be > 0). */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &values);

} // namespace pubs

#endif // PUBS_COMMON_STATS_HH
