#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/atomic_file.hh"

namespace pubs::json
{

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Value *
Value::find(const std::string &key, const std::string &nested) const
{
    const Value *inner = find(key);
    return inner ? inner->find(nested) : nullptr;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

std::string
Value::stringOr(const std::string &key, const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->str() : fallback;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double n)
{
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> m)
{
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(m);
    return v;
}

namespace
{

/**
 * Recursive-descent parser over the raw bytes. Tracks line/column for
 * diagnostics and enforces a nesting-depth cap so a hostile or broken
 * document cannot overflow the stack.
 */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return true;
    }

  private:
    static constexpr int maxDepth = 128;

    const std::string &text_;
    std::string &error_;
    size_t pos_ = 0;
    size_t line_ = 1;
    size_t lineStart_ = 0;

    bool
    fail(const std::string &message)
    {
        char prefix[48];
        std::snprintf(prefix, sizeof(prefix), "%zu:%zu: ", line_,
                      pos_ - lineStart_ + 1);
        error_ = prefix + message;
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    advance()
    {
        if (text_[pos_] == '\n') {
            ++line_;
            lineStart_ = pos_ + 1;
        }
        ++pos_;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            advance();
        }
    }

    bool
    expect(char c)
    {
        if (atEnd() || peek() != c) {
            return fail(std::string("expected '") + c + "'" +
                        (atEnd() ? " but hit end of input" : ""));
        }
        advance();
        return true;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("invalid literal (expected ") + word +
                        ")");
        for (size_t i = 0; i < len; ++i)
            advance();
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of input (expected a value)");
        switch (peek()) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true", 4))
                return false;
            out = Value::makeBool(true);
            return true;
          case 'f':
            if (!literal("false", 5))
                return false;
            out = Value::makeBool(false);
            return true;
          case 'n':
            if (!literal("null", 4))
                return false;
            out = Value::makeNull();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        advance(); // '{'
        std::vector<std::pair<std::string, Value>> members;
        skipWs();
        if (!atEnd() && peek() == '}') {
            advance();
            out = Value::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected a string object key");
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &member : members) {
                if (member.first == key)
                    return fail("duplicate object key \"" + key + "\"");
            }
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            Value value;
            if (!parseValue(value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == '}') {
                advance();
                out = Value::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        advance(); // '['
        std::vector<Value> items;
        skipWs();
        if (!atEnd() && peek() == ']') {
            advance();
            out = Value::makeArray(std::move(items));
            return true;
        }
        while (true) {
            skipWs();
            Value value;
            if (!parseValue(value, depth + 1))
                return false;
            items.push_back(std::move(value));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == ']') {
                advance();
                out = Value::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    static int
    hexDigit(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    bool
    parseHex4(unsigned &out)
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("unterminated \\u escape");
            int digit = hexDigit(peek());
            if (digit < 0)
                return fail("invalid hex digit in \\u escape");
            value = value << 4 | (unsigned)digit;
            advance();
        }
        out = value;
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += (char)cp;
        } else if (cp < 0x800) {
            out += (char)(0xc0 | cp >> 6);
            out += (char)(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += (char)(0xe0 | cp >> 12);
            out += (char)(0x80 | (cp >> 6 & 0x3f));
            out += (char)(0x80 | (cp & 0x3f));
        } else {
            out += (char)(0xf0 | cp >> 18);
            out += (char)(0x80 | (cp >> 12 & 0x3f));
            out += (char)(0x80 | (cp >> 6 & 0x3f));
            out += (char)(0x80 | (cp & 0x3f));
        }
    }

    /** Validate one UTF-8 sequence starting at the current byte. */
    bool
    consumeUtf8(std::string &out)
    {
        unsigned char lead = (unsigned char)peek();
        size_t extra;
        unsigned cp;
        if (lead < 0x80) {
            extra = 0;
            cp = lead;
        } else if ((lead & 0xe0) == 0xc0) {
            extra = 1;
            cp = lead & 0x1f;
        } else if ((lead & 0xf0) == 0xe0) {
            extra = 2;
            cp = lead & 0x0f;
        } else if ((lead & 0xf8) == 0xf0) {
            extra = 3;
            cp = lead & 0x07;
        } else {
            return fail("invalid UTF-8 byte in string");
        }
        out += (char)lead;
        advance();
        for (size_t i = 0; i < extra; ++i) {
            if (atEnd() || ((unsigned char)peek() & 0xc0) != 0x80)
                return fail("truncated UTF-8 sequence in string");
            cp = cp << 6 | ((unsigned char)peek() & 0x3f);
            out += peek();
            advance();
        }
        // Reject overlong encodings, surrogates, and out-of-range points.
        static constexpr unsigned minByLen[4] = {0x0, 0x80, 0x800, 0x10000};
        if (cp < minByLen[extra])
            return fail("overlong UTF-8 encoding in string");
        if (cp >= 0xd800 && cp <= 0xdfff)
            return fail("raw surrogate code point in string");
        if (cp > 0x10ffff)
            return fail("UTF-8 code point beyond U+10FFFF");
        return true;
    }

    bool
    parseString(std::string &out)
    {
        advance(); // opening quote
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = peek();
            if (c == '"') {
                advance();
                return true;
            }
            if ((unsigned char)c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                if (!consumeUtf8(out))
                    return false;
                continue;
            }
            advance(); // backslash
            if (atEnd())
                return fail("unterminated escape");
            char esc = peek();
            advance();
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (atEnd() || peek() != '\\')
                        return fail("unpaired high surrogate");
                    advance();
                    if (atEnd() || peek() != 'u')
                        return fail("unpaired high surrogate");
                    advance();
                    unsigned low;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        size_t start = pos_;
        if (!atEnd() && peek() == '-')
            advance();
        // Integer part: one digit, or a nonzero digit followed by more.
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("invalid number");
        if (peek() == '0') {
            advance();
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                return fail("leading zero in number");
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && peek() == '.') {
            advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("digit required after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("digit required in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        std::string token = text_.substr(start, pos_ - start);
        double value = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(value))
            return fail("number out of double range");
        out = Value::makeNumber(value);
        return true;
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error)
{
    error.clear();
    Parser parser(text, error);
    return parser.run(out);
}

bool
validate(const std::string &text, std::string &error)
{
    Value ignored;
    return parse(text, ignored, error);
}

bool
parseFile(const std::string &path, Value &out, std::string &error)
{
    std::string text;
    if (!readWholeFile(path, text)) {
        error = "cannot read " + path;
        return false;
    }
    if (!parse(text, out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace pubs::json
