/**
 * @file
 * Child-process and signal utilities for fault-isolated execution, plus
 * the length-prefixed, CRC-checked frame protocol worker processes use
 * to return results over a pipe, and the PUBS_FAULT fault-injection
 * plan CI uses to prove the recovery paths.
 *
 * Frame layout (little-endian): u32 magic "PBSF", u32 payload length,
 * u32 CRC32 of the payload, then the payload bytes. A parent reading a
 * frame can therefore distinguish "child died before answering" (short
 * read / bad magic) from "child answered but the bytes are not
 * trustworthy" (CRC mismatch) — both are retried, neither is believed.
 *
 * PUBS_FAULT grammar: a comma-separated list of directives
 *     crash[:rate[:seed]]     worker raises SIGSEGV before simulating
 *     hang[:rate[:seed]]      worker sleeps forever (parent timeout kills)
 *     corrupt[:rate[:seed]]   worker flips a payload byte after the CRC
 *     killafter:N             parent SIGKILLs itself after N journal
 *                             commits (deterministic mid-sweep kill -9)
 * rate defaults to 1.0, seed to 0. Whether attempt (index, attempt) is
 * injected is a pure function of (seed, index, attempt), so a faulty
 * attempt can succeed on retry and a whole run is reproducible.
 */

#ifndef PUBS_COMMON_SUBPROCESS_HH
#define PUBS_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <functional>
#include <string>

#include <sys/types.h>

namespace pubs::proc
{

// --- frame protocol --------------------------------------------------

/** First bytes of every result frame ("PBSF", little-endian u32). */
constexpr uint32_t frameMagic = 0x46534250u;

/** Bytes before the payload: magic, length, CRC32. */
constexpr size_t frameHeaderBytes = 12;

/** Encode @p payload as one frame (header + payload). */
std::string encodeFrame(const std::string &payload);

enum class FrameStatus
{
    Ok,        ///< complete frame, CRC verified
    Truncated, ///< bytes so far are a valid prefix; child died early?
    Corrupt,   ///< bad magic, impossible length, or CRC mismatch
};

/**
 * Decode the frame at the start of @p buffer into @p payload.
 * Truncated means @p buffer could still grow into a valid frame;
 * Corrupt means no completion of these bytes can be trusted.
 */
FrameStatus decodeFrame(const std::string &buffer, std::string &payload);

/**
 * Incremental variant for streams carrying several frames (a worker
 * interleaving progress frames with its final result): decode the frame
 * at the start of @p buffer and, on Ok, consume it from @p buffer so the
 * next call sees the following frame. Unlike decodeFrame(), bytes after
 * a complete frame are the next frame, not corruption. Truncated leaves
 * @p buffer untouched (more bytes may arrive); Corrupt leaves it
 * untouched too — nothing downstream of a bad header can be trusted, so
 * callers should discard the stream and retry the worker.
 */
FrameStatus nextFrame(std::string &buffer, std::string &payload);

// --- child process helpers -------------------------------------------

/** A forked worker and the read end of its result pipe. */
struct Child
{
    pid_t pid = -1;
    int fd = -1; ///< parent's read end; child's write end is closed here
};

/**
 * Fork a worker. The child runs fn(writeFd) and then _exit(0) without
 * flushing parent-inherited stdio or running atexit handlers; the
 * parent gets the child pid and the read end of the pipe. Throws
 * ProcError if fork or pipe creation fails.
 */
Child spawnChild(const std::function<void(int writeFd)> &fn);

/**
 * Human-readable description of a waitpid() status: "exited 3",
 * "killed by signal 9 (Killed)", ...
 */
std::string describeStatus(int status);

// --- fault injection -------------------------------------------------

struct FaultPlan
{
    double crashRate = 0.0;   ///< P(worker SIGSEGVs) per attempt
    double hangRate = 0.0;    ///< P(worker hangs) per attempt
    double corruptRate = 0.0; ///< P(frame corrupted) per attempt
    uint64_t seed = 0;
    uint64_t killAfter = 0; ///< SIGKILL the parent after N commits; 0=off

    bool
    any() const
    {
        return crashRate > 0.0 || hangRate > 0.0 || corruptRate > 0.0 ||
               killAfter > 0;
    }

    /** Deterministic coin for (task @p index, @p attempt) at @p rate. */
    bool roll(double rate, uint64_t index, uint64_t attempt,
              uint64_t stream) const;

    bool
    injectCrash(uint64_t index, uint64_t attempt) const
    {
        return roll(crashRate, index, attempt, 1);
    }

    bool
    injectHang(uint64_t index, uint64_t attempt) const
    {
        return roll(hangRate, index, attempt, 2);
    }

    bool
    injectCorrupt(uint64_t index, uint64_t attempt) const
    {
        return roll(corruptRate, index, attempt, 3);
    }
};

/**
 * Parse a PUBS_FAULT spec (see file comment) into @p out.
 * @return true on success; false with @p error set on a malformed spec.
 */
bool parseFaultPlan(const std::string &spec, FaultPlan &out,
                    std::string &error);

/**
 * The plan requested by the PUBS_FAULT environment variable (empty plan
 * when unset). A malformed value warns once and injects nothing.
 */
FaultPlan faultPlanFromEnv();

} // namespace pubs::proc

#endif // PUBS_COMMON_SUBPROCESS_HH
