#include "common/stats_diff.hh"

#include <cmath>
#include <cstdio>

namespace pubs
{

namespace
{

const char *
kindName(json::Value::Kind kind)
{
    switch (kind) {
      case json::Value::Kind::Null:
        return "null";
      case json::Value::Kind::Bool:
        return "bool";
      case json::Value::Kind::Number:
        return "number";
      case json::Value::Kind::String:
        return "string";
      case json::Value::Kind::Array:
        return "array";
      case json::Value::Kind::Object:
        return "object";
    }
    return "?";
}

class Differ
{
  public:
    Differ(const StatsDiffOptions &options, StatsDiff &out)
        : options_(options), out_(out)
    {
    }

    void
    walk(const std::string &path, const json::Value *a,
         const json::Value *b)
    {
        if (full())
            return;
        if (allowed(path)) {
            ++out_.ignoredLeaves;
            return;
        }
        if (!a || !b) {
            add(path + ": only in the " +
                (a ? "first" : "second") + " document");
            return;
        }
        if (a->kind() != b->kind()) {
            add(path + ": " + kindName(a->kind()) + " vs " +
                kindName(b->kind()));
            return;
        }
        switch (a->kind()) {
          case json::Value::Kind::Object:
            walkObject(path, *a, *b);
            return;
          case json::Value::Kind::Array:
            walkArray(path, *a, *b);
            return;
          case json::Value::Kind::Number:
            ++out_.comparedLeaves;
            compareNumbers(path, a->number(), b->number());
            return;
          case json::Value::Kind::String:
            ++out_.comparedLeaves;
            if (a->str() != b->str())
                add(path + ": \"" + a->str() + "\" vs \"" + b->str() +
                    "\"");
            return;
          case json::Value::Kind::Bool:
            ++out_.comparedLeaves;
            if (a->boolean() != b->boolean()) {
                add(path + ": " + (a->boolean() ? "true" : "false") +
                    " vs " + (b->boolean() ? "true" : "false"));
            }
            return;
          case json::Value::Kind::Null:
            ++out_.comparedLeaves;
            return;
        }
    }

  private:
    bool
    full() const
    {
        return options_.maxMismatches &&
               out_.mismatches.size() >= options_.maxMismatches;
    }

    void
    add(std::string mismatch)
    {
        if (!full())
            out_.mismatches.push_back(std::move(mismatch));
    }

    /** @p path is excluded when an allow entry names it or a parent. */
    bool
    allowed(const std::string &path) const
    {
        for (const std::string &entry : options_.allow) {
            if (path == entry)
                return true;
            if (path.size() > entry.size() &&
                path.compare(0, entry.size(), entry) == 0 &&
                (path[entry.size()] == '.' || path[entry.size()] == '['))
                return true;
        }
        return false;
    }

    void
    walkObject(const std::string &path, const json::Value &a,
               const json::Value &b)
    {
        std::string prefix = path.empty() ? "" : path + ".";
        for (const auto &[key, value] : a.members())
            walk(prefix + key, &value, b.find(key));
        // Second pass: members only the second document has.
        for (const auto &[key, value] : b.members())
            if (!a.find(key))
                walk(prefix + key, nullptr, &value);
    }

    void
    walkArray(const std::string &path, const json::Value &a,
              const json::Value &b)
    {
        const auto &xs = a.array();
        const auto &ys = b.array();
        if (xs.size() != ys.size()) {
            add(path + ": array length " + std::to_string(xs.size()) +
                " vs " + std::to_string(ys.size()));
            return;
        }
        for (size_t i = 0; i < xs.size(); ++i)
            walk(path + "[" + std::to_string(i) + "]", &xs[i], &ys[i]);
    }

    void
    compareNumbers(const std::string &path, double x, double y)
    {
        if (x == y)
            return;
        double tolerance = options_.absTol +
                           options_.relTol *
                               std::max(std::fabs(x), std::fabs(y));
        double delta = std::fabs(x - y);
        if (delta <= tolerance)
            return;
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s: %.17g vs %.17g (|d|=%.3g "
                      "> tol %.3g)",
                      path.c_str(), x, y, delta, tolerance);
        add(buf);
    }

    const StatsDiffOptions &options_;
    StatsDiff &out_;
};

} // namespace

StatsDiff
diffStatsJson(const json::Value &a, const json::Value &b,
              const StatsDiffOptions &options)
{
    StatsDiff diff;
    Differ differ(options, diff);
    differ.walk("", &a, &b);
    return diff;
}

StatsDiff
diffStatsJsonText(const std::string &a, const std::string &b,
                  const StatsDiffOptions &options)
{
    StatsDiff diff;
    json::Value da, db;
    std::string error;
    if (!json::parse(a, da, error)) {
        diff.mismatches.push_back("first document is invalid JSON: " +
                                  error);
        return diff;
    }
    if (!json::parse(b, db, error)) {
        diff.mismatches.push_back("second document is invalid JSON: " +
                                  error);
        return diff;
    }
    return diffStatsJson(da, db, options);
}

} // namespace pubs
