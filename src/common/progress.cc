#include "common/progress.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/stats.hh"
#include "common/subprocess.hh"

namespace pubs::progress
{

namespace
{

uint64_t
nowNs()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += (char)((v >> (8 * i)) & 0xff);
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += (char)((v >> (8 * i)) & 0xff);
}

uint64_t
getU64(const std::string &in, size_t at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)(uint8_t)in[at + i] << (8 * i);
    return v;
}

uint32_t
getU32(const std::string &in, size_t at)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)(uint8_t)in[at + i] << (8 * i);
    return v;
}

constexpr char sampleMagic[4] = {'P', 'B', 'P', 'G'};
constexpr uint8_t sampleVersion = 1;

/** magic + version + slot + insts + total + kips + rss + labelLen */
constexpr size_t sampleFixedBytes = 4 + 1 + 8 * 5 + 4;

/** Labels are short workload names; anything huge is a decode error. */
constexpr size_t sampleMaxLabel = 4096;

} // namespace

// --- sample codec ----------------------------------------------------

std::string
encodeSample(const Sample &sample)
{
    std::string out;
    out.reserve(sampleFixedBytes + sample.label.size());
    out.append(sampleMagic, sizeof(sampleMagic));
    out += (char)sampleVersion;
    putU64(out, sample.slot);
    putU64(out, sample.insts);
    putU64(out, sample.totalInsts);
    uint64_t kipsBits = 0;
    static_assert(sizeof(kipsBits) == sizeof(sample.kips));
    std::memcpy(&kipsBits, &sample.kips, sizeof(kipsBits));
    putU64(out, kipsBits);
    putU64(out, sample.rssBytes);
    putU32(out, (uint32_t)std::min(sample.label.size(), sampleMaxLabel));
    out.append(sample.label, 0,
               std::min(sample.label.size(), sampleMaxLabel));
    return out;
}

bool
decodeSample(const std::string &payload, Sample &sample)
{
    if (payload.size() < sampleFixedBytes)
        return false;
    if (std::memcmp(payload.data(), sampleMagic, sizeof(sampleMagic)) != 0)
        return false;
    if ((uint8_t)payload[4] != sampleVersion)
        return false;
    size_t at = 5;
    sample.slot = getU64(payload, at);
    sample.insts = getU64(payload, at + 8);
    sample.totalInsts = getU64(payload, at + 16);
    uint64_t kipsBits = getU64(payload, at + 24);
    std::memcpy(&sample.kips, &kipsBits, sizeof(sample.kips));
    sample.rssBytes = getU64(payload, at + 32);
    uint32_t labelLen = getU32(payload, at + 40);
    if (labelLen > sampleMaxLabel)
        return false;
    if (payload.size() != sampleFixedBytes + labelLen)
        return false;
    sample.label = payload.substr(sampleFixedBytes, labelLen);
    return true;
}

bool
isSamplePayload(const std::string &payload)
{
    return payload.size() >= sizeof(sampleMagic) &&
           std::memcmp(payload.data(), sampleMagic,
                       sizeof(sampleMagic)) == 0;
}

uint64_t
currentRssBytes()
{
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long totalPages = 0, rssPages = 0;
    int got = std::fscanf(f, "%llu %llu", &totalPages, &rssPages);
    std::fclose(f);
    if (got != 2)
        return 0;
    long pageBytes = sysconf(_SC_PAGESIZE);
    if (pageBytes <= 0)
        pageBytes = 4096;
    return (uint64_t)rssPages * (uint64_t)pageBytes;
}

// --- worker-side reporter --------------------------------------------

std::atomic<bool> sinkInstalled_{false};

namespace
{

struct SinkState
{
    std::mutex mutex;
    int fd = -1;
    std::function<void(const Sample &)> callback;
    uint64_t intervalNs = 0;
};

SinkState &
sinkState()
{
    static SinkState *s = new SinkState;
    return *s;
}

/** The task the calling thread is reporting on. */
struct TaskCtx
{
    bool active = false;
    uint64_t slot = 0;
    std::string label;
    uint64_t totalInsts = 0;
    uint64_t baseInsts = 0;  ///< insts from completed phases
    uint64_t phaseInsts = 0; ///< last tick() in the current phase
    uint64_t startNs = 0;
    uint64_t lastEmitNs = 0;
};

TaskCtx &
taskCtx()
{
    thread_local TaskCtx ctx;
    return ctx;
}

/** Write all of @p bytes to @p fd, retrying short writes and EINTR. */
void
writeAll(int fd, const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // A dead reader is the parent's problem, not ours: progress
            // is best-effort and the result frame will fail loudly.
            return;
        }
        off += (size_t)n;
    }
}

/** Build and deliver one sample for the calling thread's task. */
void
emitSample(TaskCtx &ctx, uint64_t now)
{
    Sample sample;
    sample.slot = ctx.slot;
    sample.insts = ctx.baseInsts + ctx.phaseInsts;
    sample.totalInsts = ctx.totalInsts;
    double elapsed = (double)(now - ctx.startNs) * 1e-9;
    sample.kips =
        elapsed > 0.0 ? (double)sample.insts * 1e-3 / elapsed : 0.0;
    sample.rssBytes = currentRssBytes();
    sample.label = ctx.label;

    SinkState &sink = sinkState();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (sink.fd >= 0)
        writeAll(sink.fd, proc::encodeFrame("P" + encodeSample(sample)));
    else if (sink.callback)
        sink.callback(sample);
    ctx.lastEmitNs = now;
}

} // namespace

bool
enabled()
{
    return sinkInstalled_.load(std::memory_order_relaxed);
}

void
tickSlow(uint64_t instsDone)
{
    TaskCtx &ctx = taskCtx();
    if (!ctx.active)
        return;
    ctx.phaseInsts = instsDone;
    uint64_t now = nowNs();
    uint64_t interval;
    {
        SinkState &sink = sinkState();
        std::lock_guard<std::mutex> lock(sink.mutex);
        interval = sink.intervalNs;
    }
    if (now - ctx.lastEmitNs < interval)
        return;
    emitSample(ctx, now);
}

void
beginTask(uint64_t slot, const std::string &label, uint64_t totalInsts)
{
    TaskCtx &ctx = taskCtx();
    ctx.active = true;
    ctx.slot = slot;
    ctx.label = label;
    ctx.totalInsts = totalInsts;
    ctx.baseInsts = 0;
    ctx.phaseInsts = 0;
    ctx.startNs = nowNs();
    // Let the first tick() through immediately so short tasks still
    // announce themselves.
    ctx.lastEmitNs = 0;
}

void
phaseDone()
{
    TaskCtx &ctx = taskCtx();
    if (!ctx.active)
        return;
    ctx.baseInsts += ctx.phaseInsts;
    ctx.phaseInsts = 0;
}

void
endTask()
{
    TaskCtx &ctx = taskCtx();
    if (!ctx.active)
        return;
    if (enabled())
        emitSample(ctx, nowNs());
    ctx.active = false;
    ctx.label.clear();
}

void
setFrameSink(int fd, unsigned intervalMs)
{
    SinkState &sink = sinkState();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.fd = fd;
    sink.callback = nullptr;
    sink.intervalNs = (uint64_t)intervalMs * 1000000ull;
    sinkInstalled_.store(true, std::memory_order_relaxed);
}

void
setCallbackSink(std::function<void(const Sample &)> fn,
                unsigned intervalMs)
{
    SinkState &sink = sinkState();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.fd = -1;
    sink.callback = std::move(fn);
    sink.intervalNs = (uint64_t)intervalMs * 1000000ull;
    sinkInstalled_.store(true, std::memory_order_relaxed);
}

void
clearSink()
{
    SinkState &sink = sinkState();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.fd = -1;
    sink.callback = nullptr;
    sinkInstalled_.store(false, std::memory_order_relaxed);
}

// --- broker-side meter -----------------------------------------------

struct Meter::Impl
{
    mutable std::mutex mutex;
    Config config;
    bool tty = false;
    bool finished = false;

    struct SlotState
    {
        Sample sample;
        uint64_t updatedNs = 0;
    };

    std::map<uint64_t, SlotState> active; ///< keyed by slot, so sorted
    size_t done = 0;
    size_t failed = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    uint64_t staleKills = 0;
    uint64_t startNs = 0;
    uint64_t lastDrawNs = 0;
    uint64_t lastJsonNs = 0;
    unsigned lastLoggedPct = 0; ///< non-TTY step tracking
    bool drewMeter = false;     ///< a \r meter line is on screen

    FILE *
    out() const
    {
        return config.out ? config.out : stderr;
    }

    unsigned
    overallPct() const
    {
        if (config.totalRuns == 0)
            return 0;
        return (unsigned)(100 * done / config.totalRuns);
    }

    double
    aggregateKips() const
    {
        double total = 0.0;
        for (const auto &entry : active)
            total += entry.second.sample.kips;
        return total;
    }

    std::string
    renderLine() const
    {
        std::ostringstream line;
        line << "[" << done << "/" << config.totalRuns << "] "
             << overallPct() << "%  " << active.size() << " active";
        double kips = aggregateKips();
        if (kips > 0.0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f", kips);
            line << "  " << buf << " KIPS";
        }
        // Show the farthest-behind active run: it bounds the sweep.
        const SlotState *laggard = nullptr;
        double laggardPct = 101.0;
        for (const auto &entry : active) {
            const Sample &s = entry.second.sample;
            if (s.totalInsts == 0)
                continue;
            double pct = 100.0 * (double)s.insts / (double)s.totalInsts;
            if (pct < laggardPct) {
                laggardPct = pct;
                laggard = &entry.second;
            }
        }
        if (laggard) {
            line << "  " << laggard->sample.label << " "
                 << (unsigned)laggardPct << "%";
        }
        if (failed)
            line << "  failed " << failed;
        if (retries)
            line << "  retries " << retries;
        return line.str();
    }

    std::string
    renderJson() const
    {
        std::ostringstream doc;
        doc << "{\n";
        doc << "  \"total_runs\": " << config.totalRuns << ",\n";
        doc << "  \"done\": " << done << ",\n";
        doc << "  \"failed\": " << failed << ",\n";
        doc << "  \"pct\": " << overallPct() << ",\n";
        doc << "  \"retries\": " << retries << ",\n";
        doc << "  \"timeouts\": " << timeouts << ",\n";
        doc << "  \"stale_kills\": " << staleKills << ",\n";
        doc << "  \"elapsed_seconds\": "
            << jsonNumber((double)(nowNs() - startNs) * 1e-9) << ",\n";
        doc << "  \"aggregate_kips\": " << jsonNumber(aggregateKips())
            << ",\n";
        doc << "  \"active\": [";
        bool first = true;
        for (const auto &entry : active) {
            const Sample &s = entry.second.sample;
            doc << (first ? "\n" : ",\n");
            first = false;
            double pct = s.totalInsts
                             ? 100.0 * (double)s.insts / (double)s.totalInsts
                             : 0.0;
            doc << "    {\"slot\": " << s.slot << ", \"label\": \""
                << jsonEscape(s.label) << "\", \"insts\": " << s.insts
                << ", \"total_insts\": " << s.totalInsts
                << ", \"pct\": " << jsonNumber(pct)
                << ", \"kips\": " << jsonNumber(s.kips)
                << ", \"rss_bytes\": " << s.rssBytes << "}";
        }
        doc << (first ? "]\n" : "\n  ]\n");
        doc << "}\n";
        return doc.str();
    }

    void
    draw(bool force)
    {
        if (config.quiet)
            return;
        uint64_t now = nowNs();
        if (tty) {
            if (!force &&
                now - lastDrawNs <
                    (uint64_t)config.drawIntervalMs * 1000000ull)
                return;
            lastDrawNs = now;
            std::fprintf(out(), "\r\033[K%s", renderLine().c_str());
            std::fflush(out());
            drewMeter = true;
            return;
        }
        // Non-TTY: one machine-readable line per N% step (and on the
        // final flush), so logs stay bounded.
        unsigned pct = overallPct();
        unsigned step = config.nonTtyStepPct ? config.nonTtyStepPct : 10;
        if (!force && pct < lastLoggedPct + step)
            return;
        if (!force)
            lastLoggedPct = pct - pct % step;
        std::fprintf(out(),
                     "progress: done=%zu/%zu pct=%u active=%zu "
                     "kips=%.0f failed=%zu retries=%" PRIu64
                     " timeouts=%" PRIu64 " stale=%" PRIu64 "\n",
                     done, config.totalRuns, pct, active.size(),
                     aggregateKips(), failed, retries, timeouts,
                     staleKills);
        std::fflush(out());
    }

    void
    writeJson(bool force)
    {
        if (config.jsonPath.empty())
            return;
        uint64_t now = nowNs();
        if (!force &&
            now - lastJsonNs <
                (uint64_t)config.jsonIntervalMs * 1000000ull)
            return;
        lastJsonNs = now;
        // Best-effort: losing a progress snapshot must not kill a sweep.
        atomicWriteFile(config.jsonPath, renderJson());
    }
};

Meter::Meter(Config config) : impl_(new Impl)
{
    impl_->config = std::move(config);
    impl_->tty = impl_->config.forceTty ||
                 isatty(fileno(impl_->out())) == 1;
    impl_->startNs = nowNs();
    impl_->lastJsonNs = 0;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->writeJson(true);
}

Meter::~Meter()
{
    finish();
}

void
Meter::update(const Sample &sample)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->finished)
        return;
    Impl::SlotState &state = impl_->active[sample.slot];
    state.sample = sample;
    state.updatedNs = nowNs();
    impl_->draw(false);
    impl_->writeJson(false);
}

void
Meter::runFinished(uint64_t slot, bool ok)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->finished)
        return;
    impl_->active.erase(slot);
    ++impl_->done;
    if (!ok)
        ++impl_->failed;
    impl_->draw(false);
    impl_->writeJson(false);
}

void
Meter::setFarmTotals(uint64_t retries, uint64_t timeouts,
                     uint64_t staleKills)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->retries = retries;
    impl_->timeouts = timeouts;
    impl_->staleKills = staleKills;
}

void
Meter::finish()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->finished)
        return;
    impl_->draw(true);
    if (impl_->tty && impl_->drewMeter && !impl_->config.quiet) {
        std::fprintf(impl_->out(), "\n");
        std::fflush(impl_->out());
    }
    impl_->writeJson(true);
    impl_->finished = true;
}

std::string
Meter::json() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->renderJson();
}

std::string
Meter::line() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->renderLine();
}

} // namespace pubs::progress
