#include "common/checksum.hh"

#include <array>

namespace pubs
{

namespace
{

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace pubs
