#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pubs
{

namespace
{

std::atomic<uint64_t> warnCounter{0};

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace pubs
