#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hh"

namespace pubs
{

namespace
{

std::atomic<uint64_t> warnCounter{0};

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    // Render "file:line: message" into a string and throw it; callers
    // that let it escape main() still see the message via terminate().
    char head[256];
    std::snprintf(head, sizeof(head), "%s:%d: ", file, line);

    va_list args;
    va_start(args, fmt);
    va_list measure;
    va_copy(measure, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, measure);
    va_end(measure);
    std::vector<char> body(needed > 0 ? (size_t)needed + 1 : 1, '\0');
    if (needed > 0)
        std::vsnprintf(body.data(), body.size(), fmt, args);
    va_end(args);

    throw SimError(SimError::Kind::Fatal,
                   std::string(head) + body.data());
}

void
warnImpl(const char *fmt, ...)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace pubs
