/**
 * @file
 * Bit-manipulation helpers: power-of-two math, field extraction, and the
 * XOR-fold hash the paper uses to compress table tags (Section IV, Fig. 7).
 */

#ifndef PUBS_COMMON_BITS_HH
#define PUBS_COMMON_BITS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace pubs
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return v == 0 ? 0 : (unsigned)std::bit_width(v) - 1;
}

/** log2 of a power of two. */
inline unsigned
exactLog2(uint64_t v)
{
    panic_if(!isPowerOf2(v), "exactLog2 of non-power-of-two %llu",
             (unsigned long long)v);
    return floorLog2(v);
}

/** Smallest power of two >= @p v. */
constexpr uint64_t
nextPowerOf2(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Index of the lowest set bit of @p v; @p v must be non-zero. */
inline unsigned
countTrailingZeros(uint64_t v)
{
    return (unsigned)__builtin_ctzll(v);
}

/** A mask with the low @p bits bits set. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << bits) - 1);
}

/** Extract bits [first, first+count) of @p v. */
constexpr uint64_t
bitsOf(uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & mask(count);
}

/**
 * XOR-fold @p value down to @p width bits.
 *
 * This is the hash of Fig. 7: the value is cut into consecutive
 * @p width -bit slices which are XORed together. Used to compress the tag
 * part of a PC into q bits for the brslice_tab (q=8) and conf_tab (q=4).
 */
inline uint64_t
xorFold(uint64_t value, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value;
    uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & mask(width);
        value >>= width;
    }
    return folded;
}

} // namespace pubs

#endif // PUBS_COMMON_BITS_HH
