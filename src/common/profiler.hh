/**
 * @file
 * Hierarchical host-phase profiler: where does the simulator spend
 * *host* time?
 *
 * Usage: pubs::prof::Scope s("sweep/launch"); — an RAII timer that is a
 * few nanoseconds of no-op when profiling is disabled (one relaxed
 * atomic load), and records a nested phase span when enabled. Phases
 * nest by scope: a Scope opened while another is live becomes its
 * child, and aggregation reports count / total / self (total minus
 * children) / max per phase path, merged across threads.
 *
 * Two outputs:
 *  - fillRegistry(): per-path aggregates into a StatRegistry "profile"
 *    group, so the numbers ride along in every stats JSON export;
 *  - traceEventsJson(): Chrome trace-event JSON ("traceEvents" array of
 *    complete "X" events, microsecond timestamps) loadable in Perfetto
 *    or chrome://tracing.
 *
 * Hot-path discipline: per-thread state only (a registry of thread
 * logs, each with its own mutex taken uncontended by its owner), no
 * allocation on the Scope fast path after a phase is first seen, and a
 * bounded trace buffer per thread (drops are counted, never block).
 * The pipeline samples its per-cycle stage scopes every
 * sampleInterval() cycles so the measured overhead stays under the
 * documented 3% budget; the profiler itself never touches simulated
 * state, so enabling it cannot change any simulation output.
 *
 * Fork safety: a forked worker inherits a copy of the parent's state;
 * workers _exit() without exporting, so only the parent's spans reach
 * the trace. Scopes must strictly nest per thread (RAII guarantees it).
 */

#ifndef PUBS_COMMON_PROFILER_HH
#define PUBS_COMMON_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pubs
{
class StatRegistry;
} // namespace pubs

namespace pubs::prof
{

/** Is the profiler recording? (one relaxed load; the Scope fast path) */
bool enabled();

/**
 * Start recording. @p sampleInterval gates the pipeline's per-cycle
 * stage scopes: they are timed on cycles where
 * cycle % sampleInterval == 0 (0 keeps the current / default interval).
 * Idempotent; does not clear previously recorded data.
 */
void enable(uint64_t sampleInterval = 0);

/** Stop recording (recorded data stays until reset()). */
void disable();

/** The pipeline stage-scope sampling interval (cycles). */
uint64_t sampleInterval();

/** Should this cycle's stage phases be timed? */
inline bool
sampleCycle(uint64_t cycle)
{
    extern std::atomic<uint64_t> sampleInterval_;
    return enabled() &&
           cycle % sampleInterval_.load(std::memory_order_relaxed) == 0;
}

/** Honour PUBS_PROF_SAMPLE (cycles) when set; called by enable(). */
void applySampleIntervalFromEnv();

/** Drop all recorded data (aggregates, trace events, drop counts). */
void reset();

/**
 * RAII phase span. @p name must be a string literal (or otherwise
 * outlive the profiler): names are interned by pointer on the fast
 * path. Use '/'-separated names ("sweep/launch") purely as a labelling
 * convention — actual nesting comes from scope nesting.
 */
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (enabled())
            open(name);
    }

    ~Scope()
    {
        if (node_ != UINT32_MAX)
            close();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void open(const char *name);
    void close();

    uint32_t node_ = UINT32_MAX; ///< thread-local tree node; MAX = no-op
    uint64_t startNs_ = 0;
};

/** Aggregated numbers for one phase path. */
struct PhaseStats
{
    std::string path;    ///< "sweep/launch" (parent paths joined by '/')
    uint64_t count = 0;
    double totalSeconds = 0.0;
    double selfSeconds = 0.0; ///< total minus time in child phases
    double maxSeconds = 0.0;  ///< longest single span
};

/**
 * Merge all threads' aggregates, summing identical paths. Sorted by
 * descending total.
 */
std::vector<PhaseStats> aggregate();

/**
 * Publish aggregate() into @p registry as group "profile": per path
 * <path>_count / _total_ms / _self_ms / _max_us (path '/'s become '.'
 * -free flat keys), plus trace bookkeeping (events, dropped).
 */
void fillRegistry(StatRegistry &registry);

/**
 * The recorded spans as one Chrome trace-event JSON document
 * (Perfetto / chrome://tracing loadable; strict RFC 8259).
 */
std::string traceEventsJson();

/** Write traceEventsJson() to @p path atomically; throws on I/O error. */
void writeTrace(const std::string &path);

/** Trace events recorded (across threads), and events dropped to the
 *  per-thread buffer cap. */
uint64_t traceEventCount();
uint64_t traceDroppedCount();

} // namespace pubs::prof

#endif // PUBS_COMMON_PROFILER_HH
