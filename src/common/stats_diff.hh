/**
 * @file
 * Tolerant structural diff of two stats-JSON documents.
 *
 * Byte-diffing JSON works only while every field is bit-deterministic;
 * the moment a document carries host wall-clock (sim_seconds, kips) the
 * comparison degenerates into grep pipelines that silently drop whole
 * lines. This diff walks both DOMs instead: every leaf is compared by
 * dotted path, numbers within |a-b| <= absTol + relTol*max(|a|,|b|)
 * match, and an allowlist of path prefixes excludes the fields whose
 * variance is expected. Everything else — missing keys, extra keys,
 * kind changes, out-of-tolerance values — is a reported mismatch.
 */

#ifndef PUBS_COMMON_STATS_DIFF_HH
#define PUBS_COMMON_STATS_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace pubs
{

struct StatsDiffOptions
{
    /** Absolute tolerance on numeric leaves. */
    double absTol = 0.0;
    /** Relative tolerance on numeric leaves (of max(|a|,|b|)). */
    double relTol = 0.0;
    /**
     * Dotted paths to ignore, each matching itself and its whole
     * subtree: "run.kips" ignores that leaf, "heartbeat" the group.
     * Array elements address as "path[3]".
     */
    std::vector<std::string> allow;
    /** Stop collecting past this many mismatches (0 = unbounded). */
    size_t maxMismatches = 64;
};

struct StatsDiff
{
    /** Human-readable, one line per mismatch, in document order. */
    std::vector<std::string> mismatches;
    uint64_t comparedLeaves = 0; ///< leaves actually compared
    uint64_t ignoredLeaves = 0;  ///< leaves skipped by the allowlist

    bool ok() const { return mismatches.empty(); }
};

/** Diff parsed documents @p a and @p b under @p options. */
StatsDiff diffStatsJson(const json::Value &a, const json::Value &b,
                        const StatsDiffOptions &options);

/**
 * Parse and diff two JSON document strings. A parse failure is
 * reported as a mismatch (the diff can then never be ok()).
 */
StatsDiff diffStatsJsonText(const std::string &a, const std::string &b,
                            const StatsDiffOptions &options);

} // namespace pubs

#endif // PUBS_COMMON_STATS_DIFF_HH
