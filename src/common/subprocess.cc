#include "common/subprocess.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace pubs::proc
{

namespace
{

void
pack32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

uint32_t
unpack32(const char *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= (uint32_t)(uint8_t)in[i] << (8 * i);
    return v;
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    std::string frame;
    frame.reserve(frameHeaderBytes + payload.size());
    pack32(frame, frameMagic);
    pack32(frame, (uint32_t)payload.size());
    pack32(frame, crc32(payload));
    frame += payload;
    return frame;
}

FrameStatus
decodeFrame(const std::string &buffer, std::string &payload)
{
    payload.clear();
    if (buffer.size() < frameHeaderBytes) {
        // A prefix of the header could still become valid — unless the
        // magic already disagrees.
        for (size_t i = 0; i < buffer.size() && i < 4; ++i)
            if ((uint8_t)buffer[i] != ((frameMagic >> (8 * i)) & 0xff))
                return FrameStatus::Corrupt;
        return FrameStatus::Truncated;
    }
    if (unpack32(buffer.data()) != frameMagic)
        return FrameStatus::Corrupt;
    uint32_t length = unpack32(buffer.data() + 4);
    uint32_t crc = unpack32(buffer.data() + 8);
    if (buffer.size() < frameHeaderBytes + (size_t)length)
        return FrameStatus::Truncated;
    if (buffer.size() > frameHeaderBytes + (size_t)length)
        return FrameStatus::Corrupt; // trailing garbage after the frame
    if (crc32(buffer.data() + frameHeaderBytes, (size_t)length) != crc)
        return FrameStatus::Corrupt;
    payload.assign(buffer, frameHeaderBytes, length);
    return FrameStatus::Ok;
}

FrameStatus
nextFrame(std::string &buffer, std::string &payload)
{
    payload.clear();
    if (buffer.size() < frameHeaderBytes) {
        for (size_t i = 0; i < buffer.size() && i < 4; ++i)
            if ((uint8_t)buffer[i] != ((frameMagic >> (8 * i)) & 0xff))
                return FrameStatus::Corrupt;
        return FrameStatus::Truncated;
    }
    if (unpack32(buffer.data()) != frameMagic)
        return FrameStatus::Corrupt;
    uint32_t length = unpack32(buffer.data() + 4);
    uint32_t crc = unpack32(buffer.data() + 8);
    if (buffer.size() < frameHeaderBytes + (size_t)length)
        return FrameStatus::Truncated;
    if (crc32(buffer.data() + frameHeaderBytes, (size_t)length) != crc)
        return FrameStatus::Corrupt;
    payload.assign(buffer, frameHeaderBytes, length);
    buffer.erase(0, frameHeaderBytes + (size_t)length);
    return FrameStatus::Ok;
}

Child
spawnChild(const std::function<void(int writeFd)> &fn)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        throw ProcError(std::string("cannot create worker pipe: ") +
                        std::strerror(errno));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        int saved = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        throw ProcError(std::string("cannot fork worker: ") +
                        std::strerror(saved));
    }
    if (pid == 0) {
        // Worker. Keep only the write end; never return into the
        // parent's stack frames, stdio buffers, or atexit handlers.
        ::close(fds[0]);
        try {
            fn(fds[1]);
        } catch (...) {
            ::_exit(3);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    return Child{pid, fds[0]};
}

std::string
describeStatus(int status)
{
    char buf[96];
    if (WIFEXITED(status)) {
        std::snprintf(buf, sizeof(buf), "exited %d", WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        std::snprintf(buf, sizeof(buf), "killed by signal %d (%s)", sig,
                      strsignal(sig));
    } else {
        std::snprintf(buf, sizeof(buf), "unknown wait status 0x%x",
                      status);
    }
    return buf;
}

bool
FaultPlan::roll(double rate, uint64_t index, uint64_t attempt,
                uint64_t stream) const
{
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    uint64_t h = splitmix64(seed ^ splitmix64(index * 0x100000001b3ull ^
                                              attempt * 0x9e3779b1ull ^
                                              stream));
    // Top 53 bits -> uniform double in [0, 1).
    double u = (double)(h >> 11) * 0x1.0p-53;
    return u < rate;
}

bool
parseFaultPlan(const std::string &spec, FaultPlan &out, std::string &error)
{
    out = FaultPlan{};
    error.clear();
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        std::string directive = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (directive.empty())
            continue;

        // Split "name[:a[:b]]".
        std::string fields[3];
        size_t nFields = 0;
        size_t pos = 0;
        while (nFields < 3) {
            size_t colon = directive.find(':', pos);
            fields[nFields++] = directive.substr(
                pos, colon == std::string::npos ? std::string::npos
                                                : colon - pos);
            if (colon == std::string::npos)
                break;
            pos = colon + 1;
        }

        auto parseNumber = [&](const std::string &text, double &value) {
            char *end = nullptr;
            value = std::strtod(text.c_str(), &end);
            return end != text.c_str() && *end == '\0';
        };

        const std::string &name = fields[0];
        if (name == "killafter") {
            double n = 0.0;
            if (nFields < 2 || !parseNumber(fields[1], n) || n < 1.0) {
                error = "killafter wants a positive count, got '" +
                        directive + "'";
                return false;
            }
            out.killAfter = (uint64_t)n;
            continue;
        }

        double rate = 1.0;
        if (nFields >= 2 && !fields[1].empty()) {
            if (!parseNumber(fields[1], rate) || rate < 0.0 ||
                rate > 1.0) {
                error = "bad rate in '" + directive +
                        "' (want 0.0 .. 1.0)";
                return false;
            }
        }
        if (nFields >= 3 && !fields[2].empty()) {
            double seed = 0.0;
            if (!parseNumber(fields[2], seed) || seed < 0.0) {
                error = "bad seed in '" + directive + "'";
                return false;
            }
            out.seed = (uint64_t)seed;
        }

        if (name == "crash") {
            out.crashRate = rate;
        } else if (name == "hang") {
            out.hangRate = rate;
        } else if (name == "corrupt") {
            out.corruptRate = rate;
        } else {
            error = "unknown fault kind '" + name +
                    "' (want crash, hang, corrupt, or killafter)";
            return false;
        }
    }
    return true;
}

FaultPlan
faultPlanFromEnv()
{
    const char *value = std::getenv("PUBS_FAULT");
    if (!value || !*value)
        return FaultPlan{};
    FaultPlan plan;
    std::string error;
    if (!parseFaultPlan(value, plan, error)) {
        warn_once("ignoring malformed PUBS_FAULT '%s': %s", value,
                  error.c_str());
        return FaultPlan{};
    }
    return plan;
}

} // namespace pubs::proc
