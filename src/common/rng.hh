/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every source of randomness in the simulator (workload data, mode-switch
 * weighted free-list choice, dispatch-order perturbation of the random
 * queue) draws from a seeded Rng so that runs are exactly reproducible.
 */

#ifndef PUBS_COMMON_RNG_HH
#define PUBS_COMMON_RNG_HH

#include <cstdint>

namespace pubs
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialise state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniform 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire-style rejection-free-enough reduction; the slight
        // modulo bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p p (0..1). */
    bool
    chance(double p)
    {
        return toDouble(next()) < p;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toDouble(next()); }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double
    toDouble(uint64_t v)
    {
        return (v >> 11) * (1.0 / 9007199254740992.0);
    }

    uint64_t state_[4];
};

} // namespace pubs

#endif // PUBS_COMMON_RNG_HH
