/**
 * @file
 * Compiler branch hints for branches the PR-9 CPI stack and host
 * profiler showed to be heavily biased (null telemetry/pipeview/checker
 * pointers, valid in-flight slots, cache hits). Pure host-speed hints:
 * they cannot change simulated behaviour, only code layout. PGO builds
 * (PUBS_PGO=use) override them with measured probabilities.
 */

#ifndef PUBS_COMMON_HINTS_HH
#define PUBS_COMMON_HINTS_HH

#if defined(__GNUC__) || defined(__clang__)
#define PUBS_LIKELY(x) __builtin_expect(!!(x), 1)
#define PUBS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define PUBS_LIKELY(x) (x)
#define PUBS_UNLIKELY(x) (x)
#endif

#endif // PUBS_COMMON_HINTS_HH
