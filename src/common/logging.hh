/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef PUBS_COMMON_LOGGING_HH
#define PUBS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pubs
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Count of warn() calls so far (used by tests). */
uint64_t warnCount();

} // namespace pubs

#define panic(...) ::pubs::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::pubs::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::pubs::warnImpl(__VA_ARGS__)
#define inform(...) ::pubs::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // PUBS_COMMON_LOGGING_HH
