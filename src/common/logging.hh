/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a simulator bug); the
 *            simulated state cannot be trusted, so the process aborts.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            corrupt input). Throws pubs::SimError so batch drivers can
 *            report the failing run, skip it, and continue; an uncaught
 *            fatal still terminates the process with the message.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef PUBS_COMMON_LOGGING_HH
#define PUBS_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>

namespace pubs
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Throws pubs::SimError (Kind::Fatal). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Count of warn() calls so far (used by tests). */
uint64_t warnCount();

} // namespace pubs

#define panic(...) ::pubs::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::pubs::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::pubs::warnImpl(__VA_ARGS__)
#define inform(...) ::pubs::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

/** warn() if the condition holds. */
#define warn_if(cond, ...)                                                   \
    do {                                                                     \
        if (cond)                                                            \
            warn(__VA_ARGS__);                                               \
    } while (0)

/** warn() only the first time this site is reached (thread-safe: sweep
 *  runs hit shared sites from many pool workers concurrently). */
#define warn_once(...)                                                       \
    do {                                                                     \
        static std::atomic<bool> warned_once_{false};                        \
        if (!warned_once_.exchange(true, std::memory_order_relaxed))         \
            warn(__VA_ARGS__);                                               \
    } while (0)

/** warn_once() if the condition holds. */
#define warn_if_once(cond, ...)                                              \
    do {                                                                     \
        if (cond)                                                            \
            warn_once(__VA_ARGS__);                                          \
    } while (0)

#endif // PUBS_COMMON_LOGGING_HH
