#include "common/error.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace pubs
{

const char *
SimError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Fatal: return "fatal";
      case Kind::Config: return "config";
      case Kind::Trace: return "trace";
      case Kind::Check: return "check";
      case Kind::Audit: return "audit";
      case Kind::Proc: return "proc";
      case Kind::Checkpoint: return "checkpoint";
    }
    return "unknown";
}

const char *
checkPolicyName(CheckPolicy policy)
{
    switch (policy) {
      case CheckPolicy::Off: return "off";
      case CheckPolicy::Warn: return "warn";
      case CheckPolicy::Throw: return "throw";
      case CheckPolicy::Abort: return "abort";
    }
    return "unknown";
}

bool
parseCheckPolicy(const std::string &name, CheckPolicy &out)
{
    if (name == "off") {
        out = CheckPolicy::Off;
    } else if (name == "warn") {
        out = CheckPolicy::Warn;
    } else if (name == "throw") {
        out = CheckPolicy::Throw;
    } else if (name == "abort") {
        out = CheckPolicy::Abort;
    } else {
        return false;
    }
    return true;
}

CheckPolicy
checkPolicyFromEnv(CheckPolicy configured)
{
    const char *value = std::getenv("PUBS_CHECK");
    if (!value || !*value)
        return configured;
    CheckPolicy parsed;
    if (!parseCheckPolicy(value, parsed)) {
        warn("PUBS_CHECK='%s' is not off/warn/throw/abort; using '%s'",
             value, checkPolicyName(configured));
        return configured;
    }
    return parsed;
}

void
reportViolation(CheckPolicy policy, SimError::Kind kind,
                const std::string &message)
{
    switch (policy) {
      case CheckPolicy::Off:
        return;
      case CheckPolicy::Warn:
        warn("%s violation: %s", SimError::kindName(kind), message.c_str());
        return;
      case CheckPolicy::Throw:
        switch (kind) {
          case SimError::Kind::Check:
            throw CheckError(message);
          case SimError::Kind::Audit:
            throw AuditError(message);
          case SimError::Kind::Config:
            throw ConfigError(message);
          case SimError::Kind::Trace:
            throw TraceError(message);
          default:
            throw SimError(kind, message);
        }
      case CheckPolicy::Abort:
        std::fprintf(stderr, "%s violation (PUBS_CHECK=abort): %s\n",
                     SimError::kindName(kind), message.c_str());
        std::abort();
    }
}

} // namespace pubs
