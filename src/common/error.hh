/**
 * @file
 * Recoverable simulation errors and verification policies.
 *
 * Historically every configuration or input problem ended the process via
 * fatal()'s exit(1). A production sweep running thousands of
 * configurations cannot afford that: one corrupt trace or impossible
 * parameter combination must be reported, skipped, and survived. All
 * user-recoverable failures therefore throw SimError (fatal() itself now
 * throws — see logging.hh); panic() still aborts, because it marks a
 * simulator bug whose state cannot be trusted.
 *
 * CheckPolicy selects what the verification subsystem (the lockstep
 * commit checker of sim/checker.hh and the structural auditor of
 * cpu/audit.hh) does when it finds a violation. The PUBS_CHECK
 * environment variable overrides the configured policy at run time.
 */

#ifndef PUBS_COMMON_ERROR_HH
#define PUBS_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace pubs
{

/** A recoverable simulation failure: report, skip the run, continue. */
class SimError : public std::runtime_error
{
  public:
    enum class Kind
    {
        Fatal,  ///< generic fatal() (impossible request)
        Config, ///< rejected by CoreParams::validate()
        Trace,  ///< malformed or corrupt trace file
        Check,  ///< lockstep commit-checker divergence
        Audit,  ///< structural pipeline invariant violated
        Proc,   ///< worker process failed (crash, hang, corrupt frame)
        Checkpoint, ///< corrupt/incompatible checkpoint, or bad save point
    };

    SimError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/** A configuration the simulator cannot honour. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &message)
        : SimError(Kind::Config, message)
    {}
};

/** A trace file that cannot be trusted. */
class TraceError : public SimError
{
  public:
    explicit TraceError(const std::string &message)
        : SimError(Kind::Trace, message)
    {}
};

/** The timing pipeline diverged from the reference emulator. */
class CheckError : public SimError
{
  public:
    explicit CheckError(const std::string &message)
        : SimError(Kind::Check, message)
    {}
};

/** A structural invariant of the pipeline no longer holds. */
class AuditError : public SimError
{
  public:
    explicit AuditError(const std::string &message)
        : SimError(Kind::Audit, message)
    {}
};

/**
 * A worker process failed beyond recovery: it crashed, hung past its
 * timeout, or returned a corrupt result frame on every allowed attempt.
 * The run it carried is skipped; the sweep continues.
 */
class ProcError : public SimError
{
  public:
    explicit ProcError(const std::string &message)
        : SimError(Kind::Proc, message)
    {}
};

/**
 * A checkpoint that cannot be trusted (truncated, bit-flipped, produced
 * by another format version or an incompatible machine/workload), or a
 * save/restore request at a point the simulator cannot honour.
 */
class CheckpointError : public SimError
{
  public:
    explicit CheckpointError(const std::string &message)
        : SimError(Kind::Checkpoint, message)
    {}
};

/** What to do when the checker or auditor finds a violation. */
enum class CheckPolicy
{
    Off,   ///< do not run the check at all
    Warn,  ///< report via warn() and continue
    Throw, ///< throw CheckError / AuditError (sweeps skip the config)
    Abort, ///< print and abort() (for debugging under a debugger)
};

const char *checkPolicyName(CheckPolicy policy);

/**
 * Parse a policy name ("off", "warn", "throw", "abort").
 * @return true and set @p out on success; false on unknown names.
 */
bool parseCheckPolicy(const std::string &name, CheckPolicy &out);

/**
 * The policy requested by the PUBS_CHECK environment variable, or
 * @p configured when the variable is unset. An unparsable value warns
 * and falls back to @p configured.
 */
CheckPolicy checkPolicyFromEnv(CheckPolicy configured);

/**
 * Apply @p policy to a violation: warn, throw the SimError subclass for
 * @p kind, or abort. A policy of Off ignores the violation (callers
 * normally skip the check entirely).
 */
void reportViolation(CheckPolicy policy, SimError::Kind kind,
                     const std::string &message);

} // namespace pubs

#endif // PUBS_COMMON_ERROR_HH
