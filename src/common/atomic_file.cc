#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hh"

namespace pubs
{

namespace
{

std::string
errnoText(const char *what, const std::string &path)
{
    return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

} // namespace

std::string
atomicWriteFile(const std::string &path, const std::string &contents)
{
    std::string tmp = path + ".tmp." + std::to_string((long)::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return errnoText("cannot create temp file", tmp);

    size_t written = 0;
    while (written < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + written,
                            contents.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::string error = errnoText("cannot write", tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return error;
        }
        written += (size_t)n;
    }

    // The rename only commits bytes that are durable; without the fsync
    // a crash could publish a correctly named but truncated file.
    if (::fsync(fd) != 0) {
        std::string error = errnoText("cannot fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return error;
    }
    if (::close(fd) != 0) {
        std::string error = errnoText("cannot close", tmp);
        ::unlink(tmp.c_str());
        return error;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        std::string error =
            errnoText(("cannot rename over '" + path + "' from").c_str(),
                      tmp);
        ::unlink(tmp.c_str());
        return error;
    }
    return "";
}

void
atomicWriteFileOrThrow(const std::string &path, const std::string &contents)
{
    std::string error = atomicWriteFile(path, contents);
    if (!error.empty())
        throw SimError(SimError::Kind::Fatal, error);
}

std::string
atomicAppendFile(const std::string &path, const std::string &header,
                 const std::string &tail)
{
    std::string contents;
    if (!readWholeFile(path, contents))
        contents = header;
    contents += tail;
    return atomicWriteFile(path, contents);
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    out.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return false;
    out = buffer.str();
    return true;
}

} // namespace pubs
