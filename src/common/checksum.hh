/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to protect
 * every byte that crosses a crash boundary: proc-pool pipe frames,
 * sweep-journal records, and any other payload whose torn or bit-flipped
 * remains must be detected rather than trusted.
 */

#ifndef PUBS_COMMON_CHECKSUM_HH
#define PUBS_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace pubs
{

/**
 * CRC32 of @p len bytes at @p data. Chain blocks by passing the
 * previous return value as @p seed (the usual pre/post inversion is
 * handled internally, so crc32(b) == crc32(b2, crc32(b1)) for b1+b2).
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

inline uint32_t
crc32(const std::string &bytes, uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace pubs

#endif // PUBS_COMMON_CHECKSUM_HH
