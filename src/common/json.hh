/**
 * @file
 * A strict RFC 8259 JSON parser and validator.
 *
 * Every JSON document this repo emits (stats registry exports, sweep
 * statsJson, progress.json, Chrome trace events, the hostspeed record,
 * the dashboard data block) is consumed by tools that hard-fail on
 * invalid JSON — Perfetto, browsers, python json.load, the KIPS gate.
 * This parser is the in-repo referee: tests strict-parse every emitted
 * document through it, and the gate/dashboard read their inputs with it
 * instead of ad-hoc scanning.
 *
 * Strictness: exactly one top-level value, no trailing input, no
 * comments, no trailing commas, no NaN/Infinity literals, strings must
 * be valid UTF-8 with control characters escaped, numbers must match
 * the RFC grammar. Object member order is preserved; duplicate keys are
 * rejected (the RFC allows them, but every document we emit is
 * duplicate-free and a duplicate always indicates an emitter bug).
 */

#ifndef PUBS_COMMON_JSON_HH
#define PUBS_COMMON_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pubs::json
{

/** A parsed JSON value; a small ordered DOM, not a streaming API. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &str() const { return string_; }
    const std::vector<Value> &array() const { return array_; }

    /** Object members in document order. */
    const std::vector<std::pair<std::string, Value>> &members() const
        { return members_; }

    /** Object member by key, or nullptr. */
    const Value *find(const std::string &key) const;

    /** Nested lookup: find("a")->find("b") without the null checks. */
    const Value *find(const std::string &key,
                      const std::string &nested) const;

    /** Number at @p key or @p fallback when absent / not a number. */
    double numberOr(const std::string &key, double fallback) const;

    /** String at @p key or @p fallback when absent / not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::vector<std::pair<std::string, Value>> m);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Parse @p text as one strict RFC 8259 document into @p out.
 * @return true on success; false with @p error set to a
 * "line:column: message" diagnostic on the first violation.
 */
bool parse(const std::string &text, Value &out, std::string &error);

/** Validate without keeping the DOM. */
bool validate(const std::string &text, std::string &error);

/**
 * Parse the file at @p path. @return true on success; false with
 * @p error set (including for an unreadable file).
 */
bool parseFile(const std::string &path, Value &out, std::string &error);

} // namespace pubs::json

#endif // PUBS_COMMON_JSON_HH
