#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace pubs
{

Histogram::Histogram(size_t buckets, uint64_t bucketWidth, BucketScale scale)
    : width_(bucketWidth), scale_(scale), counts_(buckets + 1, 0)
{
    panic_if(buckets == 0, "histogram needs at least one bucket");
    panic_if(bucketWidth == 0, "histogram bucket width must be positive");
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0;
    total_ = 0;
}

void
Histogram::restore(uint64_t width, BucketScale scale,
                   std::vector<uint64_t> counts, uint64_t sum,
                   uint64_t total)
{
    panic_if(counts.empty(), "histogram needs at least one bucket");
    panic_if(width == 0, "histogram bucket width must be positive");
    width_ = width;
    scale_ = scale;
    counts_ = std::move(counts);
    sum_ = sum;
    total_ = total;
}

size_t
Histogram::bucketOf(uint64_t v) const
{
    size_t last = counts_.size() - 1;
    if (scale_ == BucketScale::Log2) {
        size_t idx = v == 0 ? 0 : (size_t)floorLog2(v) + 1;
        return idx < last ? idx : last;
    }
    size_t idx = (size_t)(v / width_);
    return idx < last ? idx : last;
}

uint64_t
Histogram::bucketLow(size_t i) const
{
    panic_if(i >= counts_.size(), "histogram bucket %zu out of range", i);
    if (scale_ == BucketScale::Log2)
        return i == 0 ? 0 : (uint64_t)1 << std::min<size_t>(i - 1, 63);
    return (uint64_t)i * width_;
}

uint64_t
Histogram::percentile(double fraction) const
{
    panic_if(fraction < 0.0 || fraction > 1.0, "bad percentile fraction");
    if (total_ == 0)
        return 0;
    uint64_t threshold = (uint64_t)std::ceil(fraction * (double)total_);
    uint64_t running = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= threshold)
            return bucketLow(i);
    }
    return bucketLow(counts_.size() - 1);
}

void
StatGroup::add(const std::string &key, double value, const std::string &desc)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second].value = value;
        if (!desc.empty())
            entries_[it->second].desc = desc;
        return;
    }
    index_[key] = entries_.size();
    entries_.push_back({key, value, desc});
}

void
StatGroup::addString(const std::string &key, const std::string &value,
                     const std::string &desc)
{
    for (auto &entry : strings_) {
        if (entry.key == key) {
            entry.value = value;
            if (!desc.empty())
                entry.desc = desc;
            return;
        }
    }
    strings_.push_back({key, value, desc});
}

void
StatGroup::addVector(const std::string &key, std::vector<double> values,
                     const std::string &desc)
{
    for (auto &entry : vectors_) {
        if (entry.key == key) {
            entry.values = std::move(values);
            if (!desc.empty())
                entry.desc = desc;
            return;
        }
    }
    vectors_.push_back({key, std::move(values), desc});
}

void
StatGroup::addHistogram(const std::string &key, const Histogram &h,
                        const std::string &desc)
{
    add(key + "_samples", (double)h.samples(), desc);
    add(key + "_mean", h.mean());
    add(key + "_p50", (double)h.percentile(0.5));
    add(key + "_p90", (double)h.percentile(0.9));
    add(key + "_p99", (double)h.percentile(0.99));
    add(key + "_bucket_width",
        h.scale() == BucketScale::Log2 ? 0.0 : (double)h.bucketWidth(),
        h.scale() == BucketScale::Log2 ? "0 = log2-scaled buckets" : "");
    std::vector<double> counts(h.numBuckets());
    for (size_t i = 0; i < h.numBuckets(); ++i)
        counts[i] = (double)h.bucket(i);
    addVector(key + "_buckets", std::move(counts),
              "bucket counts; the last bucket is overflow");
}

bool
StatGroup::has(const std::string &key) const
{
    return index_.count(key) != 0;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = index_.find(key);
    panic_if(it == index_.end(), "stat '%s.%s' not found", name_.c_str(),
             key.c_str());
    return entries_[it->second].value;
}

double
StatGroup::getOr(const std::string &key, double fallback) const
{
    auto it = index_.find(key);
    return it == index_.end() ? fallback : entries_[it->second].value;
}

std::string
StatGroup::format() const
{
    size_t width = 0;
    for (const auto &e : entries_)
        width = std::max(width, name_.size() + 1 + e.key.size());
    for (const auto &e : strings_)
        width = std::max(width, name_.size() + 1 + e.key.size());
    for (const auto &e : vectors_)
        width = std::max(width, name_.size() + 1 + e.key.size());

    std::ostringstream out;
    auto pad = [&](const std::string &full) {
        out << full << std::string(width + 2 - full.size(), ' ');
    };
    for (const auto &e : strings_) {
        pad(name_ + "." + e.key);
        out << e.value;
        if (!e.desc.empty())
            out << "  # " << e.desc;
        out << "\n";
    }
    for (const auto &e : entries_) {
        char value[64];
        if (e.value == std::floor(e.value) && std::abs(e.value) < 1e15) {
            std::snprintf(value, sizeof(value), "%lld",
                          (long long)e.value);
        } else {
            std::snprintf(value, sizeof(value), "%.6f", e.value);
        }
        pad(name_ + "." + e.key);
        out << value;
        if (!e.desc.empty())
            out << "  # " << e.desc;
        out << "\n";
    }
    for (const auto &e : vectors_) {
        pad(name_ + "." + e.key);
        out << "vector[" << e.values.size() << "]";
        if (!e.desc.empty())
            out << "  # " << e.desc;
        out << "\n";
    }
    return out.str();
}

StatGroup &
StatRegistry::group(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return *groups_[it->second];
    index_[name] = groups_.size();
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

const StatGroup *
StatRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : groups_[it->second].get();
}

std::string
StatRegistry::renderText() const
{
    std::ostringstream out;
    for (const auto &group : groups_)
        out << group->format();
    return out.str();
}

namespace
{

/** Ordered JSON object tree assembled from dotted group names. */
struct JsonNode
{
    const StatGroup *group = nullptr;
    std::vector<std::pair<std::string, JsonNode>> children;

    JsonNode &
    child(const std::string &name)
    {
        for (auto &entry : children) {
            if (entry.first == name)
                return entry.second;
        }
        children.emplace_back(name, JsonNode{});
        return children.back().second;
    }
};

void
emitNode(std::ostringstream &out, const JsonNode &node, int depth)
{
    std::string indent((size_t)depth * 2, ' ');
    std::string inner((size_t)(depth + 1) * 2, ' ');
    out << "{";
    bool first = true;
    auto sep = [&]() {
        out << (first ? "\n" : ",\n") << inner;
        first = false;
    };
    if (node.group) {
        for (const auto &e : node.group->stringEntries()) {
            sep();
            out << "\"" << jsonEscape(e.key) << "\": \""
                << jsonEscape(e.value) << "\"";
        }
        for (const auto &e : node.group->entries()) {
            sep();
            out << "\"" << jsonEscape(e.key) << "\": " << jsonNumber(e.value);
        }
        for (const auto &e : node.group->vectorEntries()) {
            sep();
            out << "\"" << jsonEscape(e.key) << "\": [";
            for (size_t i = 0; i < e.values.size(); ++i)
                out << (i ? ", " : "") << jsonNumber(e.values[i]);
            out << "]";
        }
    }
    for (const auto &entry : node.children) {
        sep();
        out << "\"" << jsonEscape(entry.first) << "\": ";
        emitNode(out, entry.second, depth + 1);
    }
    if (!first)
        out << "\n" << indent;
    out << "}";
}

} // namespace

std::string
StatRegistry::renderJson() const
{
    JsonNode root;
    for (const auto &group : groups_) {
        JsonNode *node = &root;
        const std::string &name = group->name();
        size_t start = 0;
        while (true) {
            size_t dot = name.find('.', start);
            std::string part = name.substr(
                start, dot == std::string::npos ? dot : dot - start);
            node = &node->child(part);
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        node->group = group.get();
    }
    std::ostringstream out;
    emitNode(out, root, 0);
    out << "\n";
    return out.str();
}

void
StatRegistry::writeJson(const std::string &path) const
{
    // Temp-file + rename: a crash or kill mid-export leaves either the
    // previous complete JSON or the new one, never a truncated file.
    atomicWriteFileOrThrow(path, renderJson());
}

namespace
{

/**
 * Length of the valid UTF-8 sequence starting at s[i], or 0 if the
 * bytes there are not well-formed (invalid lead, truncated or overlong
 * sequence, surrogate, out of range). RFC 8259 interchange requires
 * valid UTF-8, and strict consumers (browsers, Perfetto, json.load)
 * reject documents carrying raw invalid bytes.
 */
size_t
utf8SequenceLength(const std::string &s, size_t i)
{
    unsigned char lead = (unsigned char)s[i];
    size_t extra;
    unsigned cp;
    if ((lead & 0xe0) == 0xc0) {
        extra = 1;
        cp = lead & 0x1f;
    } else if ((lead & 0xf0) == 0xe0) {
        extra = 2;
        cp = lead & 0x0f;
    } else if ((lead & 0xf8) == 0xf0) {
        extra = 3;
        cp = lead & 0x07;
    } else {
        return 0;
    }
    if (i + extra >= s.size())
        return 0;
    for (size_t k = 1; k <= extra; ++k) {
        unsigned char c = (unsigned char)s[i + k];
        if ((c & 0xc0) != 0x80)
            return 0;
        cp = cp << 6 | (c & 0x3f);
    }
    static constexpr unsigned minByLen[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < minByLen[extra] || (cp >= 0xd800 && cp <= 0xdfff) ||
        cp > 0x10ffff) {
        return 0;
    }
    return extra + 1;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        unsigned char c = (unsigned char)s[i];
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else if (c < 0x80) {
                out += (char)c;
            } else if (size_t len = utf8SequenceLength(s, i)) {
                out.append(s, i, len);
                i += len - 1;
            } else {
                // Invalid UTF-8 byte: substitute U+FFFD rather than emit
                // a document strict parsers reject.
                out += "\\ufffd";
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buffer[64];
    if (v == std::floor(v) && std::abs(v) < 1e15)
        std::snprintf(buffer, sizeof(buffer), "%lld", (long long)v);
    else
        std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    return buffer;
}

double
geometricMean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geometric mean of empty set");
    double logSum = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geometric mean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / (double)values.size());
}

double
arithmeticMean(const std::vector<double> &values)
{
    panic_if(values.empty(), "arithmetic mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / (double)values.size();
}

} // namespace pubs
