#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace pubs
{

uint64_t
Histogram::percentile(double fraction) const
{
    panic_if(fraction < 0.0 || fraction > 1.0, "bad percentile fraction");
    if (total_ == 0)
        return 0;
    uint64_t threshold = (uint64_t)std::ceil(fraction * (double)total_);
    uint64_t running = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= threshold)
            return i;
    }
    return counts_.size() - 1;
}

void
StatGroup::add(const std::string &key, double value, const std::string &desc)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second].value = value;
        if (!desc.empty())
            entries_[it->second].desc = desc;
        return;
    }
    index_[key] = entries_.size();
    entries_.push_back({key, value, desc});
}

bool
StatGroup::has(const std::string &key) const
{
    return index_.count(key) != 0;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = index_.find(key);
    panic_if(it == index_.end(), "stat '%s.%s' not found", name_.c_str(),
             key.c_str());
    return entries_[it->second].value;
}

double
StatGroup::getOr(const std::string &key, double fallback) const
{
    auto it = index_.find(key);
    return it == index_.end() ? fallback : entries_[it->second].value;
}

std::string
StatGroup::format() const
{
    size_t width = 0;
    for (const auto &e : entries_)
        width = std::max(width, name_.size() + 1 + e.key.size());

    std::ostringstream out;
    for (const auto &e : entries_) {
        std::string full = name_ + "." + e.key;
        char value[64];
        if (e.value == std::floor(e.value) && std::abs(e.value) < 1e15) {
            std::snprintf(value, sizeof(value), "%lld",
                          (long long)e.value);
        } else {
            std::snprintf(value, sizeof(value), "%.6f", e.value);
        }
        out << full << std::string(width + 2 - full.size(), ' ') << value;
        if (!e.desc.empty())
            out << "  # " << e.desc;
        out << "\n";
    }
    return out.str();
}

double
geometricMean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geometric mean of empty set");
    double logSum = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geometric mean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / (double)values.size());
}

double
arithmeticMean(const std::vector<double> &values)
{
    panic_if(values.empty(), "arithmetic mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / (double)values.size();
}

} // namespace pubs
