/**
 * @file
 * Binary serialization for architectural checkpoints. Every multi-byte
 * value is written little-endian regardless of host order, objects are
 * bracketed by CRC-tagged markers so a reader that drifts out of sync
 * fails loudly at the next bracket instead of silently misdecoding, and
 * every read is bounds-checked against the payload — a truncated or
 * bit-flipped checkpoint surfaces as a typed CheckpointError, mirroring
 * the trace reader's corruption contract.
 */

#ifndef PUBS_COMMON_SERIALIZE_HH
#define PUBS_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace pubs
{

/** Append-only little-endian byte sink for checkpoint payloads. */
class Serializer
{
  public:
    void u8(uint8_t v) { out_.push_back((char)v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v) { u64((uint64_t)v); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** IEEE-754 bit pattern, so doubles round-trip bit-exactly. */
    void f64(double v);
    /** Length-prefixed string (u32 length + raw bytes). */
    void str(const std::string &s);
    void bytes(const void *data, size_t len);

    /** Open/close a named section; the tag is checked on read. */
    void beginObject(const char *tag);
    void endObject(const char *tag);

    const std::string &data() const { return out_; }
    size_t size() const { return out_.size(); }

  private:
    std::string out_;
};

/**
 * Bounds-checked reader for Serializer output. Every underflow, tag
 * mismatch or length overflow throws CheckpointError.
 */
class Deserializer
{
  public:
    Deserializer(const void *data, size_t len)
        : data_((const uint8_t *)data), len_(len)
    {}
    explicit Deserializer(const std::string &bytes)
        : Deserializer(bytes.data(), bytes.size())
    {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int64_t i64() { return (int64_t)u64(); }
    bool boolean();
    double f64();
    std::string str();
    void bytes(void *out, size_t len);

    void beginObject(const char *tag);
    void endObject(const char *tag);

    size_t remaining() const { return len_ - pos_; }
    bool exhausted() const { return pos_ == len_; }
    /** Throw unless every payload byte has been consumed. */
    void expectEnd() const;

  private:
    const uint8_t *need(size_t n);

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

/**
 * Length-prefixed vector of fixed-width integers, element width inferred
 * from the value type. Reading throws CheckpointError when the stored
 * length differs from the live vector's — table geometry is part of the
 * machine configuration, not of the checkpoint.
 */
template <typename T>
void
writeTable(Serializer &s, const std::vector<T> &v)
{
    static_assert(std::is_integral_v<T>);
    s.u32((uint32_t)v.size());
    for (T e : v) {
        if constexpr (sizeof(T) == 1)
            s.u8((uint8_t)e);
        else if constexpr (sizeof(T) == 2)
            s.u16((uint16_t)e);
        else if constexpr (sizeof(T) == 4)
            s.u32((uint32_t)e);
        else
            s.u64((uint64_t)e);
    }
}

/** Throws CheckpointError on a length mismatch (see writeTable). */
void checkTableLength(uint32_t stored, size_t live, const char *what);

template <typename T>
void
readTable(Deserializer &d, std::vector<T> &v, const char *what)
{
    static_assert(std::is_integral_v<T>);
    checkTableLength(d.u32(), v.size(), what);
    for (T &e : v) {
        if constexpr (sizeof(T) == 1)
            e = (T)d.u8();
        else if constexpr (sizeof(T) == 2)
            e = (T)d.u16();
        else if constexpr (sizeof(T) == 4)
            e = (T)d.u32();
        else
            e = (T)d.u64();
    }
}

/** A component whose warm state can round-trip through a checkpoint. */
class Serializable
{
  public:
    virtual ~Serializable() = default;
    virtual void serialize(Serializer &s) const = 0;
    virtual void unserialize(Deserializer &d) = 0;
};

} // namespace pubs

#endif // PUBS_COMMON_SERIALIZE_HH
