/**
 * @file
 * Crash-safe file emission: every stats/CSV/JSON output is staged into a
 * temporary file in the destination directory, flushed to disk, and
 * renamed over the target in one atomic step. A reader (or a sweep
 * resumed after a kill) therefore sees either the previous complete
 * file or the new complete file — never a half-written one.
 */

#ifndef PUBS_COMMON_ATOMIC_FILE_HH
#define PUBS_COMMON_ATOMIC_FILE_HH

#include <string>

namespace pubs
{

/**
 * Replace @p path with @p contents via write-temp-then-rename (temp file
 * `<path>.tmp.<pid>` in the same directory, fsync'd before the rename).
 * @return empty string on success, a human-readable error otherwise;
 * the temp file is removed on failure.
 */
std::string atomicWriteFile(const std::string &path,
                            const std::string &contents);

/**
 * atomicWriteFile() that throws SimError (Kind::Fatal) on failure, for
 * callers whose output is the point of the run (stats JSON export).
 */
void atomicWriteFileOrThrow(const std::string &path,
                            const std::string &contents);

/**
 * Append @p tail to @p path atomically: read the existing file (absent
 * counts as empty, and @p header is prepended then), concatenate, and
 * atomicWriteFile() the result. Serialise concurrent appenders yourself;
 * this guards against torn files, not lost updates.
 * @return empty string on success, error text otherwise.
 */
std::string atomicAppendFile(const std::string &path,
                             const std::string &header,
                             const std::string &tail);

/**
 * Read the whole of @p path into @p out.
 * @return true on success; false (with @p out cleared) if the file does
 * not exist or cannot be read.
 */
bool readWholeFile(const std::string &path, std::string &out);

} // namespace pubs

#endif // PUBS_COMMON_ATOMIC_FILE_HH
