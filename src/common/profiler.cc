#include "common/profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace pubs::prof
{

std::atomic<uint64_t> sampleInterval_{1024};

namespace
{

std::atomic<bool> enabled_{false};

/** Epoch all timestamps are relative to (first enable()). */
std::atomic<uint64_t> epochNs_{0};

uint64_t
nowNs()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One finished span destined for the Chrome trace. */
struct TraceEvent
{
    const char *name;
    uint64_t startNs; ///< relative to the epoch
    uint64_t durNs;
};

/** Aggregation-tree node: one phase path within one thread. */
struct Node
{
    const char *name;
    uint32_t parent;    ///< index into the owning log's nodes; MAX = root
    uint64_t count = 0;
    uint64_t totalNs = 0;
    uint64_t childNs = 0; ///< time spent in direct children
    uint64_t maxNs = 0;
};

/** Cap on buffered trace events per thread; drops are counted. */
constexpr size_t traceCapacity = 1 << 17;

struct ThreadLog
{
    std::mutex mutex; ///< uncontended for the owner; taken by exporters
    std::vector<Node> nodes;
    std::vector<uint32_t> stack; ///< indices of open scopes
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
    uint32_t tid = 0;

    /** Child of @p parent named @p name, created on first use. */
    uint32_t
    child(uint32_t parent, const char *name)
    {
        for (uint32_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].parent == parent && nodes[i].name == name)
                return i;
        }
        nodes.push_back(Node{name, parent});
        return (uint32_t)nodes.size() - 1;
    }
};

struct Registry
{
    std::mutex mutex;
    std::vector<ThreadLog *> logs; ///< leaked on thread exit; see note
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

/**
 * The calling thread's log. Logs are never freed: exporters may walk
 * them after the owning thread exited (pool threads die before the
 * driver exports), and the handful of pool threads per process makes
 * the leak irrelevant.
 */
ThreadLog &
threadLog()
{
    thread_local ThreadLog *log = [] {
        auto *fresh = new ThreadLog;
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        fresh->tid = (uint32_t)r.logs.size();
        r.logs.push_back(fresh);
        return fresh;
    }();
    return *log;
}

/** Join the path of @p node by walking parents ("sweep/launch"). */
std::string
nodePath(const std::vector<Node> &nodes, uint32_t index)
{
    std::vector<const char *> parts;
    for (uint32_t i = index; i != UINT32_MAX; i = nodes[i].parent)
        parts.push_back(nodes[i].name);
    std::string path;
    for (size_t i = parts.size(); i-- > 0;) {
        if (!path.empty())
            path += '/';
        path += parts[i];
    }
    return path;
}

} // namespace

bool
enabled()
{
    return enabled_.load(std::memory_order_relaxed);
}

void
applySampleIntervalFromEnv()
{
    const char *value = std::getenv("PUBS_PROF_SAMPLE");
    if (!value || !*value)
        return;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || parsed == 0) {
        warn_once("ignoring malformed PUBS_PROF_SAMPLE '%s'", value);
        return;
    }
    sampleInterval_.store(parsed, std::memory_order_relaxed);
}

void
enable(uint64_t sampleInterval)
{
    if (sampleInterval)
        sampleInterval_.store(sampleInterval, std::memory_order_relaxed);
    applySampleIntervalFromEnv();
    uint64_t expected = 0;
    epochNs_.compare_exchange_strong(expected, nowNs());
    enabled_.store(true, std::memory_order_relaxed);
}

void
disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

uint64_t
sampleInterval()
{
    return sampleInterval_.load(std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadLog *log : r.logs) {
        std::lock_guard<std::mutex> own(log->mutex);
        log->nodes.clear();
        log->stack.clear();
        log->events.clear();
        log->dropped = 0;
    }
    epochNs_.store(enabled() ? nowNs() : 0, std::memory_order_relaxed);
}

void
Scope::open(const char *name)
{
    ThreadLog &log = threadLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    uint32_t parent = log.stack.empty() ? UINT32_MAX : log.stack.back();
    node_ = log.child(parent, name);
    log.stack.push_back(node_);
    startNs_ = nowNs();
}

void
Scope::close()
{
    uint64_t end = nowNs();
    uint64_t dur = end - startNs_;
    ThreadLog &log = threadLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    // RAII guarantees strict nesting, so this scope is the top of the
    // stack — unless reset() ran mid-span, which empties it.
    if (!log.stack.empty() && log.stack.back() == node_) {
        log.stack.pop_back();
        Node &node = log.nodes[node_];
        ++node.count;
        node.totalNs += dur;
        node.maxNs = std::max(node.maxNs, dur);
        if (node.parent != UINT32_MAX)
            log.nodes[node.parent].childNs += dur;
        uint64_t epoch = epochNs_.load(std::memory_order_relaxed);
        if (log.events.size() < traceCapacity) {
            log.events.push_back(TraceEvent{
                node.name, startNs_ > epoch ? startNs_ - epoch : 0, dur});
        } else {
            ++log.dropped;
        }
    }
}

std::vector<PhaseStats>
aggregate()
{
    std::map<std::string, PhaseStats> merged;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadLog *log : r.logs) {
        std::lock_guard<std::mutex> own(log->mutex);
        for (uint32_t i = 0; i < log->nodes.size(); ++i) {
            const Node &node = log->nodes[i];
            if (node.count == 0)
                continue;
            std::string path = nodePath(log->nodes, i);
            PhaseStats &stats = merged[path];
            stats.path = path;
            stats.count += node.count;
            stats.totalSeconds += (double)node.totalNs * 1e-9;
            // Children can slightly overshoot the parent when clock
            // reads straddle; clamp self at zero.
            uint64_t selfNs = node.totalNs > node.childNs
                                  ? node.totalNs - node.childNs
                                  : 0;
            stats.selfSeconds += (double)selfNs * 1e-9;
            stats.maxSeconds =
                std::max(stats.maxSeconds, (double)node.maxNs * 1e-9);
        }
    }
    std::vector<PhaseStats> out;
    out.reserve(merged.size());
    for (auto &entry : merged)
        out.push_back(std::move(entry.second));
    std::sort(out.begin(), out.end(),
              [](const PhaseStats &a, const PhaseStats &b) {
                  return a.totalSeconds > b.totalSeconds;
              });
    return out;
}

void
fillRegistry(StatRegistry &statRegistry)
{
    std::vector<PhaseStats> phases = aggregate();
    StatGroup &group = statRegistry.group("profile");
    group.add("phases", (double)phases.size(),
              "distinct phase paths recorded");
    group.add("trace_events", (double)traceEventCount());
    group.add("trace_dropped", (double)traceDroppedCount(),
              "spans dropped to the per-thread trace buffer cap");
    for (const PhaseStats &phase : phases) {
        // Flatten "sweep/launch" to "sweep_launch": dots would nest
        // JSON groups and slashes read poorly in flat key lists.
        std::string key = phase.path;
        for (char &c : key)
            if (c == '/')
                c = '_';
        group.add(key + "_count", (double)phase.count);
        group.add(key + "_total_ms", phase.totalSeconds * 1e3);
        group.add(key + "_self_ms", phase.selfSeconds * 1e3);
        group.add(key + "_max_us", phase.maxSeconds * 1e6);
    }
}

std::string
traceEventsJson()
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadLog *log : r.logs) {
        std::lock_guard<std::mutex> own(log->mutex);
        for (const TraceEvent &event : log->events) {
            out << (first ? "\n" : ",\n");
            first = false;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          (double)event.startNs * 1e-3);
            out << " {\"name\": \"" << jsonEscape(event.name)
                << "\", \"cat\": \"pubs\", \"ph\": \"X\", \"pid\": 1, "
                   "\"tid\": "
                << log->tid << ", \"ts\": " << buf;
            std::snprintf(buf, sizeof(buf), "%.3f",
                          (double)event.durNs * 1e-3);
            out << ", \"dur\": " << buf << "}";
        }
    }
    out << "\n]}\n";
    return out.str();
}

void
writeTrace(const std::string &path)
{
    atomicWriteFileOrThrow(path, traceEventsJson());
}

uint64_t
traceEventCount()
{
    uint64_t n = 0;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadLog *log : r.logs) {
        std::lock_guard<std::mutex> own(log->mutex);
        n += log->events.size();
    }
    return n;
}

uint64_t
traceDroppedCount()
{
    uint64_t n = 0;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadLog *log : r.logs) {
        std::lock_guard<std::mutex> own(log->mutex);
        n += log->dropped;
    }
    return n;
}

} // namespace pubs::prof
