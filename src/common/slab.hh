/**
 * @file
 * A chunked slab pool: fixed-size records allocated out of stable
 * chunks, addressed by dense uint32_t handles and recycled through a
 * free list. Unlike a std::vector the chunk storage never moves, so
 * references held across an alloc() stay valid; unlike per-node heap
 * allocation the hot-path cost is a free-list pop.
 *
 * The pipeline's wakeup scoreboard uses one for dependent-list overflow
 * nodes; the in-flight instruction ring (pipeline.hh) is the same idiom
 * specialised with identity handles.
 */

#ifndef PUBS_COMMON_SLAB_HH
#define PUBS_COMMON_SLAB_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace pubs
{

template <typename T>
class SlabPool
{
  public:
    static constexpr uint32_t npos = UINT32_MAX;

    /** Allocate a value-initialised record; @return its handle. */
    uint32_t
    alloc()
    {
        uint32_t index;
        if (!freeList_.empty()) {
            index = freeList_.back();
            freeList_.pop_back();
        } else {
            index = (uint32_t)allocated_;
            panic_if(index == npos, "slab pool handle space exhausted");
            if (allocated_ % chunkSize == 0)
                chunks_.push_back(std::make_unique<T[]>(chunkSize));
            ++allocated_;
        }
        ++live_;
        at(index) = T{};
        return index;
    }

    /** Return @p index to the pool. */
    void
    free(uint32_t index)
    {
        panic_if(live_ == 0, "slab pool free with nothing live");
        --live_;
        freeList_.push_back(index);
    }

    T &
    at(uint32_t index)
    {
        return chunks_[index / chunkSize][index % chunkSize];
    }

    const T &
    at(uint32_t index) const
    {
        return chunks_[index / chunkSize][index % chunkSize];
    }

    /** Records currently allocated (for leak auditing). */
    size_t live() const { return live_; }

    /** Records ever created (capacity high-water mark). */
    size_t allocated() const { return allocated_; }

  private:
    static constexpr size_t chunkSize = 64;

    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<uint32_t> freeList_;
    size_t allocated_ = 0;
    size_t live_ = 0;
};

} // namespace pubs

#endif // PUBS_COMMON_SLAB_HH
