/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef PUBS_COMMON_TYPES_HH
#define PUBS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace pubs
{

/** Simulated clock cycle count. */
using Cycle = uint64_t;

/** Byte address in the simulated memory space. */
using Addr = uint64_t;

/** Program counter value. One instruction occupies four bytes. */
using Pc = uint64_t;

/** Architectural (logical) register identifier. */
using RegId = int16_t;

/** Physical register identifier (post-rename). */
using PhysRegId = int16_t;

/** Dynamic-instruction sequence number (monotonically increasing). */
using SeqNum = uint64_t;

/** Sentinel meaning "no register operand". */
constexpr RegId invalidReg = -1;

/** Sentinel meaning "no physical register". */
constexpr PhysRegId invalidPhysReg = -1;

/** Sentinel cycle value meaning "not yet scheduled / never". */
constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/** Number of architectural integer registers. */
constexpr int numIntRegs = 32;

/** Number of architectural floating-point registers. */
constexpr int numFpRegs = 32;

/** Total architectural registers; the def_tab has one row per register. */
constexpr int numLogicalRegs = numIntRegs + numFpRegs;

/** Instruction size in bytes (fixed-width ISA). */
constexpr Addr instBytes = 4;

} // namespace pubs

#endif // PUBS_COMMON_TYPES_HH
