/**
 * @file
 * Live progress plane for long runs and sweep farms.
 *
 * Three pieces:
 *
 *  1. A compact PROGRESS sample codec: (slot, instructions retired,
 *     total budget, KIPS, RSS, label) packed little-endian behind a
 *     magic+version header. ProcPool workers ship these over the
 *     existing CRC-checked pipe frames (typed 'P', interleaved with the
 *     final 'R' result frame), so corruption detection rides the frame
 *     CRC for free.
 *
 *  2. A worker-side reporter: the simulation hot loop calls tick()
 *     (one relaxed atomic load when disabled), and a configured sink —
 *     a pipe fd in forked workers, a callback in thread pools — gets a
 *     rate-limited stream of samples. Task identity (slot, label,
 *     budget) is thread-local, so pool threads report concurrently
 *     without sharing state.
 *
 *  3. A broker-side Meter: aggregates samples from all workers into a
 *     single-line TTY progress readout (carriage-return redraw), a
 *     machine-readable one-line-per-N% fallback on non-TTYs, and an
 *     atomically-rewritten RFC 8259-strict progress.json.
 *
 * Determinism: the progress plane only *observes* (instruction counts,
 * wall clock, RSS) and writes to stderr/fds/progress.json; it never
 * feeds anything back into simulation, so enabling it cannot change
 * any simulation output — the fig8/stats/lockstep byte-exactness
 * contract holds with progress on or off.
 */

#ifndef PUBS_COMMON_PROGRESS_HH
#define PUBS_COMMON_PROGRESS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

namespace pubs::progress
{

// --- sample codec ----------------------------------------------------

/** One progress heartbeat from a worker. */
struct Sample
{
    uint64_t slot = 0;       ///< sweep slot (spec index) being run
    uint64_t insts = 0;      ///< instructions retired so far (all phases)
    uint64_t totalInsts = 0; ///< budget (warmup + measure); 0 = unknown
    double kips = 0.0;       ///< host speed since the task began
    uint64_t rssBytes = 0;   ///< resident set size; 0 = unavailable
    std::string label;       ///< workload / task name
};

/** Serialize @p sample (magic "PBPG" + version + fields + label). */
std::string encodeSample(const Sample &sample);

/**
 * Decode @p payload into @p sample.
 * @return false on bad magic, unknown version, or a short/overlong
 * payload.
 */
bool decodeSample(const std::string &payload, Sample &sample);

/** Does @p payload carry the progress magic? (cheap dispatch test) */
bool isSamplePayload(const std::string &payload);

/** Resident set size of this process in bytes (0 if unavailable). */
uint64_t currentRssBytes();

// --- worker-side reporter --------------------------------------------

/** Is any sink installed? (one relaxed load; the tick fast path) */
bool enabled();

extern std::atomic<bool> sinkInstalled_;

/**
 * Report progress from the simulation loop: @p instsDone instructions
 * retired in the current phase. No-op unless a sink is installed and a
 * task was begun on this thread; rate-limited per thread by the sink's
 * interval. Cheap enough to call every pipeline iteration.
 */
inline void
tick(uint64_t instsDone)
{
    extern void tickSlow(uint64_t instsDone);
    if (sinkInstalled_.load(std::memory_order_relaxed))
        tickSlow(instsDone);
}

/**
 * Declare the task the calling thread is about to run. @p totalInsts
 * is the full budget (warmup + measure) for percent math.
 */
void beginTask(uint64_t slot, const std::string &label,
               uint64_t totalInsts);

/**
 * A new phase (e.g. warmup -> measure) began: instruction counts passed
 * to tick() restart from zero, and completed-phase instructions are
 * folded into the task's running total.
 */
void phaseDone();

/** Emit a final (non-rate-limited) sample and clear the task. */
void endTask();

/**
 * Install a pipe sink: samples are written to @p fd as typed 'P'
 * frames (proc::encodeFrame("P" + encodeSample(...))), at most one per
 * @p intervalMs per thread. Used by forked sweep workers.
 */
void setFrameSink(int fd, unsigned intervalMs);

/**
 * Install a callback sink (thread-pool / in-process runs). @p fn is
 * called from worker threads and must be thread-safe.
 */
void setCallbackSink(std::function<void(const Sample &)> fn,
                     unsigned intervalMs);

/** Remove the sink; tick() returns to the disabled fast path. */
void clearSink();

// --- broker-side meter -----------------------------------------------

/**
 * Aggregates worker samples into a live readout plus progress.json.
 * Thread-safe: update() may be called from pool threads or the broker
 * poll loop.
 *
 * TTY output (stderr is a terminal): one carriage-return-redrawn line
 *     [ 12/36] 33%  4 active  2841 KIPS  mcf_like 41%  retries 1
 * Non-TTY: one machine-readable line per `nonTtyStepPct` of overall
 * completed-run progress:
 *     progress: done=12/36 pct=33 active=4 kips=2841 retries=1 skips=0
 *
 * progress.json (when a path is configured) is rewritten atomically at
 * most every jsonIntervalMs and always on finish(): strict JSON with
 * totals, per-active-slot detail, and farm-health counters.
 */
class Meter
{
  public:
    struct Config
    {
        size_t totalRuns = 0;
        std::string jsonPath;      ///< empty = no progress.json
        FILE *out = nullptr;       ///< nullptr = stderr
        unsigned jsonIntervalMs = 200;
        unsigned drawIntervalMs = 100;
        unsigned nonTtyStepPct = 10;
        bool forceTty = false;     ///< tests: render as if a TTY
        bool quiet = false;        ///< suppress terminal output entirely
    };

    explicit Meter(Config config);
    ~Meter();

    /** A worker heartbeat arrived. */
    void update(const Sample &sample);

    /** A run reached a final outcome (ok or skipped after retries). */
    void runFinished(uint64_t slot, bool ok);

    /**
     * Mirror the pool's farm-health counters (absolute values, read from
     * ProcPoolStats mid-run) into the readout and progress.json.
     */
    void setFarmTotals(uint64_t retries, uint64_t timeouts,
                       uint64_t staleKills);

    /** Final redraw + progress.json flush; idempotent. */
    void finish();

    /** The current progress document (what progress.json holds). */
    std::string json() const;

    /** One rendered status line (without \r/\n decoration). */
    std::string line() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace pubs::progress

#endif // PUBS_COMMON_PROGRESS_HH
