#include "common/serialize.hh"

#include <cstring>

#include "common/error.hh"

namespace pubs
{
namespace
{

/**
 * Object brackets are 4-byte markers derived from the tag name, with
 * distinct begin/end flavours so a begin can never satisfy an end.
 */
constexpr uint32_t beginSalt = 0x0b9ec75u;
constexpr uint32_t endSalt = 0xe9d0b9eu;

uint32_t
tagMark(const char *tag, uint32_t salt)
{
    uint32_t h = salt;
    for (const char *p = tag; *p; ++p)
        h = h * 131u + (uint8_t)*p;
    return h;
}

} // namespace

void
Serializer::u16(uint16_t v)
{
    out_.push_back((char)(v & 0xff));
    out_.push_back((char)(v >> 8));
}

void
Serializer::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back((char)((v >> (8 * i)) & 0xff));
}

void
Serializer::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back((char)((v >> (8 * i)) & 0xff));
}

void
Serializer::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Serializer::str(const std::string &s)
{
    u32((uint32_t)s.size());
    out_.append(s);
}

void
Serializer::bytes(const void *data, size_t len)
{
    out_.append((const char *)data, len);
}

void
Serializer::beginObject(const char *tag)
{
    u32(tagMark(tag, beginSalt));
}

void
Serializer::endObject(const char *tag)
{
    u32(tagMark(tag, endSalt));
}

const uint8_t *
Deserializer::need(size_t n)
{
    if (n > len_ - pos_) {
        throw CheckpointError(
            "checkpoint payload truncated: need " + std::to_string(n) +
            " bytes at offset " + std::to_string(pos_) + ", have " +
            std::to_string(len_ - pos_));
    }
    const uint8_t *at = data_ + pos_;
    pos_ += n;
    return at;
}

uint8_t
Deserializer::u8()
{
    return *need(1);
}

uint16_t
Deserializer::u16()
{
    const uint8_t *p = need(2);
    return (uint16_t)(p[0] | (p[1] << 8));
}

uint32_t
Deserializer::u32()
{
    const uint8_t *p = need(4);
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8) | ((uint32_t)p[2] << 16) |
           ((uint32_t)p[3] << 24);
}

uint64_t
Deserializer::u64()
{
    const uint8_t *p = need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)p[i] << (8 * i);
    return v;
}

bool
Deserializer::boolean()
{
    uint8_t v = u8();
    if (v > 1) {
        throw CheckpointError("checkpoint bool field holds " +
                              std::to_string(v));
    }
    return v != 0;
}

double
Deserializer::f64()
{
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::str()
{
    uint32_t n = u32();
    if (n > len_ - pos_) {
        throw CheckpointError("checkpoint string length " +
                              std::to_string(n) + " overruns payload");
    }
    const uint8_t *p = need(n);
    return std::string((const char *)p, n);
}

void
Deserializer::bytes(void *out, size_t len)
{
    std::memcpy(out, need(len), len);
}

void
Deserializer::beginObject(const char *tag)
{
    uint32_t mark = u32();
    if (mark != tagMark(tag, beginSalt)) {
        throw CheckpointError(std::string("checkpoint section '") + tag +
                              "' begin marker mismatch");
    }
}

void
Deserializer::endObject(const char *tag)
{
    uint32_t mark = u32();
    if (mark != tagMark(tag, endSalt)) {
        throw CheckpointError(std::string("checkpoint section '") + tag +
                              "' end marker mismatch");
    }
}

void
checkTableLength(uint32_t stored, size_t live, const char *what)
{
    if (stored != live) {
        throw CheckpointError(std::string("checkpoint table '") + what +
                              "' holds " + std::to_string(stored) +
                              " entries, expected " + std::to_string(live));
    }
}

void
Deserializer::expectEnd() const
{
    if (!exhausted()) {
        throw CheckpointError("checkpoint payload has " +
                              std::to_string(len_ - pos_) +
                              " trailing bytes");
    }
}

} // namespace pubs
