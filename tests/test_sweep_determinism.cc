/**
 * @file
 * Regression tests for the sweep engine's determinism contract: the
 * same SweepSpec must produce bit-identical results at every job
 * count — results land in pre-assigned slots, each run gets its own
 * seeded RNG, and the aggregated JSON excludes host-clock fields.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/bench_util.hh"
#include "sim/config.hh"
#include "sim/run_pool.hh"
#include "workloads/suite.hh"

namespace pubs::bench
{
namespace
{

/** Small mixed batch: 3 workloads x 2 machines plus one bad config. */
SweepSpec
makeSpec(unsigned jobs)
{
    SweepSpec spec;
    spec.jobs = jobs;
    spec.warmup = 2000;
    spec.insts = 15000;
    spec.verbose = false;
    for (const char *name : {"sjeng_like", "hmmer_like", "mcf_like"}) {
        wl::Workload w = wl::makeWorkload(name);
        spec.add(w, sim::makeConfig(sim::Machine::Base), "base");
        spec.add(std::move(w), sim::makeConfig(sim::Machine::Pubs), "pubs");
    }
    // A config the simulator rejects: PUBS needs the random IQ. The
    // skip row must also aggregate deterministically.
    cpu::CoreParams bad = sim::makeConfig(sim::Machine::Pubs);
    bad.iqKind = iq::IqKind::Shifting;
    spec.add(wl::makeWorkload("hmmer_like"), bad, "bad");
    return spec;
}

void
expectIdenticalRows(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
        SCOPED_TRACE("row " + std::to_string(i));
        const sim::RunResult &ra = a.rows[i].result;
        const sim::RunResult &rb = b.rows[i].result;
        EXPECT_EQ(a.rows[i].ok(), b.rows[i].ok());
        EXPECT_EQ(a.rows[i].error, b.rows[i].error);
        EXPECT_EQ(a.rows[i].errorKind, b.rows[i].errorKind);
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.machine, rb.machine);
        EXPECT_EQ(ra.instructions, rb.instructions);
        EXPECT_EQ(ra.cycles, rb.cycles);
        // Derived doubles come from identical integer counters, so
        // they must be bit-equal, not merely close.
        EXPECT_EQ(ra.ipc, rb.ipc);
        EXPECT_EQ(ra.branchMpki, rb.branchMpki);
        EXPECT_EQ(ra.llcMpki, rb.llcMpki);
        EXPECT_EQ(ra.avgMisspecPenalty, rb.avgMisspecPenalty);
        EXPECT_EQ(ra.avgIqWait, rb.avgIqWait);
        EXPECT_EQ(ra.unconfidentBranchRate, rb.unconfidentBranchRate);
        EXPECT_EQ(ra.pubsEnabledFraction, rb.pubsEnabledFraction);
        EXPECT_EQ(ra.priorityStallCycles, rb.priorityStallCycles);
    }
}

TEST(SweepDeterminism, IdenticalAcrossJobCounts)
{
    ::unsetenv("PUBS_BENCH_CSV");
    std::vector<unsigned> jobCounts{1, 2, sim::RunPool::hardwareThreads()};

    SweepResult reference = runSweep(makeSpec(jobCounts[0]));
    ASSERT_EQ(reference.rows.size(), 7u);
    EXPECT_EQ(reference.failed(), 1u);
    EXPECT_FALSE(reference.ok(6));
    EXPECT_EQ(reference.rows[6].errorKind, "config");
    std::string referenceJson = reference.statsJson();
    EXPECT_FALSE(referenceJson.empty());

    for (size_t j = 1; j < jobCounts.size(); ++j) {
        SCOPED_TRACE("jobs=" + std::to_string(jobCounts[j]));
        SweepResult run = runSweep(makeSpec(jobCounts[j]));
        expectIdenticalRows(reference, run);
        // Byte-identical aggregated JSON is the contract the CI
        // determinism check and the paper figures both rely on.
        EXPECT_EQ(run.statsJson(), referenceJson);
    }
}

TEST(SweepDeterminism, RepeatedRunIsIdentical)
{
    ::unsetenv("PUBS_BENCH_CSV");
    SweepResult first = runSweep(makeSpec(2));
    SweepResult second = runSweep(makeSpec(2));
    expectIdenticalRows(first, second);
    EXPECT_EQ(first.statsJson(), second.statsJson());
}

/** Pin sampling on for one scope, restore the disabled default after. */
class SamplingPin
{
  public:
    SamplingPin(unsigned windows, uint64_t period)
    {
        setSampleWindows(windows);
        setSamplePeriod(period);
        setCheckpointDir("");
    }

    ~SamplingPin()
    {
        setSampleWindows(0);
        setSamplePeriod(0);
        setCheckpointDir("");
    }
};

TEST(SweepDeterminism, SampledSweepIdenticalAcrossJobCounts)
{
    ::unsetenv("PUBS_BENCH_CSV");
    // The sampling knobs are process-global pins (what --sample does);
    // scope them so later tests see sampling disabled again.
    SamplingPin pin(3, 7000);

    SweepResult reference = runSweep(makeSpec(1));
    ASSERT_EQ(reference.rows.size(), 7u);
    EXPECT_EQ(reference.failed(), 1u);
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_TRUE(reference.rows[i].result.sampled) << "row " << i;
        EXPECT_EQ(reference.rows[i].result.windows, 3u) << "row " << i;
    }
    std::string referenceJson = reference.statsJson();
    // Sampled rows must surface their confidence intervals in the JSON.
    EXPECT_NE(referenceJson.find("\"ipc_ci95\""), std::string::npos);
    EXPECT_NE(referenceJson.find("\"sampled\": true"),
              std::string::npos);

    for (unsigned jobs : {2u, sim::RunPool::hardwareThreads()}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        SweepResult run = runSweep(makeSpec(jobs));
        expectIdenticalRows(reference, run);
        EXPECT_EQ(run.statsJson(), referenceJson);
    }
}

TEST(SweepDeterminism, DisabledSamplingKeepsJsonFreeOfSampledFields)
{
    ::unsetenv("PUBS_BENCH_CSV");
    SweepResult run = runSweep(makeSpec(1));
    std::string json = run.statsJson();
    // The non-sampled output contract: byte-identical to pre-sampling
    // builds, so none of the sampled fields may appear.
    EXPECT_EQ(json.find("\"sampled\""), std::string::npos);
    EXPECT_EQ(json.find("ci95"), std::string::npos);
}

TEST(SweepDeterminism, JsonExcludesHostClockFields)
{
    ::unsetenv("PUBS_BENCH_CSV");
    SweepSpec spec;
    spec.jobs = 1;
    spec.warmup = 500;
    spec.insts = 4000;
    spec.verbose = false;
    spec.add(wl::makeWorkload("hmmer_like"),
             sim::makeConfig(sim::Machine::Base), "base");
    SweepResult run = runSweep(spec);
    std::string json = run.statsJson();
    EXPECT_EQ(json.find("sim_seconds"), std::string::npos);
    EXPECT_EQ(json.find("kips"), std::string::npos);
    EXPECT_NE(json.find("\"instructions\""), std::string::npos);
    EXPECT_NE(json.find("\"machine\": \"base\""), std::string::npos);
}

} // namespace
} // namespace pubs::bench
