/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG determinism,
 * statistics containers.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace pubs
{
namespace
{

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1023), 9u);
}

TEST(Bits, NextPowerOf2)
{
    EXPECT_EQ(nextPowerOf2(1), 1u);
    EXPECT_EQ(nextPowerOf2(3), 4u);
    EXPECT_EQ(nextPowerOf2(64), 64u);
    EXPECT_EQ(nextPowerOf2(65), 128u);
}

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bitsOf(0xff, 0, 4), 0xfu);
}

TEST(Bits, XorFoldWidth)
{
    // Folded value always fits in the requested width.
    for (unsigned width = 1; width <= 16; ++width) {
        uint64_t folded = xorFold(0xdeadbeefcafebabeull, width);
        EXPECT_LE(folded, mask(width)) << "width " << width;
    }
}

TEST(Bits, XorFoldKnownValues)
{
    // 0xAB folded to 4 bits: 0xA ^ 0xB = 0x1.
    EXPECT_EQ(xorFold(0xab, 4), 0x1u);
    // Folding to >= operand width is the identity.
    EXPECT_EQ(xorFold(0x1234, 64), 0x1234u);
    EXPECT_EQ(xorFold(0, 8), 0u);
}

TEST(Bits, XorFoldDistinguishesSlices)
{
    // Values differing only above the fold width still differ after
    // folding (XOR mixes the high part in).
    EXPECT_NE(xorFold(0x0100, 8), xorFold(0x0000, 8));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(13), 13u);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR((double)hits / trials, 0.3, 0.01);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(8);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(100); // overflow bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(8), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h(64);
    for (uint64_t v = 0; v < 100; ++v)
        h.sample(v % 10);
    EXPECT_EQ(h.percentile(0.5), 4u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Stats, StatGroupRoundTrip)
{
    StatGroup g("core");
    g.add("ipc", 1.5, "instructions per cycle");
    g.add("cycles", 1000);
    EXPECT_TRUE(g.has("ipc"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_DOUBLE_EQ(g.get("ipc"), 1.5);
    EXPECT_DOUBLE_EQ(g.getOr("nope", -1.0), -1.0);
    // Re-adding overwrites.
    g.add("ipc", 2.0);
    EXPECT_DOUBLE_EQ(g.get("ipc"), 2.0);
    std::string text = g.format();
    EXPECT_NE(text.find("core.ipc"), std::string::npos);
    EXPECT_NE(text.find("instructions per cycle"), std::string::npos);
}

TEST(Stats, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geometricMean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace pubs
