/**
 * @file
 * Checkpoint-determinism test battery (the contract sim/checkpoint.hh
 * pins): fast-forward, save, restore — in the same process or a fresh
 * forked one — then run detailed simulation, and the result must be
 * byte-identical to the same run without the save/restore, for every
 * suite workload on every machine, with the lockstep checker watching.
 *
 * Also covers the container framing (bad magic, stale version,
 * truncation, payload corruption, wrong-program / wrong-machine
 * restores all throw CheckpointError) and the content-addressed
 * CheckpointStore (miss/hit, corrupt artifact degrades to a miss).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "emu/emulator.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/run_pool.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

/**
 * Every deterministic field of a run, doubles rendered as hex floats so
 * comparison is bit-exact: two fingerprints match iff the fig8 row, the
 * stats JSON, and the checker verdict would all match.
 */
std::string
fingerprint(const sim::RunResult &r)
{
    char buf[512];
    const cpu::PipelineStats &p = r.pipeline;
    std::snprintf(
        buf, sizeof(buf),
        "i=%llu c=%llu ipc=%a bmpki=%a lmpki=%a pen=%a iqw=%a ubr=%a "
        "pef=%a psc=%llu | f=%llu cb=%llu cm=%llu ij=%llu im=%llu "
        "btb=%llu llc=%llu l1a=%llu l1m=%llu pd=%llu nd=%llu iq=%llu "
        "rob=%llu conf=%llu iss=%llu wpf=%llu sq=%llu chk=%llu div=%llu "
        "aud=%llu vio=%llu",
        (unsigned long long)r.instructions, (unsigned long long)r.cycles,
        r.ipc, r.branchMpki, r.llcMpki, r.avgMisspecPenalty, r.avgIqWait,
        r.unconfidentBranchRate, r.pubsEnabledFraction,
        (unsigned long long)r.priorityStallCycles,
        (unsigned long long)p.fetched, (unsigned long long)p.condBranches,
        (unsigned long long)p.condMispredicts,
        (unsigned long long)p.indirectJumps,
        (unsigned long long)p.indirectMispredicts,
        (unsigned long long)p.btbMissBubbles,
        (unsigned long long)p.llcMisses, (unsigned long long)p.l1dAccesses,
        (unsigned long long)p.l1dMisses,
        (unsigned long long)p.priorityDispatches,
        (unsigned long long)p.normalDispatches,
        (unsigned long long)p.iqFullStallCycles,
        (unsigned long long)p.robFullStallCycles,
        (unsigned long long)p.issueConflictCycles,
        (unsigned long long)p.issued,
        (unsigned long long)p.wrongPathFetched,
        (unsigned long long)p.squashed,
        (unsigned long long)p.checkerCommits,
        (unsigned long long)p.checkerDivergences,
        (unsigned long long)p.auditsRun,
        (unsigned long long)p.auditViolations);
    return buf;
}

cpu::CoreParams
checkedParams(sim::Machine machine)
{
    cpu::CoreParams params = sim::makeConfig(machine);
    params.checkPolicy = CheckPolicy::Throw;
    params.auditPolicy = CheckPolicy::Throw;
    params.heartbeatInterval = 0;
    return params;
}

/** Fast-forward @p skip then run; the reference an restore must hit. */
std::string
straightThrough(const isa::Program &program, const cpu::CoreParams &params,
                uint64_t skip, uint64_t warmup, uint64_t insts)
{
    sim::Simulator simulator(params, program);
    EXPECT_EQ(simulator.fastForward(skip), skip);
    return fingerprint(simulator.run(warmup, insts));
}

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** A small but structurally complete checkpoint to mutate in tests. */
std::string
makeCheckpointBytes(const std::string &workload = "sjeng_like",
                    sim::Machine machine = sim::Machine::Pubs,
                    uint64_t skip = 5000)
{
    wl::Workload w = wl::makeWorkload(workload);
    sim::Simulator simulator(checkedParams(machine), w.program);
    EXPECT_EQ(simulator.fastForward(skip), skip);
    return simulator.saveCheckpoint(sim::machineName(machine));
}

TEST(Checkpoint, RoundTripMatchesStraightThroughEveryWorkloadEveryMachine)
{
    const std::vector<std::string> names = wl::suiteNames();
    const sim::Machine machines[] = {sim::Machine::Base,
                                     sim::Machine::Pubs, sim::Machine::Age,
                                     sim::Machine::PubsAge};
    const uint64_t warmup = 1000, insts = 5000;

    struct Case
    {
        std::string workload;
        sim::Machine machine;
        uint64_t skip;
        std::string error;
    };
    std::vector<Case> cases;
    for (const std::string &name : names) {
        for (sim::Machine machine : machines) {
            // A deterministic pseudo-random cut point per case, so the
            // save lands at a different instruction count everywhere.
            Rng rng(0xc0de + cases.size() * 7919);
            cases.push_back({name, machine, 2000 + rng.below(15000), ""});
        }
    }

    sim::RunPool pool;
    sim::parallelFor(pool, cases.size(), [&](size_t i) {
        Case &c = cases[i];
        try {
            wl::Workload w = wl::makeWorkload(c.workload);
            cpu::CoreParams params = checkedParams(c.machine);

            std::string straight = straightThrough(w.program, params,
                                                   c.skip, warmup, insts);

            // Save at the cut point in one simulator, restore into a
            // brand-new one, and run the same detailed windows.
            sim::Simulator saver(params, w.program);
            if (saver.fastForward(c.skip) != c.skip) {
                c.error = "short fast-forward";
                return;
            }
            std::string bytes =
                saver.saveCheckpoint(sim::machineName(c.machine));

            sim::Simulator restored(params, w.program);
            restored.restoreCheckpoint(bytes);
            if (restored.fastForwarded() != c.skip) {
                c.error = "restored skip count mismatch";
                return;
            }
            std::string viaCkpt =
                fingerprint(restored.run(warmup, insts));
            if (viaCkpt != straight) {
                c.error = "straight:  " + straight + "\nvia ckpt: " +
                          viaCkpt;
            }
        } catch (const SimError &error) {
            c.error = std::string(SimError::kindName(error.kind())) +
                      ": " + error.what();
        }
    });

    for (const Case &c : cases) {
        EXPECT_EQ(c.error, "")
            << c.workload << " on " << sim::machineName(c.machine)
            << " (skip " << c.skip << ")";
    }
}

TEST(Checkpoint, FreshProcessRestoreMatchesStraightThrough)
{
    const uint64_t skip = 12000, warmup = 2000, insts = 8000;
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = checkedParams(sim::Machine::Pubs);

    std::string path = tempPath("pubs_test_fresh_proc.pubsckpt");
    {
        sim::Simulator saver(params, w.program);
        ASSERT_EQ(saver.fastForward(skip), skip);
        saver.saveCheckpointFile(path, "pubs");
    }
    std::string straight =
        straightThrough(w.program, params, skip, warmup, insts);

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: restore in a process that never saw the save, run, and
        // ship the fingerprint back. Exit codes beat asserts here.
        close(fds[0]);
        std::string fp;
        try {
            wl::Workload cw = wl::makeWorkload("sjeng_like");
            sim::Simulator restored(checkedParams(sim::Machine::Pubs),
                                    cw.program);
            restored.restoreCheckpointFile(path);
            fp = fingerprint(restored.run(warmup, insts));
        } catch (const SimError &error) {
            fp = std::string("error: ") + error.what();
        }
        ssize_t ignored = write(fds[1], fp.data(), fp.size());
        (void)ignored;
        close(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::string fromChild;
    char buf[1024];
    for (ssize_t n; (n = read(fds[0], buf, sizeof(buf))) > 0;)
        fromChild.append(buf, (size_t)n);
    close(fds[0]);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(fromChild, straight);
    std::remove(path.c_str());
}

TEST(Checkpoint, SaveAfterRestoreReproducesTheCheckpoint)
{
    // Restore must leave the simulator in a saveable (pristine) state,
    // and what it saves must describe the same cut point.
    std::string bytes = makeCheckpointBytes("hmmer_like");
    wl::Workload w = wl::makeWorkload("hmmer_like");
    sim::Simulator restored(checkedParams(sim::Machine::Pubs), w.program);
    restored.restoreCheckpoint(bytes);
    std::string again = restored.saveCheckpoint("pubs");
    EXPECT_EQ(sim::readCheckpointMeta(again).skipInsts,
              sim::readCheckpointMeta(bytes).skipInsts);
}

TEST(Checkpoint, RejectsBadMagic)
{
    std::string bytes = makeCheckpointBytes();
    bytes[0] ^= 0x40;
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(checkedParams(sim::Machine::Pubs), w.program);
    try {
        victim.restoreCheckpoint(bytes);
        FAIL() << "bad magic accepted";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("magic"),
                  std::string::npos);
    }
}

TEST(Checkpoint, RejectsStaleFormatVersion)
{
    // A structurally valid container claiming a future format version:
    // both CRCs recomputed, so only the version check can reject it.
    std::string bytes = makeCheckpointBytes();
    const uint32_t future = 99;
    for (int i = 0; i < 4; ++i)
        bytes[8 + i] = (char)((future >> (8 * i)) & 0xff);
    uint32_t headerCrc = crc32(bytes.data(), 24);
    for (int i = 0; i < 4; ++i)
        bytes[24 + i] = (char)((headerCrc >> (8 * i)) & 0xff);

    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(checkedParams(sim::Machine::Pubs), w.program);
    try {
        victim.restoreCheckpoint(bytes);
        FAIL() << "future format version accepted";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("version 99"),
                  std::string::npos);
    }
}

TEST(Checkpoint, RejectsTruncation)
{
    std::string bytes = makeCheckpointBytes();
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(checkedParams(sim::Machine::Pubs), w.program);
    for (size_t keep : {bytes.size() - 1, bytes.size() / 2, (size_t)27,
                        (size_t)0}) {
        SCOPED_TRACE("keep " + std::to_string(keep));
        std::string cut = bytes.substr(0, keep);
        EXPECT_THROW(victim.restoreCheckpoint(cut), CheckpointError);
    }
}

TEST(Checkpoint, RejectsPayloadBitFlip)
{
    std::string bytes = makeCheckpointBytes();
    bytes[bytes.size() / 2] ^= 0x01;
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(checkedParams(sim::Machine::Pubs), w.program);
    EXPECT_THROW(victim.restoreCheckpoint(bytes), CheckpointError);
}

TEST(Checkpoint, RejectsWrongProgram)
{
    std::string bytes = makeCheckpointBytes("sjeng_like");
    wl::Workload other = wl::makeWorkload("mcf_like");
    sim::Simulator victim(checkedParams(sim::Machine::Pubs),
                          other.program);
    try {
        victim.restoreCheckpoint(bytes);
        FAIL() << "wrong-program restore accepted";
    } catch (const CheckpointError &error) {
        EXPECT_NE(std::string(error.what()).find("different program"),
                  std::string::npos);
    }
}

TEST(Checkpoint, RejectsWrongMachineConfig)
{
    std::string bytes =
        makeCheckpointBytes("sjeng_like", sim::Machine::Pubs);
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(checkedParams(sim::Machine::Base), w.program);
    try {
        victim.restoreCheckpoint(bytes);
        FAIL() << "wrong-machine restore accepted";
    } catch (const CheckpointError &error) {
        EXPECT_NE(
            std::string(error.what()).find("machine configuration"),
            std::string::npos);
    }
}

TEST(Checkpoint, TraceReplayCannotCheckpoint)
{
    std::string path = tempPath("pubs_test_ckpt_trace.trc");
    wl::Workload w = wl::makeWorkload("sjeng_like");
    {
        trace::TraceWriter writer(path);
        emu::Emulator emu(w.program);
        trace::DynInst di;
        for (int i = 0; i < 100 && emu.step(di); ++i)
            writer.write(di);
        writer.close();
    }
    sim::Simulator simulator(
        checkedParams(sim::Machine::Base),
        std::make_unique<trace::TraceReader>(path));
    EXPECT_THROW((void)simulator.saveCheckpoint(), CheckpointError);
    std::string bytes = makeCheckpointBytes();
    EXPECT_THROW(simulator.restoreCheckpoint(bytes), CheckpointError);
    std::remove(path.c_str());
}

TEST(Checkpoint, SaveRequiresPristinePipeline)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator simulator(checkedParams(sim::Machine::Pubs),
                             w.program);
    simulator.run(500, 2000);
    EXPECT_THROW((void)simulator.saveCheckpoint(), CheckpointError);
}

TEST(Checkpoint, FailuresAreAttributedToTheirSimPhase)
{
    // The sweep's skip rows rely on this attribution to distinguish a
    // fast-forward fault from a measurement fault in skipped.csv.
    sim::clearFailedPhase();
    EXPECT_EQ(sim::lastFailedPhase(), sim::SimPhase::None);

    std::string path = tempPath("pubs_test_ckpt_phase.trc");
    wl::Workload w = wl::makeWorkload("sjeng_like");
    {
        trace::TraceWriter writer(path);
        emu::Emulator emu(w.program);
        trace::DynInst di;
        for (int i = 0; i < 50 && emu.step(di); ++i)
            writer.write(di);
        writer.close();
    }
    sim::Simulator simulator(
        checkedParams(sim::Machine::Base),
        std::make_unique<trace::TraceReader>(path));
    EXPECT_THROW((void)simulator.saveCheckpoint(), CheckpointError);
    EXPECT_EQ(sim::lastFailedPhase(), sim::SimPhase::CheckpointIo);
    EXPECT_STREQ(sim::simPhaseName(sim::lastFailedPhase()),
                 "checkpoint_io");

    sim::clearFailedPhase();
    EXPECT_EQ(sim::lastFailedPhase(), sim::SimPhase::None);
    EXPECT_STREQ(sim::simPhaseName(sim::SimPhase::FastForward),
                 "fastforward");
    std::remove(path.c_str());
}

TEST(CheckpointStore, MissThenHitRoundTrip)
{
    std::string dir = tempPath("pubs_test_ckpt_store");
    std::filesystem::remove_all(dir);

    sim::CheckpointStore store(dir);
    std::string bytes = makeCheckpointBytes();
    sim::CheckpointMeta meta = sim::readCheckpointMeta(bytes);

    std::string fetched;
    EXPECT_FALSE(store.contains(meta));
    EXPECT_FALSE(store.load(meta, fetched));
    store.save(meta, bytes);
    EXPECT_TRUE(store.contains(meta));
    ASSERT_TRUE(store.load(meta, fetched));
    EXPECT_EQ(fetched, bytes);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, KeyCoversSkipDistanceAndMachine)
{
    sim::CheckpointStore store("cache");
    sim::CheckpointMeta meta;
    meta.workload = "sjeng_like";
    meta.programCrc = 0x1234;
    meta.paramsFp = 0x5678;
    meta.skipInsts = 1000;
    std::string a = store.pathFor(meta);
    meta.skipInsts = 2000;
    std::string b = store.pathFor(meta);
    meta.paramsFp = 0x9abc;
    std::string c = store.pathFor(meta);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
}

TEST(CheckpointStore, TimingOnlyParamChangeSharesArtifacts)
{
    cpu::CoreParams base = checkedParams(sim::Machine::Pubs);

    // Timing-only knobs (window sizes, widths, latencies, PUBS dispatch
    // policy, the seed) must not move the fingerprint: a checkpoint
    // holds functionally-warmed state only, so a timing sweep over one
    // workload should hit the same cached fast-forward artifact.
    cpu::CoreParams timing = base;
    timing.robEntries *= 2;
    timing.iqEntries *= 2;
    timing.issueWidth = 2;
    timing.numIntAlu += 1;
    timing.memory.l1d.hitLatency += 1;
    timing.pubs.priorityEntries += 2;
    timing.pubs.stallPolicy = !timing.pubs.stallPolicy;
    timing.seed += 99;
    timing.validate();
    EXPECT_EQ(sim::paramsFingerprint(base),
              sim::paramsFingerprint(timing));

    // Any functional knob (cache geometry, predictor tables, PUBS
    // training configuration) must move it.
    cpu::CoreParams biggerL1 = base;
    biggerL1.memory.l1d.sizeBytes *= 2;
    EXPECT_NE(sim::paramsFingerprint(base),
              sim::paramsFingerprint(biggerL1));
    cpu::CoreParams widerCounters = base;
    widerCounters.pubs.confCounterBits += 1;
    EXPECT_NE(sim::paramsFingerprint(base),
              sim::paramsFingerprint(widerCounters));

    // Store behaviour: hit across the timing change, miss across the
    // functional one.
    std::string dir = tempPath("pubs_test_ckpt_store_functional");
    std::filesystem::remove_all(dir);
    sim::CheckpointStore store(dir);
    std::string bytes = makeCheckpointBytes();
    sim::CheckpointMeta meta = sim::readCheckpointMeta(bytes);
    ASSERT_EQ(meta.paramsFp, sim::paramsFingerprint(base));
    store.save(meta, bytes);

    sim::CheckpointMeta timingMeta = meta;
    timingMeta.paramsFp = sim::paramsFingerprint(timing);
    EXPECT_TRUE(store.contains(timingMeta));
    sim::CheckpointMeta funcMeta = meta;
    funcMeta.paramsFp = sim::paramsFingerprint(biggerL1);
    EXPECT_FALSE(store.contains(funcMeta));

    // And the identity check accepts a restore into the timing-variant
    // machine (the artifact is actually usable, not merely addressable).
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::Simulator victim(timing, w.program);
    EXPECT_NO_THROW(victim.restoreCheckpoint(bytes));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, CorruptArtifactIsAMissNotAnError)
{
    std::string dir = tempPath("pubs_test_ckpt_store_corrupt");
    std::filesystem::remove_all(dir);

    sim::CheckpointStore store(dir);
    std::string bytes = makeCheckpointBytes();
    sim::CheckpointMeta meta = sim::readCheckpointMeta(bytes);
    store.save(meta, bytes);

    // Stomp the cached artifact; the store must degrade to a miss so
    // the caller recomputes, never throw or return the corrupt bytes.
    {
        std::ofstream out(store.pathFor(meta),
                          std::ios::binary | std::ios::trunc);
        out << "not a checkpoint";
    }
    std::string fetched;
    EXPECT_FALSE(store.load(meta, fetched));
    EXPECT_TRUE(fetched.empty());
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace pubs
