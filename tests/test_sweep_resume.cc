/**
 * @file
 * Sweep-row codec, write-ahead journal, and resume tests: torn-tail
 * recovery, stale-journal rejection, kill -9 mid-sweep followed by
 * --resume producing byte-identical output, and proc-mode sweeps
 * matching thread-mode sweeps bit for bit.
 *
 * The end-to-end tests fork, so the suite is deliberately named outside
 * the TSan CI job's test regex.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/bench_util.hh"
#include "common/run_codec.hh"
#include "common/subprocess.hh"
#include "common/sweep_journal.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::bench
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** A realistic, fully populated row: an actual (tiny) simulation. */
SweepRow
simulatedRow()
{
    static SweepRow cached = [] {
        SweepRow row;
        wl::Workload w = wl::makeWorkload("sjeng_like");
        row.result = sim::simulate(sim::makeConfig(sim::Machine::Pubs),
                                   w.program, 1000, 8000);
        row.result.workload = w.name;
        row.result.machine = "pubs";
        return row;
    }();
    return cached;
}

/** Small mixed batch including one run the simulator rejects. */
SweepSpec
makeSpec()
{
    SweepSpec spec;
    spec.jobs = 1;
    spec.warmup = 1000;
    spec.insts = 8000;
    spec.verbose = false;
    for (const char *name : {"sjeng_like", "hmmer_like", "mcf_like"}) {
        wl::Workload w = wl::makeWorkload(name);
        spec.add(w, sim::makeConfig(sim::Machine::Base), "base");
        spec.add(std::move(w), sim::makeConfig(sim::Machine::Pubs),
                 "pubs");
    }
    // A config the simulator rejects: the skip row must journal and
    // resume like any other row.
    cpu::CoreParams bad = sim::makeConfig(sim::Machine::Pubs);
    bad.iqKind = iq::IqKind::Shifting;
    spec.add(wl::makeWorkload("hmmer_like"), bad, "bad");
    return spec;
}

/** Reset the process-wide sweep configuration this file mutates. */
void
cleanSweepConfig()
{
    ::unsetenv("PUBS_FAULT");
    ::unsetenv("PUBS_BENCH_CSV");
    setJournalPath("");
    setResume(false);
}

// --- row codec -------------------------------------------------------

TEST(SweepResume, CodecRoundTripsARealRow)
{
    SweepRow row = simulatedRow();
    std::string payload = encodeSweepRow(row);
    EXPECT_EQ(payload, encodeSweepRow(row)) << "encoding must be pure";

    SweepRow decoded;
    std::string error;
    ASSERT_TRUE(decodeSweepRow(payload, decoded, &error)) << error;
    EXPECT_EQ(encodeSweepRow(decoded), payload)
        << "decode must invert encode bit-exactly";
    EXPECT_EQ(decoded.result.workload, row.result.workload);
    EXPECT_EQ(decoded.result.cycles, row.result.cycles);
    EXPECT_EQ(decoded.result.ipc, row.result.ipc);
    EXPECT_EQ(decoded.result.pipeline.committed,
              row.result.pipeline.committed);
    EXPECT_EQ(decoded.result.pipeline.iqWait.samples(),
              row.result.pipeline.iqWait.samples());
}

TEST(SweepResume, CodecRoundTripsASkipRow)
{
    SweepRow row;
    row.error = "checker divergence at seq 123";
    row.errorKind = "check";
    row.result.workload = "mcf_like";
    row.result.machine = "pubs";

    SweepRow decoded;
    ASSERT_TRUE(decodeSweepRow(encodeSweepRow(row), decoded));
    EXPECT_EQ(decoded.error, row.error);
    EXPECT_EQ(decoded.errorKind, row.errorKind);
    EXPECT_EQ(decoded.result.workload, "mcf_like");
}

TEST(SweepResume, CodecRejectsEveryTruncation)
{
    std::string payload = encodeSweepRow(simulatedRow());
    SweepRow decoded;
    for (size_t n = 0; n < payload.size(); n += 7) {
        SCOPED_TRACE("prefix " + std::to_string(n));
        EXPECT_FALSE(decodeSweepRow(payload.substr(0, n), decoded));
    }
    EXPECT_FALSE(decodeSweepRow(payload + "x", decoded))
        << "trailing bytes must be rejected";
    std::string wrongVersion = payload;
    wrongVersion[0] = (char)0x7f;
    EXPECT_FALSE(decodeSweepRow(wrongVersion, decoded));
}

// --- journal ---------------------------------------------------------

TEST(SweepResume, JournalRoundTrip)
{
    cleanSweepConfig();
    std::string path = tempPath("pubs_journal_rt.jnl");
    std::remove(path.c_str());
    std::string payload = encodeSweepRow(simulatedRow());

    {
        SweepJournal journal(path, 0xabcdef, 5, false);
        EXPECT_EQ(journal.loaded(), 0u);
        journal.record(0, payload);
        journal.record(3, "short payload");
        journal.record(4, "");
    }
    SweepJournal journal(path, 0xabcdef, 5, true);
    EXPECT_EQ(journal.loaded(), 3u);
    EXPECT_TRUE(journal.has(0));
    EXPECT_FALSE(journal.has(1));
    EXPECT_FALSE(journal.has(2));
    EXPECT_TRUE(journal.has(3));
    EXPECT_TRUE(journal.has(4));
    EXPECT_EQ(journal.payload(0), payload);
    EXPECT_EQ(journal.payload(3), "short payload");
    EXPECT_EQ(journal.payload(4), "");
}

TEST(SweepResume, JournalDiscardsTornTail)
{
    cleanSweepConfig();
    std::string path = tempPath("pubs_journal_torn.jnl");
    std::remove(path.c_str());
    {
        SweepJournal journal(path, 1, 4, false);
        journal.record(0, "first record");
        journal.record(1, "second record");
    }
    // A torn append: garbage after the last complete record.
    long intact = (long)std::filesystem::file_size(path);
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fwrite("GARBAGE", 1, 7, f);
        std::fclose(f);
    }
    {
        SweepJournal journal(path, 1, 4, true);
        EXPECT_EQ(journal.loaded(), 2u);
        EXPECT_EQ(journal.payload(1), "second record");
    }
    // The recovery truncated the tail, so the file is clean again.
    EXPECT_EQ((long)std::filesystem::file_size(path), intact);

    // A record cut short mid-payload only surrenders that record.
    ASSERT_EQ(::truncate(path.c_str(), intact - 3), 0);
    SweepJournal journal(path, 1, 4, true);
    EXPECT_EQ(journal.loaded(), 1u);
    EXPECT_TRUE(journal.has(0));
    EXPECT_FALSE(journal.has(1));
}

TEST(SweepResume, JournalRejectsBitFlippedRecord)
{
    cleanSweepConfig();
    std::string path = tempPath("pubs_journal_flip.jnl");
    std::remove(path.c_str());
    {
        SweepJournal journal(path, 1, 2, false);
        journal.record(0, "payload under crc protection");
    }
    // Flip one payload byte (past the 32-byte header and the 20-byte
    // record header): the CRC must reject the record.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 32 + 20 + 4, SEEK_SET), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }
    SweepJournal journal(path, 1, 2, true);
    EXPECT_EQ(journal.loaded(), 0u);
}

TEST(SweepResume, JournalRejectsMismatchedSweep)
{
    cleanSweepConfig();
    std::string path = tempPath("pubs_journal_stale.jnl");
    std::remove(path.c_str());
    {
        SweepJournal journal(path, /*specKey=*/7, /*slots=*/3, false);
        journal.record(0, "from another sweep");
    }
    // Different spec key: a stale journal must never leak rows.
    {
        SweepJournal journal(path, 8, 3, true);
        EXPECT_EQ(journal.loaded(), 0u);
    }
    // Different slot count, same key: also stale.
    {
        SweepJournal journal(path, 7, 3, false);
        journal.record(0, "fresh");
    }
    {
        SweepJournal journal(path, 7, 4, true);
        EXPECT_EQ(journal.loaded(), 0u);
    }
    // Fresh mode ignores a perfectly valid journal by design.
    {
        SweepJournal journal(path, 7, 4, false);
        EXPECT_EQ(journal.loaded(), 0u);
    }
}

// --- end-to-end resume -----------------------------------------------

/**
 * Fork a child that starts @p spec with journaling at @p path and a
 * PUBS_FAULT plan, and wait for it. @return the child's wait status.
 */
int
runInterruptedSweep(const SweepSpec &spec, const std::string &path,
                    const char *fault)
{
    proc::Child child = proc::spawnChild([&](int) {
        ::setenv("PUBS_FAULT", fault, 1);
        setJournalPath(path);
        setResume(false);
        runSweep(spec);
    });
    ::close(child.fd);
    int status = 0;
    while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

TEST(SweepResume, KilledSweepResumesByteIdentical)
{
    cleanSweepConfig();
    SweepSpec spec = makeSpec();
    std::string reference = runSweep(spec).statsJson();

    std::string path = tempPath("pubs_journal_kill.jnl");
    std::remove(path.c_str());

    // The child SIGKILLs itself after the third journal commit — the
    // deterministic stand-in for an operator's kill -9 mid-sweep.
    int status = runInterruptedSweep(spec, path, "killafter:3");
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child should have died to the injected SIGKILL, got "
        << proc::describeStatus(status);

    setJournalPath(path);
    setResume(true);
    SweepResult resumed = runSweep(spec);
    cleanSweepConfig();

    EXPECT_EQ(resumed.statsJson(), reference);
    EXPECT_EQ(resumed.failed(), 1u) << "only the bad-config skip row";
}

TEST(SweepResume, CrashyProcSweepResumesByteIdentical)
{
    cleanSweepConfig();
    SweepSpec spec = makeSpec();
    std::string reference = runSweep(spec).statsJson();

    std::string path = tempPath("pubs_journal_crashy.jnl");
    std::remove(path.c_str());

    // Proc-mode child under seeded crash injection *and* a mid-sweep
    // SIGKILL: the acceptance scenario. Retries are generous enough
    // that no task exhausts them at rate 0.3.
    SweepSpec procSpec = spec;
    procSpec.procs = 2;
    ::setenv("PUBS_PROC_RETRIES", "10", 1);
    ::setenv("PUBS_PROC_BACKOFF_MS", "1", 1);
    int status =
        runInterruptedSweep(procSpec, path, "crash:0.3:7,killafter:2");
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << proc::describeStatus(status);

    // Resume under the same crash plan, minus the kill.
    ::setenv("PUBS_FAULT", "crash:0.3:7", 1);
    setJournalPath(path);
    setResume(true);
    SweepResult resumed = runSweep(procSpec);
    cleanSweepConfig();
    ::unsetenv("PUBS_PROC_RETRIES");
    ::unsetenv("PUBS_PROC_BACKOFF_MS");

    EXPECT_EQ(resumed.statsJson(), reference);
}

TEST(SweepResume, ProcModeMatchesThreadMode)
{
    cleanSweepConfig();
    SweepSpec threads = makeSpec();
    SweepSpec procs = makeSpec();
    procs.procs = 3;
    EXPECT_EQ(runSweep(procs).statsJson(), runSweep(threads).statsJson());
}

} // namespace
} // namespace pubs::bench
