/**
 * @file
 * Trace-format tests: writer/reader round trips, header validation, and
 * replay equivalence against the emulator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/error.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "trace/trace.hh"

namespace pubs::trace
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

DynInst
sample(SeqNum seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = 0x1000 + seq * 4;
    di.nextPc = di.pc + 4;
    di.op = isa::Opcode::Ld;
    di.dst = 3;
    di.src1 = 5;
    di.src2 = invalidReg;
    di.effAddr = 0xdead0000 + seq;
    di.memSize = 8;
    di.taken = (seq & 1) != 0;
    return di;
}

TEST(Trace, RoundTrip)
{
    std::string path = tempPath("pubs_trace_rt.trc");
    {
        TraceWriter writer(path);
        for (SeqNum i = 0; i < 100; ++i)
            writer.write(sample(i));
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), 100u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 100u);
    DynInst di;
    for (SeqNum i = 0; i < 100; ++i) {
        ASSERT_TRUE(reader.next(di));
        DynInst want = sample(i);
        EXPECT_EQ(di.pc, want.pc);
        EXPECT_EQ(di.nextPc, want.nextPc);
        EXPECT_EQ(di.op, want.op);
        EXPECT_EQ(di.dst, want.dst);
        EXPECT_EQ(di.src1, want.src1);
        EXPECT_EQ(di.src2, want.src2);
        EXPECT_EQ(di.effAddr, want.effAddr);
        EXPECT_EQ(di.memSize, want.memSize);
        EXPECT_EQ(di.taken, want.taken);
    }
    EXPECT_FALSE(reader.next(di));
    std::remove(path.c_str());
}

TEST(Trace, NegativeRegistersSurvive)
{
    std::string path = tempPath("pubs_trace_neg.trc");
    {
        TraceWriter writer(path);
        DynInst di = sample(0);
        di.dst = invalidReg;
        di.src1 = invalidReg;
        writer.write(di);
        writer.close();
    }
    TraceReader reader(path);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.dst, invalidReg);
    EXPECT_EQ(di.src1, invalidReg);
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    std::string path = tempPath("pubs_trace_empty.trc");
    {
        TraceWriter writer(path);
        writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    DynInst di;
    EXPECT_FALSE(reader.next(di));
    std::remove(path.c_str());
}

TEST(Trace, CapturedEmulationReplaysIdentically)
{
    isa::Program prog = isa::assemble(R"(
        li r1, 0
        li r2, 20
    loop:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    )");
    std::string path = tempPath("pubs_trace_emul.trc");
    {
        emu::Emulator emu(prog);
        TraceWriter writer(path);
        DynInst di;
        while (emu.step(di))
            writer.write(di);
        writer.close();
    }
    emu::Emulator emu(prog);
    TraceReader reader(path);
    EXPECT_EQ(reader.program(), nullptr); // traces carry no static code
    DynInst fromEmu, fromTrace;
    while (emu.step(fromEmu)) {
        ASSERT_TRUE(reader.next(fromTrace));
        EXPECT_EQ(fromEmu.pc, fromTrace.pc);
        EXPECT_EQ(fromEmu.nextPc, fromTrace.nextPc);
        EXPECT_EQ((int)fromEmu.op, (int)fromTrace.op);
        EXPECT_EQ(fromEmu.taken, fromTrace.taken);
    }
    EXPECT_FALSE(reader.next(fromTrace));
    std::remove(path.c_str());
}

TEST(Trace, DstValueSurvivesRoundTrip)
{
    std::string path = tempPath("pubs_trace_dstv.trc");
    {
        TraceWriter writer(path);
        DynInst di = sample(0);
        di.dstValue = 0x123456789abcdef0ull;
        di.hasDstValue = true;
        writer.write(di);
        DynInst plain = sample(1); // no destination value
        writer.write(plain);
        writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.formatVersion(), traceFormatVersion);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    EXPECT_TRUE(di.hasDstValue);
    EXPECT_EQ(di.dstValue, 0x123456789abcdef0ull);
    ASSERT_TRUE(reader.next(di));
    EXPECT_FALSE(di.hasDstValue);
    std::remove(path.c_str());
}

namespace
{

/** Write raw bytes as a file. */
void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write((const char *)bytes.data(), (std::streamsize)bytes.size());
}

/** Read the whole file back as bytes. */
std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

} // namespace

TEST(TraceErrors, MissingFile)
{
    EXPECT_THROW(TraceReader("/nonexistent/nope.trc"), TraceError);
}

TEST(TraceErrors, WrongMagic)
{
    std::string path = tempPath("pubs_trace_badmagic.trc");
    writeBytes(path, std::vector<uint8_t>(32, 'x'));
    EXPECT_THROW(TraceReader reader(path), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, TruncatedHeader)
{
    std::string path = tempPath("pubs_trace_shorthdr.trc");
    writeBytes(path, {'P', 'U', 'B', 'S'});
    EXPECT_THROW(TraceReader reader(path), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, TruncatedRecordsDetectedAtOpen)
{
    std::string path = tempPath("pubs_trace_trunc.trc");
    {
        TraceWriter writer(path);
        for (SeqNum i = 0; i < 10; ++i)
            writer.write(sample(i));
        writer.close();
    }
    // Chop off the last record: the file-size check must reject it.
    std::vector<uint8_t> bytes = readBytes(path);
    bytes.resize(bytes.size() - 20);
    writeBytes(path, bytes);
    EXPECT_THROW(TraceReader reader(path), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, CorruptOpcodeRejected)
{
    std::string path = tempPath("pubs_trace_badop.trc");
    {
        TraceWriter writer(path);
        writer.write(sample(0));
        writer.close();
    }
    std::vector<uint8_t> bytes = readBytes(path);
    bytes[32 + 24] = 0xff; // opcode byte of record 0
    writeBytes(path, bytes);
    TraceReader reader(path);
    DynInst di;
    EXPECT_THROW(reader.next(di), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, NonzeroReservedBytesRejected)
{
    std::string path = tempPath("pubs_trace_badresv.trc");
    {
        TraceWriter writer(path);
        writer.write(sample(0));
        writer.close();
    }
    std::vector<uint8_t> bytes = readBytes(path);
    bytes[32 + 37] = 0x42; // a reserved byte of record 0
    writeBytes(path, bytes);
    TraceReader reader(path);
    DynInst di;
    EXPECT_THROW(reader.next(di), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, UnsupportedVersionRejected)
{
    std::string path = tempPath("pubs_trace_badver.trc");
    {
        TraceWriter writer(path);
        writer.close();
    }
    std::vector<uint8_t> bytes = readBytes(path);
    bytes[8] = 99; // version field
    writeBytes(path, bytes);
    EXPECT_THROW(TraceReader reader(path), TraceError);
    std::remove(path.c_str());
}

TEST(TraceErrors, LegacyV0TracesStillLoad)
{
    // Hand-build a v0 file: 16-byte header (magic + count) followed by
    // one 40-byte record.
    std::string path = tempPath("pubs_trace_v0.trc");
    std::vector<uint8_t> bytes(16 + 40, 0);
    std::memcpy(bytes.data(), traceMagicV0, 8);
    bytes[8] = 1; // count = 1, little-endian
    uint8_t *rec = bytes.data() + 16;
    rec[0] = 0x34; // pc = 0x1234
    rec[1] = 0x12;
    rec[8] = 0x38; // nextPc
    rec[9] = 0x12;
    rec[24] = (uint8_t)isa::Opcode::Addi;
    rec[25] = 7; // dst = r7
    rec[27] = 0xff; // src1 = invalidReg (-1 as u16)
    rec[28] = 0xff;
    rec[29] = 0xff; // src2 = invalidReg
    rec[30] = 0xff;
    writeBytes(path, bytes);

    TraceReader reader(path);
    EXPECT_EQ(reader.formatVersion(), 0u);
    EXPECT_EQ(reader.recordCount(), 1u);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.pc, 0x1234u);
    EXPECT_EQ(di.nextPc, 0x1238u);
    EXPECT_EQ(di.op, isa::Opcode::Addi);
    EXPECT_EQ(di.dst, 7);
    EXPECT_EQ(di.src1, invalidReg);
    EXPECT_FALSE(di.hasDstValue); // v0 carries no destination values
    EXPECT_FALSE(reader.next(di));
    std::remove(path.c_str());
}

TEST(TraceErrors, HeaderCountMismatchRejected)
{
    std::string path = tempPath("pubs_trace_count.trc");
    {
        TraceWriter writer(path);
        writer.write(sample(0));
        writer.close();
    }
    std::vector<uint8_t> bytes = readBytes(path);
    bytes[16] = 9; // count field claims 9 records, file holds 1
    writeBytes(path, bytes);
    EXPECT_THROW(TraceReader reader(path), TraceError);
    std::remove(path.c_str());
}

TEST(VectorSourceTest, DrainsInOrder)
{
    std::vector<DynInst> insts = {sample(0), sample(1), sample(2)};
    VectorSource source(insts);
    DynInst di;
    for (SeqNum i = 0; i < 3; ++i) {
        ASSERT_TRUE(source.next(di));
        EXPECT_EQ(di.seq, i);
    }
    EXPECT_FALSE(source.next(di));
}

} // namespace
} // namespace pubs::trace
